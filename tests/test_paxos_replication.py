"""Paxos Commit + replication tests (ISSUE PR 10) and the fault-plane
edge-case fixes that ride along.

Pinned contracts:

1. **F = 0 degenerates to 2PC** -- Paxos Commit with no fault tolerance
   produces byte-identical results to plain 2PC (the Gray & Lamport
   equivalence), healthy and faulty alike.
2. **R = 1 keeps the historical fast path** -- enabling the replication
   layer at factor 1 perturbs nothing: every protocol still matches the
   golden fixture bit-for-bit.
3. **Fault-plane bookkeeping** -- per-reason drop counters always sum to
   the total (and to the MSG_DROP event stream), the partition-heal
   wake-up resets the resolver backoff, and every RNG substream ever
   created survives a checkpoint round-trip byte-identically.
"""

import dataclasses
import json
import pathlib
import pickle

import pytest

import repro
from repro.config import ModelParams
from repro.db.pages import ReplicaDirectory, ReplicationSpec
from repro.experiments.runner import point_seed
from repro.faults import FaultConfig, RegionPlan
from repro.obs import EventLog
from repro.obs.events import EventKind
from repro.sim.rng import RandomStreams

GOLDEN = pathlib.Path(__file__).parent / "data" / "golden_sweep.json"

#: the harsh environment used by the fault-suite survival tests.
HARSH = dict(mttf_ms=25_000.0, mttr_ms=2_000.0, msg_loss_prob=0.02)

DCS = "dcs:2x2:rtt_ms=5"


def _round_trip(result):
    """Normalize a SimulationResult the way the golden fixture was."""
    return json.loads(json.dumps(dataclasses.asdict(result)))


def _run(protocol, *, seed=42, transactions=80, log_kinds=None,
         topology=None, faults=None, **overrides):
    """One run; returns (result, system, event log)."""
    captured = []
    log = EventLog(kinds=log_kinds)
    if topology is not None:
        overrides["network_topology"] = repro.NetworkTopology.parse(topology)
    result = repro.simulate(
        protocol, measured_transactions=transactions,
        warmup_transactions=0, seed=seed,
        on_system=lambda s: (captured.append(s), log.attach(s.bus)),
        faults=faults, **overrides)
    return result, captured[0], log


# ----------------------------------------------------------------------
# Registry: the parameterized PAXOS[:f=<F>] spelling
# ----------------------------------------------------------------------
class TestPaxosRegistry:
    def test_default_is_f1_and_non_blocking(self):
        protocol = repro.create_protocol("PAXOS")
        assert protocol.name == "PAXOS"
        assert protocol.f == 1
        assert protocol.non_blocking

    def test_parameterized_spelling(self):
        assert repro.create_protocol("PAXOS:f=2").f == 2
        assert repro.create_protocol("paxos:f=0").f == 0

    def test_f0_is_blocking(self):
        assert not repro.create_protocol("PAXOS:f=0").non_blocking

    @pytest.mark.parametrize("bad", ["PAXOS:f=x", "PAXOS:g=1", "PAXOS:f=-1",
                                     "PAXOS:", "PAXOS:f="])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError, match="paxos"):
            repro.create_protocol(bad)

    def test_registered_in_protocol_names(self):
        assert "PAXOS" in repro.PROTOCOL_NAMES


# ----------------------------------------------------------------------
# F = 0 degenerates to 2PC (the Gray & Lamport equivalence)
# ----------------------------------------------------------------------
class TestF0Matches2PC:
    def test_healthy_run_byte_identical(self):
        results = [repro.simulate(name, mpl=3, measured_transactions=120,
                                  seed=11)
                   for name in ("2PC", "PAXOS:f=0")]
        expected = [_round_trip(r) for r in results]
        # The protocol label is the one permitted difference.
        for normalized, name in zip(expected, ("2PC", "2PC")):
            normalized["protocol"] = name
        assert expected[0] == expected[1]

    @pytest.mark.faults
    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_faulty_run_byte_identical(self, seed):
        results = [repro.simulate(name, mpl=3, measured_transactions=60,
                                  warmup_transactions=0, seed=seed,
                                  faults=FaultConfig(**HARSH))
                   for name in ("2PC", "PAXOS:f=0")]
        expected = [_round_trip(r) for r in results]
        for normalized in expected:
            normalized["protocol"] = "2PC"
        assert expected[0] == expected[1]


# ----------------------------------------------------------------------
# Overheads: PAXOS message/forced-write counts vs 2PC (paper Table 3
# style accounting, extended to the Gray & Lamport protocol)
# ----------------------------------------------------------------------
class TestPaxosOverheads:
    """With D = 3 sites per transaction (master + 2 remote cohorts) and a
    conflict-free run, per-commit costs are exact constants:

    - 2PC: 8 messages (2 x 4 per remote cohort), 7 forced writes.
    - PAXOS (F = 1): the 2 remote cohorts each additionally send their
      vote to 2 remote acceptors (+4), acceptors send 2B acks to the
      master (+2), totalling 14; each acceptor adds one batched forced
      ACCEPT record (+2), totalling 9.
    """

    def _overheads(self, protocol):
        result, system, _ = _run(protocol, transactions=60, seed=5,
                                 num_sites=4, db_size=2000, mpl=1,
                                 dist_degree=3, cohort_size=4)
        assert result.aborted == 0, "setup must be conflict-free"
        return result.overheads

    def test_2pc_baseline(self):
        overheads = self._overheads("2PC")
        assert overheads.commit_messages == pytest.approx(8.0)
        assert overheads.forced_writes == pytest.approx(7.0)

    def test_paxos_f1(self):
        overheads = self._overheads("PAXOS")
        assert overheads.commit_messages == pytest.approx(14.0)
        assert overheads.forced_writes == pytest.approx(9.0)

    def test_f0_matches_2pc_exactly(self):
        assert self._overheads("PAXOS:f=0") == self._overheads("2PC")

    def test_f_clamped_to_cohort_sites(self):
        # D = 3 offers only 2F+1 = 3 acceptor sites, so F = 2 clamps to
        # F = 1 and must cost exactly the same.
        assert self._overheads("PAXOS:f=2") == self._overheads("PAXOS")


# ----------------------------------------------------------------------
# Satellite 4: R = 1 keeps the historical fast path (golden fixture)
# ----------------------------------------------------------------------
class TestReplicationDisabledIsFree:
    def test_r1_matches_golden_for_every_protocol(self):
        """`--replication 1` must not perturb a single field of any
        protocol's trajectory: factor 1 routes through the replica
        directory but ships nothing and draws nothing."""
        grid = json.loads(GOLDEN.read_text())["tier2"]
        mpl = 2
        assert mpl in grid["mpls"]
        mismatched = []
        for protocol in grid["protocols"]:
            result = repro.simulate(
                protocol,
                params=ModelParams(mpl=mpl, replication=ReplicationSpec(1)),
                measured_transactions=grid["transactions"],
                seed=point_seed(20250705, 0))
            if _round_trip(result) != grid["points"][f"{protocol}@{mpl}"]:
                mismatched.append(protocol)
        assert not mismatched, (
            f"replication factor 1 perturbed {mismatched}; R=1 must keep "
            f"the historical partitioned layout byte-identical")


# ----------------------------------------------------------------------
# Replication spec parsing and deterministic placement
# ----------------------------------------------------------------------
class TestReplicationSpec:
    def test_parse_factor_only(self):
        spec = ReplicationSpec.parse("2")
        assert (spec.factor, spec.strategy) == (2, "chain")

    def test_parse_with_strategy(self):
        spec = ReplicationSpec.parse("3:spread")
        assert (spec.factor, spec.strategy) == (3, "spread")

    @pytest.mark.parametrize("bad", ["", "x", "2:bogus", "2:chain:extra",
                                     "0", "-1"])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            spec = ReplicationSpec.parse(bad)
            spec.validate(num_sites=8)

    def test_factor_cannot_exceed_sites(self):
        with pytest.raises(ValueError, match="exceeds"):
            ReplicationSpec(4).validate(num_sites=3)


class TestReplicaDirectory:
    def _directory(self, spec, num_sites=8):
        return ReplicaDirectory(db_size=800, num_sites=num_sites,
                                num_data_disks=2, spec=spec)

    def test_primary_first_and_distinct(self):
        directory = self._directory(ReplicationSpec(3))
        for primary in range(8):
            replicas = directory.replica_sites(primary)
            assert replicas[0] == primary
            assert len(replicas) == 3
            assert len(set(replicas)) == 3

    def test_chain_uses_ring_neighbours(self):
        directory = self._directory(ReplicationSpec(2, "chain"))
        assert directory.replica_sites(0) == (0, 1)
        assert directory.replica_sites(7) == (7, 0)

    def test_spread_spaces_copies(self):
        directory = self._directory(ReplicationSpec(2, "spread"))
        assert directory.replica_sites(0) == (0, 4)
        assert directory.replica_sites(3) == (3, 7)

    def test_every_page_resolves_to_its_primary_set(self):
        directory = self._directory(ReplicationSpec(2))
        for page in range(0, 800, 97):
            replicas = directory.replicas_of(page)
            assert replicas == directory.replica_sites(
                directory.site_of(page))


# ----------------------------------------------------------------------
# Replication at runtime: propagation, available copies, liveness
# ----------------------------------------------------------------------
class TestReplicationRuns:
    def test_r2_ships_updates(self):
        result, system, log = _run(
            "2PC", transactions=60, seed=3, mpl=2, num_sites=4, topology=DCS,
            replication=ReplicationSpec(2),
            log_kinds=(EventKind.REPLICA_PROPAGATE,))
        assert result.committed == 60
        assert system.replica_updates_sent > 0
        assert system.replica_writes_skipped == 0
        shipped = [e for e in log.events if e.shipped]
        assert len(shipped) == system.replica_updates_sent

    @pytest.mark.faults
    def test_available_copies_skips_downed_replicas(self):
        faults = FaultConfig(
            mttr_ms=2_000.0,
            region=RegionPlan.parse("dc_crash:1:at=500:for=2500"))
        result, system, log = _run(
            "PAXOS", transactions=60, seed=3, mpl=2, num_sites=4, topology=DCS,
            replication=ReplicationSpec(2, "spread"), faults=faults,
            log_kinds=(EventKind.REPLICA_PROPAGATE,))
        assert result.committed == 60  # liveness through the outage
        assert system.replica_writes_skipped > 0
        skipped = [e for e in log.events if not e.shipped]
        assert len(skipped) == system.replica_writes_skipped

    def test_replication_rejected_for_centralized(self):
        with pytest.raises(ValueError):
            repro.build_system("CENT", replication=ReplicationSpec(2))


# ----------------------------------------------------------------------
# PAXOS under faults: liveness, quorum recovery, ballot takeover
# ----------------------------------------------------------------------
@pytest.mark.faults
class TestPaxosUnderFaults:
    @pytest.mark.parametrize("seed", [1, 42])
    def test_survives_harsh_sweep(self, seed):
        result, system, _ = _run("PAXOS", seed=seed, transactions=80,
                                 mpl=3, faults=FaultConfig(**HARSH))
        assert result.committed == 80
        assert system.faults.crashes >= 1, "environment too mild to test"

    def test_acceptors_log_and_ballots_close(self):
        """Across a few harsh seeds, acceptors must fire on the commit
        path and at least one blocked cohort must take over with a new
        ballot (the non-blocking property doing actual work)."""
        acceptor_events = 0
        ballots = 0
        for seed in (1, 7, 23, 42, 99):
            _, _, log = _run(
                "PAXOS", seed=seed, transactions=80, mpl=3,
                faults=FaultConfig(**HARSH),
                log_kinds=(EventKind.ACCEPTOR, EventKind.BALLOT))
            acceptor_events += sum(
                1 for e in log.events if e.kind is EventKind.ACCEPTOR)
            ballots += sum(
                1 for e in log.events if e.kind is EventKind.BALLOT)
        assert acceptor_events > 0
        assert ballots > 0, (
            "no run exercised the new-ballot takeover; the recovery "
            "path is dead code under this fault mix")

    @pytest.mark.parametrize("seed", [7, 42])
    def test_less_blocking_than_2pc_during_outage(self, seed):
        """The headline: a coordinator-DC outage blocks PAXOS cohorts
        for less lock-hold time than 2PC, because reachable quorums
        close the ballot instead of waiting out the coordinator."""
        plan = RegionPlan.parse(
            "dc_crash:0:at=800:for=1500,partition:0|1:at=4000:for=1500")
        blocked = {}
        for protocol in ("2PC", "PAXOS"):
            _, system, _ = _run(
                protocol, transactions=60, seed=seed, mpl=2, num_sites=4,
                topology=DCS,
                faults=FaultConfig(mttr_ms=2_000.0, region=plan))
            blocked[protocol] = system.faults.blocked_lock_ms
        assert blocked["PAXOS"] < blocked["2PC"]


# ----------------------------------------------------------------------
# Satellite 1: partition heal resets the re-inquiry backoff
# ----------------------------------------------------------------------
@pytest.mark.faults
class TestHealBackoffReset:
    def test_heal_event_is_shared_and_rearmed(self):
        system = repro.build_system(
            "2PC", mpl=1, num_sites=4,
            network_topology=repro.NetworkTopology.parse(DCS),
            faults=FaultConfig(mttr_ms=2_000.0,
                               region=RegionPlan.parse(
                                   "partition:0|1:at=100:for=100")))
        injector = system.faults
        first = injector.heal_event()
        assert injector.heal_event() is first  # shared between waiters
        injector._sever(0, 1)
        injector._heal(0, 1)
        assert first.triggered  # heal wakes every waiter
        fresh = injector.heal_event()
        assert fresh is not first and not fresh.triggered  # re-armed

    def test_resolution_prompt_after_heal(self):
        """Regression (PR 9 follow-up): the capped 8x backoff used to
        keep ticking after LINK_HEAL, so the first post-heal inquiry
        could sleep out a stale multi-second interval.  Every cohort
        that was already in doubt when the partition healed must now
        resolve within a base retry interval of the heal -- not an 8x
        backed-off one.  (Cohorts whose decision timeouts fire *after*
        the heal are excluded: they were never blocked on the link.)"""
        plan = RegionPlan.parse("partition:0|1:at=500:for=6000")
        records = []
        captured = []

        def hook(system):
            captured.append(system)
            injector = system.faults
            original = injector.note_resolved

            def recording(cohort):
                # in_doubt_since is cleared by note_resolved, so read
                # it on the way in.
                records.append((system.env.now, cohort.in_doubt_since))
                original(cohort)

            injector.note_resolved = recording

        repro.simulate(
            "2PC", mpl=2, num_sites=4,
            network_topology=repro.NetworkTopology.parse(DCS),
            measured_transactions=60, warmup_transactions=0, seed=7,
            on_system=hook,
            faults=FaultConfig(mttr_ms=2_000.0, region=plan))
        heal = 500.0 + 6000.0
        lags = [time - heal for time, since in records
                if since is not None and since < heal and time >= heal]
        assert lags, "no cohort was blocked across the heal; scenario " \
            "too mild to pin the regression"
        base_retry = captured[0].fault_timeouts.resolve_retry_ms
        # Backed-off waiters sleep up to 8 x base_retry = 4000 ms; the
        # wake-up must bring the worst case under ~one base interval
        # (plus inquiry round-trip time).  Without the reset the lag
        # here measures 2510 ms.
        assert max(lags) < 2.0 * base_retry, (
            f"in-doubt cohort resolved {max(lags):.0f} ms after the "
            f"heal; backoff state was not reset by LINK_HEAL")


# ----------------------------------------------------------------------
# Satellite 2: drop accounting never drifts
# ----------------------------------------------------------------------
@pytest.mark.faults
class TestDropAccounting:
    def _check(self, system, log):
        network = system.network
        drops = [e for e in log.events if e.kind is EventKind.MSG_DROP]
        assert network.messages_dropped == len(drops)
        assert sum(network.drops_by_reason.values()) == \
            network.messages_dropped
        by_reason = {}
        for event in drops:
            by_reason[event.reason] = by_reason.get(event.reason, 0) + 1
        assert by_reason == network.drops_by_reason
        # The injector attributes every drop it caused; topology wire
        # loss is the healthy WAN's doing and stays out of its counter.
        injected = network.messages_dropped \
            - network.drops_by_reason.get("topology_loss", 0)
        assert system.faults.messages_dropped == injected
        return network.drops_by_reason

    def test_availability_style_run(self):
        _, system, log = _run("PA", seed=42, transactions=80, mpl=3,
                              faults=FaultConfig(**HARSH),
                              log_kinds=(EventKind.MSG_DROP,))
        reasons = self._check(system, log)
        assert reasons.get("loss", 0) > 0
        assert reasons.get("site_down", 0) > 0

    def test_region_outage_run(self):
        plan = RegionPlan.parse(
            "dc_crash:0:at=800:for=1500,partition:0|1:at=4000:for=1500")
        _, system, log = _run("3PC", seed=7, transactions=60, mpl=2,
                              num_sites=4, topology=DCS,
                              faults=FaultConfig(mttr_ms=2_000.0,
                                                 region=plan),
                              log_kinds=(EventKind.MSG_DROP,))
        reasons = self._check(system, log)
        assert reasons.get("partition", 0) > 0

    def test_topology_wire_loss_run(self):
        _, system, log = _run("PAXOS", seed=42, transactions=60, mpl=2, num_sites=4,
                              topology="dcs:2x2:rtt_ms=5:loss=0.05",
                              faults=FaultConfig(msg_loss_prob=0.01),
                              log_kinds=(EventKind.MSG_DROP,))
        reasons = self._check(system, log)
        assert reasons.get("topology_loss", 0) > 0


# ----------------------------------------------------------------------
# Satellite 3: RNG substream checkpoint coverage
# ----------------------------------------------------------------------
@pytest.mark.faults
class TestRngCheckpointCoverage:
    def _full_feature_system(self):
        """A run touching every substream family: workload, surprise
        aborts, per-site fault drivers, message loss/delay, topology
        jitter/loss, and the replication plane."""
        captured = []
        repro.simulate(
            "PAXOS", mpl=2, num_sites=4,
            network_topology=repro.NetworkTopology.parse(
                "dcs:2x2:rtt_ms=5:jitter_ms=1:loss=0.01"),
            replication=ReplicationSpec(2),
            measured_transactions=40, warmup_transactions=0, seed=7,
            on_system=lambda s: captured.append(s),
            faults=FaultConfig(mttf_ms=60_000.0, mttr_ms=2_000.0,
                               msg_loss_prob=0.02, msg_delay_ms=1.0,
                               region=RegionPlan.parse(
                                   "dc_crash:0:at=800:for=1200")))
        return captured[0]

    def test_capture_covers_every_stream_ever_created(self):
        system = self._full_feature_system()
        streams = system.streams
        state = streams.capture_state()
        assert set(state) == set(streams._streams)
        # The families this run must have touched.
        names = set(state)
        assert "workload-pages" in names
        assert "faults-msgloss" in names
        assert any(name.startswith("faults-site-") for name in names)

    def test_round_trip_is_byte_identical(self):
        """Checkpoint semantics: pickling the captured state (what
        SoakCheckpoint does) and restoring it into a fresh family must
        reproduce the exact future of every stream."""
        system = self._full_feature_system()
        streams = system.streams
        blob = pickle.dumps(streams.capture_state())
        restored = RandomStreams(seed=streams.seed)
        restored.restore_state(pickle.loads(blob))
        for name, original in streams._streams.items():
            clone = restored.stream(name)
            assert [clone.random() for _ in range(16)] == \
                [original.random() for _ in range(16)], name
        # And the restored family re-captures to the same bytes the
        # streams now produce from the original.
        assert pickle.dumps(restored.capture_state()) == \
            pickle.dumps(streams.capture_state())

    def test_soak_checkpoint_embeds_rng_state(self):
        """The soak checkpoint path itself must carry the full stream
        family: capture at a drain barrier, restore into a fresh
        family, identical futures."""
        from repro.config import open_system
        params = open_system(arrival_rate_tps=10.0, num_sites=2, mpl=4,
                             db_size=600, dist_degree=2, cohort_size=4)
        system = repro.build_system(
            "PAXOS", params, seed=7,
            faults=FaultConfig(mttf_ms=60_000.0, mttr_ms=2_000.0,
                               msg_loss_prob=0.01))
        system.start()
        system.env.run(until=system.metrics.when_committed(30))
        system.stop_arrivals()
        system.env.run(until=system.when_drained())
        state = system.capture_soak_state()
        assert set(state["rng"]) == set(system.streams._streams)
        restored = RandomStreams(seed=system.streams.seed)
        restored.restore_state(pickle.loads(pickle.dumps(state["rng"])))
        for name, original in system.streams._streams.items():
            assert restored.stream(name).random() == original.random(), name
