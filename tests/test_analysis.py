"""Tests for result rendering (tables, sparklines)."""

from repro.analysis.tables import (
    render_comparison,
    render_series_table,
    render_sparkline,
)
from repro.config import ModelParams
from repro.experiments import MplSweep


def tiny_results():
    sweep = MplSweep(
        ["2PC", "OPT"],
        lambda mpl: ModelParams(num_sites=2, db_size=400, mpl=mpl,
                                dist_degree=2, cohort_size=2),
        mpls=(1, 2), measured_transactions=40, warmup_transactions=5)
    return sweep.run("T", "tiny")


class TestSeriesTable:
    def test_contains_all_protocols_and_mpls(self):
        results = tiny_results()
        text = render_series_table(results, "throughput")
        assert "2PC" in text and "OPT" in text
        lines = text.splitlines()
        assert lines[0] == "[throughput]"
        assert len(lines) == 2 + len(results.mpls)

    def test_respects_precision(self):
        results = tiny_results()
        text = render_series_table(results, "throughput", precision=0)
        # No decimal points in the data cells.
        for line in text.splitlines()[2:]:
            assert "." not in line

    def test_experiment_results_table_delegates(self):
        results = tiny_results()
        assert results.table("throughput") == render_series_table(
            results, "throughput", 2)

    def test_summary_includes_title(self):
        results = tiny_results()
        assert "tiny" in results.summary()


class TestSparkline:
    def test_empty(self):
        assert render_sparkline([]) == ""

    def test_flat_series(self):
        assert render_sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_monotone_series_uses_full_range(self):
        spark = render_sparkline([0.0, 1.0, 2.0, 3.0])
        assert spark[0] == "▁"
        assert spark[-1] == "█"
        assert len(spark) == 4

    def test_comparison_output(self):
        results = tiny_results()
        text = render_comparison(results)
        assert "2PC" in text and "OPT" in text
        assert "@" in text
