"""Unit tests for the simulation environment and event loop."""

import pytest

from repro.sim import Environment, Event


def test_initial_time_defaults_to_zero():
    env = Environment()
    assert env.now == 0.0


def test_initial_time_can_be_set():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_timeout_advances_clock():
    env = Environment()
    times = []

    def proc(env):
        yield env.timeout(3.0)
        times.append(env.now)
        yield env.timeout(2.0)
        times.append(env.now)

    env.process(proc(env))
    env.run()
    assert times == [3.0, 5.0]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_run_until_time_stops_exactly():
    env = Environment()

    def proc(env):
        while True:
            yield env.timeout(1.0)

    env.process(proc(env))
    env.run(until=4.5)
    assert env.now == 4.5


def test_run_until_time_in_past_rejected():
    env = Environment(initial_time=10.0)
    with pytest.raises(ValueError):
        env.run(until=5.0)


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2.0)
        return "done"

    p = env.process(proc(env))
    assert env.run(until=p) == "done"
    assert env.now == 2.0


def test_run_without_events_returns_immediately():
    env = Environment()
    env.run()
    assert env.now == 0.0


def test_events_at_same_time_fire_in_schedule_order():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    env.process(proc(env, "a"))
    env.process(proc(env, "b"))
    env.process(proc(env, "c"))
    env.run()
    assert order == ["a", "b", "c"]


def test_event_succeed_delivers_value():
    env = Environment()
    got = []

    def waiter(env, event):
        value = yield event
        got.append(value)

    def trigger(env, event):
        yield env.timeout(1.0)
        event.succeed(42)

    event = env.event()
    env.process(waiter(env, event))
    env.process(trigger(env, event))
    env.run()
    assert got == [42]


def test_event_cannot_trigger_twice():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(RuntimeError):
        event.succeed(2)


def test_event_fail_raises_in_waiter():
    env = Environment()
    seen = []

    def waiter(env, event):
        try:
            yield event
        except ValueError as error:
            seen.append(str(error))

    event = env.event()
    env.process(waiter(env, event))
    event.fail(ValueError("boom"))
    env.run()
    assert seen == ["boom"]


def test_unhandled_failed_event_surfaces_from_run():
    env = Environment()
    event = env.event()
    event.fail(RuntimeError("unhandled"))
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_event_value_before_trigger_is_error():
    env = Environment()
    event = env.event()
    with pytest.raises(RuntimeError):
        _ = event.value
    with pytest.raises(RuntimeError):
        _ = event.ok


def test_fail_requires_exception_instance():
    env = Environment()
    event = env.event()
    with pytest.raises(TypeError):
        event.fail("not an exception")  # type: ignore[arg-type]


def test_process_can_wait_on_already_processed_event():
    env = Environment()
    results = []

    def late_waiter(env, event):
        yield env.timeout(5.0)
        value = yield event
        results.append((env.now, value))

    event = env.event()
    event.succeed("early")
    env.process(late_waiter(env, event))
    env.run()
    assert results == [(5.0, "early")]


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7.0)
    assert env.peek() == 7.0


def test_peek_empty_queue_is_infinite():
    env = Environment()
    assert env.peek() == float("inf")


def test_run_until_event_that_never_fires_raises():
    env = Environment()
    event = env.event()
    with pytest.raises(RuntimeError, match="ran out of events"):
        env.run(until=event)


def test_all_of_waits_for_every_event():
    env = Environment()
    results = []

    def proc(env):
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(3.0, value="b")
        values = yield env.all_of([t1, t2])
        results.append((env.now, sorted(values.values())))

    env.process(proc(env))
    env.run()
    assert results == [(3.0, ["a", "b"])]


def test_any_of_fires_on_first_event():
    env = Environment()
    results = []

    def proc(env):
        t1 = env.timeout(1.0, value="fast")
        t2 = env.timeout(3.0, value="slow")
        values = yield env.any_of([t1, t2])
        results.append((env.now, list(values.values())))

    env.process(proc(env))
    env.run()
    assert results == [(1.0, ["fast"])]


def test_all_of_empty_list_triggers_immediately():
    env = Environment()
    results = []

    def proc(env):
        yield env.all_of([])
        results.append(env.now)

    env.process(proc(env))
    env.run()
    assert results == [0.0]


def test_nested_processes_wait_for_child_return():
    env = Environment()
    results = []

    def child(env):
        yield env.timeout(2.0)
        return "child-result"

    def parent(env):
        value = yield env.process(child(env))
        results.append((env.now, value))

    env.process(parent(env))
    env.run()
    assert results == [(2.0, "child-result")]


def test_yielding_non_event_raises_type_error():
    env = Environment()

    def bad(env):
        yield 42  # not an event

    env.process(bad(env))
    with pytest.raises(TypeError):
        env.run()


def test_exception_in_process_propagates_if_unwaited():
    env = Environment()

    def bad(env):
        yield env.timeout(1.0)
        raise KeyError("oops")

    env.process(bad(env))
    with pytest.raises(KeyError):
        env.run()


def test_exception_in_child_delivered_to_waiting_parent():
    env = Environment()
    seen = []

    def child(env):
        yield env.timeout(1.0)
        raise ValueError("child failed")

    def parent(env):
        try:
            yield env.process(child(env))
        except ValueError as error:
            seen.append(str(error))

    env.process(parent(env))
    env.run()
    assert seen == ["child failed"]


def test_run_until_past_queue_drain_fast_forwards_clock():
    """When the queue drains before ``until``, the clock fast-forwards
    to ``until`` even though no event advanced it (intended behavior:
    simulated time passes while nothing is scheduled)."""
    env = Environment()

    def proc(env):
        yield env.timeout(3.0)

    env.process(proc(env))
    env.run(until=10.0)
    assert env.now == 10.0


def test_reentrant_run_after_drain_accepts_between_times():
    """Regression: after a drain fast-forwarded the clock, a second
    ``run`` whose ``until`` lies between the last processed event and
    the fast-forwarded clock is a no-op, not a ValueError."""
    env = Environment()

    def proc(env):
        yield env.timeout(3.0)

    env.process(proc(env))
    env.run(until=10.0)
    assert env.now == 10.0
    env.run(until=5.0)  # between last event (3.0) and now (10.0): no-op
    assert env.now == 10.0  # the clock never moves backwards


def test_reentrant_run_before_last_event_still_rejected():
    """``until`` earlier than actually-processed work stays an error."""
    env = Environment()

    def proc(env):
        yield env.timeout(3.0)

    env.process(proc(env))
    env.run(until=10.0)
    with pytest.raises(ValueError):
        env.run(until=2.0)  # before the event processed at t=3.0


def test_reentrant_run_with_pending_event_before_until_rejected():
    """If an event is pending at or before the stale ``until``, the
    no-op shortcut must not swallow it."""
    env = Environment(initial_time=10.0)
    env._event_now = 0.0   # as if fast-forwarded from 0 with no events
    env.timeout(0.0)       # pending event at t=10.0... but now=10.0
    # until=10.0 equals now: runs normally, processing the event.
    env.run(until=10.0)
    assert env.now == 10.0


def test_run_until_now_processes_events_at_now():
    env = Environment()
    fired = []

    def proc(env):
        yield env.timeout(0.0)
        fired.append(env.now)

    env.process(proc(env))
    env.run(until=env.now)
    assert fired == [0.0]
