"""Tests for named random streams."""

from repro.sim import RandomStreams


def test_same_seed_same_stream():
    a = RandomStreams(42).stream("pages")
    b = RandomStreams(42).stream("pages")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_independent():
    streams = RandomStreams(42)
    pages = streams.stream("pages")
    sites = streams.stream("sites")
    seq_a = [pages.random() for _ in range(5)]
    # Fresh family: draw from "sites" first, then "pages" -- the pages
    # sequence must be unaffected.
    streams2 = RandomStreams(42)
    _ = [streams2.stream("sites").random() for _ in range(100)]
    seq_b = [streams2.stream("pages").random() for _ in range(5)]
    assert seq_a == seq_b
    assert seq_a != [sites.random() for _ in range(5)]


def test_different_seeds_differ():
    a = RandomStreams(1).stream("x")
    b = RandomStreams(2).stream("x")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_stream_is_cached():
    streams = RandomStreams(7)
    assert streams.stream("x") is streams.stream("x")


def test_spawn_produces_independent_family():
    base = RandomStreams(42)
    child1 = base.spawn(1)
    child2 = base.spawn(2)
    s1 = [child1.stream("x").random() for _ in range(5)]
    s2 = [child2.stream("x").random() for _ in range(5)]
    s0 = [base.stream("x").random() for _ in range(5)]
    assert s1 != s2
    assert s1 != s0


def test_spawn_reproducible():
    a = RandomStreams(42).spawn(3).stream("y")
    b = RandomStreams(42).spawn(3).stream("y")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]
