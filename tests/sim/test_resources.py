"""Tests for FCFS, priority, and infinite resources, and the Store."""

import pytest

from repro.sim import (
    Environment,
    InfiniteServer,
    Interrupt,
    PriorityResource,
    Resource,
    Store,
)
from repro.sim.resources import PRIORITY_DATA, PRIORITY_MESSAGE


def test_resource_capacity_must_be_positive():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_single_server_serializes_requests():
    env = Environment()
    disk = Resource(env, capacity=1, name="disk")
    finish = []

    def job(env, tag):
        yield from disk.serve(10.0)
        finish.append((tag, env.now))

    env.process(job(env, "a"))
    env.process(job(env, "b"))
    env.process(job(env, "c"))
    env.run()
    assert finish == [("a", 10.0), ("b", 20.0), ("c", 30.0)]


def test_multi_server_runs_in_parallel():
    env = Environment()
    cpu = Resource(env, capacity=2)
    finish = []

    def job(env, tag):
        yield from cpu.serve(10.0)
        finish.append((tag, env.now))

    for tag in "abc":
        env.process(job(env, tag))
    env.run()
    assert finish == [("a", 10.0), ("b", 10.0), ("c", 20.0)]


def test_fcfs_order_preserved():
    env = Environment()
    disk = Resource(env, capacity=1)
    order = []

    def job(env, tag, arrival):
        yield env.timeout(arrival)
        yield from disk.serve(5.0)
        order.append(tag)

    env.process(job(env, "late", 2.0))
    env.process(job(env, "early", 1.0))
    env.process(job(env, "first", 0.0))
    env.run()
    assert order == ["first", "early", "late"]


def test_priority_resource_serves_messages_first():
    env = Environment()
    cpu = PriorityResource(env, capacity=1)
    order = []

    def data_job(env, tag, arrival):
        yield env.timeout(arrival)
        yield from cpu.serve(10.0, priority=PRIORITY_DATA)
        order.append(tag)

    def message_job(env, tag, arrival):
        yield env.timeout(arrival)
        yield from cpu.serve(1.0, priority=PRIORITY_MESSAGE)
        order.append(tag)

    # d1 occupies the CPU at t=0; d2 and m1 queue while d1 runs.
    env.process(data_job(env, "d1", 0.0))
    env.process(data_job(env, "d2", 1.0))
    env.process(message_job(env, "m1", 2.0))
    env.run()
    assert order == ["d1", "m1", "d2"]


def test_priority_resource_is_non_preemptive():
    env = Environment()
    cpu = PriorityResource(env, capacity=1)
    log = []

    def data_job(env):
        yield from cpu.serve(10.0, priority=PRIORITY_DATA)
        log.append(("data-done", env.now))

    def message_job(env):
        yield env.timeout(1.0)
        yield from cpu.serve(1.0, priority=PRIORITY_MESSAGE)
        log.append(("msg-done", env.now))

    env.process(data_job(env))
    env.process(message_job(env))
    env.run()
    # Message arrives at t=1 but data job runs to completion at t=10.
    assert log == [("data-done", 10.0), ("msg-done", 11.0)]


def test_priority_fcfs_within_class():
    env = Environment()
    cpu = PriorityResource(env, capacity=1)
    order = []

    def msg(env, tag, arrival):
        yield env.timeout(arrival)
        yield from cpu.serve(1.0, priority=PRIORITY_MESSAGE)
        order.append(tag)

    def blocker(env):
        yield from cpu.serve(5.0, priority=PRIORITY_DATA)

    env.process(blocker(env))
    env.process(msg(env, "m1", 1.0))
    env.process(msg(env, "m2", 2.0))
    env.process(msg(env, "m3", 3.0))
    env.run()
    assert order == ["m1", "m2", "m3"]


def test_release_of_waiting_request_withdraws_it():
    env = Environment()
    disk = Resource(env, capacity=1)
    log = []

    def holder(env):
        yield from disk.serve(10.0)
        log.append(("holder-done", env.now))

    def canceller(env):
        yield env.timeout(1.0)
        req = disk.request()
        yield env.timeout(1.0)
        disk.release(req)  # withdraw while still queued
        log.append(("cancelled", env.now))

    def other(env):
        yield env.timeout(2.0)
        yield from disk.serve(5.0)
        log.append(("other-done", env.now))

    env.process(holder(env))
    env.process(canceller(env))
    env.process(other(env))
    env.run()
    # "other" must get the server at t=10 (canceller stepped aside).
    assert ("other-done", 15.0) in log


def test_interrupt_while_queued_releases_claim():
    env = Environment()
    disk = Resource(env, capacity=1)
    log = []

    def holder(env):
        yield from disk.serve(10.0)

    def victim(env):
        try:
            yield from disk.serve(5.0)
        except Interrupt:
            log.append("victim-interrupted")

    def other(env):
        yield env.timeout(2.0)
        yield from disk.serve(5.0)
        log.append(("other-done", env.now))

    env.process(holder(env))
    v = env.process(victim(env))

    def attacker(env):
        yield env.timeout(3.0)
        v.interrupt()

    env.process(attacker(env))
    env.process(other(env))
    env.run()
    assert "victim-interrupted" in log
    assert ("other-done", 15.0) in log


def test_interrupt_while_in_service_frees_server():
    env = Environment()
    disk = Resource(env, capacity=1)
    log = []

    def victim(env):
        try:
            yield from disk.serve(100.0)
        except Interrupt:
            log.append(("victim-out", env.now))

    def other(env):
        yield env.timeout(1.0)
        yield from disk.serve(5.0)
        log.append(("other-done", env.now))

    v = env.process(victim(env))

    def attacker(env):
        yield env.timeout(2.0)
        v.interrupt()

    env.process(attacker(env))
    env.process(other(env))
    env.run()
    assert log == [("victim-out", 2.0), ("other-done", 7.0)]


def test_utilization_accounting():
    env = Environment()
    disk = Resource(env, capacity=1)

    def job(env):
        yield from disk.serve(5.0)

    env.process(job(env))
    env.run(until=10.0)
    assert disk.utilization(10.0) == pytest.approx(0.5)


def test_infinite_server_never_queues():
    env = Environment()
    server = InfiniteServer(env)
    finish = []

    def job(env, tag):
        yield from server.serve(10.0)
        finish.append((tag, env.now))

    for tag in "abcde":
        env.process(job(env, tag))
    env.run()
    assert all(t == 10.0 for _, t in finish)
    assert len(finish) == 5
    assert server.queue_length == 0
    assert server.utilization(10.0) == 0.0


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    store.put("x")
    store.put("y")
    store.put("z")
    env.process(consumer(env))
    env.run()
    assert got == ["x", "y", "z"]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env):
        item = yield store.get()
        got.append((item, env.now))

    def producer(env):
        yield env.timeout(4.0)
        store.put("late-item")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [("late-item", 4.0)]


def test_store_len_counts_buffered_items():
    env = Environment()
    store = Store(env)
    assert len(store) == 0
    store.put(1)
    store.put(2)
    assert len(store) == 2


def test_store_multiple_getters_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env, tag):
        item = yield store.get()
        got.append((tag, item))

    env.process(consumer(env, "first"))
    env.process(consumer(env, "second"))

    def producer(env):
        yield env.timeout(1.0)
        store.put("a")
        store.put("b")

    env.process(producer(env))
    env.run()
    assert got == [("first", "a"), ("second", "b")]
