"""Tests for process lifecycle and interrupts."""

import pytest

from repro.sim import Environment, Interrupt


def test_process_is_alive_until_finished():
    env = Environment()

    def proc(env):
        yield env.timeout(5.0)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_process_name_defaults_to_generator_name():
    env = Environment()

    def my_proc(env):
        yield env.timeout(1.0)

    p = env.process(my_proc(env))
    assert p.name == "my_proc"
    env.run()


def test_process_name_can_be_overridden():
    env = Environment()

    def my_proc(env):
        yield env.timeout(1.0)

    p = env.process(my_proc(env), name="cohort-3")
    assert p.name == "cohort-3"
    env.run()


def test_non_generator_rejected():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)  # type: ignore[arg-type]


def test_interrupt_delivered_at_yield_point():
    env = Environment()
    log = []

    def victim(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as interrupt:
            log.append((env.now, interrupt.cause))

    def attacker(env, victim_proc):
        yield env.timeout(3.0)
        victim_proc.interrupt("deadlock")

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert log == [(3.0, "deadlock")]


def test_interrupt_cause_accessible():
    interrupt = Interrupt("reason")
    assert interrupt.cause == "reason"
    assert "reason" in str(interrupt)


def test_interrupt_without_cause():
    interrupt = Interrupt()
    assert interrupt.cause is None


def test_interrupted_process_detached_from_target():
    """After an interrupt, the original target firing must not resume
    the process a second time."""
    env = Environment()
    resumes = []

    def victim(env, event):
        try:
            yield event
            resumes.append("normal")
        except Interrupt:
            resumes.append("interrupted")
            yield env.timeout(50.0)
            resumes.append("post-sleep")

    event = env.event()
    v = env.process(victim(env, event))

    def driver(env):
        yield env.timeout(1.0)
        v.interrupt()
        yield env.timeout(1.0)
        event.succeed("late")  # must not wake the victim again

    env.process(driver(env))
    env.run()
    assert resumes == ["interrupted", "post-sleep"]


def test_interrupting_finished_process_is_error():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_interrupt_then_finish_before_delivery_is_noop():
    """A process that finishes at the same instant the interrupt is
    scheduled should not blow up."""
    env = Environment()
    log = []

    def victim(env):
        yield env.timeout(1.0)
        log.append("finished")

    def attacker(env, victim_proc):
        yield env.timeout(1.0)
        # Victim's resume is already queued for t=1.0 ahead of this
        # interrupt; by delivery time the victim may be done.
        if victim_proc.is_alive:
            victim_proc.interrupt("late")

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert log == ["finished"]


def test_uncaught_interrupt_propagates():
    env = Environment()

    def victim(env):
        yield env.timeout(100.0)

    def attacker(env, victim_proc):
        yield env.timeout(1.0)
        victim_proc.interrupt("kill")

    v = env.process(victim(env))
    env.process(attacker(env, v))
    with pytest.raises(Interrupt):
        env.run()


def test_process_return_value_via_stop_iteration():
    env = Environment()

    def worker(env):
        yield env.timeout(1.0)
        return 99

    p = env.process(worker(env))
    env.run()
    assert p.value == 99


def test_multiple_waiters_on_one_process():
    env = Environment()
    results = []

    def worker(env):
        yield env.timeout(2.0)
        return "w"

    def waiter(env, target, tag):
        value = yield target
        results.append((tag, value, env.now))

    w = env.process(worker(env))
    env.process(waiter(env, w, "a"))
    env.process(waiter(env, w, "b"))
    env.run()
    assert sorted(results) == [("a", "w", 2.0), ("b", "w", 2.0)]


def test_interrupt_during_nested_wait_reaches_outer_generator():
    env = Environment()
    log = []

    def inner(env):
        yield env.timeout(100.0)

    def outer(env):
        try:
            yield env.process(inner(env))
        except Interrupt:
            log.append("outer-interrupted")

    o = env.process(outer(env))

    def attacker(env):
        yield env.timeout(1.0)
        o.interrupt()

    env.process(attacker(env))
    # The inner process keeps running (it was not interrupted); defuse it
    # by letting the run finish at its natural horizon.
    env.run()
    assert log == ["outer-interrupted"]
