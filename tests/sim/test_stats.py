"""Tests for statistics accumulators and confidence intervals."""

import math
import random

import pytest

from repro.sim import (
    BatchMeans,
    TimeWeightedAverage,
    WelfordAccumulator,
    confidence_interval,
)
from repro.sim.stats import (
    StoppingRule,
    normal_quantile,
    student_t_quantile,
)


class TestWelford:
    def test_empty(self):
        acc = WelfordAccumulator()
        assert acc.count == 0
        assert acc.mean == 0.0
        assert acc.variance == 0.0

    def test_single_value(self):
        acc = WelfordAccumulator()
        acc.add(5.0)
        assert acc.mean == 5.0
        assert acc.variance == 0.0
        assert acc.minimum == 5.0
        assert acc.maximum == 5.0

    def test_mean_and_variance_match_formula(self):
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        acc = WelfordAccumulator()
        for v in values:
            acc.add(v)
        n = len(values)
        mean = sum(values) / n
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
        assert acc.mean == pytest.approx(mean)
        assert acc.variance == pytest.approx(var)
        assert acc.stddev == pytest.approx(math.sqrt(var))
        assert acc.total == pytest.approx(sum(values))

    def test_min_max(self):
        acc = WelfordAccumulator()
        for v in [3.0, -1.0, 7.0, 2.0]:
            acc.add(v)
        assert acc.minimum == -1.0
        assert acc.maximum == 7.0

    def test_merge_equals_sequential(self):
        rng = random.Random(42)
        values = [rng.gauss(10, 3) for _ in range(200)]
        combined = WelfordAccumulator()
        for v in values:
            combined.add(v)
        left = WelfordAccumulator()
        right = WelfordAccumulator()
        for v in values[:77]:
            left.add(v)
        for v in values[77:]:
            right.add(v)
        left.merge(right)
        assert left.count == combined.count
        assert left.mean == pytest.approx(combined.mean)
        assert left.variance == pytest.approx(combined.variance)
        assert left.minimum == combined.minimum
        assert left.maximum == combined.maximum

    def test_merge_into_empty(self):
        src = WelfordAccumulator()
        src.add(1.0)
        src.add(3.0)
        dst = WelfordAccumulator()
        dst.merge(src)
        assert dst.count == 2
        assert dst.mean == 2.0

    def test_merge_empty_is_noop(self):
        dst = WelfordAccumulator()
        dst.add(5.0)
        dst.merge(WelfordAccumulator())
        assert dst.count == 1
        assert dst.mean == 5.0

    @staticmethod
    def _filled(values):
        acc = WelfordAccumulator()
        for v in values:
            acc.add(v)
        return acc

    def test_merge_is_associative_within_float_tolerance(self):
        """(A + B) + C == A + (B + C): chunk reassembly must not depend
        on how the runner grouped the work."""
        rng = random.Random(20250808)
        chunks = [[rng.gauss(50, 12) for _ in range(n)]
                  for n in (17, 3, 41)]
        a, b, c = (self._filled(chunk) for chunk in chunks)
        left = self._filled(chunks[0])
        left.merge(self._filled(chunks[1]))
        left.merge(c)
        bc = self._filled(chunks[1])
        bc.merge(self._filled(chunks[2]))
        right = self._filled(chunks[0])
        right.merge(bc)
        assert left.count == right.count
        assert left.mean == pytest.approx(right.mean, rel=1e-12)
        assert left.variance == pytest.approx(right.variance, rel=1e-9)
        assert left.total == pytest.approx(right.total, rel=1e-12)
        assert left.minimum == right.minimum
        assert left.maximum == right.maximum

    def test_merge_is_order_independent_within_float_tolerance(self):
        """A + B == B + A (commutativity, the other half of safe
        out-of-order chunk reassembly)."""
        rng = random.Random(99)
        first = [rng.gauss(0, 1) for _ in range(25)]
        second = [rng.gauss(100, 5) for _ in range(8)]
        ab = self._filled(first)
        ab.merge(self._filled(second))
        ba = self._filled(second)
        ba.merge(self._filled(first))
        assert ab.count == ba.count
        assert ab.mean == pytest.approx(ba.mean, rel=1e-12)
        assert ab.variance == pytest.approx(ba.variance, rel=1e-9)
        assert ab.minimum == ba.minimum
        assert ab.maximum == ba.maximum

    def test_merge_matches_single_pass_over_many_random_splits(self):
        rng = random.Random(5)
        values = [rng.expovariate(0.1) for _ in range(300)]
        whole = self._filled(values)
        for split_seed in range(5):
            split_rng = random.Random(split_seed)
            cuts = sorted(split_rng.sample(range(1, 300), 3))
            merged = WelfordAccumulator()
            start = 0
            for cut in cuts + [300]:
                merged.merge(self._filled(values[start:cut]))
                start = cut
            assert merged.count == whole.count
            assert merged.mean == pytest.approx(whole.mean, rel=1e-12)
            assert merged.variance == pytest.approx(whole.variance,
                                                    rel=1e-9)


class TestTimeWeightedAverage:
    def test_constant_value(self):
        twa = TimeWeightedAverage(initial_value=3.0)
        assert twa.average(10.0) == pytest.approx(3.0)

    def test_step_function(self):
        twa = TimeWeightedAverage()
        twa.update(2.0, now=0.0)
        twa.update(4.0, now=5.0)
        # value 2 for 5 units, value 4 for 5 units -> mean 3
        assert twa.average(10.0) == pytest.approx(3.0)

    def test_increment_decrement(self):
        twa = TimeWeightedAverage()
        twa.increment(now=0.0)       # 1 from t=0
        twa.increment(now=4.0)       # 2 from t=4
        twa.decrement(now=8.0)       # 1 from t=8
        # integral = 1*4 + 2*4 + 1*2 = 14 over 10
        assert twa.average(10.0) == pytest.approx(1.4)
        assert twa.value == 1.0

    def test_reset_discards_history(self):
        twa = TimeWeightedAverage()
        twa.update(100.0, now=0.0)
        twa.reset(now=10.0)
        twa.update(2.0, now=10.0)
        assert twa.average(20.0) == pytest.approx(2.0)

    def test_time_backwards_rejected(self):
        twa = TimeWeightedAverage()
        twa.update(1.0, now=5.0)
        with pytest.raises(ValueError):
            twa.update(2.0, now=4.0)

    def test_zero_elapsed_returns_current_value(self):
        twa = TimeWeightedAverage(initial_value=7.0)
        assert twa.average(0.0) == 7.0


class TestBatchMeans:
    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            BatchMeans(0)

    def test_batch_means_formed(self):
        bm = BatchMeans(batch_size=2)
        for v in [1.0, 3.0, 5.0, 7.0, 9.0]:
            bm.add(v)
        assert bm.batch_means == [2.0, 6.0]
        assert bm.count == 5
        assert bm.mean == pytest.approx(5.0)

    def test_interval_narrows_with_data(self):
        rng = random.Random(7)
        bm = BatchMeans(batch_size=50)
        for _ in range(5000):
            bm.add(rng.gauss(100.0, 10.0))
        mean, half = bm.interval(0.90)
        assert mean == pytest.approx(100.0, abs=1.0)
        assert half < 2.0
        assert bm.relative_half_width(0.90) < 0.02

    def test_interval_with_too_few_batches_is_infinite(self):
        bm = BatchMeans(batch_size=10)
        bm.add(1.0)
        mean, half = bm.interval()
        assert half == math.inf

    @pytest.mark.parametrize("confidence", [0.90, 0.95, 0.99])
    def test_incremental_interval_matches_batch_means_recompute(
            self, confidence):
        """The O(1) incremental interval must equal a from-scratch
        Student-t interval over ``batch_means`` at every step."""
        rng = random.Random(13)
        bm = BatchMeans(batch_size=7)
        for i in range(200):
            bm.add(rng.gauss(40.0, 6.0))
            inc_mean, inc_half = bm.interval(confidence)
            ref_mean, ref_half = confidence_interval(
                bm.batch_means, confidence)
            if len(bm.batch_means) < 2:
                assert inc_half == math.inf
            else:
                assert inc_mean == pytest.approx(ref_mean, rel=1e-12)
                assert inc_half == pytest.approx(ref_half, rel=1e-9)

    def test_partial_batch_not_counted_in_interval(self):
        bm = BatchMeans(batch_size=4)
        for v in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]:
            bm.add(v)
        base_mean, base_half = bm.interval(0.90)
        bm.add(1000.0)  # starts a new, incomplete batch
        assert bm.interval(0.90) == (base_mean, base_half)
        assert bm.count == 9  # ...but the raw count still sees it


class TestStoppingRule:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="target"):
            StoppingRule(0.0)
        with pytest.raises(ValueError, match="target"):
            StoppingRule(-0.1)
        with pytest.raises(ValueError, match="confidence"):
            StoppingRule(0.1, confidence=1.0)
        with pytest.raises(ValueError, match="confidence"):
            StoppingRule(0.1, confidence=0.0)
        with pytest.raises(ValueError, match="min_replications"):
            StoppingRule(0.1, min_replications=1)
        with pytest.raises(ValueError, match="max_replications"):
            StoppingRule(0.1, min_replications=4, max_replications=3)

    def test_needs_minimum_before_satisfied(self):
        rule = StoppingRule(0.5, min_replications=3)
        rule.observe(10.0)
        rule.observe(10.0)
        assert not rule.satisfied  # tight but below the floor
        assert rule.next_wave() == 1  # fill to min_replications
        rule.observe(10.0)
        assert rule.satisfied
        assert rule.next_wave() == 0

    def test_zero_variance_satisfied_even_at_mean_zero(self):
        """A deterministic metric pinned at 0.0 (e.g. an abort count)
        is exact -- half-width 0 beats any target."""
        rule = StoppingRule(0.1)
        rule.observe(0.0)
        rule.observe(0.0)
        assert rule.relative_half_width == 0.0
        assert rule.satisfied

    def test_nonzero_half_width_at_mean_zero_is_infinite(self):
        rule = StoppingRule(0.1)
        rule.observe(-1.0)
        rule.observe(1.0)
        assert rule.relative_half_width == math.inf
        assert not rule.satisfied

    def test_wave_growth_is_geometric_and_capped(self):
        rule = StoppingRule(1e-9, min_replications=2, max_replications=16)
        assert rule.next_wave() == 2  # fill to the floor
        rule.observe(1.0)
        rule.observe(2.0)
        assert rule.next_wave() == 1  # max(1, 2 // 2)
        rule.observe(3.0)
        assert rule.next_wave() == 1  # max(1, 3 // 2) = 1
        for v in (4.0, 5.0, 6.0, 7.0, 8.0):
            rule.observe(v)
        assert rule.count == 8
        assert rule.next_wave() == 4  # 8 // 2
        for v in range(4):
            rule.observe(float(v))
        assert rule.next_wave() == 4  # 12 // 2 = 6, capped at 16 - 12
        for v in range(4):
            rule.observe(float(v))
        assert rule.exhausted
        assert rule.next_wave() == 0

    def test_interval_matches_confidence_interval(self):
        rng = random.Random(3)
        values = [rng.gauss(20, 4) for _ in range(9)]
        rule = StoppingRule(0.1, confidence=0.95)
        for v in values:
            rule.observe(v)
        mean, half = rule.interval()
        ref_mean, ref_half = confidence_interval(values, 0.95)
        assert mean == pytest.approx(ref_mean, rel=1e-12)
        assert half == pytest.approx(ref_half, rel=1e-9)

    def test_empty_and_single_sample_intervals(self):
        rule = StoppingRule(0.1)
        assert rule.interval() == (0.0, math.inf)
        rule.observe(5.0)
        assert rule.interval() == (5.0, math.inf)
        assert not rule.satisfied


class TestConfidenceInterval:
    def test_empty_sample(self):
        mean, half = confidence_interval([])
        assert mean == 0.0
        assert half == math.inf

    def test_single_sample(self):
        mean, half = confidence_interval([4.0])
        assert mean == 4.0
        assert half == math.inf

    def test_known_interval(self):
        # Sample of 4 values with known stats.
        samples = [10.0, 12.0, 8.0, 10.0]
        mean, half = confidence_interval(samples, confidence=0.90)
        assert mean == pytest.approx(10.0)
        # s = sqrt(8/3); t_{0.95,3} = 2.3534
        expected_half = 2.3534 * math.sqrt(8.0 / 3.0) / 2.0
        assert half == pytest.approx(expected_half, rel=0.01)


class TestQuantiles:
    def test_normal_quantile_symmetry(self):
        assert normal_quantile(0.5) == pytest.approx(0.0, abs=1e-9)
        assert normal_quantile(0.975) == pytest.approx(1.959964, abs=1e-4)
        assert normal_quantile(0.95) == pytest.approx(1.644854, abs=1e-4)
        assert normal_quantile(0.025) == pytest.approx(-1.959964, abs=1e-4)

    def test_normal_quantile_tails(self):
        assert normal_quantile(1e-6) == pytest.approx(-4.7534, abs=1e-2)
        assert normal_quantile(1 - 1e-6) == pytest.approx(4.7534, abs=1e-2)

    def test_normal_quantile_domain(self):
        with pytest.raises(ValueError):
            normal_quantile(0.0)
        with pytest.raises(ValueError):
            normal_quantile(1.0)

    @pytest.mark.parametrize("df,expected", [
        (1, 6.3138),
        (2, 2.9200),
        (5, 2.0150),
        (10, 1.8125),
        (30, 1.6973),
        (100, 1.6602),
    ])
    def test_t_quantile_95_percent(self, df, expected):
        assert student_t_quantile(0.95, df) == pytest.approx(expected, rel=5e-3)

    def test_t_quantile_median_is_zero(self):
        assert student_t_quantile(0.5, 10) == pytest.approx(0.0, abs=1e-9)

    def test_t_quantile_domain(self):
        with pytest.raises(ValueError):
            student_t_quantile(1.5, 10)
        with pytest.raises(ValueError):
            student_t_quantile(0.95, 0)
