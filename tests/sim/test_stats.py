"""Tests for statistics accumulators and confidence intervals."""

import math
import random

import pytest

from repro.sim import (
    BatchMeans,
    TimeWeightedAverage,
    WelfordAccumulator,
    confidence_interval,
)
from repro.sim.stats import normal_quantile, student_t_quantile


class TestWelford:
    def test_empty(self):
        acc = WelfordAccumulator()
        assert acc.count == 0
        assert acc.mean == 0.0
        assert acc.variance == 0.0

    def test_single_value(self):
        acc = WelfordAccumulator()
        acc.add(5.0)
        assert acc.mean == 5.0
        assert acc.variance == 0.0
        assert acc.minimum == 5.0
        assert acc.maximum == 5.0

    def test_mean_and_variance_match_formula(self):
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        acc = WelfordAccumulator()
        for v in values:
            acc.add(v)
        n = len(values)
        mean = sum(values) / n
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
        assert acc.mean == pytest.approx(mean)
        assert acc.variance == pytest.approx(var)
        assert acc.stddev == pytest.approx(math.sqrt(var))
        assert acc.total == pytest.approx(sum(values))

    def test_min_max(self):
        acc = WelfordAccumulator()
        for v in [3.0, -1.0, 7.0, 2.0]:
            acc.add(v)
        assert acc.minimum == -1.0
        assert acc.maximum == 7.0

    def test_merge_equals_sequential(self):
        rng = random.Random(42)
        values = [rng.gauss(10, 3) for _ in range(200)]
        combined = WelfordAccumulator()
        for v in values:
            combined.add(v)
        left = WelfordAccumulator()
        right = WelfordAccumulator()
        for v in values[:77]:
            left.add(v)
        for v in values[77:]:
            right.add(v)
        left.merge(right)
        assert left.count == combined.count
        assert left.mean == pytest.approx(combined.mean)
        assert left.variance == pytest.approx(combined.variance)
        assert left.minimum == combined.minimum
        assert left.maximum == combined.maximum

    def test_merge_into_empty(self):
        src = WelfordAccumulator()
        src.add(1.0)
        src.add(3.0)
        dst = WelfordAccumulator()
        dst.merge(src)
        assert dst.count == 2
        assert dst.mean == 2.0

    def test_merge_empty_is_noop(self):
        dst = WelfordAccumulator()
        dst.add(5.0)
        dst.merge(WelfordAccumulator())
        assert dst.count == 1
        assert dst.mean == 5.0


class TestTimeWeightedAverage:
    def test_constant_value(self):
        twa = TimeWeightedAverage(initial_value=3.0)
        assert twa.average(10.0) == pytest.approx(3.0)

    def test_step_function(self):
        twa = TimeWeightedAverage()
        twa.update(2.0, now=0.0)
        twa.update(4.0, now=5.0)
        # value 2 for 5 units, value 4 for 5 units -> mean 3
        assert twa.average(10.0) == pytest.approx(3.0)

    def test_increment_decrement(self):
        twa = TimeWeightedAverage()
        twa.increment(now=0.0)       # 1 from t=0
        twa.increment(now=4.0)       # 2 from t=4
        twa.decrement(now=8.0)       # 1 from t=8
        # integral = 1*4 + 2*4 + 1*2 = 14 over 10
        assert twa.average(10.0) == pytest.approx(1.4)
        assert twa.value == 1.0

    def test_reset_discards_history(self):
        twa = TimeWeightedAverage()
        twa.update(100.0, now=0.0)
        twa.reset(now=10.0)
        twa.update(2.0, now=10.0)
        assert twa.average(20.0) == pytest.approx(2.0)

    def test_time_backwards_rejected(self):
        twa = TimeWeightedAverage()
        twa.update(1.0, now=5.0)
        with pytest.raises(ValueError):
            twa.update(2.0, now=4.0)

    def test_zero_elapsed_returns_current_value(self):
        twa = TimeWeightedAverage(initial_value=7.0)
        assert twa.average(0.0) == 7.0


class TestBatchMeans:
    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            BatchMeans(0)

    def test_batch_means_formed(self):
        bm = BatchMeans(batch_size=2)
        for v in [1.0, 3.0, 5.0, 7.0, 9.0]:
            bm.add(v)
        assert bm.batch_means == [2.0, 6.0]
        assert bm.count == 5
        assert bm.mean == pytest.approx(5.0)

    def test_interval_narrows_with_data(self):
        rng = random.Random(7)
        bm = BatchMeans(batch_size=50)
        for _ in range(5000):
            bm.add(rng.gauss(100.0, 10.0))
        mean, half = bm.interval(0.90)
        assert mean == pytest.approx(100.0, abs=1.0)
        assert half < 2.0
        assert bm.relative_half_width(0.90) < 0.02

    def test_interval_with_too_few_batches_is_infinite(self):
        bm = BatchMeans(batch_size=10)
        bm.add(1.0)
        mean, half = bm.interval()
        assert half == math.inf


class TestConfidenceInterval:
    def test_empty_sample(self):
        mean, half = confidence_interval([])
        assert mean == 0.0
        assert half == math.inf

    def test_single_sample(self):
        mean, half = confidence_interval([4.0])
        assert mean == 4.0
        assert half == math.inf

    def test_known_interval(self):
        # Sample of 4 values with known stats.
        samples = [10.0, 12.0, 8.0, 10.0]
        mean, half = confidence_interval(samples, confidence=0.90)
        assert mean == pytest.approx(10.0)
        # s = sqrt(8/3); t_{0.95,3} = 2.3534
        expected_half = 2.3534 * math.sqrt(8.0 / 3.0) / 2.0
        assert half == pytest.approx(expected_half, rel=0.01)


class TestQuantiles:
    def test_normal_quantile_symmetry(self):
        assert normal_quantile(0.5) == pytest.approx(0.0, abs=1e-9)
        assert normal_quantile(0.975) == pytest.approx(1.959964, abs=1e-4)
        assert normal_quantile(0.95) == pytest.approx(1.644854, abs=1e-4)
        assert normal_quantile(0.025) == pytest.approx(-1.959964, abs=1e-4)

    def test_normal_quantile_tails(self):
        assert normal_quantile(1e-6) == pytest.approx(-4.7534, abs=1e-2)
        assert normal_quantile(1 - 1e-6) == pytest.approx(4.7534, abs=1e-2)

    def test_normal_quantile_domain(self):
        with pytest.raises(ValueError):
            normal_quantile(0.0)
        with pytest.raises(ValueError):
            normal_quantile(1.0)

    @pytest.mark.parametrize("df,expected", [
        (1, 6.3138),
        (2, 2.9200),
        (5, 2.0150),
        (10, 1.8125),
        (30, 1.6973),
        (100, 1.6602),
    ])
    def test_t_quantile_95_percent(self, df, expected):
        assert student_t_quantile(0.95, df) == pytest.approx(expected, rel=5e-3)

    def test_t_quantile_median_is_zero(self):
        assert student_t_quantile(0.5, 10) == pytest.approx(0.0, abs=1e-9)

    def test_t_quantile_domain(self):
        with pytest.raises(ValueError):
            student_t_quantile(1.5, 10)
        with pytest.raises(ValueError):
            student_t_quantile(0.95, 0)
