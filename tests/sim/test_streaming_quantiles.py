"""Streaming quantiles: P-squared estimator and the adaptive sample."""

import math
import pickle
import random

import pytest

from repro.sim import AdaptivePercentileSample, P2Quantile, PercentileSample


class TestP2Quantile:
    def test_rejects_bad_quantile(self):
        for p in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError, match="p must be"):
                P2Quantile(p)

    def test_empty_returns_zero(self):
        assert P2Quantile(0.5).value() == 0.0

    def test_exact_up_to_five_observations(self):
        values = [30.0, 10.0, 50.0, 20.0, 40.0]
        for n in range(1, 6):
            est = P2Quantile(0.5)
            exact = PercentileSample()
            for v in values[:n]:
                est.add(v)
                exact.add(v)
            assert est.value() == exact.percentile(0.5)
            assert est.count == n

    def test_median_of_known_stream(self):
        # Deterministic arithmetic stream: the median marker must land
        # on the true median within a tight tolerance.
        est = P2Quantile(0.5)
        for i in range(1, 1001):
            est.add(float(i))
        assert est.value() == pytest.approx(500.5, rel=0.02)

    def test_min_max_track_extremes(self):
        est = P2Quantile(0.9)
        rng = random.Random(7)
        values = [rng.random() * 100 for _ in range(500)]
        for v in values:
            est.add(v)
        assert est.minimum == min(values)
        assert est.maximum == max(values)

    def test_rejects_nan(self):
        est = P2Quantile(0.5)
        est.add(1.0)
        with pytest.raises(ValueError, match="NaN"):
            est.add(float("nan"))
        # The estimate survives the rejected add.
        assert est.value() == 1.0

    def test_picklable_mid_stream(self):
        # Checkpointing serializes estimators mid-stream; the restored
        # copy must continue identically.
        a = P2Quantile(0.95)
        rng = random.Random(3)
        for _ in range(100):
            a.add(rng.expovariate(0.1))
        b = pickle.loads(pickle.dumps(a))
        for _ in range(100):
            v = rng.expovariate(0.1)
            a.add(v)
            b.add(v)
        assert a.value() == b.value()
        assert a.count == b.count


class TestPercentileSampleNaN:
    def test_rejects_nan(self):
        sample = PercentileSample()
        sample.add(1.0)
        with pytest.raises(ValueError, match="NaN"):
            sample.add(float("nan"))
        # The sample is not poisoned: later quantiles stay exact.
        sample.add(3.0)
        assert sample.count == 2
        assert sample.percentile(1.0) == 3.0


class TestAdaptivePercentileSample:
    def test_cap_validation(self):
        with pytest.raises(ValueError, match="sample_cap"):
            AdaptivePercentileSample(sample_cap=4)
        with pytest.raises(ValueError, match="quantile"):
            AdaptivePercentileSample(quantiles=())

    def test_exact_below_cap(self):
        sample = AdaptivePercentileSample(sample_cap=100)
        exact = PercentileSample()
        rng = random.Random(11)
        for _ in range(100):
            v = rng.random()
            sample.add(v)
            exact.add(v)
        assert not sample.streaming
        for p in (0.0, 0.25, 0.5, 0.95, 1.0):
            assert sample.percentile(p) == exact.percentile(p)

    def test_switches_above_cap(self):
        sample = AdaptivePercentileSample(sample_cap=50)
        for i in range(51):
            sample.add(float(i))
        assert sample.streaming
        assert sample.count == 51

    def test_streaming_tracks_exact(self):
        sample = AdaptivePercentileSample(sample_cap=100)
        exact = PercentileSample()
        rng = random.Random(13)
        for _ in range(20_000):
            v = rng.expovariate(1.0)
            sample.add(v)
            exact.add(v)
        assert sample.streaming
        for p in (0.5, 0.95, 0.99):
            assert sample.percentile(p) == pytest.approx(
                exact.percentile(p), rel=0.05)

    def test_untracked_percentile_interpolates(self):
        sample = AdaptivePercentileSample(sample_cap=10)
        for i in range(1000):
            sample.add(float(i))
        # 0.75 is untracked: must land between the p50 and p95 estimates
        # and inside the observed range.
        p75 = sample.percentile(0.75)
        assert sample.percentile(0.5) <= p75 <= sample.percentile(0.95)
        assert 0.0 <= p75 <= 999.0

    def test_extreme_percentiles_anchor_min_max(self):
        sample = AdaptivePercentileSample(sample_cap=10)
        for i in range(1000):
            sample.add(float(i))
        assert sample.percentile(0.0) == 0.0
        assert sample.percentile(1.0) == 999.0

    def test_rejects_nan_in_both_regimes(self):
        sample = AdaptivePercentileSample(sample_cap=5)
        with pytest.raises(ValueError, match="NaN"):
            sample.add(float("nan"))
        for i in range(6):
            sample.add(float(i))
        assert sample.streaming
        with pytest.raises(ValueError, match="NaN"):
            sample.add(float("nan"))

    def test_empty(self):
        sample = AdaptivePercentileSample()
        assert sample.count == 0
        assert sample.percentile(0.5) == 0.0

    def test_bad_percentile_rejected(self):
        sample = AdaptivePercentileSample(sample_cap=5)
        for i in range(10):
            sample.add(float(i))
        with pytest.raises(ValueError, match="p must be"):
            sample.percentile(1.5)

    def test_picklable_in_both_regimes(self):
        sample = AdaptivePercentileSample(sample_cap=8)
        for i in range(4):
            sample.add(float(i))
        clone = pickle.loads(pickle.dumps(sample))
        assert clone.percentile(0.5) == sample.percentile(0.5)
        for i in range(20):
            sample.add(float(i))
        clone = pickle.loads(pickle.dumps(sample))
        assert clone.streaming
        assert clone.percentile(0.95) == sample.percentile(0.95)
