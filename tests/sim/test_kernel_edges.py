"""Remaining kernel edge cases: empty schedules, request cancellation,
priority-ordering properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import Environment, PriorityResource, Resource
from repro.sim.engine import EmptySchedule
from repro.sim.resources import PRIORITY_DATA, PRIORITY_MESSAGE


def test_step_on_empty_schedule_raises():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_resource_cancel_before_grant():
    env = Environment()
    disk = Resource(env, capacity=1)
    order = []

    def holder(env):
        yield from disk.serve(10.0)
        order.append("holder")

    env.process(holder(env))
    env.run(until=env.now)  # let the holder claim the disk first
    req = disk.request()
    assert not req.triggered
    disk.cancel(req)

    def other(env):
        yield from disk.serve(1.0)
        order.append("other")

    env.process(other(env))
    env.run()
    # The cancelled request must not have consumed the grant.
    assert order == ["holder", "other"]


def test_resource_cancel_after_grant_is_noop():
    env = Environment()
    disk = Resource(env, capacity=1)
    req = disk.request()
    assert req.triggered
    disk.cancel(req)         # no effect: still held
    assert disk.in_service == 1
    disk.release(req)
    assert disk.in_service == 0


def test_priority_resource_cancel_from_heap():
    env = Environment()
    cpu = PriorityResource(env, capacity=1)
    blocker = cpu.request()
    assert blocker.triggered
    queued = cpu.request(priority=PRIORITY_MESSAGE)
    assert not queued.triggered
    cpu.cancel(queued)
    assert cpu.queue_length == 0
    cpu.release(blocker)


@given(st.lists(st.tuples(st.sampled_from([PRIORITY_MESSAGE,
                                           PRIORITY_DATA]),
                          st.floats(min_value=0.5, max_value=5.0)),
                min_size=2, max_size=15))
@settings(max_examples=40, deadline=None)
def test_priority_classes_never_starve_messages(jobs):
    """Property: among jobs queued at the same instant behind a busy
    server, every message-class job is served before every data-class
    job (non-preemptive priority, FCFS within class)."""
    env = Environment()
    cpu = PriorityResource(env, capacity=1)
    completions = []

    def blocker(env):
        yield from cpu.serve(1.0)

    def job(env, index, priority, duration):
        yield from cpu.serve(duration, priority=priority)
        completions.append((index, priority))

    env.process(blocker(env))
    for index, (priority, duration) in enumerate(jobs):
        env.process(job(env, index, priority, duration))
    env.run()
    assert len(completions) == len(jobs)
    kinds = [priority for _, priority in completions]
    first_data = next((i for i, k in enumerate(kinds)
                       if k == PRIORITY_DATA), len(kinds))
    assert all(k == PRIORITY_DATA for k in kinds[first_data:])
    # FCFS within each class.
    msg_order = [i for i, p in completions if p == PRIORITY_MESSAGE]
    data_order = [i for i, p in completions if p == PRIORITY_DATA]
    assert msg_order == sorted(msg_order)
    assert data_order == sorted(data_order)


@given(st.integers(min_value=1, max_value=5),
       st.lists(st.floats(min_value=0.5, max_value=10.0),
                min_size=1, max_size=20))
@settings(max_examples=40, deadline=None)
def test_work_conservation(capacity, durations):
    """Property: a multi-server FCFS resource finishes all jobs no
    earlier than total_work/capacity and no later than serial time."""
    env = Environment()
    resource = Resource(env, capacity=capacity)

    def job(env, duration):
        yield from resource.serve(duration)

    for duration in durations:
        env.process(job(env, duration))
    env.run()
    total = sum(durations)
    assert env.now >= total / capacity - 1e-9
    assert env.now <= total + 1e-9
