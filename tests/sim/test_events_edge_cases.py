"""Edge-case tests for events and condition events."""

import pytest

from repro.sim import AllOf, AnyOf, Environment
from repro.sim.events import Condition


def test_all_of_failure_propagates():
    env = Environment()
    seen = []

    def failer(env):
        yield env.timeout(1.0)
        raise ValueError("child exploded")

    def waiter(env):
        ok = env.timeout(5.0)
        bad = env.process(failer(env))
        try:
            yield env.all_of([ok, bad])
        except ValueError as error:
            seen.append(str(error))

    env.process(waiter(env))
    env.run()
    assert seen == ["child exploded"]


def test_any_of_with_already_processed_event():
    env = Environment()
    results = []

    def proc(env):
        early = env.event()
        early.succeed("early")
        yield env.timeout(1.0)  # let `early` be processed
        got = yield env.any_of([early, env.timeout(100.0)])
        results.append(list(got.values()))

    env.process(proc(env))
    env.run(until=5.0)
    assert results == [["early"]]


def test_condition_rejects_mixed_environments():
    env_a = Environment()
    env_b = Environment()
    with pytest.raises(ValueError, match="multiple environments"):
        AllOf(env_a, [env_a.event(), env_b.event()])


def test_all_of_values_keyed_by_event():
    env = Environment()
    results = []

    def proc(env):
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(2.0, value="b")
        values = yield env.all_of([t1, t2])
        results.append((values[t1], values[t2]))

    env.process(proc(env))
    env.run()
    assert results == [("a", "b")]


def test_condition_check_is_abstract():
    env = Environment()
    condition = Condition.__new__(Condition)
    with pytest.raises(NotImplementedError):
        condition._check()


def test_event_repr_states():
    env = Environment()
    event = env.event()
    assert "pending" in repr(event)
    event.succeed()
    assert "triggered" in repr(event)
    env.run()
    assert "processed" in repr(event)


def test_trigger_copies_state():
    env = Environment()
    source = env.event()
    target = env.event()
    source.succeed(42)
    target.trigger(source)
    env.run()
    assert target.ok
    assert target.value == 42


def test_timeout_carries_value():
    env = Environment()
    got = []

    def proc(env):
        value = yield env.timeout(1.0, value="payload")
        got.append(value)

    env.process(proc(env))
    env.run()
    assert got == ["payload"]


def test_condition_late_child_failure_is_defused():
    """A child failing *after* the condition already failed must not
    re-trigger the condition, and its failure must not escape ``run``
    as an unhandled error (regression: double-fail hazard)."""
    env = Environment()
    seen = []

    def failer(env, delay, message):
        yield env.timeout(delay)
        raise ValueError(message)

    def waiter(env):
        first = env.process(failer(env, 1.0, "first"))
        second = env.process(failer(env, 2.0, "second"))
        try:
            yield env.all_of([first, second])
        except ValueError as error:
            seen.append(str(error))

    env.process(waiter(env))
    env.run()  # must not raise "second" (nor RuntimeError: already triggered)
    assert seen == ["first"]


def test_any_of_succeeded_then_child_failure_is_defused():
    """A child failing after the condition already *succeeded* is
    likewise consumed by the condition."""
    env = Environment()
    results = []

    def failer(env):
        yield env.timeout(5.0)
        raise ValueError("late loser")

    def waiter(env):
        fast = env.timeout(1.0, value="fast")
        slow = env.process(failer(env))
        got = yield env.any_of([fast, slow])
        results.append(list(got.values()))

    env.process(waiter(env))
    env.run()
    assert results == [["fast"]]


def test_single_child_all_of_matches_multi_child_semantics():
    """The one-child fast path must produce the same {event: value}
    result shape and timing as the general path."""
    env = Environment()
    results = []

    def proc(env):
        t = env.timeout(2.0, value="only")
        got = yield env.all_of([t])
        results.append((env.now, got[t]))
        t2 = env.timeout(3.0, value="again")
        got2 = yield env.any_of([t2])
        results.append((env.now, got2[t2]))

    env.process(proc(env))
    env.run()
    assert results == [(2.0, "only"), (5.0, "again")]


def test_single_child_condition_failure_propagates():
    env = Environment()
    seen = []

    def failer(env):
        yield env.timeout(1.0)
        raise KeyError("solo")

    def waiter(env):
        try:
            yield env.all_of([env.process(failer(env))])
        except KeyError as error:
            seen.append(str(error))

    env.process(waiter(env))
    env.run()
    assert seen == ["'solo'"]


def test_single_child_condition_with_processed_child():
    env = Environment()
    results = []

    def proc(env):
        early = env.event()
        early.succeed("early")
        yield env.timeout(1.0)  # let `early` be processed
        got = yield env.any_of([early])
        results.append(got[early])

    env.process(proc(env))
    env.run()
    assert results == ["early"]
