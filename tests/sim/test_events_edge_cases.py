"""Edge-case tests for events and condition events."""

import pytest

from repro.sim import AllOf, AnyOf, Environment
from repro.sim.events import Condition


def test_all_of_failure_propagates():
    env = Environment()
    seen = []

    def failer(env):
        yield env.timeout(1.0)
        raise ValueError("child exploded")

    def waiter(env):
        ok = env.timeout(5.0)
        bad = env.process(failer(env))
        try:
            yield env.all_of([ok, bad])
        except ValueError as error:
            seen.append(str(error))

    env.process(waiter(env))
    env.run()
    assert seen == ["child exploded"]


def test_any_of_with_already_processed_event():
    env = Environment()
    results = []

    def proc(env):
        early = env.event()
        early.succeed("early")
        yield env.timeout(1.0)  # let `early` be processed
        got = yield env.any_of([early, env.timeout(100.0)])
        results.append(list(got.values()))

    env.process(proc(env))
    env.run(until=5.0)
    assert results == [["early"]]


def test_condition_rejects_mixed_environments():
    env_a = Environment()
    env_b = Environment()
    with pytest.raises(ValueError, match="multiple environments"):
        AllOf(env_a, [env_a.event(), env_b.event()])


def test_all_of_values_keyed_by_event():
    env = Environment()
    results = []

    def proc(env):
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(2.0, value="b")
        values = yield env.all_of([t1, t2])
        results.append((values[t1], values[t2]))

    env.process(proc(env))
    env.run()
    assert results == [("a", "b")]


def test_condition_check_is_abstract():
    env = Environment()
    condition = Condition.__new__(Condition)
    with pytest.raises(NotImplementedError):
        condition._check()


def test_event_repr_states():
    env = Environment()
    event = env.event()
    assert "pending" in repr(event)
    event.succeed()
    assert "triggered" in repr(event)
    env.run()
    assert "processed" in repr(event)


def test_trigger_copies_state():
    env = Environment()
    source = env.event()
    target = env.event()
    source.succeed(42)
    target.trigger(source)
    env.run()
    assert target.ok
    assert target.value == 42


def test_timeout_carries_value():
    env = Environment()
    got = []

    def proc(env):
        value = yield env.timeout(1.0, value="payload")
        got.append(value)

    env.process(proc(env))
    env.run()
    assert got == ["payload"]
