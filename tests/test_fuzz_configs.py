"""Randomized configuration fuzzing.

Every combination of protocol x topology x feature flags must run to
completion (no hangs, no crashes).  Complements the hypothesis property
tests with a fixed-seed sweep over the *feature* space (admission
control, group commit, read-only optimization, sequential execution,
surprise aborts) that the per-feature tests only cover pairwise.
"""

import random

import pytest

import repro
from repro.config import ModelParams, TransactionType

PROTOCOLS = ("2PC", "PA", "PC", "3PC", "OPT", "OPT-PA", "OPT-PC",
             "OPT-3PC", "UV", "EP", "LIN-2PC", "OPT-LIN", "DPCC", "CENT")


def _random_config(rng):
    params = dict(
        num_sites=rng.choice([2, 4, 8]),
        db_size=rng.choice([300, 800, 4800]),
        mpl=rng.choice([1, 3, 6]),
        cohort_size=rng.choice([2, 4]),
        update_prob=rng.choice([0.0, 0.5, 1.0]),
        trans_type=rng.choice(list(TransactionType)),
        surprise_abort_prob=rng.choice([0.0, 0.05, 0.2]),
        admission_control=rng.choice([False, True]),
        group_commit=rng.choice([False, True]),
        read_only_optimization=rng.choice([False, True]),
    )
    params["dist_degree"] = rng.randint(1, min(4, params["num_sites"]))
    return params


@pytest.mark.parametrize("seed", range(4))
def test_random_feature_combinations_complete(seed):
    rng = random.Random(seed * 7919 + 13)
    ran = 0
    while ran < 5:
        protocol = rng.choice(PROTOCOLS)
        try:
            params = ModelParams(**_random_config(rng))
        except ValueError:
            continue
        result = repro.simulate(protocol, params=params,
                                measured_transactions=40,
                                warmup_transactions=5, seed=seed)
        assert result.committed >= 40, (protocol, params)
        assert result.throughput > 0
        ran += 1
