"""Tests for model parameters and experiment presets."""

import pytest

from repro.config import (
    DEFAULT_OPEN_ARRIVAL_TPS,
    ModelParams,
    Topology,
    TransactionType,
    WorkloadMode,
    baseline_rc_dc,
    fast_network,
    high_distribution,
    open_system,
    pure_data_contention,
    sequential_transactions,
    surprise_aborts,
)


class TestDefaults:
    def test_baseline_matches_design_doc(self):
        p = ModelParams()
        assert p.num_sites == 8
        assert p.db_size == 4800
        assert p.dist_degree == 3
        assert p.cohort_size == 6
        assert p.update_prob == 1.0
        assert p.num_cpus == 1
        assert p.num_data_disks == 2
        assert p.num_log_disks == 1
        assert p.page_cpu_ms == 5.0
        assert p.page_disk_ms == 20.0
        assert p.msg_cpu_ms == 5.0
        assert p.trans_type is TransactionType.PARALLEL
        assert p.topology is Topology.DISTRIBUTED
        assert not p.infinite_resources

    def test_pages_per_site(self):
        assert ModelParams().pages_per_site == 600

    def test_cohort_page_bounds(self):
        p = ModelParams(cohort_size=6)
        assert p.min_cohort_pages == 3
        assert p.max_cohort_pages == 9
        p3 = p.replace(cohort_size=3)
        assert p3.min_cohort_pages == 2
        assert p3.max_cohort_pages == 4

    def test_mean_transaction_pages(self):
        assert ModelParams().mean_transaction_pages == 18
        assert high_distribution().mean_transaction_pages == 18

    def test_initial_response_estimate_positive(self):
        assert ModelParams().initial_response_time_estimate() > 0
        seq = sequential_transactions()
        par = ModelParams()
        assert (seq.initial_response_time_estimate()
                > par.initial_response_time_estimate())


class TestValidation:
    @pytest.mark.parametrize("field,value", [
        ("num_sites", 0),
        ("mpl", 0),
        ("dist_degree", 0),
        ("dist_degree", 9),
        ("cohort_size", 0),
        ("update_prob", 1.5),
        ("update_prob", -0.1),
        ("surprise_abort_prob", 2.0),
        ("num_cpus", 0),
        ("num_data_disks", 0),
        ("num_log_disks", 0),
        ("page_cpu_ms", -1.0),
    ])
    def test_bad_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            ModelParams(**{field: value})

    def test_db_smaller_than_sites_rejected(self):
        with pytest.raises(ValueError):
            ModelParams(db_size=4)

    def test_dist_degree_bounds(self):
        # One cohort per distinct site: [1, num_sites] inclusive.
        assert ModelParams(dist_degree=1).dist_degree == 1
        assert ModelParams(dist_degree=8).dist_degree == 8
        with pytest.raises(ValueError, match=r"num_sites=8.*got 9"):
            ModelParams(dist_degree=9)
        with pytest.raises(ValueError, match="dist_degree"):
            ModelParams(dist_degree=4, num_sites=3)

    def test_site_must_hold_max_cohort(self):
        # 1.5 x 400 = 600 pages needed; exactly 4800/8 = 600 per site: ok
        ModelParams(cohort_size=400)
        with pytest.raises(ValueError,
                           match=r"601 pages.*db_size=4800.*"
                                 r"only 600 pages per site"):
            ModelParams(cohort_size=401)

    def test_replace_revalidates(self):
        p = ModelParams()
        with pytest.raises(ValueError):
            p.replace(mpl=-1)

    def test_replace_produces_new_object(self):
        p = ModelParams()
        q = p.replace(mpl=4)
        assert p.mpl == 8 and q.mpl == 4


class TestOpenSystemParams:
    def test_closed_is_the_default(self):
        p = ModelParams()
        assert p.workload_mode is WorkloadMode.CLOSED
        assert p.arrival_rate_tps == 0.0
        assert p.skew is None

    def test_open_requires_positive_rate(self):
        with pytest.raises(ValueError, match="arrival_rate_tps"):
            ModelParams(workload_mode=WorkloadMode.OPEN)
        with pytest.raises(ValueError, match="arrival_rate_tps"):
            ModelParams(arrival_rate_tps=-1.0)

    def test_queue_limit_must_be_positive(self):
        with pytest.raises(ValueError, match="admission_queue_limit"):
            ModelParams(admission_queue_limit=0)

    def test_skew_is_validated(self):
        from repro.db.workload import AccessSkew, SkewKind
        with pytest.raises(ValueError, match="hot_page_frac"):
            ModelParams(skew=AccessSkew(kind=SkewKind.HOTSPOT,
                                        hot_page_frac=1.5))

    def test_open_preset(self):
        p = open_system()
        assert p.workload_mode is WorkloadMode.OPEN
        assert p.arrival_rate_tps == DEFAULT_OPEN_ARRIVAL_TPS
        q = open_system(arrival_rate_tps=2.5, mpl=4,
                        admission_queue_limit=16)
        assert q.arrival_rate_tps == 2.5
        assert q.mpl == 4 and q.admission_queue_limit == 16


class TestPresets:
    def test_pure_dc_infinite_resources(self):
        p = pure_data_contention()
        assert p.infinite_resources

    def test_fast_network(self):
        assert fast_network().msg_cpu_ms == 1.0
        assert not fast_network().infinite_resources
        assert fast_network(pure_dc=True).infinite_resources

    def test_high_distribution_keeps_transaction_length(self):
        p = high_distribution()
        assert p.dist_degree == 6
        assert p.cohort_size == 3
        assert p.mean_transaction_pages == ModelParams().mean_transaction_pages

    def test_surprise_aborts(self):
        p = surprise_aborts(0.05)
        assert p.surprise_abort_prob == 0.05
        assert surprise_aborts(0.1, pure_dc=True).infinite_resources

    def test_sequential(self):
        assert (sequential_transactions().trans_type
                is TransactionType.SEQUENTIAL)

    def test_presets_accept_overrides(self):
        p = baseline_rc_dc(mpl=4)
        assert p.mpl == 4
        q = pure_data_contention(mpl=6, dist_degree=6, cohort_size=3)
        assert q.mpl == 6 and q.dist_degree == 6
