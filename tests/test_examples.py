"""Smoke tests: every example script must run and print sane output."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=240):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_examples_directory_contents():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {"quickstart.py", "protocol_comparison.py", "lending_trace.py",
            "surprise_aborts_robustness.py", "custom_protocol.py",
            "blocking_failure_demo.py"} <= names


def test_quickstart(capfd):
    out = run_example("quickstart.py", "150")
    assert "2PC" in out and "OPT" in out
    assert "forced writes" in out


def test_lending_trace():
    out = run_example("lending_trace.py")
    assert "Scenario 1" in out
    assert "PUT ON THE SHELF" in out
    assert "chain length 1" in out
    assert "aborted borrowers: ['borrower1', 'borrower2']" in out


def test_protocol_comparison():
    out = run_example("protocol_comparison.py", "--transactions", "40",
                      "--mpls", "1")
    assert "[throughput]" in out
    assert "CENT" in out and "OPT-3PC" in out


def test_surprise_aborts_robustness():
    out = run_example("surprise_aborts_robustness.py",
                      "--transactions", "60", "--mpl", "2")
    assert "OPT gain" in out
    assert "lender aborts" in out


def test_custom_protocol():
    out = run_example("custom_protocol.py", "80")
    assert "LL-2PC" in out
    assert "OPT-LL" in out
    assert "commit_msgs/txn=6" in out


def test_blocking_failure_demo():
    out = run_example("blocking_failure_demo.py", "--outage-ms", "3000",
                      "--transactions", "120")
    assert "2PC" in out and "3PC" in out
    assert "blocked for" in out
