"""Tests for the EXPERIMENTS.md generator script."""

import json
import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
SCRIPT = ROOT / "scripts" / "generate_experiments_md.py"


def run_script(*args, timeout=300):
    proc = subprocess.run([sys.executable, str(SCRIPT), *args],
                          capture_output=True, text=True, timeout=timeout)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_generates_skeleton_without_results(tmp_path):
    out = tmp_path / "EXPERIMENTS.md"
    run_script("--results-dir", str(tmp_path / "empty"),
               "--output", str(out))
    text = out.read_text()
    # Tables and the extension section are always present.
    assert "Table 3" in text
    assert "Table 4" in text
    assert "beyond the paper" in text
    assert "Exact match" in text


def test_renders_measured_series(tmp_path):
    results_dir = tmp_path / "results"
    results_dir.mkdir()
    fake = {
        "title": "Experiment 1",
        "throughput": {
            "CENT": [[1, 10.0], [2, 12.0]],
            "DPCC": [[1, 9.5], [2, 11.5]],
            "2PC": [[1, 9.0], [2, 10.0]],
            "PA": [[1, 9.0], [2, 10.0]],
            "PC": [[1, 9.0], [2, 10.0]],
            "3PC": [[1, 8.0], [2, 9.0]],
            "OPT": [[1, 9.2], [2, 11.0]],
        },
        "peaks": {p: [2, v] for p, v in
                  [("CENT", 12.0), ("DPCC", 11.5), ("2PC", 10.0),
                   ("PA", 10.0), ("PC", 10.0), ("3PC", 9.0),
                   ("OPT", 11.0)]},
    }
    (results_dir / "E1.json").write_text(json.dumps(fake))
    out = tmp_path / "EXPERIMENTS.md"
    run_script("--results-dir", str(results_dir), "--output", str(out))
    text = out.read_text()
    assert "| MPL | CENT | DPCC | 2PC | PA | PC | 3PC | OPT |" in text
    assert "| 2 | 12.0 | 11.5 | 10.0 | 10.0 | 10.0 | 9.0 | 11.0 |" in text
    # Verdict templating filled in measured peaks.
    assert "18.3" not in text  # no stale numbers from other runs
    assert "(11.0)" in text and "(11.5)" in text


def test_checked_in_experiments_md_is_current_format():
    text = (ROOT / "EXPERIMENTS.md").read_text()
    assert text.startswith("# EXPERIMENTS — paper vs. measured")
    assert "## Figures 1a–1c" in text
    assert "pytest benchmarks/ --benchmark-only" in text
