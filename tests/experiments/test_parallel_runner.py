"""Determinism and plumbing tests for the parallel sweep runner.

The contract: parallelism changes *scheduling*, never *results*.  A
``jobs=N`` sweep must be byte-identical to the serial one, and the
optimized kernel must still reproduce golden values recorded from the
pre-optimization kernel.
"""

import dataclasses

import pytest

import repro
from repro.config import ModelParams
from repro.experiments import (
    MplSweep,
    ParallelSweepRunner,
    PointSpec,
    get_experiment,
    point_seed,
    resolve_jobs,
)
from repro.experiments.runner import run_point_spec


def _result_bytes(result) -> bytes:
    """Canonical byte encoding of a SimulationResult (dataclass order)."""
    return repr(dataclasses.asdict(result)).encode()


def _small_sweep(replications: int = 1) -> MplSweep:
    return MplSweep(["2PC", "PC"],
                    lambda mpl: ModelParams(mpl=mpl),
                    mpls=(1, 2),
                    measured_transactions=40,
                    warmup_transactions=5,
                    replications=replications)


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
@pytest.mark.tier2
def test_serial_and_parallel_sweeps_byte_identical():
    serial = _small_sweep().run("det", jobs=1)
    parallel = _small_sweep().run("det", jobs=4)
    assert serial.points.keys() == parallel.points.keys()
    for key in serial.points:
        for left, right in zip(serial.points[key].results,
                               parallel.points[key].results):
            assert _result_bytes(left) == _result_bytes(right)


@pytest.mark.tier2
def test_parallel_replications_preserve_seed_scheme():
    """With replications, the parallel path must reproduce the serial
    ``base_seed + rep * 7919`` seeds, in rep order."""
    serial = _small_sweep(replications=2).run("det", jobs=1)
    parallel = _small_sweep(replications=2).run("det", jobs=2)
    for key in serial.points:
        assert len(parallel.points[key].results) == 2
        for left, right in zip(serial.points[key].results,
                               parallel.points[key].results):
            assert _result_bytes(left) == _result_bytes(right)


def test_point_specs_enumerate_grid_in_order():
    sweep = _small_sweep(replications=2)
    specs = sweep.point_specs()
    assert [(s.protocol, s.mpl, s.rep) for s in specs] == [
        ("2PC", 1, 0), ("2PC", 1, 1), ("2PC", 2, 0), ("2PC", 2, 1),
        ("PC", 1, 0), ("PC", 1, 1), ("PC", 2, 0), ("PC", 2, 1),
    ]
    assert all(s.seed == point_seed(sweep.base_seed, s.rep) for s in specs)


def test_point_seed_matches_historical_scheme():
    assert point_seed(100, 0) == 100
    assert point_seed(100, 1) == 100 + 7919
    assert point_seed(100, 3) == 100 + 3 * 7919


def test_run_point_spec_equals_direct_simulate():
    spec = PointSpec(protocol="2PC", mpl=2, rep=0,
                     params=ModelParams(mpl=2),
                     measured_transactions=30, warmup_transactions=5,
                     seed=12345)
    direct = repro.simulate("2PC", params=ModelParams(mpl=2),
                            measured_transactions=30,
                            warmup_transactions=5, seed=12345)
    assert _result_bytes(run_point_spec(spec)) == _result_bytes(direct)


# ----------------------------------------------------------------------
# Golden values: optimized kernel vs the pre-optimization seed kernel
# ----------------------------------------------------------------------
def test_kernel_golden_values_e1_point():
    """Values recorded from the unoptimized kernel (PR 1 baseline).

    The hot-path rework (__slots__, inlined event loop, relay-free
    process resume, lazy lock-grant events) must not perturb a single
    event ordering; any drift here means semantics changed."""
    r = repro.simulate("2PC", measured_transactions=200, mpl=3,
                       warmup_transactions=20, seed=20250705)
    assert r.committed == 200
    assert r.aborted == 6
    assert r.elapsed_ms == pytest.approx(14581.045751633987, abs=0, rel=0)
    assert r.throughput == pytest.approx(13.716437312295486, abs=0, rel=0)
    assert r.response_time_ms == pytest.approx(1660.7650326797393,
                                               abs=0, rel=0)
    assert r.block_ratio == pytest.approx(0.6026280499648872, abs=0, rel=0)
    assert r.borrow_ratio == 0.0
    assert r.abort_ratio == pytest.approx(0.02912621359223301, abs=0, rel=0)
    assert r.deadlocks == 6
    assert r.shelf_entries == 0


def test_kernel_golden_values_opt_point():
    r = repro.simulate("OPT", measured_transactions=150, mpl=4,
                       warmup_transactions=15, seed=31337)
    assert (r.committed, r.aborted) == (150, 7)
    assert r.elapsed_ms == pytest.approx(8250.0, abs=0, rel=0)
    assert r.throughput == pytest.approx(18.181818181818183, abs=0, rel=0)
    assert r.response_time_ms == pytest.approx(1735.0000000000005,
                                               abs=0, rel=0)


# ----------------------------------------------------------------------
# Plumbing
# ----------------------------------------------------------------------
def test_resolve_jobs():
    assert resolve_jobs(1) == 1
    assert resolve_jobs(7) == 7
    assert resolve_jobs(None) >= 1
    assert resolve_jobs(0) >= 1
    with pytest.raises(ValueError):
        resolve_jobs(-2)


def test_jobs_one_never_spawns_processes(monkeypatch):
    """The serial path must not import/construct a process pool."""
    import concurrent.futures

    def boom(*args, **kwargs):  # pragma: no cover - should not run
        raise AssertionError("process pool used with jobs=1")

    monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor", boom)
    runner = ParallelSweepRunner(jobs=1)
    spec = PointSpec(protocol="2PC", mpl=1, rep=0,
                     params=ModelParams(mpl=1),
                     measured_transactions=10, warmup_transactions=2,
                     seed=7)
    results = runner.run([spec])
    assert len(results) == 1 and results[0].committed == 10


def test_parallel_runner_reports_progress():
    labels = []
    runner = ParallelSweepRunner(jobs=2, progress=labels.append)
    specs = [PointSpec(protocol="2PC", mpl=mpl, rep=0,
                       params=ModelParams(mpl=mpl),
                       measured_transactions=10, warmup_transactions=2,
                       seed=7)
             for mpl in (1, 2)]
    results = runner.run(specs)
    assert [r.mpl for r in results] == [1, 2]
    assert sorted(labels) == ["2PC @ MPL 1", "2PC @ MPL 2"]


def test_point_spec_is_picklable():
    import pickle

    spec = PointSpec(protocol="OPT", mpl=3, rep=1,
                     params=ModelParams(mpl=3),
                     measured_transactions=10, warmup_transactions=None,
                     seed=99)
    clone = pickle.loads(pickle.dumps(spec))
    assert clone == spec
    assert clone.label == "OPT @ MPL 3 rep 1"


@pytest.mark.tier2
def test_experiment_definition_jobs_passthrough():
    definition = get_experiment("E1")
    results = definition.run(measured_transactions=30, mpls=(1,), jobs=2)
    assert set(results.mpls) == {1}
    assert len(results.points) == len(results.protocols)
