"""Tests for the analytic/measured overhead table machinery."""

import pytest

from repro.experiments.overheads import (
    TABLE_PROTOCOLS,
    OverheadRow,
    build_table,
    expected_overheads,
    measure_overheads,
    render_table,
)


class TestAnalyticFormulas:
    @pytest.mark.parametrize("protocol,expected", [
        ("2PC", (4, 7, 8)),
        ("PA", (4, 7, 8)),
        ("PC", (4, 5, 6)),
        ("3PC", (4, 11, 12)),
        ("DPCC", (4, 1, 0)),
        ("CENT", (0, 1, 0)),
    ])
    def test_table3_formulas(self, protocol, expected):
        assert expected_overheads(protocol, 3).as_tuple() == expected

    @pytest.mark.parametrize("protocol,expected", [
        ("2PC", (10, 13, 20)),
        ("PA", (10, 13, 20)),
        ("PC", (10, 8, 15)),
        ("3PC", (10, 20, 30)),
        ("DPCC", (10, 1, 0)),
        ("CENT", (0, 1, 0)),
    ])
    def test_table4_formulas(self, protocol, expected):
        assert expected_overheads(protocol, 6).as_tuple() == expected

    def test_opt_variants_inherit_base_counts(self):
        assert (expected_overheads("OPT", 3).as_tuple()
                == expected_overheads("2PC", 3).as_tuple())
        assert (expected_overheads("OPT-PC", 3).as_tuple()
                == expected_overheads("PC", 3).as_tuple())
        assert (expected_overheads("OPT-3PC", 6).as_tuple()
                == expected_overheads("3PC", 6).as_tuple())

    def test_unknown_protocol(self):
        with pytest.raises(KeyError):
            expected_overheads("4PC", 3)


class TestMeasurement:
    def test_measured_matches_analytic_2pc(self):
        measured = measure_overheads("2PC", 3, 6, transactions=40)
        assert measured.as_tuple() == expected_overheads("2PC", 3).as_tuple()

    def test_measured_matches_analytic_pc_dd6(self):
        measured = measure_overheads("PC", 6, 3, transactions=40)
        assert measured.as_tuple() == expected_overheads("PC", 6).as_tuple()

    def test_build_table_pairs(self):
        rows = build_table(3, 6, protocols=("2PC", "PC"), transactions=30)
        assert len(rows) == 2
        for expected, actual in rows:
            assert expected.as_tuple() == actual.as_tuple()

    def test_build_table_analytic_only(self):
        rows = build_table(3, 6, measured=False)
        assert len(rows) == len(TABLE_PROTOCOLS)
        for expected, actual in rows:
            assert expected is actual

    def test_render_table_marks_matches(self):
        text = render_table(3, 6, protocols=("2PC",), transactions=30)
        assert "DistDegree = 3" in text
        assert "yes" in text
        assert "NO" not in text


def test_overhead_row_tuple():
    row = OverheadRow("X", 1, 2, 3)
    assert row.as_tuple() == (1, 2, 3)
