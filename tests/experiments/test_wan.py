"""Tests for the WAN sweep (protocol x RTT x placement grid)."""

import pytest

from repro.config import ModelParams
from repro.db.topology import TopologyKind
from repro.experiments import WanResults, WanSweep


class TestConstruction:
    def test_rejects_unknown_placement(self):
        with pytest.raises(ValueError, match="placement"):
            WanSweep(("2PC",), placements=("nearby",))

    def test_rejects_uneven_dc_split(self):
        with pytest.raises(ValueError, match="split"):
            WanSweep(("2PC",), num_dcs=3)  # 8 sites % 3 != 0

    def test_rejects_empty_rtts(self):
        with pytest.raises(ValueError, match="rtts_ms"):
            WanSweep(("2PC",), rtts_ms=())

    def test_topology_for(self):
        sweep = WanSweep(("2PC",), num_dcs=2)
        topology = sweep.topology_for(40.0)
        assert topology.kind is TopologyKind.DCS
        assert topology.num_dcs == 2
        assert topology.sites_per_dc == 4
        assert topology.rtt_ms == 40.0

    def test_point_params_carry_placement(self):
        sweep = WanSweep(("2PC",), mpl=3)
        spread = sweep.point_params(40.0, "spread")
        local = sweep.point_params(40.0, "local")
        assert spread.mpl == 3
        assert not spread.prefer_local_cohorts
        assert local.prefer_local_cohorts
        assert local.network_topology.rtt_ms == 40.0

    def test_base_params_are_preserved(self):
        base = ModelParams(dist_degree=6)
        sweep = WanSweep(("2PC",), params=base)
        assert sweep.point_params(10.0, "spread").dist_degree == 6


@pytest.fixture(scope="module")
def wan_results() -> WanResults:
    """One shared 40ms grid over the protocols the ordering claim is
    about, both placements."""
    sweep = WanSweep(("2PC", "PC", "3PC", "OPT"), rtts_ms=(40.0,),
                     placements=("spread", "local"), mpl=2,
                     measured_transactions=200)
    return sweep.run()


class TestWanOrdering:
    """The acceptance claim: at WAN RTTs, protocols that serialize fewer
    cross-DC round trips on the commit path win."""

    def test_fewer_round_trip_protocols_commit_faster(self, wan_results):
        resp = {p: wan_results.point(p, 40.0, "spread").response_ms
                for p in ("2PC", "PC", "3PC", "OPT")}
        # PC skips the commit-ACK round; OPT lends locks across the
        # prepared window.  Both beat 2PC; 3PC's extra PRECOMMIT round
        # is strictly worse.
        assert resp["PC"] < resp["2PC"]
        assert resp["OPT"] < resp["2PC"]
        assert resp["2PC"] < resp["3PC"]

    def test_round_trip_counts_track_protocol_structure(self, wan_results):
        xdc = {p: wan_results.point(
                   p, 40.0, "spread").cross_dc_round_trips_per_commit
               for p in ("2PC", "PC", "3PC")}
        assert all(value > 0 for value in xdc.values())
        assert xdc["PC"] < xdc["2PC"] < xdc["3PC"]

    def test_local_placement_avoids_the_expensive_links(self, wan_results):
        for protocol in ("2PC", "PC", "3PC", "OPT"):
            spread = wan_results.point(protocol, 40.0, "spread")
            local = wan_results.point(protocol, 40.0, "local")
            assert (local.cross_dc_round_trips_per_commit
                    < spread.cross_dc_round_trips_per_commit)
            assert local.response_ms < spread.response_ms

    def test_message_split_covers_remote_traffic(self, wan_results):
        point = wan_results.point("2PC", 40.0, "spread")
        assert point.cross_dc_messages > 0
        assert point.intra_dc_messages > 0


class TestRendering:
    def test_table_and_summary(self, wan_results):
        table = wan_results.table("spread")
        assert "placement: spread" in table
        assert "40ms" in table
        summary = wan_results.summary()
        assert "fastest commit" in summary
        assert " < " in summary

    def test_series(self, wan_results):
        series = wan_results.series("PC", "spread")
        assert len(series) == 1
        rtt, resp = series[0]
        assert rtt == 40.0
        assert resp > 0
