"""Tests for the experiment harness (sweeps, registry, definitions)."""

import pytest

from repro.config import ModelParams, Topology, TransactionType
from repro.experiments import (
    EXPERIMENTS,
    ExperimentDefinition,
    MplSweep,
    experiment_ids,
    get_experiment,
)
from repro.experiments.base import DEFAULT_MPLS, METRICS


def tiny_factory(mpl):
    return ModelParams(num_sites=2, db_size=400, mpl=mpl, dist_degree=2,
                       cohort_size=2)


class TestMplSweep:
    def test_grid_complete(self):
        sweep = MplSweep(["2PC", "OPT"], tiny_factory, mpls=(1, 2),
                         measured_transactions=60, warmup_transactions=10)
        results = sweep.run("TEST", "tiny grid")
        assert set(results.points) == {("2PC", 1), ("2PC", 2),
                                       ("OPT", 1), ("OPT", 2)}
        for point in results.points.values():
            assert point.result.committed >= 60

    def test_series_ordering(self):
        sweep = MplSweep(["2PC"], tiny_factory, mpls=(1, 2, 4),
                         measured_transactions=40, warmup_transactions=5)
        results = sweep.run()
        series = results.series("2PC", "throughput")
        assert [mpl for mpl, _ in series] == [1, 2, 4]
        assert all(v > 0 for _, v in series)

    def test_peak(self):
        sweep = MplSweep(["2PC"], tiny_factory, mpls=(1, 2),
                         measured_transactions=40, warmup_transactions=5)
        results = sweep.run()
        mpl, value = results.peak("2PC")
        assert mpl in (1, 2)
        assert value == max(v for _, v in results.series("2PC"))

    def test_replications_aggregate(self):
        sweep = MplSweep(["2PC"], tiny_factory, mpls=(1,),
                         measured_transactions=40, warmup_transactions=5,
                         replications=2)
        results = sweep.run()
        point = results.point("2PC", 1)
        assert len(point.results) == 2
        mean, half = point.metric_interval("throughput")
        assert mean > 0
        # Two replications give a finite (if wide) interval.
        assert half > 0

    def test_replication_seeds_differ(self):
        sweep = MplSweep(["2PC"], tiny_factory, mpls=(1,),
                         measured_transactions=60, warmup_transactions=5,
                         replications=2)
        point = sweep.run().point("2PC", 1)
        assert (point.results[0].throughput
                != point.results[1].throughput)

    def test_invalid_replications(self):
        with pytest.raises(ValueError):
            MplSweep(["2PC"], tiny_factory, replications=0)

    def test_progress_callback(self):
        seen = []
        sweep = MplSweep(["2PC"], tiny_factory, mpls=(1,),
                         measured_transactions=30, warmup_transactions=5)
        sweep.run("X", progress=seen.append)
        assert seen == ["X: 2PC @ MPL 1"]

    def test_metric_registry_complete(self):
        for name in ("throughput", "response_time", "block_ratio",
                     "borrow_ratio", "abort_ratio"):
            assert name in METRICS


class TestRegistry:
    def test_all_paper_experiments_registered(self):
        ids = experiment_ids()
        for required in ("E1", "E2", "E3-RCDC", "E3-DC", "E4-RCDC",
                         "E4-DC", "E5-RCDC", "E5-DC", "E6-RCDC-3",
                         "E6-RCDC-15", "E6-RCDC-27", "E6-DC-3",
                         "E6-DC-15", "E6-DC-27", "E7", "E8-UP50",
                         "E8-SMALLDB"):
            assert required in ids

    def test_lookup_case_insensitive(self):
        assert get_experiment("e1") is EXPERIMENTS["E1"]

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("E99")

    def test_definitions_are_well_formed(self):
        for definition in EXPERIMENTS.values():
            assert definition.protocols
            assert definition.paper_artifacts
            assert definition.mpls == DEFAULT_MPLS
            for metric in definition.metrics:
                assert metric in METRICS
            # The factory must build valid params for every MPL.
            for mpl in (1, 10):
                params = definition.params_factory(mpl)
                assert params.mpl == mpl

    def test_e2_is_pure_dc(self):
        params = get_experiment("E2").params_factory(4)
        assert params.infinite_resources

    def test_e3_fast_network(self):
        assert get_experiment("E3-RCDC").params_factory(1).msg_cpu_ms == 1.0
        assert get_experiment("E3-DC").params_factory(1).infinite_resources

    def test_e4_constant_transaction_length(self):
        params = get_experiment("E4-RCDC").params_factory(2)
        assert params.dist_degree == 6
        assert params.cohort_size == 3

    def test_e6_abort_levels(self):
        assert (get_experiment("E6-RCDC-3").params_factory(1)
                .surprise_abort_prob == 0.01)
        assert (get_experiment("E6-DC-27").params_factory(1)
                .surprise_abort_prob == 0.10)
        assert get_experiment("E6-DC-15").params_factory(1).infinite_resources

    def test_e7_sequential(self):
        assert (get_experiment("E7").params_factory(1).trans_type
                is TransactionType.SEQUENTIAL)

    def test_e8_variants(self):
        assert get_experiment("E8-UP50").params_factory(1).update_prob == 0.5
        assert get_experiment("E8-SMALLDB").params_factory(1).db_size == 1200

    def test_definition_run_end_to_end(self):
        definition = ExperimentDefinition(
            experiment_id="TEST", title="test", paper_artifacts=("none",),
            protocols=("2PC",), params_factory=tiny_factory, mpls=(1,))
        results = definition.run(measured_transactions=30)
        assert results.point("2PC", 1).result.committed >= 30
