"""Adaptive replication (``target_ci``): CI-driven early stopping.

The acceptance contract: with a target set, a multi-rep grid executes
measurably fewer total simulated transactions than fixed-rep mode while
every reported point's 90% CI relative half-width meets the target (or
its replication budget is exhausted, which the cap makes explicit).
"""

import pytest

from repro.config import ModelParams
from repro.experiments import MplSweep, PointSummary, get_experiment
from repro.experiments.base import DEFAULT_ADAPTIVE_CAP


def _sweep(replications=6, txns=20):
    return MplSweep(["2PC", "PC"], lambda mpl: ModelParams(mpl=mpl),
                    mpls=(1, 2), measured_transactions=txns,
                    warmup_transactions=2, replications=replications)


def test_adaptive_runs_fewer_transactions_than_fixed():
    fixed = _sweep().run("fixed")
    adaptive = _sweep().run("adaptive", target_ci=0.5)
    assert fixed.total_measured_transactions == 2 * 2 * 6 * 20
    assert (adaptive.total_measured_transactions
            < fixed.total_measured_transactions)
    assert adaptive.target_ci == 0.5
    # every reported point meets the target or exhausted its cap
    for point in adaptive.points.values():
        mean, half = point.metric_interval("throughput")
        assert (abs(half / mean) <= 0.5
                or len(point.results) == 6), point.protocol


def test_adaptive_points_hold_lean_summaries_with_min_two_reps():
    results = _sweep().run("adaptive", target_ci=0.5)
    for point in results.points.values():
        assert 2 <= len(point.results) <= 6
        assert all(isinstance(r, PointSummary) for r in point.results)
        # replications keep the serial seed scheme, in rep order
        assert [r.rep for r in point.results] == \
            list(range(len(point.results)))


def test_adaptive_parallel_matches_serial():
    serial = _sweep().run("adaptive", jobs=1, target_ci=0.5)
    parallel = _sweep().run("adaptive", jobs=2, target_ci=0.5)
    assert (serial.total_measured_transactions
            == parallel.total_measured_transactions)
    for key, point in serial.points.items():
        assert point.results == parallel.points[key].results


def test_default_replications_bumps_to_adaptive_cap():
    """replications=1 means 'one long run' in fixed mode; as an
    adaptive cap it would forbid any CI, so it becomes the default."""
    results = _sweep(replications=1).run(
        "adaptive", target_ci=0.0001)  # unreachably tight
    for point in results.points.values():
        assert len(point.results) == DEFAULT_ADAPTIVE_CAP


def test_adaptive_rejects_events_out():
    with pytest.raises(ValueError, match="fixed replications"):
        _sweep().run("adaptive", target_ci=0.1, events_out="x.jsonl")


def test_tight_target_uses_more_reps_than_loose():
    loose = _sweep(replications=8).run("a", target_ci=0.8)
    tight = _sweep(replications=8).run("a", target_ci=0.05)
    assert (tight.total_measured_transactions
            > loose.total_measured_transactions)


def test_experiment_definition_target_ci_passthrough():
    definition = get_experiment("E7")
    results = definition.run(measured_transactions=15, mpls=(1,),
                             replications=4, target_ci=0.6)
    assert results.target_ci == 0.6
    assert results.total_measured_transactions <= \
        len(results.protocols) * 4 * 15
    assert results.max_rel_half_width() < float("inf")
