"""The warm shared pool layer: reuse, chunking, crash containment.

The contract of :mod:`repro.experiments.pool` +
:class:`~repro.experiments.runner.ParallelSweepRunner`:

- one pool per process, reused across consecutive sweeps (warm);
- chunked dispatch is byte-identical to serial execution (the golden
  fixture pins the absolute values);
- a spec that raises inside a worker surfaces the *original* exception
  and traceback in the parent, and the pool stays usable afterwards;
- ``jobs=0`` is a CLI-only convenience and is rejected by the library.
"""

import dataclasses
import json
import pathlib

import pytest

import repro
from repro.config import ModelParams
from repro.experiments import (
    MplSweep,
    ParallelSweepRunner,
    PointSpec,
    PointSummary,
    SweepWorkerError,
    shutdown_pool,
)
from repro.experiments import pool as pool_mod
from repro.experiments.runner import (
    SweepCounts,
    default_chunksize,
    resolve_jobs,
    run_point_spec,
)

FIXTURE = pathlib.Path(__file__).parent.parent / "data" / "golden_sweep.json"


def _spec(protocol="2PC", mpl=1, rep=0, txns=12, seed=7) -> PointSpec:
    return PointSpec(protocol=protocol, mpl=mpl, rep=rep,
                     params=ModelParams(mpl=mpl),
                     measured_transactions=txns, warmup_transactions=2,
                     seed=seed)


def _result_bytes(result) -> bytes:
    return repr(dataclasses.asdict(result)).encode()


# ----------------------------------------------------------------------
# Warm pool lifecycle
# ----------------------------------------------------------------------
def test_pool_is_lazy_and_reused_across_sweeps():
    shutdown_pool()
    assert pool_mod.active_pool() is None
    runner = ParallelSweepRunner(jobs=2)
    runner.run([_spec(mpl=1), _spec(mpl=2)])
    first = pool_mod.active_pool()
    assert first is not None
    runner.run([_spec(mpl=1, seed=11), _spec(mpl=2, seed=11)])
    assert pool_mod.active_pool() is first, \
        "second sweep must reuse the warm pool, not respawn one"
    # A second runner (a different sweep/experiment) shares it too.
    ParallelSweepRunner(jobs=2).run([_spec(), _spec(mpl=2)])
    assert pool_mod.active_pool() is first


def test_pool_grows_but_never_shrinks():
    shutdown_pool()
    small = pool_mod.get_pool(1)
    assert pool_mod.pool_workers() == 1
    grown = pool_mod.get_pool(3)
    assert grown is not small
    assert pool_mod.pool_workers() == 3
    assert pool_mod.get_pool(2) is grown, \
        "a smaller request reuses the bigger pool"
    assert pool_mod.pool_workers() == 3


def test_shutdown_pool_is_idempotent_and_recreates_on_demand():
    pool_mod.get_pool(1)
    shutdown_pool()
    shutdown_pool()
    assert pool_mod.active_pool() is None
    assert pool_mod.pool_workers() == 0
    assert pool_mod.get_pool(1) is pool_mod.active_pool()
    shutdown_pool()


def test_get_pool_rejects_nonpositive_workers():
    with pytest.raises(ValueError):
        pool_mod.get_pool(0)


# ----------------------------------------------------------------------
# jobs=0 boundary: CLI-only convenience, rejected in the library
# ----------------------------------------------------------------------
def test_resolve_jobs_zero_boundary():
    assert resolve_jobs(0) >= 1  # CLI path: all cores
    with pytest.raises(ValueError, match="CLI convenience"):
        resolve_jobs(0, allow_all_cores=False)


def test_runner_rejects_jobs_zero():
    with pytest.raises(ValueError, match="explicit worker count"):
        ParallelSweepRunner(jobs=0)


def test_sweep_rejects_jobs_zero():
    sweep = MplSweep(["2PC"], lambda mpl: ModelParams(mpl=mpl),
                     mpls=(1, 2), measured_transactions=10)
    with pytest.raises(ValueError, match="explicit worker count"):
        sweep.run("boundary", jobs=0)


# ----------------------------------------------------------------------
# Chunking
# ----------------------------------------------------------------------
def test_default_chunksize_amortizes_large_grids():
    assert default_chunksize(8, 4) == 1      # small grid: plain dispatch
    assert default_chunksize(98, 4) == 7     # 7x7x2 grid, 4 workers
    assert default_chunksize(1000, 8) == 32
    assert default_chunksize(0, 4) == 1


def test_explicit_chunksize_validated():
    with pytest.raises(ValueError):
        ParallelSweepRunner(jobs=2, chunksize=0)


def test_chunked_parallel_matches_serial_byte_identical():
    specs = [_spec(protocol=p, mpl=m, txns=15, seed=5)
             for p in ("2PC", "PC") for m in (1, 2)]
    serial = ParallelSweepRunner(jobs=1).run(specs)
    chunked = ParallelSweepRunner(jobs=2, chunksize=2).run(specs)
    for left, right in zip(serial, chunked):
        assert _result_bytes(left) == _result_bytes(right)


@pytest.mark.tier2
def test_chunked_parallel_matches_golden_fixture():
    """The chunked warm-pool path reproduces the recorded fixture
    values exactly -- same contract the serial path is held to."""
    grid = json.loads(FIXTURE.read_text())["tier1"]
    sweep = MplSweep(tuple(grid["protocols"]),
                     lambda mpl: ModelParams(mpl=mpl),
                     mpls=tuple(grid["mpls"]),
                     measured_transactions=grid["transactions"])
    results = sweep.run("golden-chunked", jobs=4)
    for (protocol, mpl), point in results.points.items():
        expected = grid["points"][f"{protocol}@{mpl}"]
        actual = json.loads(json.dumps(dataclasses.asdict(point.result)))
        assert actual == expected, f"{protocol}@{mpl} diverged"


# ----------------------------------------------------------------------
# Lean wire format
# ----------------------------------------------------------------------
def test_lean_summaries_match_full_results():
    specs = [_spec(mpl=1), _spec(mpl=2)]
    full = ParallelSweepRunner(jobs=2).run(specs)
    lean = ParallelSweepRunner(jobs=2).run(specs, lean=True)
    for spec, result, summary in zip(specs, full, lean):
        assert isinstance(summary, PointSummary)
        assert summary == PointSummary.from_result(spec, result)
        # the metric attributes the experiment layer consumes
        for attr in ("throughput", "response_time_ms", "block_ratio",
                     "borrow_ratio", "abort_ratio", "committed",
                     "overheads"):
            assert getattr(summary, attr) == getattr(result, attr)


def test_lean_serial_path_also_summarizes():
    summary, = ParallelSweepRunner(jobs=1).run([_spec()], lean=True)
    assert isinstance(summary, PointSummary)
    assert summary.committed == 12


# ----------------------------------------------------------------------
# Worker crash containment
# ----------------------------------------------------------------------
def test_poisoned_spec_surfaces_original_traceback_and_pool_survives():
    poisoned = _spec(protocol="NOT-A-PROTOCOL")
    good = [_spec(mpl=1), _spec(mpl=2)]
    runner = ParallelSweepRunner(jobs=2)
    with pytest.raises(SweepWorkerError) as excinfo:
        runner.run([good[0], poisoned, good[1]])
    message = str(excinfo.value)
    assert "unknown protocol" in message          # original message
    assert "worker traceback" in message          # remote traceback block
    assert "ValueError" in message
    assert isinstance(excinfo.value.__cause__, ValueError)
    # The worker caught the exception and returned it as data, so the
    # pool never broke -- the very next sweep reuses it.
    pool_before = pool_mod.active_pool()
    assert pool_before is not None
    results = runner.run(good)
    assert [r.mpl for r in results] == [1, 2]
    assert pool_mod.active_pool() is pool_before


def test_serial_path_raises_directly():
    with pytest.raises(ValueError, match="unknown protocol"):
        ParallelSweepRunner(jobs=1).run(
            [_spec(protocol="NOT-A-PROTOCOL"), _spec()])


# ----------------------------------------------------------------------
# Progress: completion-time semantics + chunked counts
# ----------------------------------------------------------------------
def test_progress_fires_after_completion_serial(monkeypatch):
    events = []
    real = run_point_spec
    monkeypatch.setattr("repro.experiments.runner.run_point_spec",
                        lambda spec: (events.append(("run", spec.label)),
                                      real(spec))[1])
    runner = ParallelSweepRunner(
        jobs=1, progress=lambda label: events.append(("progress", label)))
    runner.run([_spec(mpl=1), _spec(mpl=2)])
    assert events == [
        ("run", "2PC @ MPL 1"), ("progress", "2PC @ MPL 1"),
        ("run", "2PC @ MPL 2"), ("progress", "2PC @ MPL 2"),
    ]


def test_counts_track_queued_running_done():
    seen: list[SweepCounts] = []
    specs = [_spec(mpl=m, seed=s) for m in (1, 2) for s in (3, 4)]
    runner = ParallelSweepRunner(jobs=2, chunksize=1, counts=seen.append)
    runner.run(specs)
    assert [c.done for c in seen] == [1, 2, 3, 4]
    assert all(c.total == 4 for c in seen)
    assert all(c.queued + c.running + c.done == 4 for c in seen)
    assert seen[-1] == SweepCounts(queued=0, running=0, done=4, total=4)


def test_counts_in_serial_mode():
    seen: list[SweepCounts] = []
    runner = ParallelSweepRunner(jobs=1, counts=seen.append)
    runner.run([_spec(mpl=1), _spec(mpl=2)])
    assert seen == [
        SweepCounts(queued=0, running=1, done=1, total=2),
        SweepCounts(queued=0, running=0, done=2, total=2),
    ]


# ----------------------------------------------------------------------
# Summaries flow through the experiment layer
# ----------------------------------------------------------------------
def test_sweep_lean_results_render_tables():
    sweep = MplSweep(["2PC", "PC"], lambda mpl: ModelParams(mpl=mpl),
                     mpls=(1, 2), measured_transactions=15,
                     warmup_transactions=2)
    full = sweep.run("wire", jobs=2)
    lean = sweep.run("wire", jobs=2, lean=True)
    assert lean.table("throughput") == full.table("throughput")
    assert (lean.point("2PC", 1).metric("throughput")
            == full.point("2PC", 1).metric("throughput"))
    assert isinstance(lean.point("2PC", 1).result, PointSummary)
    assert lean.total_measured_transactions == 4 * 15
