"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestList:
    def test_lists_experiments(self):
        code, text = run_cli("list")
        assert code == 0
        for experiment_id in ("E1", "E2", "E5-DC", "E6-RCDC-15", "E7"):
            assert experiment_id in text


class TestSimulate:
    def test_basic_run(self):
        code, text = run_cli("simulate", "2PC", "--mpl", "1",
                             "--transactions", "60")
        assert code == 0
        assert "2PC" in text
        assert "overheads per committing txn" in text
        assert "exec_msgs=4.00" in text

    def test_pure_dc_flag(self):
        code, text = run_cli("simulate", "OPT", "--mpl", "2",
                             "--transactions", "60", "--pure-dc")
        assert code == 0
        assert "OPT" in text

    def test_surprise_aborts_reported(self):
        code, text = run_cli("simulate", "2PC", "--mpl", "1",
                             "--transactions", "150",
                             "--surprise-abort-prob", "0.1")
        assert code == 0
        assert "surprise_vote" in text

    def test_unknown_protocol_is_a_cli_error(self):
        code, text = run_cli("simulate", "9PC", "--transactions", "10")
        assert code == 2
        assert text.startswith("error: unknown protocol")
        assert "2PC" in text  # the message lists the valid names


class TestRun:
    def test_run_experiment_small(self):
        code, text = run_cli("run", "E1", "--transactions", "40",
                             "--mpls", "1", "--quiet")
        assert code == 0
        assert "Experiment 1" in text
        assert "[throughput]" in text
        assert "[block_ratio]" in text
        assert "[borrow_ratio]" in text
        assert "peak value" in text

    def test_run_progress_output(self):
        code, text = run_cli("run", "E7", "--transactions", "30",
                             "--mpls", "1")
        assert code == 0
        assert "... E7" in text

    def test_bad_mpls_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "E1", "--mpls", "abc"])

    def test_run_with_export(self, tmp_path):
        code, text = run_cli("run", "E7", "--transactions", "25",
                             "--mpls", "1", "--quiet",
                             "--export", str(tmp_path / "out"))
        assert code == 0
        assert "wrote" in text
        assert (tmp_path / "out" / "E7.throughput.tsv").exists()
        assert (tmp_path / "out" / "E7.long.csv").exists()

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_cli("run", "E99", "--transactions", "10")

    def test_run_target_ci_prints_adaptive_summary(self):
        code, text = run_cli("run", "E7", "--transactions", "25",
                             "--mpls", "1", "--replications", "4",
                             "--target-ci", "0.5", "--quiet")
        assert code == 0
        assert "adaptive replication:" in text
        assert "measured transactions total" in text
        assert "[throughput]" in text

    def test_target_ci_must_be_a_fraction(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "E1", "--target-ci", "1.5"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "E1", "--target-ci", "0"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "E1", "--target-ci", "abc"])

    def test_target_ci_conflicts_with_events_out(self, tmp_path):
        code, text = run_cli("run", "E7", "--transactions", "20",
                             "--mpls", "1", "--target-ci", "0.5",
                             "--events-out", str(tmp_path / "ev.jsonl"))
        assert code == 2
        assert "fixed replications" in text

    def test_jobs_zero_means_all_cores_at_the_cli(self):
        code, text = run_cli("run", "E7", "--transactions", "20",
                             "--mpls", "1", "--jobs", "0", "--quiet")
        assert code == 0
        assert "[throughput]" in text


class TestTables:
    def test_tables_render_and_match(self):
        code, text = run_cli("tables", "--transactions", "30")
        assert code == 0
        assert "DistDegree = 3" in text
        assert "DistDegree = 6" in text
        assert "NO" not in text  # every row matches the analytic counts

    def test_tables_with_target_ci_still_match(self):
        code, text = run_cli("tables", "--transactions", "30",
                             "--target-ci", "0.5")
        assert code == 0
        assert "DistDegree = 3" in text
        assert "NO" not in text  # adaptive mode keeps the analytic match


class TestTopologyFlags:
    def test_simulate_with_topology_reports_dc_traffic(self):
        code, text = run_cli("simulate", "2PC", "--mpl", "1",
                             "--transactions", "60",
                             "--topology", "dcs:2x4:rtt_ms=40")
        assert code == 0
        assert "topology: 2 DCs x 4 sites" in text
        assert "cross-DC msgs=" in text
        assert "cross-DC round trips/commit=" in text

    def test_uniform_topology_prints_no_wan_noise(self):
        code, text = run_cli("simulate", "2PC", "--mpl", "1",
                             "--transactions", "60",
                             "--topology", "uniform")
        assert code == 0
        assert "topology: uniform" in text

    @pytest.mark.parametrize("bad", [
        "bogus", "dcs:2x2", "dcs:2x2:rtt_ms=-1", "matrix:0,20;20",
    ])
    def test_malformed_topology_rejected_at_the_parser(self, bad):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "2PC", "--topology", bad])

    def test_topology_parse_error_lists_accepted_forms(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "2PC", "--topology", "bogus"])
        err = capsys.readouterr().err
        assert "uniform" in err
        assert "dcs:" in err
        assert "matrix:" in err

    def test_site_count_mismatch_is_a_cli_error(self):
        # dcs:2x2 places 4 sites; the model defaults to 8.
        code, text = run_cli("simulate", "2PC", "--transactions", "10",
                             "--topology", "dcs:2x2:rtt_ms=40")
        assert code == 2
        assert text.startswith("error:")
        assert "num_sites=8" in text

    def test_local_cohorts_without_topology_is_a_cli_error(self):
        code, text = run_cli("simulate", "2PC", "--transactions", "10",
                             "--local-cohorts")
        assert code == 2
        assert text.startswith("error:")
        assert "prefer_local_cohorts" in text

    def test_saturation_accepts_topology(self):
        code, text = run_cli("saturation", "--protocols", "2PC",
                             "--rates", "4", "--transactions", "40",
                             "--topology", "dcs:2x4:rtt_ms=5", "--quiet")
        assert code == 0
        assert "saturation" in text

    def test_saturation_topology_mismatch_is_a_cli_error(self):
        code, text = run_cli("saturation", "--protocols", "2PC",
                             "--rates", "4", "--transactions", "40",
                             "--topology", "dcs:3x2:rtt_ms=5", "--quiet")
        assert code == 2
        assert text.startswith("error:")


class TestWan:
    def test_wan_smoke(self):
        code, text = run_cli("wan", "--protocols", "2PC,PC",
                             "--rtts", "0,40", "--placements", "spread",
                             "--transactions", "40", "--quiet")
        assert code == 0
        assert "wan: commit latency" in text
        assert "placement: spread" in text
        assert "fastest commit" in text

    def test_wan_progress_lines(self):
        code, text = run_cli("wan", "--protocols", "2PC",
                             "--rtts", "0", "--placements", "local",
                             "--transactions", "30")
        assert code == 0
        assert "wan: 2PC @ rtt=0ms (local)" in text

    def test_wan_bad_rtts_is_a_cli_error(self):
        code, text = run_cli("wan", "--rtts", "abc",
                             "--transactions", "10")
        assert code == 2
        assert text.startswith("error:")

    def test_wan_bad_placement_is_a_cli_error(self):
        code, text = run_cli("wan", "--placements", "nearby",
                             "--transactions", "10")
        assert code == 2
        assert text.startswith("error:")

    def test_wan_uneven_dcs_is_a_cli_error(self):
        code, text = run_cli("wan", "--dcs", "3", "--transactions", "10")
        assert code == 2
        assert text.startswith("error:")


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_python_dash_m_repro_entry_point():
    import subprocess
    import sys
    proc = subprocess.run([sys.executable, "-m", "repro", "list"],
                          capture_output=True, text=True, timeout=60)
    assert proc.returncode == 0
    assert "E1" in proc.stdout
