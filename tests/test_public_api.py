"""Tests for the top-level package API and repo-level consistency."""

import pathlib

import pytest

import repro

ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestBuildSystem:
    def test_defaults(self):
        system = repro.build_system("2PC")
        assert system.params.mpl == 8
        assert system.protocol.name == "2PC"

    def test_overrides_applied(self):
        system = repro.build_system("OPT", mpl=3, dist_degree=2)
        assert system.params.mpl == 3
        assert system.params.dist_degree == 2

    def test_cent_switches_topology(self):
        system = repro.build_system("CENT")
        assert system.params.topology is repro.Topology.CENTRALIZED
        assert len(system.sites) == 1

    def test_explicit_params_object(self):
        params = repro.ModelParams(mpl=2, num_sites=4, db_size=2000)
        system = repro.build_system("PC", params=params)
        assert system.params.mpl == 2
        # The original params object is not mutated by CENT handling.
        repro.build_system("CENT", params=params)
        assert params.topology is repro.Topology.DISTRIBUTED

    def test_invalid_override_rejected(self):
        with pytest.raises(ValueError):
            repro.build_system("2PC", mpl=-1)

    def test_seed_overrides_params_seed(self):
        a = repro.build_system("2PC", seed=1)
        b = repro.build_system("2PC", seed=2)
        assert a.streams.seed != b.streams.seed


class TestSimulateFunction:
    def test_returns_result(self):
        result = repro.simulate("DPCC", mpl=1, num_sites=2, db_size=400,
                                dist_degree=2, cohort_size=2,
                                measured_transactions=40)
        assert result.protocol == "DPCC"
        assert result.committed >= 40

    def test_all_protocol_names_exposed(self):
        assert len(repro.PROTOCOL_NAMES) == 15
        for name in repro.PROTOCOL_NAMES:
            assert repro.create_protocol(name).name == name

    def test_version(self):
        assert repro.__version__


class TestRepoConsistency:
    """The docs must not drift from the code."""

    def test_design_doc_bench_targets_exist(self):
        design = (ROOT / "DESIGN.md").read_text()
        for line in design.splitlines():
            if "benchmarks/bench_" in line:
                name = line.split("benchmarks/")[1].split("`")[0]
                assert (ROOT / "benchmarks" / name).exists(), (
                    f"DESIGN.md references missing {name}")

    def test_design_doc_lists_all_registered_experiments(self):
        from repro.experiments import experiment_ids
        design = (ROOT / "DESIGN.md").read_text()
        for core_id in ("E1", "E2", "E4", "E5", "E6", "E7"):
            assert core_id in design

    def test_readme_examples_exist(self):
        readme = (ROOT / "README.md").read_text()
        for line in readme.splitlines():
            if line.startswith("| `") and ".py" in line:
                name = line.split("`")[1]
                assert (ROOT / "examples" / name).exists(), (
                    f"README references missing example {name}")

    def test_every_benchmark_covers_a_paper_artifact(self):
        benches = sorted((ROOT / "benchmarks").glob("bench_*.py"))
        names = {b.stem for b in benches}
        # One per table and figure, plus prose experiments + extensions.
        required = {
            "bench_table3_overheads", "bench_table4_overheads",
            "bench_fig1_rcdc", "bench_fig2_dc", "bench_exp3_fast_network",
            "bench_fig3_distribution", "bench_fig4_nonblocking",
            "bench_fig5_surprise", "bench_exp7_sequential",
            "bench_exp8_ablations",
        }
        assert required <= names

    def test_public_modules_have_docstrings(self):
        import importlib
        for module_name in (
                "repro", "repro.config", "repro.metrics", "repro.cli",
                "repro.failures", "repro.admission", "repro.trace",
                "repro.sim.engine", "repro.sim.events", "repro.sim.process",
                "repro.sim.resources", "repro.sim.rng", "repro.sim.stats",
                "repro.db.locks", "repro.db.deadlock", "repro.db.wal",
                "repro.db.site", "repro.db.network", "repro.db.system",
                "repro.db.transaction", "repro.db.workload", "repro.db.pages",
                "repro.core.base", "repro.core.two_phase",
                "repro.core.presumed_abort", "repro.core.presumed_commit",
                "repro.core.three_phase", "repro.core.optimistic",
                "repro.core.variants", "repro.core.centralized",
                "repro.core.unsolicited_vote", "repro.core.early_prepare",
                "repro.core.linear",
                "repro.experiments.base", "repro.experiments.overheads",
                "repro.analysis.tables", "repro.analysis.export"):
            module = importlib.import_module(module_name)
            assert module.__doc__, f"{module_name} lacks a docstring"
