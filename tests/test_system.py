"""System-level integration tests."""

import pytest

import repro
from repro.config import ModelParams, Topology
from repro.core import create_protocol
from repro.db.system import DistributedSystem
from repro.db.transaction import CohortAccess, TransactionSpec


def small_system(protocol="2PC", **overrides):
    defaults = dict(num_sites=4, db_size=2000, mpl=1, dist_degree=2,
                    cohort_size=3)
    defaults.update(overrides)
    return DistributedSystem(ModelParams(**defaults),
                             create_protocol(protocol))


class TestConstruction:
    def test_distributed_builds_one_site_per_logical_site(self):
        system = small_system()
        assert len(system.sites) == 4
        for site_id, site in enumerate(system.sites):
            assert site.site_id == site_id

    def test_site_for_distributed_is_identity(self):
        system = small_system()
        for i in range(4):
            assert system.site_for(i).site_id == i

    def test_centralized_maps_all_to_site_zero(self):
        system = small_system(topology=Topology.CENTRALIZED)
        assert len(system.sites) == 1
        for i in range(4):
            assert system.site_for(i) is system.sites[0]

    def test_centralized_disk_striping_mirrors_distributed(self):
        system = small_system(topology=Topology.CENTRALIZED,
                              num_data_disks=2)
        site = system.sites[0]
        assert len(site.data_disks) == 8
        directory = system.directory
        seen = set()
        for page in range(64):
            disk = site.data_disk_for(page)
            expected = (directory.site_of(page) * 2
                        + directory.disk_of(page))
            assert disk is site.data_disks[expected]
            seen.add(expected)
        assert seen == set(range(8))

    def test_lending_flag_propagates_to_lock_managers(self):
        plain = small_system("2PC")
        lending = small_system("OPT")
        assert not plain.sites[0].lock_manager.lending_enabled
        assert lending.sites[0].lock_manager.lending_enabled

    def test_infinite_resources_build_infinite_servers(self):
        from repro.sim.resources import InfiniteServer
        system = small_system(infinite_resources=True)
        assert isinstance(system.sites[0].cpu, InfiniteServer)
        assert all(isinstance(d, InfiniteServer)
                   for d in system.sites[0].data_disks)

    def test_protocol_bound_to_system(self):
        system = small_system()
        assert system.protocol.system is system


class TestRunControl:
    def test_run_returns_requested_commit_count(self):
        system = small_system()
        result = system.run(measured_transactions=50,
                            warmup_transactions=5)
        assert result.committed >= 50

    def test_run_validates_arguments(self):
        system = small_system()
        with pytest.raises(ValueError):
            system.run(measured_transactions=0)

    def test_zero_warmup_allowed(self):
        system = small_system()
        result = system.run(measured_transactions=20,
                            warmup_transactions=0)
        assert result.committed >= 20

    def test_start_idempotent(self):
        system = small_system()
        system.start()
        system.start()
        result = system.run(measured_transactions=20,
                            warmup_transactions=0)
        # If slots were spawned twice, the effective MPL would double
        # (visible as more than mpl*sites concurrent transactions).
        assert result.committed >= 20

    def test_result_snapshot_fields(self):
        result = small_system("OPT").run(measured_transactions=30,
                                         warmup_transactions=5)
        assert result.protocol == "OPT"
        assert result.mpl == 1
        assert result.elapsed_ms > 0
        assert "OPT" in result.summary()


class TestTransactionSpecValidation:
    def test_needs_accesses(self):
        with pytest.raises(ValueError):
            TransactionSpec(txn_id=1, origin_site=0, accesses=())

    def test_first_cohort_must_be_at_origin(self):
        access = CohortAccess(site_id=1, pages=(1,), updates=(True,))
        with pytest.raises(ValueError):
            TransactionSpec(txn_id=1, origin_site=0, accesses=(access,))

    def test_one_cohort_per_site(self):
        a = CohortAccess(site_id=0, pages=(0,), updates=(True,))
        b = CohortAccess(site_id=0, pages=(4,), updates=(True,))
        with pytest.raises(ValueError):
            TransactionSpec(txn_id=1, origin_site=0, accesses=(a, b))

    def test_cohort_access_validation(self):
        with pytest.raises(ValueError):
            CohortAccess(site_id=0, pages=(1, 2), updates=(True,))
        with pytest.raises(ValueError):
            CohortAccess(site_id=0, pages=(1, 1), updates=(True, False))

    def test_updated_pages_property(self):
        access = CohortAccess(site_id=0, pages=(1, 2, 3),
                              updates=(True, False, True))
        assert access.updated_pages == (1, 3)
        assert not access.is_read_only


class TestMplSemantics:
    def test_total_slots_equals_mpl_times_sites(self):
        system = small_system(mpl=3)
        system.start()
        # Run briefly; count distinct concurrently-live transactions.
        system.env.run(until=50.0)
        live = sum(1 for _ in range(1))  # placeholder to use env
        assert system.metrics.total_slots == 12

    def test_new_transaction_submitted_immediately_after_commit(self):
        system = small_system()
        result = system.run(measured_transactions=40,
                            warmup_transactions=5)
        # Closed system: far more transactions started than slots.
        assert system.transactions_started > 4 * 1


class TestAbortPath:
    def test_abort_transaction_idempotent(self):
        system = small_system()
        spec = system.workload.generate(0)
        txn = system._launch(spec, 0, 0.0)
        from repro.db.transaction import AbortReason
        system.abort_transaction(txn, AbortReason.DEADLOCK)
        system.abort_transaction(txn, AbortReason.LENDER_ABORT)
        assert txn.abort_reason is AbortReason.DEADLOCK

    def test_abort_after_outcome_ignored(self):
        system = small_system()
        spec = system.workload.generate(0)
        txn = system._launch(spec, 0, 0.0)
        from repro.db.transaction import AbortReason, TransactionOutcome
        txn.outcome = TransactionOutcome.COMMITTED
        system.abort_transaction(txn, AbortReason.DEADLOCK)
        assert not txn.aborting

    def test_locks_released_after_deadlock_abort(self):
        """After a full contended run, no locks remain stuck."""
        system = small_system(mpl=6, db_size=240, dist_degree=3)
        system.run(measured_transactions=200, warmup_transactions=20)
        assert system.wfg.deadlocks_found > 0
        # Every page's entry map should only contain live state; after
        # draining the run there may be in-flight transactions, but no
        # aborted cohort may still hold anything.
        for site in system.sites:
            for page, entry in site.lock_manager._entries.items():
                for holder in entry.holders:
                    assert not holder.txn.aborting, (
                        f"aborting txn still holds page {page}")
