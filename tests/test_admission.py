"""Tests for the Half-and-Half admission controller."""

import pytest

import repro
from repro.admission import HalfAndHalfController
from repro.sim import Environment

from tests.db.conftest import FakeCohort


@pytest.fixture
def env():
    return Environment()


def drive(env, generator):
    done = []

    def proc():
        yield from generator
        done.append(True)

    env.process(proc())
    env.run(until=env.now)
    return done


class TestControllerUnit:
    def test_first_admission_immediate(self, env):
        controller = HalfAndHalfController(env)
        assert drive(env, controller.admit())
        assert controller.running == 1

    def test_gate_closes_at_blocked_fraction(self, env):
        controller = HalfAndHalfController(env, blocked_fraction_limit=0.5)
        for _ in range(2):
            drive(env, controller.admit())
        cohort = FakeCohort()
        cohort.txn.blocked_cohorts = 1
        controller.wait_change(cohort, True)
        assert controller.blocked_fraction == 0.5
        assert not controller.gate_open()
        waiting = drive(env, controller.admit())
        assert not waiting
        assert controller.waiting_at_gate == 1

    def test_unblock_reopens_gate(self, env):
        controller = HalfAndHalfController(env, blocked_fraction_limit=0.5)
        for _ in range(2):
            drive(env, controller.admit())
        cohort = FakeCohort()
        cohort.txn.blocked_cohorts = 1
        controller.wait_change(cohort, True)
        waiting = drive(env, controller.admit())
        assert not waiting
        cohort.txn.blocked_cohorts = 0
        controller.wait_change(cohort, False)
        env.run(until=env.now)
        assert waiting  # ticket granted
        assert controller.running == 3

    def test_release_reopens_gate(self, env):
        controller = HalfAndHalfController(env, blocked_fraction_limit=0.5)
        for _ in range(2):
            drive(env, controller.admit())
        cohort = FakeCohort()
        cohort.txn.blocked_cohorts = 1
        controller.wait_change(cohort, True)
        waiting = drive(env, controller.admit())
        assert not waiting
        # The blocked transaction finishes (its wait ended via abort
        # cleanup, then it released).
        cohort.txn.blocked_cohorts = 0
        controller.wait_change(cohort, False)
        controller.release()
        env.run(until=env.now)
        assert waiting

    def test_cancellation_fires_beyond_limit(self, env):
        cancelled = []
        controller = HalfAndHalfController(
            env, blocked_fraction_limit=0.5,
            cancel=lambda txn: cancelled.append(txn))
        for _ in range(2):
            drive(env, controller.admit())
        first = FakeCohort()
        first.txn.blocked_cohorts = 1
        controller.wait_change(first, True)   # 1/2 = limit: no cancel
        assert cancelled == []
        second = FakeCohort()
        second.txn.blocked_cohorts = 1
        controller.wait_change(second, True)  # 2/2 > limit: cancel
        assert cancelled == [second.txn]
        assert controller.cancelled == 1

    def test_release_without_admit_rejected(self, env):
        controller = HalfAndHalfController(env)
        with pytest.raises(RuntimeError):
            controller.release()

    def test_bad_limit_rejected(self, env):
        with pytest.raises(ValueError):
            HalfAndHalfController(env, blocked_fraction_limit=0.0)

    def test_fifo_admission_order(self, env):
        controller = HalfAndHalfController(env, blocked_fraction_limit=0.5)
        for _ in range(2):
            drive(env, controller.admit())
        blocker = FakeCohort()
        blocker.txn.blocked_cohorts = 1
        controller.wait_change(blocker, True)
        first = drive(env, controller.admit())
        second = drive(env, controller.admit())
        blocker.txn.blocked_cohorts = 0
        controller.wait_change(blocker, False)
        env.run(until=env.now)
        assert first
        # Second admit may or may not pass depending on the fraction
        # after the first grant; the order requirement is only that the
        # first ticket went first.


class TestEndToEnd:
    def test_admission_control_recovers_thrashing_throughput(self):
        plain = repro.simulate("2PC", mpl=10, measured_transactions=400)
        controlled = repro.simulate("2PC", mpl=10, admission_control=True,
                                    measured_transactions=400)
        assert controlled.throughput > 1.15 * plain.throughput

    def test_load_control_cancellations_recorded(self):
        result = repro.simulate("2PC", mpl=10, admission_control=True,
                                measured_transactions=300)
        assert result.aborts_by_reason.get("load_control", 0) > 0

    def test_no_effect_at_low_mpl(self):
        plain = repro.simulate("2PC", mpl=1, measured_transactions=150)
        controlled = repro.simulate("2PC", mpl=1, admission_control=True,
                                    measured_transactions=150)
        # With one transaction per site there is little to gate (the
        # occasional cancellation still perturbs the trajectory).
        assert controlled.throughput == pytest.approx(plain.throughput,
                                                      rel=0.12)

    def test_validation_of_config_limit(self):
        with pytest.raises(ValueError):
            repro.ModelParams(admission_blocked_limit=1.5)
