"""Blocking-cost coverage across every crash scenario (ISSUE 3
satellite): all three blocking protocols plus the 3PC termination
path, with the event stream proving the injected run is
indistinguishable from a healthy one right up to the crash instant.
"""

import pytest

from repro.config import ModelParams
from repro.core import create_protocol
from repro.db.system import DistributedSystem
from repro.failures import run_crash_scenario
from repro.obs import EventLog
from repro.obs.events import EventKind

CRASH_MS = 5_000.0
TIMEOUT_MS = 500.0
TXNS = 150
SEED = 11

BLOCKING = ("2PC", "PA", "PC")
ALL = BLOCKING + ("3PC",)


def _params():
    return ModelParams(mpl=4)


@pytest.fixture(scope="module")
def reports():
    return {name: run_crash_scenario(
        name, crash_duration_ms=CRASH_MS, decision_timeout_ms=TIMEOUT_MS,
        params=_params(), measured_transactions=TXNS, seed=SEED)
        for name in ALL}


class TestUnblockLatencyOrdering:
    @pytest.mark.parametrize("protocol", BLOCKING)
    def test_every_blocking_protocol_blocks_for_the_outage(self, reports,
                                                           protocol):
        latency = reports[protocol].unblock_latency_ms
        # Cohorts hold their locks until the master recovers: the
        # unblock latency is the crash duration plus protocol rounds.
        assert CRASH_MS <= latency < CRASH_MS + 2_000.0

    def test_3pc_unblocks_at_the_decision_timeout(self, reports):
        latency = reports["3PC"].unblock_latency_ms
        assert TIMEOUT_MS <= latency < CRASH_MS / 2, (
            "the termination protocol must release locks on the "
            "decision timeout, not at master recovery")

    def test_strict_ordering_nonblocking_beats_all_blocking(self, reports):
        worst_3pc = reports["3PC"].unblock_latency_ms
        for protocol in BLOCKING:
            assert worst_3pc < reports[protocol].unblock_latency_ms

    @pytest.mark.parametrize("protocol", ALL)
    def test_every_target_cohort_releases(self, reports, protocol):
        assert len(reports[protocol].release_times_ms) == \
            _params().dist_degree


class TestEventStreamPrefix:
    """An injected run must look exactly like a healthy run until the
    crash: same events, same order, same timestamps."""

    @pytest.mark.parametrize("protocol", ALL)
    def test_prefix_identical_to_healthy_run(self, protocol):
        crash_log = EventLog()
        report = run_crash_scenario(
            protocol, crash_duration_ms=CRASH_MS,
            decision_timeout_ms=TIMEOUT_MS, params=_params(),
            measured_transactions=TXNS, seed=SEED, event_log=crash_log)

        healthy = DistributedSystem(_params(), create_protocol(protocol),
                                    seed=SEED)
        healthy_log = EventLog().attach(healthy.bus)
        healthy.run(measured_transactions=TXNS, warmup_transactions=0)

        crash_time = report.crash_time_ms
        crash_prefix = crash_log.as_dicts(until=crash_time)
        healthy_prefix = healthy_log.as_dicts(until=crash_time)
        assert len(crash_prefix) > 500, "prefix too short to be meaningful"
        assert crash_prefix == healthy_prefix
        # ... and the streams diverge after it: the injected run
        # records the crash, the healthy run never does.
        assert len(crash_log.of_kind(EventKind.SITE_CRASH)) == 1
        if protocol in BLOCKING:
            # Blocking masters must recover to finish their protocol;
            # a 3PC run can end before the crashed master's timer fires
            # (its cohorts already terminated without it).
            assert len(crash_log.of_kind(EventKind.SITE_RECOVER)) == 1
        assert healthy_log.of_kind(EventKind.SITE_CRASH) == []
