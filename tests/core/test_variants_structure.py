"""Structural tests of the protocol class hierarchy and registry."""

import pytest

import repro
from repro.core import (
    CommitProtocol,
    OptimisticCommit,
    OptimisticPresumedAbort,
    OptimisticPresumedCommit,
    OptimisticThreePhase,
    PresumedAbort,
    PresumedCommit,
    ThreePhaseCommit,
    TwoPhaseCommit,
    create_protocol,
)
from repro.core.linear import LinearTwoPhaseCommit, OptimisticLinear


class TestHierarchy:
    def test_opt_variants_subclass_their_bases(self):
        assert issubclass(OptimisticCommit, TwoPhaseCommit)
        assert issubclass(OptimisticPresumedAbort, PresumedAbort)
        assert issubclass(OptimisticPresumedCommit, PresumedCommit)
        assert issubclass(OptimisticThreePhase, ThreePhaseCommit)
        assert issubclass(OptimisticLinear, LinearTwoPhaseCommit)

    def test_lending_flags(self):
        lending = {"OPT", "OPT-PA", "OPT-PC", "OPT-3PC", "OPT-LIN"}
        for name in repro.PROTOCOL_NAMES:
            protocol = create_protocol(name)
            assert protocol.lending == (name in lending), name

    def test_non_blocking_flags(self):
        for name in repro.PROTOCOL_NAMES:
            protocol = create_protocol(name)
            expected = name in ("3PC", "OPT-3PC", "PAXOS")
            assert protocol.non_blocking == expected, name
        # F = 0 degenerates to plain (blocking) 2PC.
        assert not create_protocol("PAXOS:f=0").non_blocking

    def test_every_protocol_is_a_commit_protocol(self):
        for name in repro.PROTOCOL_NAMES:
            assert isinstance(create_protocol(name), CommitProtocol)

    def test_factories_return_fresh_instances(self):
        a = create_protocol("OPT")
        b = create_protocol("OPT")
        assert a is not b

    def test_registry_names_match_instances(self):
        for name in repro.PROTOCOL_NAMES:
            assert create_protocol(name).name == name

    def test_abstract_base_unusable(self):
        with pytest.raises(TypeError):
            CommitProtocol()  # type: ignore[abstract]


class TestBindContract:
    def test_bind_sets_system(self):
        protocol = create_protocol("2PC")
        assert protocol.system is None
        system = repro.build_system("2PC", num_sites=2, db_size=400,
                                    dist_degree=1, cohort_size=2, mpl=1)
        assert system.protocol.system is system

    def test_reusing_protocol_instance_rebinds(self):
        from repro.config import ModelParams
        from repro.db.system import DistributedSystem
        protocol = create_protocol("PC")
        params = ModelParams(num_sites=2, db_size=400, dist_degree=1,
                             cohort_size=2, mpl=1)
        first = DistributedSystem(params, protocol)
        second = DistributedSystem(params, protocol)
        assert protocol.system is second
