"""Degenerate configurations: single-cohort transactions, hybrid
topologies.  These exercise boundary paths in every protocol."""

import pytest

import repro
from repro.config import ModelParams, Topology


def run_single_cohort(protocol, **overrides):
    """dist_degree=1: the master's only cohort is local; every message
    in the protocol is free."""
    defaults = dict(num_sites=4, db_size=2000, mpl=1, dist_degree=1,
                    cohort_size=3, measured_transactions=60,
                    warmup_transactions=10)
    defaults.update(overrides)
    return repro.simulate(protocol, **defaults)


class TestSingleCohortTransactions:
    @pytest.mark.parametrize("protocol", repro.PROTOCOL_NAMES)
    def test_all_protocols_handle_dist_degree_one(self, protocol):
        result = run_single_cohort(protocol)
        assert result.committed >= 60
        # No remote messages whatsoever.
        assert result.overheads.execution_messages == 0
        assert result.overheads.commit_messages == 0

    def test_2pc_forced_writes_shrink_with_one_cohort(self):
        result = run_single_cohort("2PC")
        # 1 prepare + master commit + cohort commit = 3.
        assert result.overheads.forced_writes == 3

    def test_linear_chain_of_one_decides_immediately(self):
        """A one-cohort chain is all tail: one forced decision write."""
        result = run_single_cohort("LIN-2PC")
        assert result.overheads.forced_writes == 1

    def test_ep_single_cohort(self):
        # Collecting + prepare + master commit.
        result = run_single_cohort("EP")
        assert result.overheads.forced_writes == 3


class TestHybridTopologies:
    def test_opt_on_centralized_topology(self):
        """Lending works within a single physical site too."""
        params = ModelParams(num_sites=4, db_size=300, mpl=6,
                             dist_degree=2, cohort_size=3,
                             topology=Topology.CENTRALIZED)
        result = repro.simulate("OPT", params=params,
                                measured_transactions=300,
                                warmup_transactions=30)
        assert result.committed >= 300
        assert result.borrow_ratio > 0

    def test_3pc_on_centralized_topology(self):
        params = ModelParams(num_sites=2, db_size=400, mpl=2,
                             dist_degree=2, cohort_size=2,
                             topology=Topology.CENTRALIZED)
        result = repro.simulate("3PC", params=params,
                                measured_transactions=100,
                                warmup_transactions=10)
        assert result.committed >= 100
        # All messages local: only the forced writes remain.
        assert result.overheads.commit_messages == 0
        assert result.overheads.forced_writes == 8  # 3N + 2 with N=2

    def test_dpcc_on_centralized_equals_cent(self):
        """DPCC on the centralized topology *is* CENT by construction."""
        params = ModelParams(num_sites=2, db_size=400, mpl=2,
                             dist_degree=2, cohort_size=2,
                             topology=Topology.CENTRALIZED)
        dpcc = repro.simulate("DPCC", params=params,
                              measured_transactions=150,
                              warmup_transactions=10)
        cent = repro.simulate("CENT", params=params,
                              measured_transactions=150,
                              warmup_transactions=10)
        assert dpcc.throughput == cent.throughput
        assert dpcc.response_time_ms == cent.response_time_ms


class TestMaximumDistribution:
    def test_dist_degree_equals_num_sites(self):
        """A cohort at every site."""
        result = repro.simulate("OPT", num_sites=4, db_size=2000,
                                mpl=2, dist_degree=4, cohort_size=2,
                                measured_transactions=100,
                                warmup_transactions=10)
        assert result.committed >= 100
        # 2 x 3 remote cohorts execution messages.
        assert result.overheads.execution_messages == 6
