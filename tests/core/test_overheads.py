"""Protocol overhead counts must match the paper's Tables 3 and 4 exactly.

With no surprise aborts and low contention every transaction commits, so
the measured per-transaction averages are integers: the table entries.

Table 3 (DistDegree = 3):            Table 4 (DistDegree = 6):

  proto  exec  forced  commit          proto  exec  forced  commit
  2PC      4      7       8            2PC     10     13      20
  PA       4      7       8            PA      10     13      20
  PC       4      5       6            PC      10      8      15
  3PC      4     11      12            3PC     10     20      30
  DPCC     4      1       0            DPCC    10      1       0
  CENT     0      1       0            CENT     0      1       0
"""

import pytest

import repro
from repro.config import ModelParams

TABLE3 = {
    "2PC": (4, 7, 8),
    "PA": (4, 7, 8),
    "PC": (4, 5, 6),
    "3PC": (4, 11, 12),
    "OPT": (4, 7, 8),        # OPT costs exactly what 2PC costs
    "OPT-PA": (4, 7, 8),
    "OPT-PC": (4, 5, 6),
    "OPT-3PC": (4, 11, 12),
    "DPCC": (4, 1, 0),
    "CENT": (0, 1, 0),
}

TABLE4 = {
    "2PC": (10, 13, 20),
    "PA": (10, 13, 20),
    "PC": (10, 8, 15),
    "3PC": (10, 20, 30),
    "DPCC": (10, 1, 0),
    "CENT": (0, 1, 0),
}


def _measure(protocol, dist_degree, cohort_size):
    # A large database keeps the run conflict-free (mpl=1 per site) so
    # every transaction commits first try and the averages are exact.
    params = ModelParams(num_sites=8, db_size=48000, mpl=1,
                         dist_degree=dist_degree, cohort_size=cohort_size)
    result = repro.simulate(protocol, params=params,
                            measured_transactions=60,
                            warmup_transactions=10)
    assert result.aborted == 0, "overhead check requires abort-free run"
    return result.overheads.rounded()


@pytest.mark.parametrize("protocol,expected", sorted(TABLE3.items()))
def test_table3_overheads_dist_degree_3(protocol, expected):
    exec_msgs, forced, commit_msgs = _measure(protocol, 3, 6)
    assert (exec_msgs, forced, commit_msgs) == expected


@pytest.mark.parametrize("protocol,expected", sorted(TABLE4.items()))
def test_table4_overheads_dist_degree_6(protocol, expected):
    exec_msgs, forced, commit_msgs = _measure(protocol, 6, 3)
    assert (exec_msgs, forced, commit_msgs) == expected


def test_sequential_transactions_same_overheads():
    """Sequential execution changes timing, not message/log counts."""
    params = ModelParams(num_sites=8, db_size=2400, mpl=1,
                         trans_type=repro.TransactionType.SEQUENTIAL)
    result = repro.simulate("2PC", params=params, measured_transactions=40,
                            warmup_transactions=5)
    assert result.overheads.rounded() == (4, 7, 8)
