"""Behavioural tests for the commit protocols (system level)."""

import pytest

import repro
from repro.config import ModelParams, Topology, TransactionType

from tests.core.conftest import run_small, small_params


class TestBasicCommitment:
    @pytest.mark.parametrize("protocol", repro.PROTOCOL_NAMES)
    def test_every_protocol_commits_transactions(self, protocol):
        result = run_small(protocol)
        assert result.committed >= 120
        assert result.throughput > 0
        assert result.response_time_ms > 0

    @pytest.mark.parametrize("protocol", ["2PC", "OPT", "3PC", "PC"])
    def test_sequential_execution_commits(self, protocol):
        result = run_small(protocol,
                           trans_type=TransactionType.SEQUENTIAL,
                           measured=60, warmup=10)
        assert result.committed >= 60

    def test_cent_runs_centralized(self):
        system = repro.build_system("CENT", params=small_params())
        assert system.params.topology is Topology.CENTRALIZED
        assert len(system.sites) == 1
        # Aggregate resources.
        assert system.sites[0].cpu.capacity == 4  # 4 sites x 1 cpu
        assert len(system.sites[0].data_disks) == 8
        result = system.run(measured_transactions=80,
                            warmup_transactions=10)
        assert result.committed >= 80
        assert result.overheads.rounded() == (0, 1, 0)

    def test_dpcc_runs_distributed_with_free_commit(self):
        system = repro.build_system("DPCC", params=small_params())
        assert len(system.sites) == 4
        result = system.run(measured_transactions=80,
                            warmup_transactions=10)
        assert result.overheads.rounded() == (4, 1, 0)

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            repro.create_protocol("4PC")

    def test_protocol_names_case_insensitive(self):
        assert repro.create_protocol("opt-3pc").name == "OPT-3PC"


class TestDeterminism:
    def test_identical_runs_identical_results(self):
        a = run_small("OPT", mpl=4, db_size=400)
        b = run_small("OPT", mpl=4, db_size=400)
        assert a.throughput == b.throughput
        assert a.response_time_ms == b.response_time_ms
        assert a.aborted == b.aborted
        assert a.borrow_ratio == b.borrow_ratio

    def test_different_seeds_differ(self):
        base = small_params(mpl=4, db_size=400)
        a = repro.simulate("2PC", params=base, measured_transactions=120,
                           warmup_transactions=20, seed=1)
        b = repro.simulate("2PC", params=base, measured_transactions=120,
                           warmup_transactions=20, seed=2)
        assert a.throughput != b.throughput

    def test_pa_identical_to_2pc_without_surprise_aborts(self):
        """Paper Section 5.2: 'PA reduces to 2PC and performs
        identically' when nothing aborts in the commit phase."""
        contended = dict(mpl=6, db_size=400, measured=300, warmup=50)
        a = run_small("2PC", **contended)
        b = run_small("PA", **contended)
        assert a.throughput == b.throughput
        assert a.response_time_ms == b.response_time_ms


class TestLending:
    def test_opt_borrows_under_contention(self):
        result = run_small("OPT", mpl=6, db_size=400, measured=300,
                           warmup=50)
        assert result.borrow_ratio > 0
        assert result.shelf_entries >= 0

    def test_2pc_never_borrows(self):
        result = run_small("2PC", mpl=6, db_size=400, measured=300,
                           warmup=50)
        assert result.borrow_ratio == 0
        assert result.shelf_entries == 0

    def test_opt_blocks_less_than_2pc(self):
        contended = dict(mpl=6, db_size=400, measured=300, warmup=50)
        blocked_2pc = run_small("2PC", **contended).block_ratio
        blocked_opt = run_small("OPT", **contended).block_ratio
        assert blocked_opt < blocked_2pc

    def test_opt_3pc_borrows_more_than_opt(self):
        """The prepared window is longer under 3PC, so lending has more
        opportunity (paper Section 5.6)."""
        contended = dict(mpl=8, db_size=400, measured=400, warmup=50)
        ratio_opt = run_small("OPT", **contended).borrow_ratio
        ratio_opt3pc = run_small("OPT-3PC", **contended).borrow_ratio
        assert ratio_opt3pc > ratio_opt

    def test_no_lender_abort_cascades_without_surprise_aborts(self):
        result = run_small("OPT", mpl=6, db_size=400, measured=300,
                           warmup=50)
        assert "lender_abort" not in result.aborts_by_reason


class TestSurpriseAborts:
    def test_surprise_aborts_produce_aborts(self):
        result = run_small("2PC", surprise_abort_prob=0.10, measured=300,
                           warmup=50)
        assert result.aborts_by_reason.get("surprise_vote", 0) > 0

    def test_cohort_abort_prob_translates_to_txn_prob(self):
        """1 - (1-p)^3 at dist_degree 3: p=0.05 -> about 14%."""
        result = run_small("2PC", surprise_abort_prob=0.05, measured=800,
                           warmup=100)
        surprise = result.aborts_by_reason.get("surprise_vote", 0)
        total = result.committed + surprise
        ratio = surprise / total
        assert 0.09 < ratio < 0.20

    def test_lender_abort_cascade_bounded(self):
        """Lender aborts abort their borrowers (chain length one)."""
        result = run_small("OPT", surprise_abort_prob=0.10, mpl=6,
                           db_size=400, measured=400, warmup=50)
        # With contention plus surprise aborts, some borrowers must die.
        assert result.aborts_by_reason.get("lender_abort", 0) > 0

    def test_committed_overheads_unchanged_by_surprise_aborts(self):
        result = run_small("2PC", surprise_abort_prob=0.05,
                           db_size=40000, measured=300, warmup=50)
        # Committing transactions still pay exactly the Table 3 costs.
        assert result.overheads.rounded() == (4, 7, 8)

    def test_zero_probability_means_no_surprise_aborts(self):
        result = run_small("2PC", surprise_abort_prob=0.0, measured=200,
                           warmup=20)
        assert "surprise_vote" not in result.aborts_by_reason


class TestDeadlockHandling:
    def test_deadlocks_detected_and_resolved_under_contention(self):
        result = run_small("2PC", mpl=8, db_size=240, cohort_size=3,
                           measured=400, warmup=50)
        assert result.deadlocks > 0
        assert result.aborts_by_reason.get("deadlock", 0) > 0
        # Despite deadlocks, the run completed (no hang): sanity.
        assert result.committed >= 400

    def test_aborted_transactions_eventually_commit(self):
        """Restarts must not starve: the closed system keeps going."""
        result = run_small("OPT", mpl=8, db_size=240, cohort_size=3,
                           measured=400, warmup=50)
        assert result.committed >= 400


class TestReadOnlyOptimization:
    def test_read_only_cohorts_skip_phase_two(self):
        params = small_params(update_prob=0.0, read_only_optimization=True,
                              db_size=40000)
        result = repro.simulate("2PC", params=params,
                                measured_transactions=100,
                                warmup_transactions=10)
        # Fully read-only transactions: one forced decision write only
        # (the master's), votes but no COMMIT/ACK round.
        # PREPARE (2 remote) + READ vote (2 remote) = 4 commit messages.
        exec_msgs, forced, commit_msgs = result.overheads.rounded()
        assert exec_msgs == 4
        assert commit_msgs == 4
        assert forced <= 1

    def test_read_only_optimization_off_by_default(self):
        params = small_params(update_prob=0.0, db_size=40000)
        result = repro.simulate("2PC", params=params,
                                measured_transactions=100,
                                warmup_transactions=10)
        # Without the optimization, read-only transactions still run the
        # full protocol: 7 forced writes, 8 messages.
        assert result.overheads.rounded() == (4, 7, 8)

    def test_mixed_workload_commits(self):
        params = small_params(update_prob=0.5, read_only_optimization=True,
                              mpl=4, db_size=400)
        result = repro.simulate("2PC", params=params,
                                measured_transactions=200,
                                warmup_transactions=30)
        assert result.committed >= 200
