"""Tests for the Section 2.5 extension protocols: EP and linear 2PC."""

import pytest

import repro
from repro.core.linear import LinearTwoPhaseCommit
from repro.db.wal import LogRecordKind

from tests.core.conftest import run_small


def overheads(protocol, **overrides):
    defaults = dict(mpl=1, db_size=48000, measured_transactions=60,
                    warmup_transactions=10)
    defaults.update(overrides)
    result = repro.simulate(protocol, **defaults)
    assert result.aborted == 0
    return result.overheads.rounded()


class TestEarlyPrepare:
    def test_message_minimal_overheads(self):
        """EP at DistDegree 3: 2 STARTWORK + 2 votes + 2 COMMIT = six
        messages total; collecting + 3 prepares + master commit = five
        forced writes."""
        assert overheads("EP") == (2, 5, 4)

    def test_fewest_messages_of_all_two_phase_protocols(self):
        def total(name):
            e, f, c = overheads(name)
            return e + c

        ep = total("EP")
        for other in ("2PC", "PA", "PC", "3PC", "UV", "LIN-2PC"):
            assert ep <= total(other)

    def test_collecting_forced_before_any_work(self):
        from repro.config import ModelParams
        from repro.core import create_protocol
        from repro.db.system import DistributedSystem
        system = DistributedSystem(
            ModelParams(num_sites=3, db_size=600, mpl=1, dist_degree=3,
                        cohort_size=2), create_protocol("EP"))
        spec = system.workload.generate(0)
        txn = system._launch(spec, 0, 0.0)
        system.env.run(until=txn.master.process)
        system.env.run()
        records = [r for site in system.sites
                   for r in site.log_manager.records if r.forced]
        collecting = [r.time for r in records
                      if r.kind is LogRecordKind.COLLECTING]
        prepares = [r.time for r in records
                    if r.kind is LogRecordKind.PREPARE]
        assert len(collecting) == 1
        assert all(collecting[0] <= t for t in prepares)

    def test_surprise_aborts(self):
        result = run_small("EP", surprise_abort_prob=0.10, measured=200,
                           warmup=30)
        assert result.aborts_by_reason.get("surprise_vote", 0) > 0

    def test_no_opt_variant(self):
        from repro.core.early_prepare import EarlyPrepare

        class OptimisticEP(EarlyPrepare):
            lending = True

        with pytest.raises(TypeError):
            OptimisticEP()


class TestLinear2PC:
    def test_chain_halves_commit_messages(self):
        """Linear chain at DistDegree 3: two PREPAREs rightward, two
        COMMITs leftward; master<->first-cohort messages are local."""
        assert overheads("LIN-2PC") == (4, 5, 4)

    def test_opt_lin_same_overheads(self):
        assert overheads("OPT-LIN") == overheads("LIN-2PC")

    def test_decision_record_at_chain_tail(self):
        from repro.config import ModelParams
        from repro.core import create_protocol
        from repro.db.system import DistributedSystem
        system = DistributedSystem(
            ModelParams(num_sites=3, db_size=600, mpl=1, dist_degree=3,
                        cohort_size=2), create_protocol("LIN-2PC"))
        spec = system.workload.generate(0)
        txn = system._launch(spec, 0, 0.0)
        system.env.run(until=txn.master.process)
        system.env.run()
        tail_site = txn.cohorts[-1].site
        tail_commits = [r for r in tail_site.log_manager.records
                        if r.kind is LogRecordKind.COMMIT and r.forced]
        assert tail_commits, "the chain tail must log the decision"
        # The tail's commit precedes every other forced commit record.
        all_commits = [r for site in system.sites
                       for r in site.log_manager.records
                       if r.kind is LogRecordKind.COMMIT and r.forced]
        assert min(r.time for r in all_commits) == \
            min(r.time for r in tail_commits)

    def test_serial_voting_lengthens_commit_phase(self):
        """The chain serializes voting, so responses are longer than
        parallel 2PC's at equal (low) contention."""
        lin = run_small("LIN-2PC", db_size=40000, measured=100, warmup=10)
        par = run_small("2PC", db_size=40000, measured=100, warmup=10)
        assert lin.response_time_ms > par.response_time_ms

    def test_opt_lin_lends_at_the_chain_head(self):
        """Lending works on the chain; borrowing concentrates at the
        head cohorts, whose prepared window spans the serialized round
        trip (the tail never prepares, so it never lends)."""
        contended = dict(mpl=8, db_size=400, measured=400, warmup=50)
        opt_lin = run_small("OPT-LIN", **contended)
        assert opt_lin.borrow_ratio > 0.5
        assert opt_lin.shelf_entries >= 0

    def test_lin_tail_never_prepares(self):
        """Structural check of the nuance documented in linear.py."""
        from repro.config import ModelParams
        from repro.core import create_protocol
        from repro.db.system import DistributedSystem
        from repro.db.transaction import CohortState
        system = DistributedSystem(
            ModelParams(num_sites=3, db_size=600, mpl=1, dist_degree=3,
                        cohort_size=2), create_protocol("OPT-LIN"))
        states = []
        spec = system.workload.generate(0)
        txn = system._launch(spec, 0, 0.0)
        tail = txn.cohorts[-1]
        original = tail.site.lock_manager.prepare

        def spying_prepare(cohort):
            states.append(cohort)
            original(cohort)

        tail.site.lock_manager.prepare = spying_prepare
        system.env.run(until=txn.master.process)
        system.env.run()
        assert tail not in states, "the chain tail decides, not prepares"
        assert tail.state is CohortState.COMMITTED

    def test_abort_released_in_both_directions(self):
        """Every surprise-abort run must terminate with no cohort left
        waiting for a PREPARE that never comes."""
        result = run_small("LIN-2PC", surprise_abort_prob=0.15,
                           mpl=4, measured=300, warmup=30)
        assert result.committed >= 300  # no hangs

    def test_chain_helper(self):
        from repro.config import ModelParams
        from repro.core import create_protocol
        from repro.db.system import DistributedSystem
        system = DistributedSystem(
            ModelParams(num_sites=4, db_size=800, mpl=1, dist_degree=3,
                        cohort_size=2), create_protocol("LIN-2PC"))
        spec = system.workload.generate(0)
        txn = system._launch(spec, 0, 0.0)
        c0, c1, c2 = txn.cohorts
        assert LinearTwoPhaseCommit._chain(c0) == (0, txn.master, c1)
        assert LinearTwoPhaseCommit._chain(c1) == (1, c0, c2)
        assert LinearTwoPhaseCommit._chain(c2) == (2, c1, None)
        system.env.run(until=txn.master.process)
