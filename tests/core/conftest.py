"""Fixtures for protocol tests: small, fast system configurations."""

from __future__ import annotations

import pytest

import repro
from repro.config import ModelParams


def small_params(**overrides):
    """A low-contention configuration that still exercises distribution."""
    defaults = dict(num_sites=4, db_size=2000, mpl=1, dist_degree=3,
                    cohort_size=4)
    defaults.update(overrides)
    return ModelParams(**defaults)


def run_small(protocol, measured=120, warmup=20, **overrides):
    """Run a small simulation and return its result."""
    return repro.simulate(protocol, params=small_params(**overrides),
                          measured_transactions=measured,
                          warmup_transactions=warmup)


@pytest.fixture
def quick_result():
    return run_small
