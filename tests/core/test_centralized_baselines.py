"""Focused tests for the CENT and DPCC baselines (paper Section 5.1)."""

import pytest

import repro
from repro.config import ModelParams, Topology


class TestDpccIsUpperBound:
    """DPCC 'in a sense represents an upper bound on achievable
    performance' for any distributed commit protocol."""

    @pytest.mark.parametrize("protocol", ["2PC", "PC", "3PC", "OPT",
                                          "UV", "EP", "LIN-2PC"])
    def test_dpcc_dominates_under_light_load(self, protocol):
        kwargs = dict(mpl=2, measured_transactions=300)
        dpcc = repro.simulate("DPCC", **kwargs)
        other = repro.simulate(protocol, **kwargs)
        # Allow a little sampling noise, but DPCC must not be beaten
        # materially: its commit phase is free.
        assert dpcc.throughput >= 0.97 * other.throughput, protocol


class TestCentEquivalence:
    def test_cent_resources_equal_distributed_aggregate(self):
        params = ModelParams(num_sites=8, num_cpus=2, num_data_disks=3,
                             num_log_disks=2, db_size=4800)
        cent = repro.build_system("CENT", params=params)
        site = cent.sites[0]
        assert site.cpu.capacity == 16
        assert len(site.data_disks) == 24
        assert len(site.log_manager.log_disks) == 16

    def test_cent_workload_identical_to_distributed(self):
        """Same seed -> the workload generator draws identical specs
        under both topologies (logical sites are preserved)."""
        cent = repro.build_system("CENT", seed=7)
        dist = repro.build_system("2PC", seed=7)
        for origin in range(4):
            spec_c = cent.workload.generate(origin)
            spec_d = dist.workload.generate(origin)
            assert spec_c.accesses == spec_d.accesses

    def test_cent_has_no_remote_messages(self):
        result = repro.simulate("CENT", mpl=2, measured_transactions=200)
        assert result.overheads.execution_messages == 0
        assert result.overheads.commit_messages == 0

    def test_cent_keeps_cohort_parallelism(self):
        """CENT retains the cohort structure (the paper's definition
        removes *distribution*, not intra-transaction parallelism): a
        parallel CENT transaction responds much faster than the same
        workload executed with sequential cohorts."""
        parallel = repro.simulate("CENT", mpl=1,
                                  measured_transactions=100)
        sequential = repro.simulate(
            "CENT", mpl=1, measured_transactions=100,
            trans_type=repro.TransactionType.SEQUENTIAL)
        assert parallel.response_time_ms < 0.7 * sequential.response_time_ms

    def test_commit_effect_exceeds_distribution_effect(self):
        """The paper's headline: (DPCC - 2PC) > (CENT - DPCC) under
        data contention."""
        kwargs = dict(mpl=4, infinite_resources=True,
                      measured_transactions=400)
        cent = repro.simulate("CENT", **kwargs).throughput
        dpcc = repro.simulate("DPCC", **kwargs).throughput
        two_pc = repro.simulate("2PC", **kwargs).throughput
        commit_cost = dpcc - two_pc
        distribution_cost = cent - dpcc
        assert commit_cost > distribution_cost
