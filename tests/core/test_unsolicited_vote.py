"""Tests for the Unsolicited Vote protocol (paper Section 2.5)."""

import pytest

import repro
from repro.core.unsolicited_vote import UnsolicitedVote

from tests.core.conftest import run_small


class TestOverheads:
    def test_prepare_round_eliminated(self):
        """UV at DistDegree 3: 2 execution messages (votes replace the
        WORKDONEs), 6 commit messages, 7 forced writes -- two messages
        fewer than 2PC in total."""
        result = repro.simulate("UV", mpl=1, db_size=48000,
                                measured_transactions=60,
                                warmup_transactions=10)
        assert result.aborted == 0
        assert result.overheads.rounded() == (2, 7, 6)

    def test_total_messages_below_2pc(self):
        uv = repro.simulate("UV", mpl=1, db_size=48000,
                            measured_transactions=60)
        two_pc = repro.simulate("2PC", mpl=1, db_size=48000,
                                measured_transactions=60)

        def total(result):
            o = result.overheads
            return o.execution_messages + o.commit_messages

        # Two PREPARE messages eliminated, two votes merged into the
        # completion reports: four fewer messages on the wire.
        assert total(uv) == total(two_pc) - 4


class TestBehaviour:
    def test_commits_under_contention(self):
        result = run_small("UV", mpl=6, db_size=400, measured=300,
                           warmup=50)
        assert result.committed >= 300
        assert result.borrow_ratio == 0  # no lending, ever

    def test_surprise_aborts_handled(self):
        result = run_small("UV", surprise_abort_prob=0.10, measured=300,
                           warmup=50)
        assert result.aborts_by_reason.get("surprise_vote", 0) > 0

    def test_sequential_execution(self):
        result = run_small("UV", measured=60, warmup=10,
                           trans_type=repro.TransactionType.SEQUENTIAL)
        assert result.committed >= 60

    def test_early_prepared_state_lengthens_lock_holding(self):
        """UV cohorts hold update locks in the prepared state from the
        moment they finish work -- in a parallel transaction whose
        siblings are still executing, that is *longer* than 2PC's
        prepared window, so UV blocks at least as much as 2PC."""
        contended = dict(mpl=6, db_size=400, measured=300, warmup=50)
        uv = run_small("UV", **contended)
        two_pc = run_small("2PC", **contended)
        assert uv.block_ratio >= 0.9 * two_pc.block_ratio


class TestOptIncompatibility:
    def test_lending_subclass_rejected(self):
        """Paper Section 3.2: OPT must not combine with UV."""

        class OptimisticUV(UnsolicitedVote):
            lending = True

        with pytest.raises(TypeError, match="bounded abort chain"):
            OptimisticUV()

    def test_uv_itself_never_lends(self):
        protocol = repro.create_protocol("UV")
        assert not protocol.lending
