"""Tests of the log *records* each protocol writes (kinds and forcing).

The overhead tables check totals; these tests check the structure: which
record kinds appear, which are forced, at master vs cohort sites.
"""

import pytest

from repro.config import ModelParams
from repro.core import create_protocol
from repro.db.system import DistributedSystem
from repro.db.transaction import TransactionOutcome
from repro.db.wal import LogRecordKind


def run_one(protocol, seed=None, **overrides):
    """Run exactly one conflict-free transaction; return (system, txn)."""
    defaults = dict(num_sites=3, db_size=600, mpl=1, dist_degree=3,
                    cohort_size=2)
    defaults.update(overrides)
    system = DistributedSystem(ModelParams(**defaults),
                               create_protocol(protocol), seed=seed)
    spec = system.workload.generate(0)
    txn = system._launch(spec, 0, 0.0)
    outcome = system.env.run(until=txn.master.process)
    system.env.run()  # drain cohort tails and async writes
    return system, txn, outcome


def records(system, forced=None):
    out = []
    for site in system.sites:
        for record in site.log_manager.records:
            if forced is None or record.forced == forced:
                out.append(record)
    return out


def kinds(system, forced=None):
    return [r.kind for r in records(system, forced)]


class TestCommitPaths:
    def test_2pc_record_structure(self):
        system, txn, outcome = run_one("2PC")
        assert outcome is TransactionOutcome.COMMITTED
        forced = kinds(system, forced=True)
        assert forced.count(LogRecordKind.PREPARE) == 3
        assert forced.count(LogRecordKind.COMMIT) == 4  # master + 3 cohorts
        unforced = kinds(system, forced=False)
        assert unforced == [LogRecordKind.END]

    def test_pc_collecting_record(self):
        system, txn, outcome = run_one("PC")
        forced = kinds(system, forced=True)
        assert forced.count(LogRecordKind.COLLECTING) == 1
        assert forced.count(LogRecordKind.PREPARE) == 3
        assert forced.count(LogRecordKind.COMMIT) == 1  # master only
        unforced = kinds(system, forced=False)
        # Cohort commit records exist but are not forced; no end record.
        assert unforced.count(LogRecordKind.COMMIT) == 3
        assert LogRecordKind.END not in unforced

    def test_3pc_precommit_records(self):
        system, txn, outcome = run_one("3PC")
        forced = kinds(system, forced=True)
        assert forced.count(LogRecordKind.PRECOMMIT) == 4  # master + 3
        assert forced.count(LogRecordKind.PREPARE) == 3
        assert forced.count(LogRecordKind.COMMIT) == 4

    def test_collecting_written_before_prepares(self):
        system, txn, outcome = run_one("PC")
        ordered = records(system, forced=True)
        collecting_time = next(r.time for r in ordered
                               if r.kind is LogRecordKind.COLLECTING)
        prepare_times = [r.time for r in ordered
                         if r.kind is LogRecordKind.PREPARE]
        assert all(collecting_time <= t for t in prepare_times)


class TestAbortPaths:
    def test_2pc_abort_records_forced(self):
        system, txn, outcome = run_one("2PC", surprise_abort_prob=1.0)
        assert outcome is TransactionOutcome.ABORTED
        forced = kinds(system, forced=True)
        # All three cohorts vote NO and force abort records; the master
        # forces its abort record too.
        assert forced.count(LogRecordKind.ABORT) == 4
        assert LogRecordKind.COMMIT not in forced

    def test_pa_abort_records_not_forced(self):
        system, txn, outcome = run_one("PA", surprise_abort_prob=1.0)
        assert outcome is TransactionOutcome.ABORTED
        forced = kinds(system, forced=True)
        assert LogRecordKind.ABORT not in forced
        unforced = kinds(system, forced=False)
        # NO-voters and the master write unforced aborts; no end record.
        assert unforced.count(LogRecordKind.ABORT) == 4
        assert LogRecordKind.END not in unforced

    def test_pa_commit_path_identical_to_2pc(self):
        sys_pa, _, _ = run_one("PA")
        sys_2pc, _, _ = run_one("2PC")
        assert kinds(sys_pa, forced=True) == kinds(sys_2pc, forced=True)
        assert kinds(sys_pa, forced=False) == kinds(sys_2pc, forced=False)

    def test_partial_vote_abort_mixed_records(self):
        """With p=0.5 some cohorts prepare before the abort decision:
        prepared cohorts force abort records and ACK (2PC), NO-voters
        force their own abort records."""
        system, txn, outcome = run_one("2PC", surprise_abort_prob=0.5, seed=3)
        if outcome is TransactionOutcome.ABORTED:
            forced = kinds(system, forced=True)
            aborts = forced.count(LogRecordKind.ABORT)
            prepares = forced.count(LogRecordKind.PREPARE)
            # Every cohort wrote either its own NO-abort or a prepare
            # followed by a decision abort; the master adds one abort.
            assert aborts + prepares >= 4
