"""End-to-end checks of invariants the paper states in prose."""

import pytest

import repro
from repro.config import ModelParams
from repro.db.transaction import CohortState


class TestNoCommitPhaseAborts:
    """Paper Section 4.2: 'with this CC mechanism, there is no
    possibility of serializability-induced aborts occurring in the
    commit processing stage.'  Deadlock victims are always still in
    their execution phase."""

    @pytest.mark.parametrize("protocol", ["2PC", "OPT", "3PC"])
    def test_victims_never_prepared(self, protocol):
        params = ModelParams(num_sites=4, db_size=240, mpl=6,
                             dist_degree=3, cohort_size=3)
        system = repro.build_system(protocol, params=params)
        original = system.abort_transaction
        violations = []

        def checking(txn, reason):
            if txn.outcome is None and not txn.aborting:
                for cohort in txn.cohorts:
                    if cohort.state in (CohortState.PREPARED,
                                        CohortState.PRECOMMITTED):
                        # Lender aborts can only strike *borrowers*,
                        # which are never prepared; deadlock victims
                        # are lock waiters, which prepared cohorts are
                        # not.
                        violations.append((txn.name, cohort.state))
            original(txn, reason)

        # The deadlock and lender-abort hooks call
        # ``self.abort_transaction``, which resolves to this instance
        # attribute, so every abort passes through the check.
        system.abort_transaction = checking
        result = system.run(measured_transactions=300,
                            warmup_transactions=30)
        assert result.deadlocks > 0, "the test needs real contention"
        assert violations == []


class TestBoundedMetrics:
    def test_block_ratio_in_unit_interval(self):
        for mpl in (1, 6):
            result = repro.simulate("2PC", mpl=mpl,
                                    measured_transactions=200)
            assert 0.0 <= result.block_ratio <= 1.0

    def test_abort_ratio_in_unit_interval(self):
        result = repro.simulate("OPT", mpl=8, surprise_abort_prob=0.05,
                                measured_transactions=200)
        assert 0.0 <= result.abort_ratio < 1.0


class TestOptCostsNothingExtra:
    """Section 3: OPT needs no additional messages or forced writes; it
    differs from 2PC only in lock-manager behaviour."""

    def test_identical_overheads_under_contention(self):
        kwargs = dict(mpl=6, measured_transactions=300)
        opt = repro.simulate("OPT", **kwargs)
        two_pc = repro.simulate("2PC", **kwargs)
        assert opt.overheads.rounded() == two_pc.overheads.rounded()

    def test_restart_delay_equals_running_mean(self):
        """Section 4: the restart delay heuristic tracks the average
        response time."""
        system = repro.build_system("2PC", mpl=4)
        system.run(measured_transactions=200)
        metrics = system.metrics
        assert metrics.restart_delay() == pytest.approx(
            metrics._lifetime_response.mean)
