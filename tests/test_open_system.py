"""Open-system workload tests (ISSUE PR 5 tentpole).

Contracts pinned here:

1. **Closed mode is untouched** -- ``WorkloadMode.CLOSED`` (the default)
   produces the exact historical :class:`SimulationResult` (no open
   fields, byte-identical dict shape), and uniform skew takes the
   historical sampling path (the golden fixture in
   ``tests/test_equivalence.py`` pins the trajectories themselves).
2. **Determinism** -- the same seed reproduces the same open-mode
   report and the same arrival/shed/dequeue event stream; arrival
   timing draws come from dedicated per-site substreams.
3. **Queueing behaviour** -- offered = carried + shed + still-queued
   accounting holds; overload sheds; percentiles are ordered.
4. **Skew** -- hot-spot and Zipf sampling concentrate accesses, return
   distinct in-range pages, and parse from the CLI syntax.
"""

import dataclasses

import pytest

import repro
from repro.config import ModelParams, WorkloadMode, open_system
from repro.db.pages import PageDirectory
from repro.db.system import OpenSimulationResult, SimulationResult
from repro.db.workload import AccessSkew, SkewKind, WorkloadGenerator
from repro.obs import EventLog
from repro.obs.events import EventKind, event_to_dict
from repro.sim.engine import Environment
from repro.sim.rng import RandomStreams
from repro.sim.stats import PercentileSample


def open_run(protocol="2PC", rate=1.0, transactions=120, seed=7,
             log_kinds=None, **overrides):
    """One open-mode run; returns (result, event log)."""
    log = EventLog(kinds=log_kinds)
    result = repro.simulate(
        protocol, open_system(arrival_rate_tps=rate, **overrides),
        measured_transactions=transactions, seed=seed,
        on_system=lambda s: log.attach(s.bus))
    return result, log


OPEN_KINDS = (EventKind.TXN_ARRIVE, EventKind.TXN_SHED,
              EventKind.TXN_DEQUEUE, EventKind.TXN_COMMIT)


# ----------------------------------------------------------------------
# Closed mode stays the historical model
# ----------------------------------------------------------------------
class TestClosedModeUnchanged:
    def test_closed_result_type_and_shape(self):
        result = repro.simulate("2PC", measured_transactions=40, mpl=2)
        assert type(result) is SimulationResult
        assert "offered" not in dataclasses.asdict(result)

    def test_no_open_events_in_closed_mode(self):
        log = EventLog(kinds=(EventKind.TXN_ARRIVE, EventKind.TXN_SHED,
                              EventKind.TXN_DEQUEUE))
        repro.simulate("2PC", measured_transactions=40, mpl=2,
                       on_system=lambda s: log.attach(s.bus))
        assert not log.events

    def test_explicit_closed_equals_default(self):
        base = repro.simulate("OPT", measured_transactions=40, mpl=2)
        explicit = repro.simulate("OPT", measured_transactions=40, mpl=2,
                                  workload_mode=WorkloadMode.CLOSED)
        assert dataclasses.asdict(base) == dataclasses.asdict(explicit)

    def test_uniform_skew_object_is_the_closed_path(self):
        # An explicit uniform AccessSkew must not perturb trajectories.
        base = repro.simulate("2PC", measured_transactions=40, mpl=2)
        skewed = repro.simulate("2PC", measured_transactions=40, mpl=2,
                                skew=AccessSkew())
        assert dataclasses.asdict(base) == dataclasses.asdict(skewed)


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
class TestOpenDeterminism:
    def test_same_seed_identical_report_and_event_stream(self):
        first, first_log = open_run(log_kinds=OPEN_KINDS)
        second, second_log = open_run(log_kinds=OPEN_KINDS)
        assert dataclasses.asdict(first) == dataclasses.asdict(second)
        assert ([event_to_dict(e) for e in first_log.events]
                == [event_to_dict(e) for e in second_log.events])

    def test_different_seed_diverges(self):
        first, _ = open_run(seed=7)
        second, _ = open_run(seed=8)
        assert dataclasses.asdict(first) != dataclasses.asdict(second)

    def test_skewed_open_run_reproducible(self):
        skew = AccessSkew.parse("hotspot:10:90")
        first, _ = open_run(rate=1.5, skew=skew)
        second, _ = open_run(rate=1.5, skew=skew)
        assert dataclasses.asdict(first) == dataclasses.asdict(second)

    def test_saturation_sweep_reproducible(self):
        from repro.experiments.saturation import SaturationSweep

        def run():
            sweep = SaturationSweep(("2PC", "OPT"), rates=(1.0, 2.0),
                                    measured_transactions=60, seed=3)
            return {key: dataclasses.asdict(point.result)
                    for key, point in sweep.run().points.items()}

        assert run() == run()


# ----------------------------------------------------------------------
# Queueing behaviour
# ----------------------------------------------------------------------
class TestOpenQueueing:
    def test_result_type_and_basic_fields(self):
        result, _ = open_run()
        assert isinstance(result, OpenSimulationResult)
        assert result.arrival_rate_tps == 1.0
        assert result.offered > 0
        assert result.committed >= 120
        assert result.throughput > 0

    def test_light_load_sheds_nothing(self):
        result, _ = open_run(rate=0.5)
        assert result.shed == 0
        assert result.shed_ratio == 0.0

    def test_overload_sheds_and_reports_queue_waits(self):
        # ~8x the per-site service ceiling with tiny queues: shedding
        # is unavoidable and queue waits are nonzero.
        result, _ = open_run(rate=12.0, transactions=150,
                             admission_queue_limit=8)
        assert result.shed > 0
        assert 0.0 < result.shed_ratio < 1.0
        assert result.queue_wait_mean_ms > 0.0
        assert result.mean_queue_length > 0.0

    def test_offered_accounting_is_consistent(self):
        result, log = open_run(rate=12.0, transactions=150,
                               admission_queue_limit=8,
                               log_kinds=OPEN_KINDS)
        arrives = [e for e in log.events
                   if e.kind is EventKind.TXN_ARRIVE]
        sheds = [e for e in log.events if e.kind is EventKind.TXN_SHED]
        # Events accumulate over warmup too; the report counts the
        # measured period only -- so event counts bound report counts.
        assert len(arrives) >= result.offered
        assert len(sheds) >= result.shed
        assert sum(1 for e in arrives if not e.admitted) == len(sheds)

    def test_percentiles_are_ordered(self):
        result, _ = open_run(rate=1.5, transactions=200)
        assert (0.0 < result.response_p50_ms <= result.response_p95_ms
                <= result.response_p99_ms)
        assert result.response_time_ms > 0.0

    def test_queue_wait_included_in_response(self):
        # Deep overload: mean response must exceed mean queue wait.
        result, _ = open_run(rate=12.0, transactions=150,
                             admission_queue_limit=8)
        assert result.response_time_ms > result.queue_wait_mean_ms

    def test_dequeue_wait_matches_arrival_to_start(self):
        _, log = open_run(log_kinds=(EventKind.TXN_DEQUEUE,))
        assert log.events
        for event in log.events:
            assert event.wait_ms >= 0.0


# ----------------------------------------------------------------------
# The bounded admission queue itself
# ----------------------------------------------------------------------
class TestBoundedAdmissionQueue:
    def make(self, limit=2):
        from repro.admission import BoundedAdmissionQueue
        return Environment(), BoundedAdmissionQueue

    def test_rejects_when_full(self):
        env, cls = self.make()
        queue = cls(env, limit=2)
        assert queue.offer("a") and queue.offer("b")
        assert queue.full
        assert not queue.offer("c")
        assert queue.offered == 3
        assert queue.shed == 1
        assert queue.admitted == 2

    def test_limit_must_be_positive(self):
        env, cls = self.make()
        with pytest.raises(ValueError, match="queue limit"):
            cls(env, limit=0)

    def test_fifo_handoff_to_waiting_getter(self):
        env, cls = self.make()
        queue = cls(env, limit=1)
        got = []

        def consumer():
            item = yield queue.get()
            got.append(item)

        env.process(consumer())
        env.run()
        assert not got  # parked: queue empty
        assert queue.offer("x")  # direct handoff, skips the buffer
        env.run()
        assert got == ["x"]
        assert len(queue) == 0


# ----------------------------------------------------------------------
# Access skew
# ----------------------------------------------------------------------
class TestAccessSkew:
    def test_parse_syntax(self):
        assert AccessSkew.parse("uniform").is_uniform
        hot = AccessSkew.parse("hotspot:10:90")
        assert hot.kind is SkewKind.HOTSPOT
        assert hot.hot_page_frac == pytest.approx(0.10)
        assert hot.hot_access_frac == pytest.approx(0.90)
        zipf = AccessSkew.parse("zipf:0.8")
        assert zipf.kind is SkewKind.ZIPF
        assert zipf.zipf_theta == pytest.approx(0.8)

    @pytest.mark.parametrize("bad", [
        "wat", "hotspot:0:90", "hotspot:100:90", "hotspot:10",
        "zipf:0", "zipf:-1", "zipf", "hotspot:a:b",
    ])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            AccessSkew.parse(bad)

    def generator(self, skew):
        params = ModelParams(skew=skew)
        directory = PageDirectory(params.db_size, params.num_sites,
                                  params.num_data_disks)
        return params, WorkloadGenerator(params, directory,
                                         RandomStreams(11))

    def sample_fractions(self, skew, draws=400):
        """Fraction of accesses landing in the hottest 10% of slots."""
        params, generator = self.generator(skew)
        pages_per_site = params.pages_per_site
        hot_cut = round(pages_per_site * 0.10)
        total = hot = 0
        for _ in range(draws):
            spec = generator.generate(0)
            for access in spec.accesses:
                site_pages = generator.directory.pages_at(access.site_id)
                for page in access.pages:
                    slot = site_pages.index(page)
                    total += 1
                    if slot < hot_cut:
                        hot += 1
        return hot / total

    def test_hotspot_concentrates_accesses(self):
        uniform_frac = self.sample_fractions(AccessSkew())
        hot_frac = self.sample_fractions(AccessSkew.parse("hotspot:10:90"))
        assert uniform_frac == pytest.approx(0.10, abs=0.03)
        assert hot_frac == pytest.approx(0.90, abs=0.05)

    def test_zipf_is_skewed_toward_low_slots(self):
        uniform_frac = self.sample_fractions(AccessSkew())
        zipf_frac = self.sample_fractions(AccessSkew.parse("zipf:0.9"))
        assert zipf_frac > 2 * uniform_frac

    def test_accesses_stay_distinct_and_in_range(self):
        for spec_text in ("hotspot:10:90", "zipf:0.8"):
            params, generator = self.generator(AccessSkew.parse(spec_text))
            for _ in range(50):
                spec = generator.generate(0)
                for access in spec.accesses:
                    assert len(set(access.pages)) == len(access.pages)
                    site_pages = set(
                        generator.directory.pages_at(access.site_id))
                    assert site_pages.issuperset(access.pages)

    def test_hotspot_survives_exhausted_hot_set(self):
        # 9 distinct pages may exceed the hot set (600 * 0.01 = 6):
        # draws redirect to the cold region instead of looping forever.
        skew = AccessSkew(kind=SkewKind.HOTSPOT, hot_page_frac=0.01,
                          hot_access_frac=0.99)
        _, generator = self.generator(skew)
        for _ in range(50):
            spec = generator.generate(0)
            for access in spec.accesses:
                assert len(set(access.pages)) == len(access.pages)

    def test_closed_mode_accepts_skew(self):
        result = repro.simulate("2PC", measured_transactions=40, mpl=2,
                                skew=AccessSkew.parse("hotspot:10:90"))
        assert type(result) is SimulationResult
        assert result.committed >= 40


# ----------------------------------------------------------------------
# Percentile accumulator
# ----------------------------------------------------------------------
class TestPercentileSample:
    def test_empty_returns_zero(self):
        assert PercentileSample().percentile(0.5) == 0.0

    def test_single_value(self):
        sample = PercentileSample()
        sample.add(42.0)
        assert sample.percentile(0.0) == 42.0
        assert sample.percentile(1.0) == 42.0

    def test_interpolation(self):
        sample = PercentileSample()
        for value in (10.0, 20.0, 30.0, 40.0):
            sample.add(value)
        assert sample.percentile(0.5) == pytest.approx(25.0)
        assert sample.percentile(0.0) == 10.0
        assert sample.percentile(1.0) == 40.0

    def test_insertion_order_irrelevant(self):
        a, b = PercentileSample(), PercentileSample()
        for value in (5.0, 1.0, 3.0):
            a.add(value)
        for value in (1.0, 3.0, 5.0):
            b.add(value)
        assert a.percentile(0.5) == b.percentile(0.5) == 3.0

    def test_rejects_bad_p(self):
        sample = PercentileSample()
        with pytest.raises(ValueError):
            sample.percentile(1.5)


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestOpenCli:
    def run_cli(self, *argv):
        import io

        from repro.cli import main
        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_simulate_open(self):
        code, text = self.run_cli(
            "simulate", "2PC", "--open", "--arrival-rate", "1.0",
            "--skew", "hotspot:10:90", "--transactions", "40")
        assert code == 0
        assert "open system:" in text
        assert "shed" in text

    def test_arrival_rate_without_open_is_an_error(self):
        code, text = self.run_cli("simulate", "2PC", "--arrival-rate",
                                  "2.0", "--transactions", "10")
        assert code == 2
        assert "requires --open" in text

    def test_saturation_subcommand(self):
        code, text = self.run_cli(
            "saturation", "--protocols", "2PC,OPT", "--rates", "0.5,1.5",
            "--transactions", "40", "--quiet")
        assert code == 0
        assert "saturation" in text
        assert "2PC" in text and "OPT" in text
