"""Correlated-failure plane tests (ISSUE PR 9 tentpole).

Contracts pinned here, on top of what ``test_faults.py`` already holds:

1. **Plan parsing** -- the ``--fault-plan`` DSL round-trips, rejects
   malformed specs with actionable messages, and a plan without a
   multi-DC topology is a configuration error (CLI ``error:`` exit 2).
2. **DC-granular semantics** -- a ``dc_crash`` takes every site of the
   datacenter down at the same instant; a ``partition`` drops exactly
   the messages crossing the cut (reason ``"partition"``) and heals as
   one event.
3. **Liveness** -- every registered protocol completes an aggressive
   DC-crash + link-partition sweep over ``dcs:2x2`` and ``dcs:3x2``
   with no hangs.
4. **The blocking result** -- under a coordinator-side DC loss, 2PC's
   blocked-lock time is strictly higher than 3PC's: the termination
   protocol is what non-blocking buys.
5. **Accounting** -- ``drops_by_reason`` partitions the network's drop
   total; the injector's ``messages_dropped`` excludes the topology's
   own wire loss (which is weather, not injected failure).
"""

import dataclasses
import io

import pytest

import repro
from repro.cli import main as cli_main
from repro.faults import (
    CrashEvent,
    FaultConfig,
    FaultPlan,
    RegionDirective,
    RegionPlan,
)
from repro.obs import EventLog
from repro.obs.events import EventKind, event_to_dict
from repro.sim.rng import RandomStreams

pytestmark = pytest.mark.faults

#: one DC outage then one partition -- both correlated shapes per run.
COMBINED_PLAN = "dc_crash:0:at=800:for=1500,partition:0|1:at=4000:for=1500"


def _region_run(protocol, topology, plan, num_sites, seed=7, mpl=2,
                transactions=40, log_kinds=None, **config_kwargs):
    """One region-fault run; returns (result, injector, system, log)."""
    captured = []
    log = EventLog(kinds=log_kinds)
    config = FaultConfig(region=RegionPlan.parse(plan), **config_kwargs)
    result = repro.simulate(
        protocol, mpl=mpl, num_sites=num_sites,
        network_topology=repro.NetworkTopology.parse(topology),
        measured_transactions=transactions, warmup_transactions=0,
        seed=seed,
        on_system=lambda s: (captured.append(s), log.attach(s.bus)),
        faults=config)
    return result, captured[0].faults, captured[0], log


# ----------------------------------------------------------------------
# Plan parsing and validation
# ----------------------------------------------------------------------
class TestRegionPlanParse:
    def test_scheduled_dc_crash(self):
        plan = RegionPlan.parse("dc_crash:1:at=500:for=2000")
        (directive,) = plan.directives
        assert directive == RegionDirective(
            kind="dc_crash", dc=1, at_ms=500.0, for_ms=2000.0)
        assert directive.is_scheduled
        assert directive.stream_name == "faults-dc-1"

    def test_partition_endpoints_normalize(self):
        plan = RegionPlan.parse("partition:2|0:at=0:for=100")
        (directive,) = plan.directives
        assert (directive.dc_a, directive.dc_b) == (0, 2)
        assert directive.dcs() == (0, 2)
        assert directive.stream_name == "faults-partition-0-2"

    def test_stochastic_variant(self):
        plan = RegionPlan.parse("partition:0|1:mttf=60000:mttr=3000")
        (directive,) = plan.directives
        assert not directive.is_scheduled
        assert directive.mttf_ms == 60_000.0

    def test_multiple_directives(self):
        plan = RegionPlan.parse(COMBINED_PLAN)
        assert [d.kind for d in plan.directives] == \
            ["dc_crash", "partition"]
        assert "dc_crash dc0" in plan.describe()
        assert "partition dc0|dc1" in plan.describe()

    @pytest.mark.parametrize("bad", [
        "",
        "meteor:0:at=1:for=2",
        "dc_crash:0",
        "dc_crash:zero:at=1:for=2",
        "dc_crash:0:at=1",                      # missing for=
        "dc_crash:0:for=1",                     # missing at=
        "dc_crash:0:at=1:for=0",                # zero duration
        "dc_crash:0:at=-5:for=10",              # negative onset
        "dc_crash:0:at=1:for=2:mttf=3:mttr=4",  # both modes
        "dc_crash:0:mttf=1000",                 # missing mttr=
        "dc_crash:0:until=9:for=2",             # unknown option
        "partition:0:at=1:for=2",               # one endpoint
        "partition:0|0:at=1:for=2",             # same endpoint
        "partition:0|1|2:at=1:for=2",           # three endpoints
    ])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError, match="bad fault plan spec|empty"):
            RegionPlan.parse(bad)

    def test_check_dcs_rejects_out_of_range(self):
        plan = RegionPlan.parse("dc_crash:5:at=1:for=2")
        with pytest.raises(ValueError, match="datacenter 5"):
            plan.check_dcs(2)

    def test_region_plan_activates_config(self):
        assert not FaultConfig(region=None).is_active
        assert not FaultConfig(region=RegionPlan()).is_active
        assert FaultConfig(
            region=RegionPlan.parse("dc_crash:0:at=1:for=2")).is_active

    def test_config_validate_delegates_to_plan(self):
        bad = RegionPlan(directives=(
            RegionDirective(kind="dc_crash", dc=0),))  # no timing mode
        with pytest.raises(ValueError, match="at=<ms>:for=<ms>"):
            FaultConfig(region=bad).validate()

    def test_plan_without_multi_dc_topology_is_an_error(self):
        config = FaultConfig(
            region=RegionPlan.parse("dc_crash:0:at=1:for=2"))
        with pytest.raises(ValueError, match="multi-datacenter topology"):
            repro.build_system("2PC", faults=config)

    def test_region_cycle_is_seeded_per_directive(self):
        config = FaultConfig(
            region=RegionPlan.parse("dc_crash:0:mttf=5000:mttr=500"))

        def draws(seed):
            plan = FaultPlan(config, RandomStreams(seed), num_sites=4)
            (directive,) = plan.region_directives()
            cycle = plan.region_cycle(directive)
            return [next(cycle) for _ in range(5)]

        assert draws(3) == draws(3)
        assert draws(3) != draws(4)


class TestRegionCli:
    def run_cli(self, *argv):
        out = io.StringIO()
        code = cli_main(list(argv), out=out)
        return code, out.getvalue()

    def test_fault_plan_without_topology_exits_2(self):
        code, text = self.run_cli(
            "simulate", "2PC", "--transactions", "10",
            "--fault-plan", "dc_crash:0:at=1:for=2")
        assert code == 2
        assert text.startswith("error: a region fault plan needs a "
                               "multi-datacenter topology")

    def test_fault_plan_referencing_missing_dc_exits_2(self):
        code, text = self.run_cli(
            "simulate", "2PC", "--transactions", "10",
            "--topology", "dcs:2x4:rtt_ms=1",
            "--fault-plan", "dc_crash:7:at=1:for=2")
        assert code == 2
        assert text.startswith("error: fault plan references datacenter 7")

    def test_simulate_reports_region_counters(self):
        code, text = self.run_cli(
            "simulate", "2PC", "--mpl", "2", "--transactions", "30",
            "--seed", "7", "--topology", "dcs:2x4:rtt_ms=5",
            "--fault-plan", "dc_crash:0:at=500:for=1500")
        assert code == 0
        assert "region faults: 1 DC crashes" in text
        assert "blocked lock time" in text
        assert "drops by reason" in text

    def test_region_outage_command_runs(self):
        code, text = self.run_cli(
            "region-outage", "--protocols", "2PC,3PC",
            "--outages", "dc_crash", "--durations", "1500",
            "--transactions", "30", "--quiet")
        assert code == 0
        assert "== region-outage" in text
        assert "dropped messages by reason" in text
        assert "least blocking" in text

    def test_region_outage_rejects_unknown_outage(self):
        code, text = self.run_cli(
            "region-outage", "--outages", "asteroid",
            "--transactions", "10", "--quiet")
        assert code == 2
        assert text.startswith("error: unknown outage")


# ----------------------------------------------------------------------
# DC-crash and partition semantics
# ----------------------------------------------------------------------
class TestDcCrashSemantics:
    def test_whole_dc_crashes_atomically(self):
        _, injector, _, log = _region_run(
            "2PC", "dcs:2x2:rtt_ms=5", "dc_crash:0:at=1000:for=2000",
            num_sites=4,
            log_kinds=(EventKind.DC_CRASH, EventKind.SITE_CRASH,
                       EventKind.SITE_RECOVER))
        dc_events = [e for e in log.events
                     if e.kind is EventKind.DC_CRASH]
        assert len(dc_events) == 1
        assert dc_events[0].dc == 0
        assert dc_events[0].sites == (0, 1)  # dcs:2x2 -> DC0 = {0, 1}
        crashes = [e for e in log.events
                   if e.kind is EventKind.SITE_CRASH]
        assert {e.site_id for e in crashes} == {0, 1}
        assert {e.time for e in crashes} == {1000.0}, "not atomic"
        recovers = [e for e in log.events
                    if e.kind is EventKind.SITE_RECOVER]
        assert len(recovers) == 2
        for event in recovers:
            assert event.time == pytest.approx(3000.0)
        assert injector.dc_crashes == 1
        assert injector.crashes == 2

    def test_dc_crash_skips_already_down_sites(self):
        # Site 0 is already down (per-site schedule) when the DC outage
        # fires: the DC crash takes only site 1 and recovers only site 1
        # -- the per-site fault keeps ownership of site 0.
        _, injector, _, log = _region_run(
            "2PC", "dcs:2x2:rtt_ms=5", "dc_crash:0:at=1000:for=1000",
            num_sites=4,
            crash_schedule=(CrashEvent(site_id=0, at_ms=500.0,
                                       duration_ms=4000.0),),
            log_kinds=(EventKind.DC_CRASH, EventKind.SITE_RECOVER))
        (dc_event,) = [e for e in log.events
                       if e.kind is EventKind.DC_CRASH]
        assert dc_event.sites == (1,)
        recover_times = {e.site_id: e.time for e in log.events
                         if e.kind is EventKind.SITE_RECOVER}
        assert recover_times[1] == pytest.approx(2000.0)
        assert recover_times[0] == pytest.approx(4500.0)
        assert injector.crashes == 2 and injector.recoveries == 2

    def test_scheduled_site_crash_skips_during_dc_outage(self):
        # The per-site scheduled driver wakes at t=1500 while the DC
        # outage holds its site down: it must skip, not double-crash.
        _, injector, _, log = _region_run(
            "2PC", "dcs:2x2:rtt_ms=5", "dc_crash:0:at=1000:for=2000",
            num_sites=4,
            crash_schedule=(CrashEvent(site_id=0, at_ms=1500.0,
                                       duration_ms=500.0),),
            log_kinds=(EventKind.SITE_CRASH, EventKind.SITE_RECOVER))
        crashes = [e for e in log.events
                   if e.kind is EventKind.SITE_CRASH and e.site_id == 0]
        assert [e.time for e in crashes] == [1000.0]
        assert injector.crashes == 2  # both DC sites, nothing extra

    def test_stochastic_site_crash_skips_during_dc_outage(self):
        # A fast stochastic per-site cycle wakes repeatedly inside the
        # DC outage window; every wake must find the site down and skip.
        _, injector, _, log = _region_run(
            "2PC", "dcs:2x2:rtt_ms=5", "dc_crash:0:at=200:for=3000",
            num_sites=4, transactions=20,
            mttf_ms=150.0, mttr_ms=50.0, crashable_sites=(0,),
            log_kinds=(EventKind.SITE_CRASH,))
        for event in log.events:
            if event.site_id != 0:
                continue
            inside = 200.0 < event.time < 3200.0
            assert not inside or event.time == 200.0, (
                f"stochastic crash fired at {event.time} during the "
                f"DC outage")

    def test_replay_skips_already_resolved_cohorts(self):
        system = repro.build_system(
            "2PC", faults=FaultConfig(
                crash_schedule=(CrashEvent(0, 1e9, 1.0),)))
        injector = system.faults
        spec = system.workload.generate(0)
        txn = system._launch(spec, 0, system.env.now)
        cohort = txn.cohorts[0]
        # A cohort whose state already left PREPARED/PRECOMMITTED must
        # be skipped by the replay loop, not re-resolved.
        steps = list(injector._replay(cohort.site, [cohort]))
        assert steps == []
        assert injector.in_doubt_resolved == 0


class TestPartitionSemantics:
    PLAN = "partition:0|1:at=1000:for=2000"

    def test_partition_drops_only_cross_cut_messages(self):
        _, injector, system, log = _region_run(
            "2PC", "dcs:2x2:rtt_ms=5", self.PLAN, num_sites=4,
            log_kinds=(EventKind.MSG_DROP, EventKind.LINK_PARTITION,
                       EventKind.LINK_HEAL))
        drops = [e for e in log.events if e.kind is EventKind.MSG_DROP]
        assert drops, "plan too mild: nothing crossed the cut"
        assert {e.reason for e in drops} == {"partition"}
        for event in drops:
            src, dst = event.message.link
            assert (src < 2) != (dst < 2), (
                f"intra-DC message {src}->{dst} dropped by a partition")
            assert 1000.0 <= event.time <= 3000.0
        (cut,) = [e for e in log.events
                  if e.kind is EventKind.LINK_PARTITION]
        (heal,) = [e for e in log.events
                   if e.kind is EventKind.LINK_HEAL]
        assert (cut.dc_a, cut.dc_b) == (0, 1)
        assert cut.time == 1000.0
        assert heal.time == pytest.approx(3000.0)
        assert injector.link_partitions == 1
        assert injector.crashes == 0  # sites stay up through a partition
        assert not injector.partitions_active  # healed by run end

    def test_link_severed_is_directional_pairwise(self):
        _, injector, system, _ = _region_run(
            "2PC", "dcs:3x2:rtt_ms=5", "partition:0|2:at=0:for=1e9",
            num_sites=6, transactions=10)
        # Plan severed 0|2 only: 0<->1 and 1<->2 stay open.
        assert injector.link_severed(0, 4)  # DC0 -> DC2
        assert injector.link_severed(5, 1)  # DC2 -> DC0 (symmetric)
        assert not injector.link_severed(0, 2)  # DC0 -> DC1
        assert not injector.link_severed(2, 4)  # DC1 -> DC2
        assert not injector.link_severed(0, 1)  # intra-DC
        assert injector.partitions_active

    def test_overlapping_severs_nest(self):
        plan = ("partition:0|1:at=1000:for=3000,"
                "partition:1|0:at=2000:for=500")
        _, injector, _, log = _region_run(
            "2PC", "dcs:2x2:rtt_ms=5", plan, num_sites=4,
            log_kinds=(EventKind.LINK_PARTITION, EventKind.LINK_HEAL))
        cuts = [e for e in log.events
                if e.kind is EventKind.LINK_PARTITION]
        heals = [e for e in log.events if e.kind is EventKind.LINK_HEAL]
        # The nested directive neither re-cuts nor early-heals: one
        # LINK_PARTITION at 1000, one LINK_HEAL at 4000.
        assert [e.time for e in cuts] == [1000.0]
        assert [pytest.approx(4000.0)] == [e.time for e in heals]
        assert injector.link_partitions == 1

    def test_stochastic_partition_is_deterministic(self):
        plan = "partition:0|1:mttf=4000:mttr=800"

        def events(seed):
            _, _, _, log = _region_run(
                "2PC", "dcs:2x2:rtt_ms=5", plan, num_sites=4, seed=seed,
                log_kinds=(EventKind.LINK_PARTITION, EventKind.LINK_HEAL,
                           EventKind.MSG_DROP))
            return [event_to_dict(e) for e in log.events]

        first, second = events(11), events(11)
        assert first == second
        assert first, "stochastic plan never fired; tighten mttf"
        assert events(11) != events(12)


# ----------------------------------------------------------------------
# Drop accounting (the double-bookkeeping fix)
# ----------------------------------------------------------------------
class TestDropAccounting:
    def test_drops_by_reason_partitions_the_network_total(self):
        _, injector, system, _ = _region_run(
            "2PC", "dcs:2x2:rtt_ms=5", COMBINED_PLAN, num_sites=4,
            msg_loss_prob=0.02)
        network = system.network
        assert network.messages_dropped == \
            sum(network.drops_by_reason.values())
        assert network.drops_by_reason.get("partition", 0) >= 1
        assert network.drops_by_reason.get("site_down", 0) >= 1

    def test_injector_count_excludes_topology_wire_loss(self):
        _, injector, system, _ = _region_run(
            "2PC", "dcs:2x2:rtt_ms=5:loss=0.05",
            "partition:0|1:at=1000:for=1000", num_sites=4)
        network = system.network
        split = network.drops_by_reason
        assert split.get("topology_loss", 0) >= 1, \
            "5% wire loss dropped nothing; weaken the assertion's setup"
        injected = sum(count for reason, count in split.items()
                       if reason != "topology_loss")
        assert injector.messages_dropped == injected
        assert network.messages_dropped == sum(split.values())


# ----------------------------------------------------------------------
# Liveness: every protocol survives both outage shapes on both grids
# ----------------------------------------------------------------------
class TestRegionSurvival:
    GRIDS = [("dcs:2x2:rtt_ms=5", 4), ("dcs:3x2:rtt_ms=5", 6)]

    @pytest.mark.parametrize("protocol", repro.PROTOCOL_NAMES)
    @pytest.mark.parametrize("topology,num_sites", GRIDS)
    def test_protocol_survives_combined_outages(self, protocol, topology,
                                                num_sites):
        if repro.protocol_requires_centralized_topology(protocol):
            # CENT processes everything at one site by construction;
            # ModelParams rejects pairing it with a multi-DC topology,
            # so there is no distributed commit to partition.
            pytest.skip(f"{protocol} runs at a single site; no "
                        f"multi-DC deployment exists to fail")
        result, injector, _, _ = _region_run(
            protocol, topology, COMBINED_PLAN, num_sites=num_sites)
        # run() returns only once every measured transaction committed:
        # returning at all is the no-hang proof.
        assert result.committed == 40
        assert injector.dc_crashes == 1
        assert injector.link_partitions == 1


# ----------------------------------------------------------------------
# The blocking result the sweep exists to show
# ----------------------------------------------------------------------
class TestBlockedLockComparison:
    PLAN = "dc_crash:0:at=1000:for=4000"

    @pytest.mark.parametrize("topology,num_sites,seed", [
        ("dcs:2x2:rtt_ms=5", 4, 7),
        ("dcs:3x2:rtt_ms=5", 6, 7),
        ("dcs:3x2:rtt_ms=5", 6, 11),
    ])
    def test_2pc_blocks_strictly_longer_than_3pc(self, topology,
                                                 num_sites, seed):
        def blocked(protocol):
            _, injector, _, _ = _region_run(
                protocol, topology, self.PLAN, num_sites=num_sites,
                seed=seed)
            return injector.blocked_lock_ms

        two_pc, three_pc = blocked("2PC"), blocked("3PC")
        assert two_pc > three_pc, (
            f"2PC blocked {two_pc:.0f}ms vs 3PC {three_pc:.0f}ms; "
            f"non-blocking termination should win under DC loss")

    def test_blocked_time_is_attributed_to_resolutions(self):
        _, injector, _, _ = _region_run(
            "2PC", "dcs:3x2:rtt_ms=5", self.PLAN, num_sites=6)
        assert injector.blocked_lock_ms > 0
        assert injector.in_doubt_resolved >= 1


# ----------------------------------------------------------------------
# Armed but inert: a never-firing plan changes nothing
# ----------------------------------------------------------------------
class TestInertPlanIsFree:
    def test_far_future_plan_matches_armed_baseline(self):
        def run(region):
            config = FaultConfig(
                crash_schedule=(CrashEvent(0, 1e9, 1.0),), region=region)
            return dataclasses.asdict(repro.simulate(
                "2PC", mpl=2, num_sites=4,
                network_topology=repro.NetworkTopology.parse(
                    "dcs:2x2:rtt_ms=5"),
                measured_transactions=40, warmup_transactions=0, seed=7,
                faults=config))

        baseline = run(None)
        inert = run(RegionPlan.parse("partition:0|1:at=1e9:for=1"))
        assert baseline == inert, (
            "a region plan that never fires must not perturb the "
            "trajectory")


class TestRegionOutageSweepApi:
    def test_sweep_rejects_non_dcs_topology(self):
        from repro.experiments import RegionOutageSweep
        with pytest.raises(ValueError, match="dcs"):
            RegionOutageSweep(["2PC"], topology="uniform")

    def test_sweep_point_metrics(self):
        from repro.experiments import RegionOutageSweep
        sweep = RegionOutageSweep(
            ["2PC"], outages=("dc_crash",), durations_ms=(1500.0,),
            topology="dcs:2x2:rtt_ms=5", measured_transactions=30)
        results = sweep.run()
        point = results.point("2PC", "dc_crash", 1500.0)
        assert point.dc_crashes == 1
        assert point.commits_during + point.commits_after >= 1
        assert point.drops_by_reason
        assert "region-outage" in results.summary()

    def test_availability_pool_matches_serial(self):
        from repro.experiments.availability import AvailabilitySweep

        def run(jobs):
            sweep = AvailabilitySweep(
                ("2PC", "PA"), mttfs=(0.0, 60_000.0),
                measured_transactions=40, seed=5)
            results = sweep.run(jobs=jobs)
            return {key: dataclasses.asdict(point)
                    for key, point in results.points.items()}

        assert run(1) == run(2)
