"""Per-phase commit latency breakdown: unit tests against synthetic
event streams, plus an end-to-end check on real simulations."""

import pytest

import repro
from repro.obs import EventBus, PhaseLatencyObserver
from repro.obs.events import (
    CommitPhase,
    PhaseTransition,
    TxnAbort,
    TxnCommit,
)


class _Txn:
    def __init__(self, txn_id=1, incarnation=0):
        self.txn_id = txn_id
        self.incarnation = incarnation
        self.name = f"T{txn_id}.{incarnation}"


def _drive(bus, txn, marks, outcome_time, committed=True):
    for phase, time in marks:
        bus.publish(PhaseTransition(time, txn, phase, "2PC"))
    if committed:
        bus.publish(TxnCommit(outcome_time, txn))
    else:
        bus.publish(TxnAbort(outcome_time, txn, "deadlock"))


class TestPhaseLatencyObserver:
    def test_phase_durations_span_to_next_mark(self):
        bus = EventBus()
        obs = PhaseLatencyObserver().attach(bus)
        _drive(bus, _Txn(), [(CommitPhase.EXECUTE, 0.0),
                             (CommitPhase.VOTE, 100.0),
                             (CommitPhase.DECIDE, 160.0),
                             (CommitPhase.ACK, 190.0)], 250.0)
        breakdown = obs.breakdown("2PC")
        assert breakdown == {"execute": 100.0, "vote": 60.0,
                             "decide": 30.0, "ack": 60.0}
        assert obs.committed == 1

    def test_missing_phase_contributes_no_sample(self):
        bus = EventBus()
        obs = PhaseLatencyObserver().attach(bus)
        # Presumed-commit shape: no ACK round on the commit path.
        _drive(bus, _Txn(), [(CommitPhase.EXECUTE, 0.0),
                             (CommitPhase.VOTE, 50.0),
                             (CommitPhase.DECIDE, 80.0)], 90.0)
        assert "ack" not in obs.breakdown("2PC")

    def test_aborted_incarnations_are_discarded(self):
        bus = EventBus()
        obs = PhaseLatencyObserver().attach(bus)
        txn = _Txn()
        _drive(bus, txn, [(CommitPhase.EXECUTE, 0.0)], 10.0,
               committed=False)
        assert obs.breakdown("2PC") == {}
        assert obs.committed == 0
        # The restarted incarnation commits and is measured cleanly.
        txn.incarnation = 1
        _drive(bus, txn, [(CommitPhase.EXECUTE, 20.0),
                          (CommitPhase.VOTE, 45.0)], 50.0)
        assert obs.breakdown("2PC") == {"execute": 25.0, "vote": 5.0}

    def test_means_aggregate_across_transactions(self):
        bus = EventBus()
        obs = PhaseLatencyObserver().attach(bus)
        _drive(bus, _Txn(1), [(CommitPhase.EXECUTE, 0.0)], 10.0)
        _drive(bus, _Txn(2), [(CommitPhase.EXECUTE, 0.0)], 30.0)
        assert obs.breakdown("2PC") == {"execute": 20.0}
        assert obs.stats["2PC"][CommitPhase.EXECUTE].count == 2

    def test_commit_without_marks_is_ignored(self):
        bus = EventBus()
        obs = PhaseLatencyObserver().attach(bus)
        bus.publish(TxnCommit(5.0, _Txn()))
        assert obs.committed == 0

    def test_detach_and_double_attach(self):
        bus = EventBus()
        obs = PhaseLatencyObserver().attach(bus)
        with pytest.raises(RuntimeError, match="already attached"):
            obs.attach(bus)
        obs.detach()
        _drive(bus, _Txn(), [(CommitPhase.EXECUTE, 0.0)], 10.0)
        assert obs.committed == 0

    def test_report_renders_all_phases(self):
        bus = EventBus()
        obs = PhaseLatencyObserver().attach(bus)
        _drive(bus, _Txn(), [(CommitPhase.EXECUTE, 0.0),
                             (CommitPhase.VOTE, 50.0)], 60.0)
        text = obs.report()
        assert "2PC" in text
        assert "execute" in text and "ack" in text
        assert "-" in text  # unsampled phases render as dashes


class TestOnRealSimulations:
    def test_2pc_has_all_four_phases(self):
        obs = PhaseLatencyObserver()
        result = repro.simulate(
            "2PC", measured_transactions=40, mpl=2,
            on_system=lambda system: obs.attach(system.bus))
        assert result.committed > 0
        breakdown = obs.breakdown("2PC")
        assert set(breakdown) == {"execute", "vote", "decide", "ack"}
        assert all(v > 0 for v in breakdown.values())
        # Execution dominates commit processing in the baseline model.
        assert breakdown["execute"] > breakdown["vote"]

    def test_presumed_commit_skips_the_ack_phase(self):
        obs = PhaseLatencyObserver()
        repro.simulate("PC", measured_transactions=40, mpl=2,
                       on_system=lambda system: obs.attach(system.bus))
        breakdown = obs.breakdown("PC")
        assert set(breakdown) == {"execute", "vote", "decide"}

    def test_phase_sum_bounds_response_time(self):
        obs = PhaseLatencyObserver()
        result = repro.simulate(
            "2PC", measured_transactions=40, mpl=1,
            on_system=lambda system: obs.attach(system.bus))
        total = sum(obs.breakdown("2PC").values())
        # Response time includes restarts and queueing before launch,
        # so the per-incarnation phase sum cannot exceed it (at MPL 1
        # with no contention they are close).
        assert 0 < total <= result.response_time_ms + 1e-9
