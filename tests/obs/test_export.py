"""JSONL event-stream export: the exporter itself, the sweep-level
wiring (``MplSweep.run(events_out=...)``), and the CLI flags."""

import io
import json
import os
import subprocess
import sys
import textwrap

import pytest

import repro.cli
from repro.config import ModelParams
from repro.experiments.base import MplSweep
from repro.obs import EventBus, JsonlExporter
from repro.obs.events import EventKind, LogWrite, SiteCrash


def _read_lines(path):
    with open(path, encoding="utf-8") as handle:
        return [json.loads(line) for line in handle]


class TestJsonlExporter:
    def test_meta_then_events(self, tmp_path):
        path = tmp_path / "events.jsonl"
        bus = EventBus()
        with JsonlExporter.open(path) as exporter:
            exporter.meta(protocol="2PC", mpl=4)
            exporter.attach(bus)
            bus.publish(LogWrite(1.0, site_id=0, record_kind="test",
                                 txn_id=7))
            bus.publish(SiteCrash(2.0, site_id=1, txn_id=7))
        lines = _read_lines(path)
        assert lines[0] == {"meta": {"protocol": "2PC", "mpl": 4}}
        assert lines[1] == {"kind": "log_write", "time": 1.0,
                            "site_id": 0, "record_kind": "test",
                            "txn_id": 7}
        assert lines[2]["kind"] == "site_crash"
        assert exporter.events_written == 2

    def test_kind_filter(self, tmp_path):
        path = tmp_path / "events.jsonl"
        bus = EventBus()
        with JsonlExporter.open(path,
                                kinds=(EventKind.SITE_CRASH,)) as exporter:
            exporter.attach(bus)
            bus.publish(LogWrite(1.0, site_id=0, record_kind="t",
                                 txn_id=1))
            bus.publish(SiteCrash(2.0, site_id=0, txn_id=1))
        assert [row["kind"] for row in _read_lines(path)] == ["site_crash"]

    def test_detach_allows_reattach_double_attach_raises(self, tmp_path):
        bus_a, bus_b = EventBus(), EventBus()
        with JsonlExporter.open(tmp_path / "e.jsonl") as exporter:
            exporter.attach(bus_a)
            with pytest.raises(RuntimeError, match="already attached"):
                exporter.attach(bus_b)
            exporter.detach()
            exporter.attach(bus_b)
            bus_a.publish(SiteCrash(1.0, site_id=0, txn_id=1))
            bus_b.publish(SiteCrash(2.0, site_id=0, txn_id=1))
        assert exporter.events_written == 1

    def test_close_detaches_and_closes_stream(self, tmp_path):
        bus = EventBus()
        exporter = JsonlExporter.open(tmp_path / "e.jsonl").attach(bus)
        exporter.close()
        assert not bus.has_subscribers(EventKind.LOG_WRITE)
        assert exporter.stream.closed


class TestFlushOnDetach:
    """Regression: buffered tail events must survive detach/close even
    when the exporter does not own the stream (soak resume verification
    reads the file while the producing process may still hold it open,
    or after it died without closing it)."""

    def test_detach_flushes_non_owned_stream(self, tmp_path):
        path = tmp_path / "e.jsonl"
        bus = EventBus()
        with path.open("w", encoding="utf-8") as handle:
            exporter = JsonlExporter(handle)  # close_stream=False
            exporter.attach(bus)
            bus.publish(SiteCrash(1.0, site_id=0, txn_id=1))
            exporter.detach()
            # Stream is still open (not ours to close), but the event
            # must already be on disk.
            assert not handle.closed
            assert path.read_text().endswith("\n")
            assert _read_lines(path)[0]["kind"] == "site_crash"

    def test_close_does_not_close_non_owned_stream(self, tmp_path):
        path = tmp_path / "e.jsonl"
        with path.open("w", encoding="utf-8") as handle:
            exporter = JsonlExporter(handle).attach(EventBus())
            exporter.close()
            assert not handle.closed
        assert path.read_text() == ""

    def test_flush_after_stream_closed_is_safe(self, tmp_path):
        exporter = JsonlExporter.open(tmp_path / "e.jsonl")
        exporter.close()
        exporter.flush()  # must not raise on a closed stream
        exporter.detach()

    def test_killed_process_keeps_detached_tail(self, tmp_path):
        # A child attaches an exporter to a file it opened itself,
        # publishes events, detaches, then dies via os._exit -- which
        # skips interpreter shutdown, so anything still buffered in the
        # file object is lost.  detach() flushing is what saves the tail.
        path = tmp_path / "killed.jsonl"
        child = textwrap.dedent(f"""
            import os
            from repro.obs import EventBus, JsonlExporter
            from repro.obs.events import SiteCrash

            bus = EventBus()
            handle = open({str(path)!r}, "w", encoding="utf-8")
            exporter = JsonlExporter(handle)  # does not own the stream
            exporter.attach(bus)
            for i in range(100):
                bus.publish(SiteCrash(float(i), site_id=0, txn_id=i))
            exporter.detach()
            os._exit(1)  # hard kill: no close, no atexit flushing
        """)
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(repro.cli.__file__), os.pardir)
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + \
            env.get("PYTHONPATH", "")
        result = subprocess.run([sys.executable, "-c", child], env=env,
                                capture_output=True, text=True)
        assert result.returncode == 1, result.stderr
        raw = path.read_text()
        # Every event survived and the last line is complete JSON.
        assert raw.endswith("\n")
        rows = _read_lines(path)
        assert len(rows) == 100
        assert rows[-1] == {"kind": "site_crash", "time": 99.0,
                            "site_id": 0, "txn_id": 99}


class TestSweepExport:
    def test_sweep_writes_one_meta_line_per_point(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        sweep = MplSweep(("2PC",), lambda mpl: ModelParams(mpl=mpl),
                         mpls=(1, 2), measured_transactions=10)
        sweep.run("E-test", events_out=str(path))
        lines = _read_lines(path)
        metas = [row["meta"] for row in lines if "meta" in row]
        assert [(m["protocol"], m["mpl"]) for m in metas] == [
            ("2PC", 1), ("2PC", 2)]
        assert all(m["experiment"] == "E-test" for m in metas)
        # Events follow their point's meta line; both points have some.
        assert lines[1] != lines[0] and "kind" in lines[1]
        assert sum("kind" in row for row in lines) > 100

    def test_sweep_rejects_parallel_export(self):
        sweep = MplSweep(("2PC",), lambda mpl: ModelParams(mpl=mpl),
                         mpls=(1,), measured_transactions=10)
        with pytest.raises(ValueError, match="jobs=1"):
            sweep.run("E-test", jobs=2, events_out="x.jsonl")


class TestCli:
    def test_simulate_events_out_and_phases(self, tmp_path):
        path = tmp_path / "sim.jsonl"
        stream = io.StringIO()
        code = repro.cli.main(["simulate", "2PC", "--mpl", "1",
                               "--transactions", "15", "--seed", "7",
                               "--events-out", str(path), "--phases"],
                              out=stream)
        assert code == 0
        out = stream.getvalue()
        assert f"wrote {path}" in out
        assert "per-phase commit latency" in out
        assert "execute" in out
        lines = _read_lines(path)
        assert lines[0] == {"meta": {"protocol": "2PC", "mpl": 1,
                                     "seed": 7}}
        assert all("kind" in row for row in lines[1:])

    def test_run_events_out_requires_serial(self):
        stream = io.StringIO()
        code = repro.cli.main(["run", "E1", "--events-out", "x.jsonl",
                               "--jobs", "2"], out=stream)
        assert code == 2
        assert "--jobs 1" in stream.getvalue()
