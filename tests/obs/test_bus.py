"""Unit tests for the event bus: guard semantics, subscription
lifecycle, dispatch order, and the in-memory EventLog."""

import pytest

from repro.obs import EventBus, EventLog
from repro.obs.events import (
    EventKind,
    LogWrite,
    SiteCrash,
    SiteRecover,
    event_to_dict,
)


def _log_write(time=0.0, site_id=0, txn_id=1):
    return LogWrite(time, site_id=site_id, record_kind="test",
                    txn_id=txn_id)


class TestGuardSemantics:
    """has_subscribers is the emitters' zero-overhead-when-idle guard:
    it must be true exactly when a live subscriber exists for the kind."""

    def test_fresh_bus_has_no_subscribed_kinds(self):
        bus = EventBus()
        for kind in EventKind:
            assert not bus.has_subscribers(kind)
        assert bus.subscribed_kinds == frozenset()

    def test_subscribe_flips_guard_only_for_that_kind(self):
        bus = EventBus()
        bus.subscribe(EventKind.LOG_WRITE, lambda e: None)
        assert bus.has_subscribers(EventKind.LOG_WRITE)
        assert not bus.has_subscribers(EventKind.LOG_FORCE)

    def test_cancel_restores_idle_guard(self):
        bus = EventBus()
        sub = bus.subscribe(EventKind.LOG_WRITE, lambda e: None)
        sub.cancel()
        assert not bus.has_subscribers(EventKind.LOG_WRITE)
        assert bus.subscribed_kinds == frozenset()

    def test_guard_stays_true_while_any_subscriber_remains(self):
        bus = EventBus()
        first = bus.subscribe(EventKind.LOG_WRITE, lambda e: None)
        bus.subscribe(EventKind.LOG_WRITE, lambda e: None)
        first.cancel()
        assert bus.has_subscribers(EventKind.LOG_WRITE)

    def test_publish_without_subscribers_is_a_noop(self):
        EventBus().publish(_log_write())  # must not raise


class TestDispatch:
    def test_delivery_in_subscription_order(self):
        bus = EventBus()
        order = []
        bus.subscribe(EventKind.LOG_WRITE, lambda e: order.append("a"))
        bus.subscribe(EventKind.LOG_WRITE, lambda e: order.append("b"))
        bus.publish(_log_write())
        assert order == ["a", "b"]

    def test_only_matching_kind_is_delivered(self):
        bus = EventBus()
        seen = []
        bus.subscribe(EventKind.SITE_CRASH, seen.append)
        bus.publish(_log_write())
        bus.publish(SiteCrash(1.0, site_id=2, txn_id=7))
        assert [e.kind for e in seen] == [EventKind.SITE_CRASH]

    def test_multi_kind_subscribe(self):
        bus = EventBus()
        seen = []
        bus.subscribe((EventKind.SITE_CRASH, EventKind.SITE_RECOVER),
                      seen.append)
        bus.publish(SiteCrash(1.0, site_id=0, txn_id=1))
        bus.publish(SiteRecover(2.0, site_id=0, txn_id=1))
        assert [e.kind for e in seen] == [EventKind.SITE_CRASH,
                                          EventKind.SITE_RECOVER]

    def test_subscribe_map_routes_per_kind(self):
        bus = EventBus()
        crashes, writes = [], []
        sub = bus.subscribe_map({EventKind.SITE_CRASH: crashes.append,
                                 EventKind.LOG_WRITE: writes.append})
        bus.publish(SiteCrash(1.0, site_id=0, txn_id=1))
        bus.publish(_log_write())
        assert len(crashes) == 1 and len(writes) == 1
        sub.cancel()
        bus.publish(_log_write())
        assert len(writes) == 1


class TestSubscription:
    def test_cancel_is_idempotent(self):
        bus = EventBus()
        sub = bus.subscribe(EventKind.LOG_WRITE, lambda e: None)
        sub.cancel()
        sub.cancel()
        assert not sub.active

    def test_context_manager_cancels_on_exit(self):
        bus = EventBus()
        with bus.subscribe(EventKind.LOG_WRITE, lambda e: None) as sub:
            assert sub.active
            assert bus.has_subscribers(EventKind.LOG_WRITE)
        assert not sub.active
        assert not bus.has_subscribers(EventKind.LOG_WRITE)

    def test_cancel_removes_only_own_callback(self):
        bus = EventBus()
        seen = []
        keeper = bus.subscribe(EventKind.LOG_WRITE, seen.append)
        bus.subscribe(EventKind.LOG_WRITE, lambda e: None).cancel()
        bus.publish(_log_write())
        assert len(seen) == 1
        keeper.cancel()


class TestEventLog:
    def test_records_everything_by_default(self):
        bus = EventBus()
        log = EventLog().attach(bus)
        bus.publish(_log_write(1.0))
        bus.publish(SiteCrash(2.0, site_id=0, txn_id=1))
        assert len(log) == 2
        assert [e.kind for e in log] == [EventKind.LOG_WRITE,
                                         EventKind.SITE_CRASH]

    def test_kind_filter_and_of_kind(self):
        bus = EventBus()
        log = EventLog(kinds=(EventKind.SITE_CRASH,)).attach(bus)
        bus.publish(_log_write(1.0))
        bus.publish(SiteCrash(2.0, site_id=0, txn_id=1))
        assert len(log) == 1
        assert log.of_kind(EventKind.SITE_CRASH)[0].time == 2.0
        assert log.of_kind(EventKind.LOG_WRITE) == []

    def test_until_is_strictly_before(self):
        bus = EventBus()
        log = EventLog().attach(bus)
        for t in (1.0, 2.0, 3.0):
            bus.publish(_log_write(t))
        assert [e.time for e in log.until(2.0)] == [1.0]

    def test_as_dicts_flattens(self):
        bus = EventBus()
        log = EventLog().attach(bus)
        bus.publish(_log_write(1.5, site_id=3, txn_id=9))
        (row,) = log.as_dicts()
        assert row == {"kind": "log_write", "time": 1.5, "site_id": 3,
                       "record_kind": "test", "txn_id": 9}
        assert row == event_to_dict(log.events[0])

    def test_limit_stops_recording(self):
        bus = EventBus()
        log = EventLog(limit=2).attach(bus)
        for t in (1.0, 2.0, 3.0):
            bus.publish(_log_write(t))
        assert len(log) == 2

    def test_detach_stops_recording_and_double_attach_raises(self):
        bus = EventBus()
        log = EventLog().attach(bus)
        with pytest.raises(RuntimeError, match="already attached"):
            log.attach(bus)
        log.detach()
        bus.publish(_log_write())
        assert len(log) == 0
        log.attach(bus)  # re-attach after detach is fine
        bus.publish(_log_write())
        assert len(log) == 1

    def test_context_manager_detaches(self):
        bus = EventBus()
        with EventLog().attach(bus) as log:
            bus.publish(_log_write())
        bus.publish(_log_write())
        assert len(log) == 1
        assert not bus.has_subscribers(EventKind.LOG_WRITE)
