"""Tests for the metrics collector."""

import pytest

from repro.db.transaction import AbortReason
from repro.db.wal import LogRecordKind
from repro.metrics import MetricsCollector, ProtocolOverheads
from repro.sim import Environment

from tests.db.conftest import FakeCohort, FakeTransaction


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def metrics(env):
    return MetricsCollector(env, total_slots=10,
                            initial_response_estimate=100.0)


def _commit_txn(env, metrics, response=50.0, **counters):
    txn = FakeTransaction()
    txn.first_submit_time = env.now - response
    for key, value in counters.items():
        setattr(txn, key, value)
    metrics.transaction_committed(txn)
    return txn


class TestCommitAccounting:
    def test_committed_count_and_response(self, env, metrics):
        env._now = 100.0
        _commit_txn(env, metrics, response=40.0)
        _commit_txn(env, metrics, response=60.0)
        assert metrics.committed == 2
        assert metrics.response_times.mean == pytest.approx(50.0)

    def test_throughput(self, env, metrics):
        env._now = 2000.0  # 2 seconds
        for _ in range(10):
            _commit_txn(env, metrics)
        assert metrics.throughput_per_second() == pytest.approx(5.0)

    def test_throughput_zero_elapsed(self, metrics):
        assert metrics.throughput_per_second() == 0.0

    def test_overhead_means(self, env, metrics):
        env._now = 10.0
        _commit_txn(env, metrics, messages_execution=4, messages_commit=8,
                    forced_writes=7)
        _commit_txn(env, metrics, messages_execution=4, messages_commit=6,
                    forced_writes=5)
        assert metrics.exec_messages.mean == 4.0
        assert metrics.commit_messages.mean == 7.0
        assert metrics.forced_writes.mean == 6.0


class TestAbortAccounting:
    def test_aborts_by_reason(self, env, metrics):
        txn = FakeTransaction()
        metrics.transaction_aborted(txn, AbortReason.DEADLOCK)
        metrics.transaction_aborted(txn, AbortReason.DEADLOCK)
        metrics.transaction_aborted(txn, AbortReason.LENDER_ABORT)
        assert metrics.aborts_by_reason[AbortReason.DEADLOCK] == 2
        assert metrics.aborts_by_reason[AbortReason.LENDER_ABORT] == 1
        assert metrics.aborted == 3

    def test_abort_ratio(self, env, metrics):
        env._now = 10.0
        _commit_txn(env, metrics)
        metrics.transaction_aborted(FakeTransaction(), AbortReason.DEADLOCK)
        assert metrics.abort_ratio() == pytest.approx(0.5)

    def test_abort_ratio_empty(self, metrics):
        assert metrics.abort_ratio() == 0.0


class TestBlockRatio:
    def test_blocked_transitions(self, env, metrics):
        cohort_a = FakeCohort()
        cohort_b = FakeCohort(txn=cohort_a.txn)  # same transaction
        env._now = 0.0
        metrics.wait_change(cohort_a, True)    # txn blocked from t=0
        env._now = 5.0
        metrics.wait_change(cohort_b, True)    # still one blocked txn
        env._now = 10.0
        metrics.wait_change(cohort_a, False)
        metrics.wait_change(cohort_b, False)   # unblocked at t=10
        env._now = 20.0
        # Blocked for 10 of 20 time units, 1 txn of 10 slots.
        assert metrics.block_ratio() == pytest.approx(0.05)

    def test_independent_transactions_accumulate(self, env, metrics):
        a, b = FakeCohort(), FakeCohort()
        env._now = 0.0
        metrics.wait_change(a, True)
        metrics.wait_change(b, True)
        env._now = 10.0
        # Two blocked txns for the whole period: ratio 2/10.
        assert metrics.block_ratio() == pytest.approx(0.2)


class TestBorrowAndShelf:
    def test_borrow_ratio(self, env, metrics):
        env._now = 10.0
        metrics.borrow(FakeCohort(), page=1)
        metrics.borrow(FakeCohort(), page=2)
        _commit_txn(env, metrics)
        assert metrics.borrow_ratio() == pytest.approx(2.0)

    def test_borrow_ratio_no_commits(self, metrics):
        metrics.borrow(FakeCohort(), page=1)
        assert metrics.borrow_ratio() == 0.0

    def test_shelf_counter(self, metrics):
        metrics.shelf_entered()
        metrics.shelf_entered()
        assert metrics.shelf_entries == 2


class TestRestartDelay:
    def test_initial_estimate_used_before_commits(self, metrics):
        assert metrics.restart_delay() == 100.0

    def test_running_mean_after_commits(self, env, metrics):
        env._now = 100.0
        _commit_txn(env, metrics, response=30.0)
        _commit_txn(env, metrics, response=50.0)
        assert metrics.restart_delay() == pytest.approx(40.0)

    def test_restart_delay_survives_reset(self, env, metrics):
        env._now = 100.0
        _commit_txn(env, metrics, response=30.0)
        metrics.reset()
        assert metrics.restart_delay() == pytest.approx(30.0)


class TestWarmupReset:
    def test_reset_clears_measured_statistics(self, env, metrics):
        env._now = 50.0
        _commit_txn(env, metrics)
        metrics.transaction_aborted(FakeTransaction(), AbortReason.DEADLOCK)
        metrics.borrow(FakeCohort(), 1)
        metrics.forced_write(LogRecordKind.COMMIT)
        metrics.reset()
        assert metrics.committed == 0
        assert metrics.aborted == 0
        assert metrics.borrowed_pages_total == 0
        assert metrics.forced_by_kind == {}
        assert metrics.response_times.count == 0
        assert metrics.elapsed_ms == 0.0

    def test_block_level_survives_reset(self, env, metrics):
        cohort = FakeCohort()
        env._now = 0.0
        metrics.wait_change(cohort, True)
        env._now = 10.0
        metrics.reset()
        env._now = 20.0
        # Still blocked through the reset: full ratio for one slot.
        assert metrics.block_ratio() == pytest.approx(0.1)


class TestWarmupStraddlers:
    """Open-mode warmup boundary: observations that *started* before the
    measurement reset must not contaminate the percentile samples.

    Convention: means keep every post-reset completion (throughput and
    mean response are period quantities), but percentile samples drop
    straddlers -- their latency includes time accrued in the discarded
    warmup period.
    """

    @pytest.fixture
    def open_metrics(self, env):
        return MetricsCollector(env, total_slots=10,
                                initial_response_estimate=100.0,
                                open_system=True)

    def test_commit_straddler_dropped_from_percentiles(self, env,
                                                       open_metrics):
        env._now = 100.0
        open_metrics.reset()  # end of warmup at t=100
        env._now = 150.0
        # Arrived at t=80 (pre-reset), committed at t=150: straddler.
        _commit_txn(env, open_metrics, response=70.0)
        assert open_metrics.response_sample.count == 0
        assert open_metrics.straddlers_dropped == 1
        # The mean keeps it: every post-reset completion counts.
        assert open_metrics.committed == 1
        assert open_metrics.response_times.mean == pytest.approx(70.0)

    def test_post_reset_arrival_kept(self, env, open_metrics):
        env._now = 100.0
        open_metrics.reset()
        env._now = 150.0
        # Arrived at exactly the reset instant: kept (>= boundary).
        _commit_txn(env, open_metrics, response=50.0)
        assert open_metrics.response_sample.count == 1
        assert open_metrics.response_sample.percentile(0.5) == 50.0
        assert open_metrics.straddlers_dropped == 0

    def test_queue_wait_straddler_dropped(self, env, open_metrics):
        env._now = 100.0
        open_metrics.reset()
        env._now = 120.0
        # Entered the queue at t=90 (pre-reset), dequeued at t=120.
        open_metrics.queue_wait(30.0)
        # Entered at t=110 (post-reset): kept.
        open_metrics.queue_wait(10.0)
        assert open_metrics.queue_wait_sample.count == 1
        assert open_metrics.queue_wait_sample.percentile(0.5) == 10.0
        assert open_metrics.straddlers_dropped == 1
        # The Welford mean keeps both dequeues.
        assert open_metrics.queue_waits.count == 2
        assert open_metrics.queue_waits.mean == pytest.approx(20.0)

    def test_closed_mode_unaffected(self, env, metrics):
        env._now = 100.0
        metrics.reset()
        env._now = 150.0
        # Closed mode never feeds percentile samples; straddler logic
        # must not fire.
        _commit_txn(env, metrics, response=70.0)
        assert metrics.straddlers_dropped == 0
        assert metrics.response_sample.count == 0

    def test_reset_clears_straddler_counter(self, env, open_metrics):
        env._now = 100.0
        open_metrics.reset()
        env._now = 150.0
        _commit_txn(env, open_metrics, response=70.0)
        assert open_metrics.straddlers_dropped == 1
        open_metrics.reset()
        assert open_metrics.straddlers_dropped == 0


class TestWatchers:
    def test_when_committed_fires_at_threshold(self, env, metrics):
        event = metrics.when_committed(2)
        _commit_txn(env, metrics)
        assert not event.triggered
        _commit_txn(env, metrics)
        assert event.triggered

    def test_watcher_counts_from_registration(self, env, metrics):
        _commit_txn(env, metrics)
        event = metrics.when_committed(1)
        assert not event.triggered
        _commit_txn(env, metrics)
        assert event.triggered

    def test_forced_write_kinds_tracked(self, metrics):
        metrics.forced_write(LogRecordKind.PREPARE)
        metrics.forced_write(LogRecordKind.PREPARE)
        metrics.forced_write(LogRecordKind.COMMIT)
        assert metrics.forced_by_kind[LogRecordKind.PREPARE] == 2
        assert metrics.forced_by_kind[LogRecordKind.COMMIT] == 1


def test_protocol_overheads_rounding():
    overheads = ProtocolOverheads(4.001, 6.999, 8.0)
    assert overheads.rounded() == (4.0, 7.0, 8.0)
