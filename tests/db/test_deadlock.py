"""Unit tests for the wait-for graph and deadlock resolution."""

from repro.db.deadlock import WaitForGraph
from repro.db.locks import LockMode

from tests.db.conftest import FakeCohort, FakeTransaction, acquire_async, acquire_now


class _Key:
    """Stand-in for a LockRequest (the WFG only uses it as a dict key)."""


class TestEdgeMaintenance:
    def test_set_and_clear_edges(self, recorder):
        wfg = WaitForGraph(on_victim=recorder.on_victim)
        a, b = FakeTransaction(), FakeTransaction()
        key = _Key()
        wfg.set_edges(key, a, {b})
        assert wfg.blockers_of(a) == {b}
        wfg.clear_edges(key)
        assert wfg.blockers_of(a) == set()

    def test_self_edges_ignored(self, recorder):
        wfg = WaitForGraph(on_victim=recorder.on_victim)
        a, b = FakeTransaction(), FakeTransaction()
        key = _Key()
        wfg.set_edges(key, a, {a, b})
        assert wfg.blockers_of(a) == {b}

    def test_set_edges_replaces_previous(self, recorder):
        wfg = WaitForGraph(on_victim=recorder.on_victim)
        a, b, c = FakeTransaction(), FakeTransaction(), FakeTransaction()
        key = _Key()
        wfg.set_edges(key, a, {b})
        wfg.set_edges(key, a, {c})
        assert wfg.blockers_of(a) == {c}

    def test_multiple_requests_same_edge_counted(self, recorder):
        wfg = WaitForGraph(on_victim=recorder.on_victim)
        a, b = FakeTransaction(), FakeTransaction()
        key1, key2 = _Key(), _Key()
        wfg.set_edges(key1, a, {b})
        wfg.set_edges(key2, a, {b})
        wfg.clear_edges(key1)
        assert wfg.blockers_of(a) == {b}  # second request still waits
        wfg.clear_edges(key2)
        assert wfg.blockers_of(a) == set()

    def test_remove_transaction_waits(self, recorder):
        wfg = WaitForGraph(on_victim=recorder.on_victim)
        a, b, c = FakeTransaction(), FakeTransaction(), FakeTransaction()
        wfg.set_edges(_Key(), a, {b})
        wfg.set_edges(_Key(), a, {c})
        wfg.set_edges(_Key(), b, {c})
        wfg.remove_transaction_waits(a)
        assert wfg.blockers_of(a) == set()
        assert wfg.blockers_of(b) == {c}

    def test_empty_blockers_create_no_edges(self, recorder):
        wfg = WaitForGraph(on_victim=recorder.on_victim)
        a = FakeTransaction()
        wfg.set_edges(_Key(), a, set())
        assert wfg.num_waiting == 0


class TestCycleDetection:
    def test_two_cycle_detected_youngest_aborted(self, recorder):
        wfg = WaitForGraph(on_victim=recorder.on_victim)
        old = FakeTransaction(submit_time=1.0)
        young = FakeTransaction(submit_time=2.0)
        wfg.set_edges(_Key(), old, {young})
        wfg.set_edges(_Key(), young, {old})
        victims = wfg.check_for_deadlock(young)
        assert victims == [young]
        assert recorder.victims == [young]
        assert wfg.deadlocks_found == 1

    def test_no_cycle_no_victim(self, recorder):
        wfg = WaitForGraph(on_victim=recorder.on_victim)
        a, b, c = (FakeTransaction(submit_time=t) for t in (1.0, 2.0, 3.0))
        wfg.set_edges(_Key(), a, {b})
        wfg.set_edges(_Key(), b, {c})
        assert wfg.check_for_deadlock(a) == []
        assert recorder.victims == []

    def test_three_cycle_detected(self, recorder):
        wfg = WaitForGraph(on_victim=recorder.on_victim)
        a = FakeTransaction(submit_time=1.0)
        b = FakeTransaction(submit_time=2.0)
        c = FakeTransaction(submit_time=3.0)
        wfg.set_edges(_Key(), a, {b})
        wfg.set_edges(_Key(), b, {c})
        wfg.set_edges(_Key(), c, {a})
        victims = wfg.check_for_deadlock(c)
        assert victims == [c]  # youngest

    def test_victim_tie_broken_by_txn_id(self, recorder):
        wfg = WaitForGraph(on_victim=recorder.on_victim)
        a = FakeTransaction(submit_time=5.0)
        b = FakeTransaction(submit_time=5.0)
        wfg.set_edges(_Key(), a, {b})
        wfg.set_edges(_Key(), b, {a})
        victims = wfg.check_for_deadlock(a)
        # b was created later, so has the larger txn_id: the "youngest".
        assert victims == [b]

    def test_aborting_transactions_invisible(self, recorder):
        wfg = WaitForGraph(on_victim=recorder.on_victim)
        a = FakeTransaction(submit_time=1.0)
        b = FakeTransaction(submit_time=2.0)
        b.aborting = True
        wfg.set_edges(_Key(), a, {b})
        wfg.set_edges(_Key(), b, {a})
        assert wfg.check_for_deadlock(a) == []

    def test_cycle_not_through_start_not_reported(self, recorder):
        """Immediate detection only needs cycles through the new waiter."""
        wfg = WaitForGraph(on_victim=recorder.on_victim)
        a = FakeTransaction(submit_time=1.0)
        b = FakeTransaction(submit_time=2.0)
        c = FakeTransaction(submit_time=3.0)
        wfg.set_edges(_Key(), b, {c})
        wfg.set_edges(_Key(), c, {b})
        wfg.set_edges(_Key(), a, {b})
        assert wfg.check_for_deadlock(a) == []

    def test_multiple_cycles_through_start_all_resolved(self, recorder):
        wfg = WaitForGraph(on_victim=recorder.on_victim)
        hub = FakeTransaction(submit_time=1.0)
        spoke1 = FakeTransaction(submit_time=2.0)
        spoke2 = FakeTransaction(submit_time=3.0)
        wfg.set_edges(_Key(), hub, {spoke1, spoke2})
        wfg.set_edges(_Key(), spoke1, {hub})
        wfg.set_edges(_Key(), spoke2, {hub})
        victims = wfg.check_for_deadlock(hub)
        # Both spokes are younger than the hub; each cycle kills a spoke.
        assert set(victims) == {spoke1, spoke2}
        assert wfg.deadlocks_found == 2


class TestIntegrationWithLockManager:
    """Deadlocks arising from real lock-manager traffic.

    A transaction may have several cohorts; each cohort has at most one
    outstanding request (as in the real system).
    """

    def test_lock_cycle_triggers_victim(self, env, lock_manager, recorder):
        a1 = FakeCohort(submit_time=1.0)
        a2 = FakeCohort(txn=a1.txn)
        b1 = FakeCohort(submit_time=2.0)
        b2 = FakeCohort(txn=b1.txn)
        acquire_now(env, lock_manager, a1, 1, LockMode.UPDATE)
        acquire_now(env, lock_manager, b1, 2, LockMode.UPDATE)
        acquire_async(env, lock_manager, a2, 2, LockMode.UPDATE)
        assert recorder.victims == []
        acquire_async(env, lock_manager, b2, 1, LockMode.UPDATE)
        assert recorder.victims == [b1.txn]  # youngest in the cycle

    def test_fcfs_queue_edge_detects_indirect_cycle(self, env, lock_manager,
                                                    recorder):
        """A waiter behind another waiter effectively waits for it
        (strict FCFS), so cycles through queue order must be caught."""
        a = FakeCohort(submit_time=1.0)
        b1 = FakeCohort(submit_time=2.0)
        b2 = FakeCohort(txn=b1.txn)
        c1 = FakeCohort(submit_time=3.0)
        c2 = FakeCohort(txn=c1.txn)
        acquire_now(env, lock_manager, a, 1, LockMode.UPDATE)
        acquire_now(env, lock_manager, c1, 2, LockMode.UPDATE)
        # b queues on page 1 behind holder a.
        acquire_async(env, lock_manager, b1, 1, LockMode.UPDATE)
        # c queues on page 1 behind b (FCFS edge c->b), plus c holds 2.
        acquire_async(env, lock_manager, c2, 1, LockMode.UPDATE)
        assert recorder.victims == []
        # b requests page 2 held by c: cycle b->c->b via the queue edge.
        acquire_async(env, lock_manager, b2, 2, LockMode.UPDATE)
        assert recorder.victims, "queue-order cycle must be detected"

    def test_victim_edges_cleaned_after_finalize(self, env, lock_manager,
                                                 recorder, wfg):
        a1 = FakeCohort(submit_time=1.0)
        a2 = FakeCohort(txn=a1.txn)
        b1 = FakeCohort(submit_time=2.0)
        b2 = FakeCohort(txn=b1.txn)
        acquire_now(env, lock_manager, a1, 1, LockMode.UPDATE)
        acquire_now(env, lock_manager, b1, 2, LockMode.UPDATE)
        acquire_async(env, lock_manager, a2, 2, LockMode.UPDATE)
        acquire_async(env, lock_manager, b2, 1, LockMode.UPDATE)
        victim = recorder.victims[0]
        # Simulate the system's cleanup of the victim.
        for cohort in (b1, b2):
            lock_manager.finalize(cohort, committed=False)
        env.run(until=env.now)
        assert wfg.blockers_of(victim) == set()
        # The survivor must have been granted page 2.
        assert lock_manager.holders_of(2) == {a2: LockMode.UPDATE}

    def test_no_false_deadlock_from_released_waiter(self, env, lock_manager,
                                                    recorder):
        """Granting the head waiter must clear its stale edges so later
        detections do not see ghosts."""
        a = FakeCohort(submit_time=1.0)
        b = FakeCohort(submit_time=2.0)
        acquire_now(env, lock_manager, a, 1, LockMode.UPDATE)
        done, _ = acquire_async(env, lock_manager, b, 1, LockMode.UPDATE)
        lock_manager.finalize(a, committed=True)
        env.run(until=env.now)
        assert done
        # b now holds page 1; a fresh conflicting request from a new txn
        # must simply wait, not trigger anything.
        c = FakeCohort(submit_time=3.0)
        acquire_async(env, lock_manager, c, 1, LockMode.UPDATE)
        assert recorder.victims == []
