"""Tests for page placement."""

import pytest

from repro.db.pages import PageDirectory


def test_every_page_has_exactly_one_site():
    directory = PageDirectory(db_size=100, num_sites=7, num_data_disks=2)
    for page in range(100):
        assert 0 <= directory.site_of(page) < 7


def test_striping_is_uniform():
    directory = PageDirectory(db_size=2400, num_sites=8, num_data_disks=2)
    counts = [directory.num_pages_at(s) for s in range(8)]
    assert counts == [300] * 8


def test_uneven_db_size_distributes_remainder():
    directory = PageDirectory(db_size=10, num_sites=3, num_data_disks=1)
    counts = [directory.num_pages_at(s) for s in range(3)]
    assert sum(counts) == 10
    assert max(counts) - min(counts) <= 1


def test_pages_at_site_match_site_of():
    directory = PageDirectory(db_size=60, num_sites=4, num_data_disks=2)
    for site in range(4):
        for page in directory.pages_at(site):
            assert directory.site_of(page) == site


def test_disk_striping_within_site():
    directory = PageDirectory(db_size=64, num_sites=4, num_data_disks=2)
    pages = list(directory.pages_at(0))
    disks = [directory.disk_of(p) for p in pages]
    # Alternates between the site's disks.
    assert set(disks) == {0, 1}
    assert disks == [0, 1] * (len(pages) // 2)


def test_page_at_index():
    directory = PageDirectory(db_size=20, num_sites=4, num_data_disks=1)
    assert directory.page_at(1, 0) == 1
    assert directory.page_at(1, 2) == 9


def test_page_at_bad_index_rejected():
    directory = PageDirectory(db_size=20, num_sites=4, num_data_disks=1)
    with pytest.raises(ValueError):
        directory.page_at(0, 99)


def test_out_of_range_page_rejected():
    directory = PageDirectory(db_size=10, num_sites=2, num_data_disks=1)
    with pytest.raises(ValueError):
        directory.site_of(10)
    with pytest.raises(ValueError):
        directory.site_of(-1)
    with pytest.raises(ValueError):
        directory.disk_of(11)


def test_bad_site_rejected():
    directory = PageDirectory(db_size=10, num_sites=2, num_data_disks=1)
    with pytest.raises(ValueError):
        directory.pages_at(5)


def test_too_small_db_rejected():
    with pytest.raises(ValueError):
        PageDirectory(db_size=3, num_sites=8, num_data_disks=1)
