"""Tests for the site resource model."""

import pytest

from repro.db.deadlock import WaitForGraph
from repro.db.pages import PageDirectory
from repro.db.site import Site
from repro.sim import Environment
from repro.sim.resources import InfiniteServer, PriorityResource, Resource


@pytest.fixture
def env():
    return Environment()


def make_site(env, **overrides):
    defaults = dict(num_cpus=1, num_data_disks=2, num_log_disks=1,
                    page_cpu_ms=5.0, page_disk_ms=20.0)
    defaults.update(overrides)
    directory = PageDirectory(db_size=160, num_sites=2, num_data_disks=2)
    wfg = WaitForGraph(on_victim=lambda txn: None)
    return Site(env, 0, directory, wfg, **defaults)


def test_read_page_costs_disk_then_cpu(env):
    site = make_site(env)
    times = []

    def reader(env):
        yield from site.read_page(0)
        times.append(env.now)

    env.process(reader(env))
    env.run()
    assert times == [25.0]  # 20ms disk + 5ms cpu
    assert site.pages_read == 1


def test_write_page_costs_disk_only(env):
    site = make_site(env)
    times = []

    def writer(env):
        yield from site.write_page(0)
        times.append(env.now)

    env.process(writer(env))
    env.run()
    assert times == [20.0]
    assert site.pages_written == 1


def test_pages_map_to_distinct_disks(env):
    site = make_site(env)
    # Site 0 of 2 sites holds pages 0, 2, 4, 6...; its 2 disks alternate.
    assert site.data_disk_for(0) is site.data_disks[0]
    assert site.data_disk_for(2) is site.data_disks[1]
    assert site.data_disk_for(4) is site.data_disks[0]


def test_reads_on_different_disks_parallel(env):
    site = make_site(env)
    times = []

    def reader(env, page):
        yield from site.read_page(page)
        times.append(env.now)

    env.process(reader(env, 0))   # disk 0
    env.process(reader(env, 2))   # disk 1
    env.run()
    # Disk reads overlap; the single CPU serializes the 5ms processing.
    assert sorted(times) == [25.0, 30.0]


def test_reads_on_same_disk_serialize(env):
    site = make_site(env)
    times = []

    def reader(env, page):
        yield from site.read_page(page)
        times.append(env.now)

    env.process(reader(env, 0))
    env.process(reader(env, 4))   # same disk 0
    env.run()
    assert sorted(times) == [25.0, 45.0]


def test_message_cpu_preempts_queued_data_work(env):
    site = make_site(env)
    order = []

    def data_job(env, tag):
        yield from site.cpu.serve(5.0)
        order.append(tag)

    def message(env):
        yield env.timeout(1.0)
        yield from site.message_cpu(5.0)
        order.append("msg")

    env.process(data_job(env, "d1"))
    env.process(data_job(env, "d2"))
    env.process(message(env))
    env.run()
    assert order == ["d1", "msg", "d2"]


def test_infinite_resources_site(env):
    site = make_site(env, infinite_resources=True)
    assert isinstance(site.cpu, InfiniteServer)
    times = []

    def reader(env, page):
        yield from site.read_page(page)
        times.append(env.now)

    for _ in range(5):
        env.process(reader(env, 0))
    env.run()
    assert times == [25.0] * 5  # no queueing anywhere


def test_finite_resources_types(env):
    site = make_site(env)
    assert isinstance(site.cpu, PriorityResource)
    assert all(isinstance(d, Resource) for d in site.data_disks)


def test_multi_cpu_site(env):
    site = make_site(env, num_cpus=2)
    assert site.cpu.capacity == 2
    times = []

    def job(env):
        yield from site.cpu.serve(10.0)
        times.append(env.now)

    env.process(job(env))
    env.process(job(env))
    env.run()
    assert times == [10.0, 10.0]


def test_log_manager_attached_with_page_disk_cost(env):
    site = make_site(env, page_disk_ms=30.0)
    assert site.log_manager.write_time_ms == 30.0
