"""Shared fixtures for substrate tests.

The lock manager and wait-for graph are tested against lightweight fake
cohorts/transactions (duck-typed): unit tests should not need to stand
up the whole distributed system.
"""

from __future__ import annotations

import itertools

import pytest

from repro.db.deadlock import WaitForGraph
from repro.db.locks import LockManager
from repro.db.transaction import CohortState
from repro.obs.events import EventKind
from repro.sim import Environment

_ids = itertools.count(1)


class FakeTransaction:
    """Duck-typed stand-in for :class:`repro.db.transaction.Transaction`."""

    def __init__(self, submit_time: float = 0.0):
        self.txn_id = next(_ids)
        self.incarnation = 0
        self.submit_time = submit_time
        self.aborting = False
        self.outcome = None
        self.abort_reason = None
        self.pages_borrowed = 0
        self.blocked_cohorts = 0
        self.messages_execution = 0
        self.messages_commit = 0
        self.messages_cross_dc = 0
        self.forced_writes = 0

    @property
    def name(self):
        return f"T{self.txn_id}.{self.incarnation}"

    def is_younger_than(self, other):
        return (self.submit_time, self.txn_id) > (other.submit_time,
                                                  other.txn_id)

    def __repr__(self):
        return f"<FakeTxn {self.name}>"


class FakeCohort:
    """Duck-typed stand-in for :class:`repro.db.transaction.CohortAgent`."""

    def __init__(self, txn: FakeTransaction | None = None,
                 submit_time: float = 0.0):
        self.txn = txn or FakeTransaction(submit_time)
        self.state = CohortState.EXECUTING
        self.held_locks = {}
        self.lending_pages = set()
        self.lenders = set()
        self.off_shelf_calls = []

    def add_lender(self, lender):
        self.lenders.add(lender)

    def remove_lender(self, lender):
        self.lenders.discard(lender)
        self.off_shelf_calls.append(lender)

    def __repr__(self):
        return f"<FakeCohort {self.txn.name}>"


class Recorder:
    """Collects lock-manager activity: behavioural callbacks plus lock
    traffic observed on the manager's event bus."""

    def __init__(self):
        self.lender_aborts = []
        self.borrows = []
        #: (cohort, started_waiting) transitions, in order.
        self.wait_changes = []
        self.victims = []
        self._waiting = set()

    def subscribe(self, bus):
        """Observe a lock manager's bus (borrows and wait transitions)."""
        return bus.subscribe_map({
            EventKind.BORROW:
                lambda e: self.borrows.append((e.cohort, e.page)),
            EventKind.LOCK_BLOCK: self._on_block,
            # A waiting cohort stops waiting when granted, or when its
            # pending request is withdrawn by finalize.
            EventKind.LOCK_GRANT: self._on_unblock,
            EventKind.LOCK_RELEASE: self._on_unblock,
        })

    def _on_block(self, event):
        self._waiting.add(event.cohort)
        self.wait_changes.append((event.cohort, True))

    def _on_unblock(self, event):
        if event.cohort in self._waiting:
            self._waiting.discard(event.cohort)
            self.wait_changes.append((event.cohort, False))

    def on_lender_abort(self, borrower):
        self.lender_aborts.append(borrower)
        borrower.txn.aborting = True

    def on_victim(self, txn):
        self.victims.append(txn)
        txn.aborting = True


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def recorder():
    return Recorder()


@pytest.fixture
def wfg(recorder):
    return WaitForGraph(on_victim=recorder.on_victim)


@pytest.fixture
def lock_manager(env, wfg, recorder):
    """A lock manager with lending disabled (plain strict 2PL)."""
    manager = LockManager(env, site_id=0, wait_for_graph=wfg,
                          lending_enabled=False,
                          on_lender_abort=recorder.on_lender_abort)
    recorder.subscribe(manager.bus)
    return manager


@pytest.fixture
def lending_lock_manager(env, wfg, recorder):
    """A lock manager with OPT lending enabled."""
    manager = LockManager(env, site_id=0, wait_for_graph=wfg,
                          lending_enabled=True,
                          on_lender_abort=recorder.on_lender_abort)
    recorder.subscribe(manager.bus)
    return manager


def acquire_now(env, lock_manager, cohort, page, mode):
    """Drive an acquire coroutine to completion; fail if it would block."""
    done = []

    def runner():
        yield from lock_manager.acquire(cohort, page, mode)
        done.append(True)

    env.process(runner())
    env.run(until=env.now)
    if not done:
        raise AssertionError(
            f"{cohort} blocked acquiring page {page} {mode}")


def acquire_async(env, lock_manager, cohort, page, mode):
    """Start an acquire; return a list that gets True when granted."""
    done = []

    def runner():
        yield from lock_manager.acquire(cohort, page, mode)
        done.append(True)

    process = env.process(runner())
    env.run(until=env.now)
    return done, process
