"""Tests for the closed-system workload generator."""

import pytest

from repro.config import ModelParams
from repro.db.pages import PageDirectory
from repro.db.workload import WorkloadGenerator
from repro.sim import RandomStreams


def make_generator(**overrides):
    params = ModelParams(**overrides)
    directory = PageDirectory(params.db_size, params.num_sites,
                              params.num_data_disks)
    return params, WorkloadGenerator(params, directory, RandomStreams(1))


def test_first_cohort_at_origin():
    _, gen = make_generator()
    for origin in range(8):
        spec = gen.generate(origin)
        assert spec.origin_site == origin
        assert spec.accesses[0].site_id == origin


def test_dist_degree_distinct_sites():
    params, gen = make_generator(dist_degree=3)
    for _ in range(50):
        spec = gen.generate(0)
        sites = [a.site_id for a in spec.accesses]
        assert len(sites) == 3
        assert len(set(sites)) == 3
        assert all(0 <= s < params.num_sites for s in sites)


def test_cohort_pages_local_to_site():
    params, gen = make_generator()
    directory = gen.directory
    for _ in range(20):
        spec = gen.generate(2)
        for access in spec.accesses:
            for page in access.pages:
                assert directory.site_of(page) == access.site_id


def test_cohort_size_within_bounds():
    params, gen = make_generator(cohort_size=6)
    sizes = []
    for _ in range(200):
        spec = gen.generate(0)
        sizes.extend(len(a.pages) for a in spec.accesses)
    assert min(sizes) >= 3          # 0.5 x 6
    assert max(sizes) <= 9          # 1.5 x 6
    # Mean should be near CohortSize.
    assert 5.0 < sum(sizes) / len(sizes) < 7.0


def test_pages_unique_within_cohort():
    _, gen = make_generator()
    for _ in range(50):
        spec = gen.generate(0)
        for access in spec.accesses:
            assert len(set(access.pages)) == len(access.pages)


def test_update_probability_one_marks_everything():
    _, gen = make_generator(update_prob=1.0)
    spec = gen.generate(0)
    for access in spec.accesses:
        assert all(access.updates)
        assert not access.is_read_only


def test_update_probability_zero_marks_nothing():
    _, gen = make_generator(update_prob=0.0)
    spec = gen.generate(0)
    for access in spec.accesses:
        assert not any(access.updates)
        assert access.is_read_only


def test_intermediate_update_probability():
    _, gen = make_generator(update_prob=0.5)
    flags = []
    for _ in range(100):
        spec = gen.generate(0)
        for access in spec.accesses:
            flags.extend(access.updates)
    ratio = sum(flags) / len(flags)
    assert 0.4 < ratio < 0.6


def test_txn_ids_monotonically_increase():
    _, gen = make_generator()
    ids = [gen.generate(0).txn_id for _ in range(10)]
    assert ids == sorted(ids)
    assert len(set(ids)) == 10


def test_same_seed_same_workload():
    _, gen_a = make_generator()
    _, gen_b = make_generator()
    for _ in range(10):
        spec_a = gen_a.generate(3)
        spec_b = gen_b.generate(3)
        assert spec_a.accesses == spec_b.accesses


def test_dist_degree_one_stays_at_origin():
    _, gen = make_generator(dist_degree=1)
    spec = gen.generate(5)
    assert len(spec.accesses) == 1
    assert spec.accesses[0].site_id == 5


def test_total_pages_property():
    _, gen = make_generator()
    spec = gen.generate(0)
    assert spec.total_pages == sum(len(a.pages) for a in spec.accesses)
