"""Tests for the network model (switch with per-end CPU costs)."""

import pytest

from repro.config import ModelParams
from repro.core import create_protocol
from repro.db.messages import Message, MessageKind
from repro.db.system import DistributedSystem
from repro.sim.resources import Store

from tests.db.conftest import FakeTransaction


class FakeAgent:
    """Just enough agent for the network: a site, an inbox, a txn."""

    def __init__(self, system, site_id, txn):
        self.site = system.sites[site_id]
        self.inbox = Store(system.env)
        self.txn = txn


@pytest.fixture
def system():
    params = ModelParams(num_sites=2, dist_degree=1, mpl=1, db_size=200,
                         cohort_size=2)
    return DistributedSystem(params, create_protocol("2PC"))


@pytest.fixture
def txn():
    return FakeTransaction()


def _send(system, message):
    done = []

    def sender(env):
        yield from system.network.send(message)
        done.append(env.now)

    system.env.process(sender(system.env))
    return done


def test_local_message_is_free_and_instant(system, txn):
    env = system.env
    sender = FakeAgent(system, 0, txn)
    receiver = FakeAgent(system, 0, txn)
    done = _send(system, Message(MessageKind.PREPARE, sender, receiver,
                                 txn.txn_id, 0))
    env.run()
    assert done == [0.0]
    assert len(receiver.inbox) == 1
    assert system.network.local_messages == 1
    assert system.network.messages_sent == 0
    assert txn.messages_commit == 0  # local messages are free


def test_remote_message_costs_cpu_both_ends(system, txn):
    env = system.env
    sender = FakeAgent(system, 0, txn)
    receiver = FakeAgent(system, 1, txn)
    done = _send(system, Message(MessageKind.PREPARE, sender, receiver,
                                 txn.txn_id, 0))
    arrived = []

    def consumer(env):
        yield receiver.inbox.get()
        arrived.append(env.now)

    env.process(consumer(env))
    env.run()
    # 5ms at the sender CPU; delivery costs another 5ms at the receiver.
    assert done == [5.0]
    assert arrived == [10.0]
    assert system.network.messages_sent == 1


def test_receive_cost_does_not_block_sender(system, txn):
    """The sender must be free as soon as its own CPU work is done."""
    env = system.env
    sender = FakeAgent(system, 0, txn)
    receivers = [FakeAgent(system, 1, txn) for _ in range(3)]
    finished = []

    def burst(env):
        for receiver in receivers:
            yield from system.network.send(Message(
                MessageKind.PREPARE, sender, receiver, txn.txn_id, 0))
        finished.append(env.now)

    env.process(burst(env))
    env.run()
    # Three sends at 5ms each on the sender's CPU; receiver-side costs
    # (serialized on the receiver's one CPU) happen in parallel with them.
    assert finished == [15.0]


def test_remote_messages_counted_by_phase(system, txn):
    env = system.env
    sender = FakeAgent(system, 0, txn)
    receiver = FakeAgent(system, 1, txn)
    _send(system, Message(MessageKind.STARTWORK, sender, receiver,
                          txn.txn_id, 0))
    _send(system, Message(MessageKind.COMMIT, sender, receiver,
                          txn.txn_id, 0))
    env.run()
    assert txn.messages_execution == 1
    assert txn.messages_commit == 1


def test_message_kind_phase_classification():
    assert MessageKind.STARTWORK.is_execution
    assert MessageKind.WORKDONE.is_execution
    for kind in (MessageKind.PREPARE, MessageKind.VOTE_YES,
                 MessageKind.VOTE_NO, MessageKind.COMMIT, MessageKind.ABORT,
                 MessageKind.ACK, MessageKind.PRECOMMIT,
                 MessageKind.PRECOMMIT_ACK, MessageKind.VOTE_READ_ONLY):
        assert kind.is_commit
        assert not kind.is_execution


def test_message_ids_unique():
    a = Message(MessageKind.ACK, None, None, 1, 0)
    b = Message(MessageKind.ACK, None, None, 1, 0)
    assert a.msg_id != b.msg_id


def test_fast_network_parameter(txn):
    params = ModelParams(num_sites=2, dist_degree=1, mpl=1, db_size=200,
                         cohort_size=2, msg_cpu_ms=1.0)
    system = DistributedSystem(params, create_protocol("2PC"))
    sender = FakeAgent(system, 0, txn)
    receiver = FakeAgent(system, 1, txn)
    done = _send(system, Message(MessageKind.PREPARE, sender, receiver,
                                 txn.txn_id, 0))
    system.env.run()
    assert done == [1.0]
