"""Unit tests for the lock manager (strict 2PL plus OPT lending)."""

import pytest

from repro.db.locks import LockMode
from repro.db.transaction import CohortState
from repro.sim import Interrupt

from tests.db.conftest import FakeCohort, acquire_async, acquire_now


class TestLockModes:
    def test_read_read_compatible(self):
        assert LockMode.READ.compatible_with(LockMode.READ)

    def test_update_conflicts_with_everything(self):
        assert not LockMode.UPDATE.compatible_with(LockMode.READ)
        assert not LockMode.READ.compatible_with(LockMode.UPDATE)
        assert not LockMode.UPDATE.compatible_with(LockMode.UPDATE)

    def test_covers(self):
        assert LockMode.UPDATE.covers(LockMode.READ)
        assert LockMode.UPDATE.covers(LockMode.UPDATE)
        assert LockMode.READ.covers(LockMode.READ)
        assert not LockMode.READ.covers(LockMode.UPDATE)


class TestBasicLocking:
    def test_uncontested_grant_is_immediate(self, env, lock_manager):
        cohort = FakeCohort()
        acquire_now(env, lock_manager, cohort, 1, LockMode.UPDATE)
        assert cohort.held_locks == {1: LockMode.UPDATE}
        assert lock_manager.holders_of(1) == {cohort: LockMode.UPDATE}

    def test_shared_readers_coexist(self, env, lock_manager):
        a, b, c = FakeCohort(), FakeCohort(), FakeCohort()
        for cohort in (a, b, c):
            acquire_now(env, lock_manager, cohort, 5, LockMode.READ)
        assert len(lock_manager.holders_of(5)) == 3

    def test_update_blocks_reader(self, env, lock_manager):
        writer, reader = FakeCohort(), FakeCohort()
        acquire_now(env, lock_manager, writer, 7, LockMode.UPDATE)
        done, _ = acquire_async(env, lock_manager, reader, 7, LockMode.READ)
        assert not done
        assert lock_manager.waiters_of(7)[0].cohort is reader

    def test_reader_blocks_update(self, env, lock_manager):
        reader, writer = FakeCohort(), FakeCohort()
        acquire_now(env, lock_manager, reader, 7, LockMode.READ)
        done, _ = acquire_async(env, lock_manager, writer, 7, LockMode.UPDATE)
        assert not done

    def test_release_grants_next_waiter_fcfs(self, env, lock_manager):
        first, second, third = FakeCohort(), FakeCohort(), FakeCohort()
        acquire_now(env, lock_manager, first, 3, LockMode.UPDATE)
        done2, _ = acquire_async(env, lock_manager, second, 3, LockMode.UPDATE)
        done3, _ = acquire_async(env, lock_manager, third, 3, LockMode.UPDATE)
        lock_manager.finalize(first, committed=True)
        env.run(until=env.now)
        assert done2 and not done3
        lock_manager.finalize(second, committed=True)
        env.run(until=env.now)
        assert done3

    def test_no_queue_jumping_by_compatible_request(self, env, lock_manager):
        """A read request must not overtake a queued update request."""
        holder, writer, reader = FakeCohort(), FakeCohort(), FakeCohort()
        acquire_now(env, lock_manager, holder, 9, LockMode.READ)
        done_w, _ = acquire_async(env, lock_manager, writer, 9, LockMode.UPDATE)
        done_r, _ = acquire_async(env, lock_manager, reader, 9, LockMode.READ)
        assert not done_w and not done_r  # reader queues behind writer

    def test_reacquire_held_lock_is_noop(self, env, lock_manager):
        cohort = FakeCohort()
        acquire_now(env, lock_manager, cohort, 4, LockMode.UPDATE)
        acquire_now(env, lock_manager, cohort, 4, LockMode.READ)
        acquire_now(env, lock_manager, cohort, 4, LockMode.UPDATE)
        assert lock_manager.grants == 1

    def test_upgrade_as_sole_holder(self, env, lock_manager):
        cohort = FakeCohort()
        acquire_now(env, lock_manager, cohort, 4, LockMode.READ)
        acquire_now(env, lock_manager, cohort, 4, LockMode.UPDATE)
        assert cohort.held_locks[4] is LockMode.UPDATE

    def test_upgrade_waits_for_other_readers(self, env, lock_manager):
        a, b = FakeCohort(), FakeCohort()
        acquire_now(env, lock_manager, a, 4, LockMode.READ)
        acquire_now(env, lock_manager, b, 4, LockMode.READ)
        done, _ = acquire_async(env, lock_manager, a, 4, LockMode.UPDATE)
        assert not done
        lock_manager.finalize(b, committed=True)
        env.run(until=env.now)
        assert done
        assert a.held_locks[4] is LockMode.UPDATE

    def test_finalize_withdraws_pending_request(self, env, lock_manager):
        holder, waiter, third = FakeCohort(), FakeCohort(), FakeCohort()
        acquire_now(env, lock_manager, holder, 2, LockMode.UPDATE)
        done_w, process = acquire_async(env, lock_manager, waiter, 2,
                                        LockMode.UPDATE)
        done_t, _ = acquire_async(env, lock_manager, third, 2, LockMode.UPDATE)
        # Abort the first waiter: its queued request must disappear.
        process.interrupt("abort")
        try:
            env.run(until=env.now)
        except Interrupt:
            pass
        lock_manager.finalize(waiter, committed=False)
        lock_manager.finalize(holder, committed=True)
        env.run(until=env.now)
        assert done_t and not done_w

    def test_wait_change_callbacks(self, env, lock_manager, recorder):
        holder, waiter = FakeCohort(), FakeCohort()
        acquire_now(env, lock_manager, holder, 2, LockMode.UPDATE)
        acquire_async(env, lock_manager, waiter, 2, LockMode.UPDATE)
        assert (waiter, True) in recorder.wait_changes
        lock_manager.finalize(holder, committed=True)
        env.run(until=env.now)
        assert (waiter, False) in recorder.wait_changes

    def test_entry_garbage_collected_when_free(self, env, lock_manager):
        cohort = FakeCohort()
        acquire_now(env, lock_manager, cohort, 11, LockMode.UPDATE)
        assert 11 in lock_manager._entries
        lock_manager.finalize(cohort, committed=True)
        assert 11 not in lock_manager._entries


class TestPreparedStateWithoutLending:
    def test_prepare_releases_read_locks_only(self, env, lock_manager):
        cohort = FakeCohort()
        acquire_now(env, lock_manager, cohort, 1, LockMode.READ)
        acquire_now(env, lock_manager, cohort, 2, LockMode.UPDATE)
        cohort.state = CohortState.PREPARED
        lock_manager.prepare(cohort)
        assert 1 not in cohort.held_locks
        assert cohort.held_locks[2] is LockMode.UPDATE
        assert lock_manager.holders_of(1) == {}
        assert lock_manager.holders_of(2) == {cohort: LockMode.UPDATE}

    def test_prepare_wakes_reader_waiters(self, env, lock_manager):
        holder, waiter = FakeCohort(), FakeCohort()
        acquire_now(env, lock_manager, holder, 1, LockMode.READ)
        done, _ = acquire_async(env, lock_manager, waiter, 1, LockMode.UPDATE)
        assert not done
        holder.state = CohortState.PREPARED
        lock_manager.prepare(holder)
        env.run(until=env.now)
        assert done

    def test_prepared_update_locks_still_block(self, env, lock_manager):
        """Without OPT, prepared data stays locked (the problem OPT fixes)."""
        holder, waiter = FakeCohort(), FakeCohort()
        acquire_now(env, lock_manager, holder, 1, LockMode.UPDATE)
        holder.state = CohortState.PREPARED
        lock_manager.prepare(holder)
        done, _ = acquire_async(env, lock_manager, waiter, 1, LockMode.READ)
        assert not done
        lock_manager.finalize(holder, committed=True)
        env.run(until=env.now)
        assert done


class TestLending:
    def _prepared_lender(self, env, lm, page=1):
        lender = FakeCohort()
        acquire_now(env, lm, lender, page, LockMode.UPDATE)
        lender.state = CohortState.PREPARED
        lm.prepare(lender)
        return lender

    def test_prepare_moves_update_locks_to_lenders(
            self, env, lending_lock_manager):
        lm = lending_lock_manager
        lender = self._prepared_lender(env, lm)
        assert lm.holders_of(1) == {}
        assert lm.lenders_of(1) == {lender: LockMode.UPDATE}
        assert 1 in lender.lending_pages

    def test_borrow_granted_immediately(self, env, lending_lock_manager,
                                        recorder):
        lm = lending_lock_manager
        lender = self._prepared_lender(env, lm)
        borrower = FakeCohort()
        acquire_now(env, lm, borrower, 1, LockMode.READ)
        assert borrower.lenders == {lender}
        assert lm.borrowers_of(lender) == {borrower}
        assert borrower.txn.pages_borrowed == 1
        assert recorder.borrows == [(borrower, 1)]

    def test_update_borrow_also_granted(self, env, lending_lock_manager):
        lm = lending_lock_manager
        lender = self._prepared_lender(env, lm)
        borrower = FakeCohort()
        acquire_now(env, lm, borrower, 1, LockMode.UPDATE)
        assert borrower.lenders == {lender}

    def test_waiter_becomes_borrower_when_holder_prepares(
            self, env, lending_lock_manager):
        lm = lending_lock_manager
        holder = FakeCohort()
        acquire_now(env, lm, holder, 1, LockMode.UPDATE)
        borrower = FakeCohort()
        done, _ = acquire_async(env, lm, borrower, 1, LockMode.READ)
        assert not done
        holder.state = CohortState.PREPARED
        lm.prepare(holder)
        env.run(until=env.now)
        assert done
        assert borrower.lenders == {holder}

    def test_borrowers_conflict_among_themselves(
            self, env, lending_lock_manager):
        """Borrowing bypasses the lender, not other active holders."""
        lm = lending_lock_manager
        self._prepared_lender(env, lm)
        first = FakeCohort()
        acquire_now(env, lm, first, 1, LockMode.UPDATE)   # borrows
        second = FakeCohort()
        done, _ = acquire_async(env, lm, second, 1, LockMode.READ)
        assert not done  # blocked by the active borrower, not the lender

    def test_two_read_borrowers_share(self, env, lending_lock_manager):
        lm = lending_lock_manager
        lender = self._prepared_lender(env, lm)
        a, b = FakeCohort(), FakeCohort()
        acquire_now(env, lm, a, 1, LockMode.READ)
        acquire_now(env, lm, b, 1, LockMode.READ)
        assert a.lenders == {lender} and b.lenders == {lender}
        assert lm.borrowers_of(lender) == {a, b}

    def test_lender_commit_releases_borrower(self, env, lending_lock_manager):
        lm = lending_lock_manager
        lender = self._prepared_lender(env, lm)
        borrower = FakeCohort()
        acquire_now(env, lm, borrower, 1, LockMode.UPDATE)
        lm.finalize(lender, committed=True)
        assert borrower.lenders == set()
        assert borrower.off_shelf_calls == [lender]
        # Borrower now owns the lock outright.
        assert lm.lenders_of(1) == {}
        assert lm.holders_of(1) == {borrower: LockMode.UPDATE}

    def test_lender_abort_kills_borrowers(self, env, lending_lock_manager,
                                          recorder):
        lm = lending_lock_manager
        lender = self._prepared_lender(env, lm)
        a, b = FakeCohort(), FakeCohort()
        acquire_now(env, lm, a, 1, LockMode.READ)
        acquire_now(env, lm, b, 1, LockMode.READ)
        lm.finalize(lender, committed=False)
        assert set(recorder.lender_aborts) == {a, b}

    def test_borrow_from_multiple_lenders(self, env, lending_lock_manager):
        lm = lending_lock_manager
        lender1 = self._prepared_lender(env, lm, page=1)
        lender2 = self._prepared_lender(env, lm, page=2)
        borrower = FakeCohort()
        acquire_now(env, lm, borrower, 1, LockMode.READ)
        acquire_now(env, lm, borrower, 2, LockMode.READ)
        assert borrower.lenders == {lender1, lender2}
        assert borrower.txn.pages_borrowed == 2
        lm.finalize(lender1, committed=True)
        assert borrower.lenders == {lender2}
        lm.finalize(lender2, committed=True)
        assert borrower.lenders == set()

    def test_lending_disabled_never_borrows(self, env, lock_manager):
        lender = FakeCohort()
        acquire_now(env, lock_manager, lender, 1, LockMode.UPDATE)
        lender.state = CohortState.PREPARED
        lock_manager.prepare(lender)
        borrower = FakeCohort()
        done, _ = acquire_async(env, lock_manager, borrower, 1, LockMode.READ)
        assert not done
        assert borrower.lenders == set()

    def test_consistency_check_passes(self, env, lending_lock_manager):
        lm = lending_lock_manager
        self._prepared_lender(env, lm)
        borrower = FakeCohort()
        acquire_now(env, lm, borrower, 1, LockMode.READ)
        lm.assert_consistent()

    def test_consistency_check_flags_non_prepared_lender(
            self, env, lending_lock_manager):
        lm = lending_lock_manager
        lender = self._prepared_lender(env, lm)
        lender.state = CohortState.EXECUTING  # corrupt the state
        with pytest.raises(AssertionError):
            lm.assert_consistent()
