"""Fault injector x network topology composition.

The cost model prices the *healthy* wire (per-link latency, stochastic
wire loss); the fault injector models the *unhealthy* one (per-kind
injected delay/loss, site crashes).  These tests pin the contract that
the two stack rather than replace each other.
"""

import pytest

from repro.config import ModelParams
from repro.core import create_protocol
from repro.db.messages import Message, MessageKind
from repro.db.system import DistributedSystem
from repro.db.topology import NetworkTopology
from repro.faults import CrashEvent, FaultConfig
from repro.faults.plan import FaultPlan
from repro.obs.events import EventKind
from repro.obs.recorder import EventLog
from repro.sim.rng import RandomStreams

from tests.db.conftest import FakeTransaction
from tests.db.test_network import FakeAgent, _send

SEED = 1234


def _system(topology, faults, num_sites=2, seed=SEED):
    params = ModelParams(num_sites=num_sites, dist_degree=1, mpl=1,
                         db_size=100 * num_sites, cohort_size=2,
                         network_topology=NetworkTopology.parse(topology))
    return DistributedSystem(params, create_protocol("2PC"), seed=seed,
                             faults=faults)


def test_injected_delay_stacks_on_topology_latency():
    """Total delivery delay = wire latency + injected delay, not either
    alone."""
    config = FaultConfig(msg_delay_ms=8.0,
                         faulty_kinds=("PREPARE",))
    system = _system("matrix:0,20;20,0", config)
    txn = FakeTransaction()
    sender = FakeAgent(system, 0, txn)
    receiver = FakeAgent(system, 1, txn)
    _send(system, Message(MessageKind.PREPARE, sender, receiver,
                          txn.txn_id, 0))
    arrived = []

    def consumer(env):
        yield receiver.inbox.get()
        arrived.append(env.now)

    system.env.process(consumer(system.env))
    system.env.run()
    # Reproduce the injector's own draw: same seed, same named stream.
    expected_injected = FaultPlan(config, RandomStreams(SEED),
                                  num_sites=2).message_delay("PREPARE")
    assert expected_injected > 0.0
    # 5ms send CPU + 20ms wire + injected delay + 5ms receive CPU.
    assert arrived == [pytest.approx(30.0 + expected_injected)]


def test_injected_delay_alone_skips_the_wire():
    """Same fault config without a WAN topology: only the injected part."""
    config = FaultConfig(msg_delay_ms=8.0, faulty_kinds=("PREPARE",))
    params = ModelParams(num_sites=2, dist_degree=1, mpl=1, db_size=200,
                         cohort_size=2)
    system = DistributedSystem(params, create_protocol("2PC"), seed=SEED,
                               faults=config)
    txn = FakeTransaction()
    sender = FakeAgent(system, 0, txn)
    receiver = FakeAgent(system, 1, txn)
    _send(system, Message(MessageKind.PREPARE, sender, receiver,
                          txn.txn_id, 0))
    arrived = []

    def consumer(env):
        yield receiver.inbox.get()
        arrived.append(env.now)

    system.env.process(consumer(system.env))
    system.env.run()
    expected_injected = FaultPlan(config, RandomStreams(SEED),
                                  num_sites=2).message_delay("PREPARE")
    assert arrived == [pytest.approx(10.0 + expected_injected)]


def test_topology_and_injected_loss_both_drop():
    """With both loss planes armed, drops carry *both* reasons over a
    long enough stream of messages -- either plane can eat a message."""
    config = FaultConfig(msg_loss_prob=0.3)
    system = _system("matrix:0,0;0,0:loss=0.3", config)
    log = EventLog(kinds=(EventKind.MSG_DROP,)).attach(system.bus)
    txn = FakeTransaction()
    sender = FakeAgent(system, 0, txn)
    receiver = FakeAgent(system, 1, txn)
    for _ in range(60):
        _send(system, Message(MessageKind.PREPARE, sender, receiver,
                              txn.txn_id, 0))
    system.env.run()
    reasons = {e.reason for e in log.events}
    assert reasons == {"topology_loss", "loss"}
    delivered = len(receiver.inbox)
    assert delivered + system.network.messages_dropped == 60
    # Stacked loss must drop more than either plane alone would on
    # average; with p=0.3 each, ~51% survive.  Deterministic per seed.
    assert 0 < delivered < 60


def test_inquiries_are_exempt_from_stochastic_loss():
    """Recovery inquiries are a reliable retried exchange: they pay wire
    delay but never stochastic loss (topology or injected)."""
    config = FaultConfig(msg_loss_prob=0.5)
    system = _system("matrix:0,20;20,0:loss=0.5", config)
    txn = FakeTransaction()
    agent = FakeAgent(system, 0, txn)
    done = []

    def driver(env):
        for _ in range(10):
            yield from system.network.inquiry_round_trip(
                agent, system.sites[1])
        done.append(env.now)

    system.env.process(driver(system.env))
    system.env.run()
    assert system.network.messages_dropped == 0
    # Ten round trips, each 4 x 5ms MsgCPU + 40ms on the wire.
    assert done == [600.0]


def test_crashed_site_drops_in_flight_cross_dc_message():
    """A site that crashes while a cross-DC message is on the wire still
    eats it -- the drop happens *after* the link delay elapses."""
    config = FaultConfig(
        crash_schedule=(CrashEvent(1, 7.0, 10_000.0),))
    system = _system("matrix:0,20;20,0", config)
    system.faults.start()
    log = EventLog(kinds=(EventKind.MSG_DROP,)).attach(system.bus)
    txn = FakeTransaction()
    sender = FakeAgent(system, 0, txn)
    receiver = FakeAgent(system, 1, txn)
    done = _send(system, Message(MessageKind.PREPARE, sender, receiver,
                                 txn.txn_id, 0))
    system.env.run(until=100.0)
    # Sender finished its CPU at 5ms, the receiver crashed at 7ms, and
    # the message was still dropped only once the 20ms wire delay had
    # elapsed -- at t=25, not at crash time.
    assert done == [5.0]
    assert len(receiver.inbox) == 0
    drops = log.of_kind(EventKind.MSG_DROP)
    assert [e.reason for e in drops] == ["site_down"]
    assert drops[0].time == 25.0


def test_end_to_end_wan_run_with_faults_completes():
    """Smoke: a full simulation composing WAN topology + crash faults
    terminates and reports both planes' counters."""
    import repro
    from repro.faults import FaultConfig as FC

    captured = []
    result = repro.simulate(
        "PA", mpl=2, measured_transactions=60, warmup_transactions=0,
        seed=SEED,
        network_topology=NetworkTopology.parse(
            "dcs:2x4:rtt_ms=10:loss=0.01"),
        faults=FC(mttf_ms=200_000.0, mttr_ms=2_000.0),
        on_system=captured.append)
    system = captured[0]
    assert result.committed > 0
    assert system.network.cross_dc_messages > 0
    assert system.network.messages_dropped > 0  # wire loss at 1%
