"""Tests for transaction agents: execution order, shelf, decisions."""

import pytest

import repro
from repro.config import ModelParams, TransactionType
from repro.core import create_protocol
from repro.db.system import DistributedSystem
from repro.db.transaction import CohortState, TransactionOutcome
from repro.obs.events import EventKind
from repro.sim.events import Event


def make_system(protocol="2PC", **overrides):
    defaults = dict(num_sites=3, db_size=600, mpl=1, dist_degree=3,
                    cohort_size=2)
    defaults.update(overrides)
    return DistributedSystem(ModelParams(**defaults),
                             create_protocol(protocol))


class TestExecutionPhases:
    def test_parallel_cohorts_overlap(self):
        """In a parallel transaction, remote cohorts' disk reads overlap:
        the transaction finishes far sooner than the serial sum."""
        par = make_system()
        seq = make_system(trans_type=TransactionType.SEQUENTIAL)
        r_par = par.run(measured_transactions=30, warmup_transactions=5)
        r_seq = seq.run(measured_transactions=30, warmup_transactions=5)
        assert r_par.response_time_ms < r_seq.response_time_ms

    def test_sequential_cohorts_one_at_a_time(self):
        """With sequential execution, at most one cohort of a
        transaction is ever executing."""
        system = make_system(trans_type=TransactionType.SEQUENTIAL)
        violations = []

        def watch(env, txn):
            while txn.outcome is None and not txn.aborting:
                executing = [c for c in txn.cohorts
                             if c.state is CohortState.EXECUTING]
                if len(executing) > 1:
                    violations.append(txn.name)
                yield env.timeout(5.0)

        system.bus.subscribe(
            (EventKind.TXN_SUBMIT, EventKind.TXN_RESTART),
            lambda event: system.env.process(
                watch(system.env, event.txn)))
        system.run(measured_transactions=20, warmup_transactions=0)
        assert violations == []

    def test_transaction_outcome_recorded(self):
        system = make_system()
        spec = system.workload.generate(0)
        txn = system._launch(spec, 0, 0.0)
        system.env.run(until=txn.master.process)
        assert txn.outcome is TransactionOutcome.COMMITTED

    def test_live_processes_empty_after_completion(self):
        system = make_system()
        spec = system.workload.generate(0)
        txn = system._launch(spec, 0, 0.0)
        system.env.run(until=txn.master.process)
        # Cohorts of PC/2PC may finish slightly after the master (ACK
        # processing): drain the queue.
        system.env.run()
        assert txn.live_processes() == []


class TestShelfMechanics:
    def test_shelf_event_released_when_lender_resolves(self):
        """Direct unit test of wait_off_shelf."""
        system = make_system("OPT")
        spec = system.workload.generate(0)
        txn = system._launch(spec, 0, 0.0)
        cohort = txn.cohorts[0]
        other_spec = system.workload.generate(1)
        other_txn = system._launch(other_spec, 0, 0.0)
        lender = other_txn.cohorts[0]
        log = []

        def borrower_process(env):
            cohort.add_lender(lender)
            yield from cohort.wait_off_shelf()
            log.append(env.now)

        def resolver(env):
            yield env.timeout(50.0)
            cohort.remove_lender(lender)

        env = system.env
        env.process(borrower_process(env))
        env.process(resolver(env))
        env.run(until=60.0)
        assert log == [50.0]

    def test_wait_off_shelf_immediate_without_lenders(self):
        system = make_system("OPT")
        spec = system.workload.generate(0)
        txn = system._launch(spec, 0, 0.0)
        cohort = txn.cohorts[0]
        log = []

        def proc(env):
            yield from cohort.wait_off_shelf()
            log.append(env.now)
            yield env.timeout(0)

        system.env.process(proc(system.env))
        system.env.run(until=1.0)
        assert log == [0.0]

    def test_shelf_counted_in_metrics(self):
        params = ModelParams(num_sites=4, db_size=240, mpl=6,
                             dist_degree=2, cohort_size=3)
        result = repro.simulate("OPT", params=params,
                                measured_transactions=300,
                                warmup_transactions=30)
        # Heavy contention: some borrowers must have hit the shelf.
        assert result.shelf_entries > 0


class TestDecisionImplementation:
    def test_commit_schedules_deferred_writes(self):
        system = make_system()
        spec = system.workload.generate(0)
        txn = system._launch(spec, 0, 0.0)
        system.env.run(until=txn.master.process)
        system.env.run()  # drain the async flush processes
        written = sum(site.pages_written for site in system.sites)
        updated = sum(len(a.updated_pages) for a in spec.accesses)
        assert written == updated

    def test_abort_discards_deferred_writes(self):
        system = make_system(surprise_abort_prob=1.0)
        spec = system.workload.generate(0)
        txn = system._launch(spec, 0, 0.0)
        outcome = system.env.run(until=txn.master.process)
        assert outcome is TransactionOutcome.ABORTED
        system.env.run()
        assert sum(site.pages_written for site in system.sites) == 0

    def test_read_only_transaction_writes_nothing(self):
        system = make_system(update_prob=0.0)
        spec = system.workload.generate(0)
        txn = system._launch(spec, 0, 0.0)
        system.env.run(until=txn.master.process)
        system.env.run()
        assert sum(site.pages_written for site in system.sites) == 0
