"""Tests for the network topology layer and pluggable cost models."""

import dataclasses
import json

import pytest

import repro
from repro.config import ModelParams, Topology
from repro.core import create_protocol
from repro.db.messages import Message, MessageKind
from repro.db.system import DistributedSystem
from repro.db.topology import (
    LanSwitch,
    NetworkTopology,
    TopologyKind,
    WanTopology,
    build_cost_model,
)
from repro.obs.events import EventKind
from repro.obs.recorder import EventLog
from repro.sim.rng import RandomStreams

from tests.db.conftest import FakeTransaction
from tests.db.test_network import FakeAgent, _send


# ----------------------------------------------------------------------
# Spec parsing (mirrors the AccessSkew.parse boundary contract)
# ----------------------------------------------------------------------
class TestParse:
    def test_uniform(self):
        topology = NetworkTopology.parse("uniform")
        assert topology.is_uniform
        assert topology.placement(8) is None
        assert topology.describe() == "uniform"

    def test_dcs(self):
        topology = NetworkTopology.parse("dcs:2x2:rtt_ms=40")
        assert topology.kind is TopologyKind.DCS
        assert topology.num_dcs == 2
        assert topology.sites_per_dc == 2
        assert topology.rtt_ms == 40.0
        assert topology.placement(4) == (0, 0, 1, 1)

    def test_dcs_options(self):
        topology = NetworkTopology.parse(
            "dcs:2x4:rtt_ms=80:intra_ms=1:jitter_ms=5:loss=0.01")
        assert topology.intra_ms == 1.0
        assert topology.jitter_ms == 5.0
        assert topology.loss_prob == 0.01

    def test_matrix(self):
        topology = NetworkTopology.parse("matrix:0,20;20,0")
        assert topology.kind is TopologyKind.MATRIX
        assert topology.latency_matrix(2) == ((0.0, 20.0), (20.0, 0.0))
        # Matrix placement: every site is its own datacenter.
        assert topology.placement(2) == (0, 1)

    def test_case_and_whitespace_insensitive(self):
        assert NetworkTopology.parse("  UNIFORM ").is_uniform
        assert NetworkTopology.parse("DCS:2x2:RTT_MS=40").rtt_ms == 40.0

    @pytest.mark.parametrize("bad", [
        "",
        "nonsense",
        "uniform:extra",
        "dcs",
        "dcs:2x2",                      # missing rtt_ms
        "dcs:2:rtt_ms=40",              # not DxS
        "dcs:2x2x2:rtt_ms=40",
        "dcs:ax2:rtt_ms=40",
        "dcs:2x2:rtt_ms=abc",
        "dcs:2x2:rtt_ms=-40",
        "dcs:0x2:rtt_ms=40",
        "dcs:2x2:rtt_ms=40:bogus=1",    # unknown option
        "dcs:2x2:rtt_ms=40:loss=1.5",   # loss out of range
        "matrix:",
        "matrix:0,20;20",               # ragged row
        "matrix:0,20;20,5",             # nonzero diagonal
        "matrix:0,-1;1,0",              # negative latency
    ])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(ValueError, match="topology"):
            NetworkTopology.parse(bad)

    def test_error_lists_accepted_forms(self):
        with pytest.raises(ValueError) as err:
            NetworkTopology.parse("bogus")
        message = str(err.value)
        assert "uniform" in message
        assert "dcs:" in message
        assert "matrix:" in message


class TestSpecResolution:
    def test_check_num_sites_mismatch(self):
        topology = NetworkTopology.parse("dcs:2x2:rtt_ms=40")
        with pytest.raises(ValueError, match="num_sites=8"):
            topology.check_num_sites(8)

    def test_matrix_size_mismatch(self):
        topology = NetworkTopology.parse("matrix:0,20;20,0")
        with pytest.raises(ValueError, match="covers 2 sites"):
            topology.placement(3)

    def test_dcs_latency_matrix(self):
        topology = NetworkTopology.parse("dcs:2x2:rtt_ms=40:intra_ms=1")
        matrix = topology.latency_matrix(4)
        assert matrix[0][0] == 0.0      # self
        assert matrix[0][1] == 1.0      # intra-DC
        assert matrix[0][2] == 20.0     # cross-DC one-way = rtt / 2
        assert matrix[2][1] == 20.0

    def test_describe_round_trip(self):
        topology = NetworkTopology.parse("dcs:3x2:rtt_ms=100:loss=0.05")
        described = topology.describe()
        assert "3 DCs x 2 sites" in described
        assert "loss=0.05" in described


# ----------------------------------------------------------------------
# Cost models
# ----------------------------------------------------------------------
class TestCostModels:
    def test_lan_switch_is_free(self):
        model = LanSwitch()
        assert model.placement is None
        assert model.wire_delay(0, 5) == 0.0
        assert not model.lose(0, 5)

    def test_build_cost_model_dispatch(self):
        streams = RandomStreams(1)
        assert build_cost_model(None, 8, streams) is None
        assert isinstance(build_cost_model(
            NetworkTopology.parse("uniform"), 8, streams), LanSwitch)
        assert isinstance(build_cost_model(
            NetworkTopology.parse("dcs:2x4:rtt_ms=40"), 8, streams),
            WanTopology)

    def test_wan_delay_and_classification(self):
        wan = WanTopology(NetworkTopology.parse("dcs:2x2:rtt_ms=40"),
                          4, RandomStreams(1))
        assert wan.placement == (0, 0, 1, 1)
        assert wan.wire_delay(0, 1) == 0.0    # intra-DC default
        assert wan.wire_delay(0, 2) == 20.0   # one-way = rtt / 2
        assert not wan.is_cross_dc(0, 1)
        assert wan.is_cross_dc(1, 2)

    def test_jitter_only_on_cross_dc_links(self):
        spec = NetworkTopology.parse("dcs:2x2:rtt_ms=40:jitter_ms=5")
        wan = WanTopology(spec, 4, RandomStreams(1))
        assert wan.wire_delay(0, 1) == 0.0
        cross = [wan.wire_delay(0, 2) for _ in range(20)]
        assert all(delay > 20.0 for delay in cross)
        assert len(set(cross)) > 1  # jitter varies draw to draw

    def test_jitter_streams_are_per_link_and_seeded(self):
        spec = NetworkTopology.parse("dcs:2x2:rtt_ms=40:jitter_ms=5")
        one = WanTopology(spec, 4, RandomStreams(7))
        two = WanTopology(spec, 4, RandomStreams(7))
        # Same seed, same link -> same draws; draws on one link do not
        # shift another link's stream.
        first = [one.wire_delay(0, 2) for _ in range(5)]
        two.wire_delay(1, 3)  # extra draw on a *different* link
        assert [two.wire_delay(0, 2) for _ in range(5)] == first

    def test_loss_only_on_cross_dc_links(self):
        spec = NetworkTopology.parse("dcs:2x2:rtt_ms=40:loss=0.5")
        wan = WanTopology(spec, 4, RandomStreams(1))
        assert not any(wan.lose(0, 1) for _ in range(50))
        assert any(wan.lose(0, 2) for _ in range(50))


# ----------------------------------------------------------------------
# Network integration: remote sends pay the wire
# ----------------------------------------------------------------------
def _wan_system(spec="matrix:0,20;20,0", num_sites=2, **overrides):
    params = ModelParams(num_sites=num_sites, dist_degree=1, mpl=1,
                         db_size=200 * max(1, num_sites // 2),
                         cohort_size=2,
                         network_topology=NetworkTopology.parse(spec),
                         **overrides)
    return DistributedSystem(params, create_protocol("2PC"))


class TestNetworkWithTopology:
    def test_remote_message_pays_wire_latency(self):
        system = _wan_system()
        txn = FakeTransaction()
        sender = FakeAgent(system, 0, txn)
        receiver = FakeAgent(system, 1, txn)
        done = _send(system, Message(MessageKind.PREPARE, sender, receiver,
                                     txn.txn_id, 0))
        arrived = []

        def consumer(env):
            yield receiver.inbox.get()
            arrived.append(env.now)

        system.env.process(consumer(system.env))
        system.env.run()
        # 5ms send CPU; 20ms on the wire; 5ms receive CPU.  The sender
        # is free after its own CPU work -- wire time is not its problem.
        assert done == [5.0]
        assert arrived == [30.0]

    def test_cross_dc_counters_and_events(self):
        system = _wan_system("dcs:2x2:rtt_ms=40", num_sites=4)
        txn = FakeTransaction()
        sender = FakeAgent(system, 0, txn)
        local_peer = FakeAgent(system, 1, txn)     # same DC
        remote_peer = FakeAgent(system, 2, txn)    # other DC
        log = EventLog(kinds=(EventKind.MSG_SEND,
                              EventKind.MSG_DELIVER)).attach(system.bus)
        _send(system, Message(MessageKind.PREPARE, sender, local_peer,
                              txn.txn_id, 0))
        _send(system, Message(MessageKind.PREPARE, sender, remote_peer,
                              txn.txn_id, 0))
        system.env.run()
        assert system.network.intra_dc_messages == 1
        assert system.network.cross_dc_messages == 1
        assert txn.messages_cross_dc == 1
        sends = log.of_kind(EventKind.MSG_SEND)
        by_link = {e.link: e for e in sends}
        assert by_link[(0, 1)].cross_dc is False
        assert by_link[(0, 1)].delay_ms == 0.0
        assert by_link[(0, 2)].cross_dc is True
        assert by_link[(0, 2)].delay_ms == 20.0
        delivers = log.of_kind(EventKind.MSG_DELIVER)
        assert {e.link for e in delivers} == {(0, 1), (0, 2)}

    def test_topology_loss_drops_after_send_cpu(self):
        system = _wan_system("dcs:1x2:rtt_ms=0", num_sites=2)
        # Force certain loss on the link by patching the model.
        system.cost_model._loss_prob = 1.0
        system.cost_model.placement = (0, 1)  # make the link cross-DC
        system.cost_model._latency = ((0.0, 0.0), (0.0, 0.0))
        txn = FakeTransaction()
        sender = FakeAgent(system, 0, txn)
        receiver = FakeAgent(system, 1, txn)
        log = EventLog(kinds=(EventKind.MSG_DROP,)).attach(system.bus)
        _send(system, Message(MessageKind.PREPARE, sender, receiver,
                              txn.txn_id, 0))
        system.env.run()
        assert len(receiver.inbox) == 0
        assert system.network.messages_dropped == 1
        assert [e.reason for e in log.events] == ["topology_loss"]


# ----------------------------------------------------------------------
# inquiry_round_trip: local events (satellite) and wire latency
# ----------------------------------------------------------------------
class TestInquiryRoundTrip:
    def _run_inquiry(self, system, agent, remote_site):
        done = []

        def driver(env):
            yield from system.network.inquiry_round_trip(agent, remote_site)
            done.append(env.now)

        system.env.process(driver(system.env))
        system.env.run()
        return done

    def test_local_inquiry_publishes_events(self):
        """Regression: the local path used to bump ``local_messages``
        without publishing MSG_SEND/MSG_DELIVER, undercounting recovery
        traffic in traces."""
        params = ModelParams(num_sites=2, dist_degree=1, mpl=1,
                             db_size=200, cohort_size=2)
        system = DistributedSystem(params, create_protocol("2PC"))
        txn = FakeTransaction()
        agent = FakeAgent(system, 0, txn)
        log = EventLog(kinds=(EventKind.MSG_SEND,
                              EventKind.MSG_DELIVER)).attach(system.bus)
        self._run_inquiry(system, agent, system.sites[0])
        assert system.network.local_messages == 2
        sends = log.of_kind(EventKind.MSG_SEND)
        assert [e.message.kind for e in sends] == [MessageKind.STATUS_INQ,
                                                   MessageKind.STATUS_ACK]
        assert all(e.local for e in sends)
        assert all(e.link == (0, 0) for e in sends)
        assert len(log.of_kind(EventKind.MSG_DELIVER)) == 2

    def test_remote_inquiry_timing_without_topology(self):
        """The historical cost: four MsgCPU services, no wire."""
        params = ModelParams(num_sites=2, dist_degree=1, mpl=1,
                             db_size=200, cohort_size=2)
        system = DistributedSystem(params, create_protocol("2PC"))
        txn = FakeTransaction()
        agent = FakeAgent(system, 0, txn)
        done = self._run_inquiry(system, agent, system.sites[1])
        assert done == [20.0]
        assert txn.messages_commit == 2

    @pytest.mark.parametrize("rtt_ms", [0.0, 40.0, 100.0])
    def test_remote_inquiry_pays_rtt(self, rtt_ms):
        """Recovery time scales with the link RTT under a WAN model."""
        one_way = rtt_ms / 2
        system = _wan_system(f"matrix:0,{one_way};{one_way},0",
                             num_sites=2)
        txn = FakeTransaction()
        agent = FakeAgent(system, 0, txn)
        done = self._run_inquiry(system, agent, system.sites[1])
        # Four MsgCPU services plus one full round trip on the wire.
        assert done == [20.0 + rtt_ms]
        assert txn.messages_cross_dc == 2
        assert system.network.cross_dc_messages == 2

    def test_remote_inquiry_events_carry_link_and_delay(self):
        system = _wan_system("matrix:0,20;20,0", num_sites=2)
        txn = FakeTransaction()
        agent = FakeAgent(system, 0, txn)
        log = EventLog(kinds=(EventKind.MSG_SEND,)).attach(system.bus)
        self._run_inquiry(system, agent, system.sites[1])
        links = [e.link for e in log.events]
        assert links == [(0, 1), (1, 0)]  # INQ out, ACK back
        assert all(e.delay_ms == 20.0 for e in log.events)
        assert all(e.cross_dc for e in log.events)


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
class TestConfigValidation:
    def test_dcs_site_count_must_match(self):
        with pytest.raises(ValueError, match="num_sites=8"):
            ModelParams(network_topology=NetworkTopology.parse(
                "dcs:2x2:rtt_ms=40"))

    def test_centralized_rejects_multi_dc(self):
        with pytest.raises(ValueError, match="CENT"):
            ModelParams(topology=Topology.CENTRALIZED,
                        network_topology=NetworkTopology.parse(
                            "dcs:2x4:rtt_ms=40"))

    def test_centralized_allows_uniform(self):
        params = ModelParams(topology=Topology.CENTRALIZED,
                             network_topology=NetworkTopology.parse(
                                 "uniform"))
        assert params.network_topology.is_uniform

    def test_prefer_local_needs_multi_dc_topology(self):
        with pytest.raises(ValueError, match="prefer_local_cohorts"):
            ModelParams(prefer_local_cohorts=True)
        with pytest.raises(ValueError, match="prefer_local_cohorts"):
            ModelParams(prefer_local_cohorts=True,
                        network_topology=NetworkTopology.parse("uniform"))

    def test_prefer_local_with_dcs_is_valid(self):
        params = ModelParams(
            prefer_local_cohorts=True,
            network_topology=NetworkTopology.parse("dcs:2x4:rtt_ms=40"))
        assert params.prefer_local_cohorts


# ----------------------------------------------------------------------
# Placement-aware workload
# ----------------------------------------------------------------------
class TestPreferLocalCohorts:
    def test_cohorts_stay_in_the_masters_dc(self):
        params = ModelParams(
            dist_degree=3,
            network_topology=NetworkTopology.parse("dcs:2x4:rtt_ms=40"),
            prefer_local_cohorts=True)
        system = DistributedSystem(params, create_protocol("2PC"))
        placement = params.network_topology.placement(params.num_sites)
        for origin in range(params.num_sites):
            spec = system.workload.generate(origin)
            dcs = {placement[a.site_id] for a in spec.accesses}
            # dist_degree=3 fits inside one 4-site DC entirely.
            assert dcs == {placement[origin]}

    def test_spills_to_remote_dcs_when_local_exhausted(self):
        params = ModelParams(
            dist_degree=6, cohort_size=3,
            network_topology=NetworkTopology.parse("dcs:2x4:rtt_ms=40"),
            prefer_local_cohorts=True)
        system = DistributedSystem(params, create_protocol("2PC"))
        placement = params.network_topology.placement(params.num_sites)
        spec = system.workload.generate(0)
        home = placement[0]
        local = [a for a in spec.accesses if placement[a.site_id] == home]
        remote = [a for a in spec.accesses if placement[a.site_id] != home]
        # All 4 same-DC sites used before any remote one.
        assert len(local) == 4
        assert len(remote) == 2
        sites = [a.site_id for a in spec.accesses]
        assert len(set(sites)) == len(sites)


# ----------------------------------------------------------------------
# End-to-end: byte-identity, metrics, soak streams
# ----------------------------------------------------------------------
def _as_plain(result):
    return json.loads(json.dumps(dataclasses.asdict(result)))


class TestEndToEnd:
    def test_uniform_topology_is_byte_identical(self):
        """The LanSwitch indirection must not perturb trajectories."""
        baseline = repro.simulate("2PC", mpl=2, measured_transactions=80)
        uniform = repro.simulate(
            "2PC", mpl=2, measured_transactions=80,
            network_topology=NetworkTopology.parse("uniform"))
        assert _as_plain(baseline) == _as_plain(uniform)

    def test_wan_slows_commits_and_reports_round_trips(self):
        captured = []
        lan = repro.simulate("2PC", mpl=2, measured_transactions=80)
        wan = repro.simulate(
            "2PC", mpl=2, measured_transactions=80,
            network_topology=NetworkTopology.parse("dcs:2x4:rtt_ms=40"),
            on_system=captured.append)
        assert wan.response_time_ms > lan.response_time_ms
        system = captured[0]
        assert system.network.cross_dc_messages > 0
        assert system.metrics.cross_dc_round_trips_per_commit() > 0
        # Remote split covers every remote message.
        assert (system.network.cross_dc_messages
                + system.network.intra_dc_messages
                == system.network.messages_sent)

    def test_wan_trajectories_are_reproducible(self):
        kwargs = dict(mpl=2, measured_transactions=60,
                      network_topology=NetworkTopology.parse(
                          "dcs:2x4:rtt_ms=40:jitter_ms=3"))
        one = repro.simulate("2PC", **kwargs)
        two = repro.simulate("2PC", **kwargs)
        assert _as_plain(one) == _as_plain(two)

    def test_metrics_checkpoint_covers_cross_dc(self):
        from repro.metrics import MetricsCollector
        assert "cross_dc_messages" in MetricsCollector._CHECKPOINT_ATTRS

    def test_topology_streams_visible_to_soak_checkpoints(self):
        """Per-link RNG streams live in system.streams, so the soak
        capture/restore path covers them with no extra plumbing."""
        captured = []
        repro.simulate(
            "2PC", mpl=2, measured_transactions=40,
            network_topology=NetworkTopology.parse(
                "dcs:2x4:rtt_ms=40:jitter_ms=3"),
            on_system=captured.append)
        state = captured[0].streams.capture_state()
        link_streams = [name for name in state
                        if name.startswith("topology-link-")]
        assert link_streams, "jitter draws must use dedicated substreams"
