"""Tests for the write-ahead log cost model."""

import pytest

from repro.db.wal import LogManager, LogRecordKind
from repro.sim import Environment, Resource


@pytest.fixture
def env():
    return Environment()


def make_log(env, num_disks=1, write_time=20.0, group_commit=False):
    disks = [Resource(env, capacity=1, name=f"log{i}")
             for i in range(num_disks)]
    return LogManager(env, site_id=0, log_disks=disks,
                      write_time_ms=write_time, group_commit=group_commit)


def test_unforced_write_is_free_and_counted(env):
    log = make_log(env)
    record = log.write(LogRecordKind.END, txn_id=1)
    assert not record.forced
    assert log.unforced_count == 1
    assert log.forced_count == 0
    assert env.peek() == float("inf")  # no disk activity scheduled


def test_forced_write_takes_one_disk_write(env):
    log = make_log(env, write_time=20.0)
    times = []

    def writer(env):
        yield from log.force_write(LogRecordKind.PREPARE, txn_id=1)
        times.append(env.now)

    env.process(writer(env))
    env.run()
    assert times == [20.0]
    assert log.forced_count == 1


def test_forced_writes_queue_at_the_log_disk(env):
    log = make_log(env, write_time=20.0)
    times = []

    def writer(env, tag):
        yield from log.force_write(LogRecordKind.COMMIT, txn_id=tag)
        times.append((tag, env.now))

    env.process(writer(env, 1))
    env.process(writer(env, 2))
    env.run()
    assert times == [(1, 20.0), (2, 40.0)]


def test_multiple_log_disks_round_robin(env):
    log = make_log(env, num_disks=2, write_time=20.0)
    times = []

    def writer(env, tag):
        yield from log.force_write(LogRecordKind.COMMIT, txn_id=tag)
        times.append((tag, env.now))

    env.process(writer(env, 1))
    env.process(writer(env, 2))
    env.run()
    # Different disks: both complete at t=20.
    assert times == [(1, 20.0), (2, 20.0)]


def test_records_carry_metadata(env):
    log = make_log(env)

    def writer(env):
        yield from log.force_write(LogRecordKind.ABORT, txn_id=7)

    env.process(writer(env))
    env.run()
    record = log.records[-1]
    assert record.kind is LogRecordKind.ABORT
    assert record.txn_id == 7
    assert record.site_id == 0
    assert record.forced
    assert record.time == 20.0


def test_counts_by_kind(env):
    log = make_log(env)
    log.write(LogRecordKind.END, 1)
    log.write(LogRecordKind.END, 2)

    def writer(env):
        yield from log.force_write(LogRecordKind.COMMIT, txn_id=1)

    env.process(writer(env))
    env.run()
    counts = log.counts_by_kind()
    assert counts[LogRecordKind.END] == 2
    assert counts[LogRecordKind.COMMIT] == 1


class TestGroupCommit:
    def test_single_writer_same_as_plain(self, env):
        log = make_log(env, group_commit=True)
        times = []

        def writer(env):
            yield from log.force_write(LogRecordKind.COMMIT, txn_id=1)
            times.append(env.now)

        env.process(writer(env))
        env.run()
        assert times == [20.0]
        assert log.group_flushes == 1

    def test_concurrent_writers_batched(self, env):
        """Writers arriving during a flush share the next disk write."""
        log = make_log(env, group_commit=True, write_time=20.0)
        times = []

        def leader(env):
            yield from log.force_write(LogRecordKind.COMMIT, txn_id=1)
            times.append(("leader", env.now))

        def follower(env, tag, delay):
            yield env.timeout(delay)
            yield from log.force_write(LogRecordKind.COMMIT, txn_id=tag)
            times.append((tag, env.now))

        env.process(leader(env))
        env.process(follower(env, 2, 5.0))
        env.process(follower(env, 3, 10.0))
        env.run()
        # Leader flushes at 20; both followers share one batch write
        # completing at 40 (instead of 40 and 60 unbatched).
        assert times == [("leader", 20.0), (2, 40.0), (3, 40.0)]
        assert log.group_flushes == 2
        assert log.forced_count == 3

    def test_batching_reduces_disk_writes(self, env):
        log = make_log(env, group_commit=True, write_time=20.0)
        finished = []

        def writer(env, tag):
            yield from log.force_write(LogRecordKind.COMMIT, txn_id=tag)
            finished.append(tag)

        for tag in range(10):
            env.process(writer(env, tag))
        env.run()
        assert len(finished) == 10
        # 1 leader flush + 1 batch flush for the 9 others.
        assert log.group_flushes == 2
