"""Tests for the write-ahead log cost model."""

import pytest

from repro.db.wal import LogManager, LogRecordKind
from repro.sim import Environment, Resource


@pytest.fixture
def env():
    return Environment()


def make_log(env, num_disks=1, write_time=20.0, group_commit=False,
             retain_records=True):
    disks = [Resource(env, capacity=1, name=f"log{i}")
             for i in range(num_disks)]
    return LogManager(env, site_id=0, log_disks=disks,
                      write_time_ms=write_time, group_commit=group_commit,
                      retain_records=retain_records)


def test_unforced_write_is_free_and_counted(env):
    log = make_log(env)
    record = log.write(LogRecordKind.END, txn_id=1)
    assert not record.forced
    assert log.unforced_count == 1
    assert log.forced_count == 0
    assert env.peek() == float("inf")  # no disk activity scheduled


def test_forced_write_takes_one_disk_write(env):
    log = make_log(env, write_time=20.0)
    times = []

    def writer(env):
        yield from log.force_write(LogRecordKind.PREPARE, txn_id=1)
        times.append(env.now)

    env.process(writer(env))
    env.run()
    assert times == [20.0]
    assert log.forced_count == 1


def test_forced_writes_queue_at_the_log_disk(env):
    log = make_log(env, write_time=20.0)
    times = []

    def writer(env, tag):
        yield from log.force_write(LogRecordKind.COMMIT, txn_id=tag)
        times.append((tag, env.now))

    env.process(writer(env, 1))
    env.process(writer(env, 2))
    env.run()
    assert times == [(1, 20.0), (2, 40.0)]


def test_multiple_log_disks_round_robin(env):
    log = make_log(env, num_disks=2, write_time=20.0)
    times = []

    def writer(env, tag):
        yield from log.force_write(LogRecordKind.COMMIT, txn_id=tag)
        times.append((tag, env.now))

    env.process(writer(env, 1))
    env.process(writer(env, 2))
    env.run()
    # Different disks: both complete at t=20.
    assert times == [(1, 20.0), (2, 20.0)]


def test_records_carry_metadata(env):
    log = make_log(env)

    def writer(env):
        yield from log.force_write(LogRecordKind.ABORT, txn_id=7)

    env.process(writer(env))
    env.run()
    record = log.records[-1]
    assert record.kind is LogRecordKind.ABORT
    assert record.txn_id == 7
    assert record.site_id == 0
    assert record.forced
    assert record.time == 20.0


def test_counts_by_kind(env):
    log = make_log(env)
    log.write(LogRecordKind.END, 1)
    log.write(LogRecordKind.END, 2)

    def writer(env):
        yield from log.force_write(LogRecordKind.COMMIT, txn_id=1)

    env.process(writer(env))
    env.run()
    counts = log.counts_by_kind()
    assert counts[LogRecordKind.END] == 2
    assert counts[LogRecordKind.COMMIT] == 1


class TestBoundedRetention:
    """``retain_records=False``: the soak-run WAL mode.  History is not
    retained, aggregate tallies still are, and the per-transaction
    recovery index is prunable once a transaction completes."""

    def test_records_list_stays_empty(self, env):
        log = make_log(env, retain_records=False)
        log.write(LogRecordKind.END, 1)

        def writer(env):
            yield from log.force_write(LogRecordKind.COMMIT, txn_id=1)

        env.process(writer(env))
        env.run()
        assert log.records == []
        assert log.unforced_count == 1
        assert log.forced_count == 1

    def test_counts_by_kind_survive_without_retention(self, env):
        log = make_log(env, retain_records=False)
        log.write(LogRecordKind.END, 1)
        log.write(LogRecordKind.END, 2)
        assert log.counts_by_kind() == {LogRecordKind.END: 2}

    def test_recovery_index_live_until_forgotten(self, env):
        log = make_log(env, retain_records=False)
        log.write(LogRecordKind.COMMIT, txn_id=7, incarnation=1)
        assert log.txn_kinds(7, 1) == {LogRecordKind.COMMIT}
        log.forget_txn(7, max_incarnation=1)
        assert log.txn_kinds(7, 1) == set()

    def test_forget_covers_all_incarnations(self, env):
        log = make_log(env, retain_records=False)
        log.write(LogRecordKind.ABORT, txn_id=7, incarnation=0)
        log.write(LogRecordKind.COMMIT, txn_id=7, incarnation=2)
        log.write(LogRecordKind.PREPARE, txn_id=7)  # incarnation=-1
        log.forget_txn(7, max_incarnation=2)
        for incarnation in (-1, 0, 1, 2):
            assert log.txn_kinds(7, incarnation) == set()
        # Counts are a lifetime tally, unaffected by truncation.
        assert log.counts_by_kind() == {LogRecordKind.ABORT: 1,
                                        LogRecordKind.COMMIT: 1,
                                        LogRecordKind.PREPARE: 1}

    def test_compact_clears_whole_index(self, env):
        log = make_log(env, retain_records=False)
        log.write(LogRecordKind.COMMIT, txn_id=1, incarnation=0)
        log.write(LogRecordKind.COMMIT, txn_id=2, incarnation=0)
        log.compact()
        assert log.txn_kinds(1, 0) == set()
        assert log.txn_kinds(2, 0) == set()

    def test_counts_match_retained_mode(self, env):
        """Incremental tallies agree with the records-derived ones."""
        retained = make_log(env, retain_records=True)
        bounded = make_log(env, retain_records=False)
        for log in (retained, bounded):
            log.write(LogRecordKind.END, 1)
            log.write(LogRecordKind.COLLECTING, 2)
            log.write(LogRecordKind.END, 3)
        assert retained.counts_by_kind() == bounded.counts_by_kind()
        assert len(retained.records) == 3


class TestGroupCommit:
    def test_single_writer_same_as_plain(self, env):
        log = make_log(env, group_commit=True)
        times = []

        def writer(env):
            yield from log.force_write(LogRecordKind.COMMIT, txn_id=1)
            times.append(env.now)

        env.process(writer(env))
        env.run()
        assert times == [20.0]
        assert log.group_flushes == 1

    def test_concurrent_writers_batched(self, env):
        """Writers arriving during a flush share the next disk write."""
        log = make_log(env, group_commit=True, write_time=20.0)
        times = []

        def leader(env):
            yield from log.force_write(LogRecordKind.COMMIT, txn_id=1)
            times.append(("leader", env.now))

        def follower(env, tag, delay):
            yield env.timeout(delay)
            yield from log.force_write(LogRecordKind.COMMIT, txn_id=tag)
            times.append((tag, env.now))

        env.process(leader(env))
        env.process(follower(env, 2, 5.0))
        env.process(follower(env, 3, 10.0))
        env.run()
        # Leader flushes at 20; both followers share one batch write
        # completing at 40 (instead of 40 and 60 unbatched).
        assert times == [("leader", 20.0), (2, 40.0), (3, 40.0)]
        assert log.group_flushes == 2
        assert log.forced_count == 3

    def test_batching_reduces_disk_writes(self, env):
        log = make_log(env, group_commit=True, write_time=20.0)
        finished = []

        def writer(env, tag):
            yield from log.force_write(LogRecordKind.COMMIT, txn_id=tag)
            finished.append(tag)

        for tag in range(10):
            env.process(writer(env, tag))
        env.run()
        assert len(finished) == 10
        # 1 leader flush + 1 batch flush for the 9 others.
        assert log.group_flushes == 2
