"""Tests for measurement-quality reporting (CIs, utilizations) and the
paper's claimed operating regions."""

import math

import pytest

import repro


@pytest.fixture(scope="module")
def baseline_result():
    return repro.simulate("2PC", mpl=4, measured_transactions=500)


class TestConfidenceReporting:
    def test_relative_half_width_reported(self, baseline_result):
        width = baseline_result.response_ci_rel_half_width
        assert 0 < width < 0.25

    def test_short_run_gives_infinite_width(self):
        result = repro.simulate("2PC", mpl=1, num_sites=2, db_size=400,
                                dist_degree=2, cohort_size=2,
                                measured_transactions=10,
                                warmup_transactions=0)
        assert math.isinf(result.response_ci_rel_half_width)

    def test_longer_runs_tighten_the_interval(self):
        kwargs = dict(mpl=2, num_sites=4, db_size=2000, dist_degree=2,
                      cohort_size=3)
        short = repro.simulate("2PC", measured_transactions=150, **kwargs)
        long = repro.simulate("2PC", measured_transactions=900, **kwargs)
        assert (long.response_ci_rel_half_width
                < short.response_ci_rel_half_width)


class TestOperatingRegions:
    def test_baseline_is_io_bound(self, baseline_result):
        """Paper Sec 5.2: 'the CPU and disk processing times are such
        that the system operates in an I/O-bound region'."""
        util = baseline_result.utilization
        assert util["data_disk"] > util["cpu"]
        assert util["data_disk"] > 0.5

    def test_distribution_6_is_cpu_bound(self):
        """Paper Sec 5.5: with DistDegree 6, message overheads push the
        system into 'a heavily CPU-bound region'."""
        result = repro.simulate("2PC", mpl=4, dist_degree=6,
                                cohort_size=3,
                                measured_transactions=400)
        util = result.utilization
        assert util["cpu"] > util["data_disk"]
        assert util["cpu"] > 0.6

    def test_infinite_resources_report_zero_utilization(self):
        result = repro.simulate("2PC", mpl=2, infinite_resources=True,
                                measured_transactions=200)
        assert set(result.utilization.values()) == {0.0}

    def test_utilization_covers_all_resource_classes(self, baseline_result):
        assert set(baseline_result.utilization) == {"cpu", "data_disk",
                                                    "log_disk"}
        for value in baseline_result.utilization.values():
            assert 0.0 <= value <= 1.0

    def test_log_disk_utilization_scales_with_forced_writes(self):
        """3PC forces ~1.6x the writes of 2PC, which must show at the
        log disks."""
        kwargs = dict(mpl=4, measured_transactions=400)
        log_2pc = repro.simulate("2PC", **kwargs).utilization["log_disk"]
        log_3pc = repro.simulate("3PC", **kwargs).utilization["log_disk"]
        assert log_3pc > log_2pc
