"""Tests for the master-crash (blocking analysis) extension."""

import pytest

from repro.config import ModelParams
from repro.failures import (
    BlockingReport,
    compare_blocking,
    run_crash_scenario,
)


@pytest.fixture(scope="module")
def reports():
    return compare_blocking(crash_duration_ms=10_000.0,
                            measured_transactions=200)


class TestCrashScenarios:
    def test_blocking_protocol_blocks_for_the_whole_outage(self, reports):
        report = reports["2PC"]
        # Cohorts unblock only at recovery: latency ~ crash duration.
        assert report.unblock_latency_ms >= 10_000.0
        assert report.unblock_latency_ms < 12_000.0

    def test_3pc_termination_unblocks_quickly(self, reports):
        report = reports["3PC"]
        assert report.unblock_latency_ms < 2_000.0, (
            "the termination protocol must release locks long before "
            "the master recovers")

    def test_nonblocking_sustains_throughput_through_outage(self, reports):
        assert (reports["3PC"].outage_throughput
                > 2.0 * reports["2PC"].outage_throughput)

    def test_all_target_cohorts_eventually_release(self, reports):
        for report in reports.values():
            assert len(report.release_times_ms) == 3  # dist_degree


class TestScenarioMechanics:
    def test_pa_and_pc_also_block(self):
        for protocol in ("PA", "PC"):
            report = run_crash_scenario(
                protocol, crash_duration_ms=5_000.0,
                measured_transactions=150)
            assert report.unblock_latency_ms >= 5_000.0

    def test_unknown_protocol_rejected(self):
        with pytest.raises(KeyError, match="no crash scenario"):
            run_crash_scenario("OPT")

    def test_target_never_reached_raises(self):
        with pytest.raises(RuntimeError, match="never reached"):
            run_crash_scenario("2PC", target_txn_id=10_000,
                               measured_transactions=30)

    def test_custom_params(self):
        params = ModelParams(num_sites=4, db_size=2000, mpl=2,
                             dist_degree=2, cohort_size=3)
        report = run_crash_scenario("2PC", crash_duration_ms=3_000.0,
                                    params=params, target_txn_id=15,
                                    measured_transactions=100)
        assert len(report.release_times_ms) == 2
        assert report.unblock_latency_ms >= 3_000.0

    def test_report_summary_format(self, reports):
        text = reports["2PC"].summary()
        assert "2PC" in text and "blocked" in text

    def test_report_edge_cases(self):
        empty = BlockingReport("2PC", 0.0, [], 0, 0.0)
        assert empty.unblock_latency_ms == 0.0
        assert empty.outage_throughput == 0.0
