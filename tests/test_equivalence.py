"""Golden-fixture equivalence: the instrumented system reproduces the
pre-refactor simulation trajectories bit-for-bit.

The fixture (``tests/data/golden_sweep.json``) records every
:class:`SimulationResult` field of the canonical sweep grids, generated
by ``scripts/make_golden_sweep.py`` from the direct-call (pre-event-bus)
metrics path.  Routing metrics and admission control through the event
bus must not perturb a single field -- same seeds, same event order,
same numbers.  Only regenerate the fixture when a change is *meant* to
alter results.
"""

import dataclasses
import json
import pathlib

import pytest

from repro.config import ModelParams
from repro.experiments.base import MplSweep

FIXTURE = pathlib.Path(__file__).parent / "data" / "golden_sweep.json"


def _round_trip(result):
    """Normalize a SimulationResult the way the fixture was written."""
    return json.loads(json.dumps(dataclasses.asdict(result)))


def _check_grid(grid):
    sweep = MplSweep(tuple(grid["protocols"]),
                     lambda mpl: ModelParams(mpl=mpl),
                     mpls=tuple(grid["mpls"]),
                     measured_transactions=grid["transactions"])
    results = sweep.run("golden")
    mismatched = []
    for (protocol, mpl), point in results.points.items():
        expected = grid["points"][f"{protocol}@{mpl}"]
        if _round_trip(point.result) != expected:
            mismatched.append(f"{protocol}@{mpl}")
    assert not mismatched, (
        f"{len(mismatched)} points diverged from the golden fixture: "
        f"{mismatched}; if the change is intentional, regenerate with "
        f"scripts/make_golden_sweep.py")


@pytest.fixture(scope="module")
def fixture():
    return json.loads(FIXTURE.read_text())


def test_tier1_grid_matches_golden_fixture(fixture):
    _check_grid(fixture["tier1"])


@pytest.mark.tier2
def test_tier2_full_protocol_grid_matches_golden_fixture(fixture):
    _check_grid(fixture["tier2"])
