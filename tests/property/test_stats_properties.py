"""Property-based tests for the statistics accumulators."""

import math

from hypothesis import given, strategies as st

from repro.sim.stats import (
    BatchMeans,
    TimeWeightedAverage,
    WelfordAccumulator,
    confidence_interval,
    normal_quantile,
    student_t_quantile,
)

finite_floats = st.floats(min_value=-1e9, max_value=1e9,
                          allow_nan=False, allow_infinity=False)


@given(st.lists(finite_floats, min_size=1, max_size=200))
def test_welford_mean_matches_arithmetic_mean(values):
    acc = WelfordAccumulator()
    for v in values:
        acc.add(v)
    assert acc.count == len(values)
    assert math.isclose(acc.mean, sum(values) / len(values),
                        rel_tol=1e-9, abs_tol=1e-6)
    assert acc.minimum == min(values)
    assert acc.maximum == max(values)


@given(st.lists(finite_floats, min_size=2, max_size=200))
def test_welford_variance_nonnegative_and_exact(values):
    acc = WelfordAccumulator()
    for v in values:
        acc.add(v)
    mean = sum(values) / len(values)
    expected = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    assert acc.variance >= 0
    assert math.isclose(acc.variance, expected, rel_tol=1e-6, abs_tol=1e-3)


@given(st.lists(finite_floats, min_size=1, max_size=100),
       st.lists(finite_floats, min_size=1, max_size=100))
def test_welford_merge_equals_concatenation(left_values, right_values):
    merged = WelfordAccumulator()
    for v in left_values:
        merged.add(v)
    other = WelfordAccumulator()
    for v in right_values:
        other.add(v)
    merged.merge(other)

    combined = WelfordAccumulator()
    for v in left_values + right_values:
        combined.add(v)
    assert merged.count == combined.count
    assert math.isclose(merged.mean, combined.mean,
                        rel_tol=1e-9, abs_tol=1e-6)
    assert math.isclose(merged.variance, combined.variance,
                        rel_tol=1e-6, abs_tol=1e-3)


@given(st.lists(st.tuples(st.floats(min_value=0.001, max_value=100.0),
                          st.floats(min_value=-100, max_value=100)),
                min_size=1, max_size=50))
def test_time_weighted_average_matches_bruteforce(steps):
    """Random step function: TWA must equal the integral by hand."""
    twa = TimeWeightedAverage()
    now = 0.0
    integral = 0.0
    level = 0.0
    for duration, new_level in steps:
        integral += level * duration
        now += duration
        twa.update(new_level, now)
        level = new_level
    # Extend one more unit so the final level counts.
    integral += level * 1.0
    now += 1.0
    assert math.isclose(twa.average(now), integral / now,
                        rel_tol=1e-9, abs_tol=1e-9)


@given(st.lists(finite_floats, min_size=1, max_size=300),
       st.integers(min_value=1, max_value=20))
def test_batch_means_overall_mean_is_exact(values, batch_size):
    bm = BatchMeans(batch_size)
    for v in values:
        bm.add(v)
    assert math.isclose(bm.mean, sum(values) / len(values),
                        rel_tol=1e-9, abs_tol=1e-6)
    assert len(bm.batch_means) == len(values) // batch_size


@given(st.lists(finite_floats, min_size=2, max_size=50))
def test_confidence_interval_contains_mean(samples):
    mean, half = confidence_interval(samples, 0.90)
    assert math.isclose(mean, sum(samples) / len(samples),
                        rel_tol=1e-9, abs_tol=1e-6)
    assert half >= 0


@given(st.floats(min_value=0.001, max_value=0.999))
def test_normal_quantile_antisymmetric(p):
    assert math.isclose(normal_quantile(p), -normal_quantile(1 - p),
                        rel_tol=1e-6, abs_tol=1e-6)


@given(st.floats(min_value=0.5, max_value=0.999),
       st.integers(min_value=1, max_value=200))
def test_t_quantile_monotone_in_p_and_above_normal(p, df):
    t = student_t_quantile(p, df)
    assert t >= 0
    if p > 0.5 and df >= 3:
        # The t distribution has heavier tails than the normal.
        assert t >= normal_quantile(p) - 1e-3
