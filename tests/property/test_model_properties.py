"""Property tests over substrate components and small end-to-end runs."""

from hypothesis import given, settings, strategies as st

import repro
from repro.config import ModelParams
from repro.db.pages import PageDirectory
from repro.db.workload import WorkloadGenerator
from repro.sim import Environment, RandomStreams


class TestPagePlacement:
    @given(db_size=st.integers(8, 5000), num_sites=st.integers(1, 16),
           num_disks=st.integers(1, 4))
    def test_pages_partition_exactly(self, db_size, num_sites, num_disks):
        if db_size < num_sites:
            return
        directory = PageDirectory(db_size, num_sites, num_disks)
        seen = []
        for site in range(num_sites):
            pages = list(directory.pages_at(site))
            assert all(directory.site_of(p) == site for p in pages)
            seen.extend(pages)
        assert sorted(seen) == list(range(db_size))

    @given(db_size=st.integers(8, 5000), num_sites=st.integers(1, 16))
    def test_disks_within_range(self, db_size, num_sites):
        if db_size < num_sites:
            return
        directory = PageDirectory(db_size, num_sites, 3)
        for page in range(0, db_size, max(1, db_size // 50)):
            assert 0 <= directory.disk_of(page) < 3


class TestWorkloadProperties:
    @given(dist_degree=st.integers(1, 8), cohort_size=st.integers(1, 20),
           update_prob=st.floats(0.0, 1.0), seed=st.integers(0, 2**30))
    @settings(max_examples=50, deadline=None)
    def test_generated_specs_always_valid(self, dist_degree, cohort_size,
                                          update_prob, seed):
        params = ModelParams(dist_degree=dist_degree,
                             cohort_size=cohort_size,
                             update_prob=update_prob)
        directory = PageDirectory(params.db_size, params.num_sites,
                                  params.num_data_disks)
        generator = WorkloadGenerator(params, directory,
                                      RandomStreams(seed))
        for origin in (0, params.num_sites - 1):
            spec = generator.generate(origin)
            assert len(spec.accesses) == dist_degree
            sites = [a.site_id for a in spec.accesses]
            assert len(set(sites)) == dist_degree
            for access in spec.accesses:
                assert (params.min_cohort_pages <= len(access.pages)
                        <= params.max_cohort_pages)
                for page in access.pages:
                    assert directory.site_of(page) == access.site_id


class TestEngineOrdering:
    @given(st.lists(st.floats(min_value=0.0, max_value=1000.0,
                              allow_nan=False), min_size=1, max_size=50))
    def test_timeouts_fire_in_time_order(self, delays):
        env = Environment()
        fired = []

        def waiter(env, delay):
            yield env.timeout(delay)
            fired.append(delay)

        for delay in delays:
            env.process(waiter(env, delay))
        env.run()
        assert fired == sorted(delays)
        assert env.now == max(delays)


class TestEndToEndProperties:
    @given(protocol=st.sampled_from(["2PC", "PC", "3PC", "OPT", "OPT-3PC",
                                     "DPCC", "CENT"]),
           mpl=st.integers(1, 4),
           dist_degree=st.integers(1, 4),
           seed=st.integers(0, 2**20))
    @settings(max_examples=12, deadline=None)
    def test_small_random_configs_complete(self, protocol, mpl,
                                           dist_degree, seed):
        """Any small configuration must run to completion (no hangs,
        no crashes) and leave no aborted holders behind."""
        params = ModelParams(num_sites=4, db_size=800, mpl=mpl,
                             dist_degree=dist_degree, cohort_size=3)
        system = repro.build_system(protocol, params=params, seed=seed)
        result = system.run(measured_transactions=40,
                            warmup_transactions=5)
        assert result.committed >= 40
        assert result.throughput > 0
        for site in system.sites:
            site.lock_manager.assert_consistent()
            for entry in site.lock_manager._entries.values():
                for holder in entry.holders:
                    assert holder.txn.outcome is None or \
                        not holder.txn.aborting

    @given(seed=st.integers(0, 2**20))
    @settings(max_examples=8, deadline=None)
    def test_opt_abort_chain_bounded(self, seed):
        """Under lending plus surprise aborts, every lender abort kills
        only direct borrowers: lender-abort victims must never
        themselves have lent (they were never prepared)."""
        params = ModelParams(num_sites=4, db_size=300, mpl=4,
                             dist_degree=2, cohort_size=3,
                             surprise_abort_prob=0.08)
        system = repro.build_system("OPT", params=params, seed=seed)
        # Intercept every lender-abort: at that instant, the borrower
        # being killed must not itself be lending anything (it was never
        # prepared), which is exactly what bounds the chain at one.
        victims = []
        for site in system.sites:
            lm = site.lock_manager
            original = lm._on_lender_abort

            def checking_hook(borrower, _original=original):
                victims.append(borrower.txn.name)
                for cohort in borrower.txn.cohorts:
                    assert not cohort.lending_pages, (
                        f"{borrower} was lending while borrowing: "
                        "abort chain would cascade")
                    assert cohort.state.value not in ("prepared",
                                                      "precommitted")
                _original(borrower)

            lm._on_lender_abort = checking_hook
        result = system.run(measured_transactions=60,
                            warmup_transactions=5)
        assert result.committed >= 60
        for site in system.sites:
            site.lock_manager.assert_consistent()
