"""Property-style accuracy tests: P-squared vs exact percentiles.

The soak mode trades exact retained-sample percentiles for O(1)-memory
P-squared estimates; these tests pin the size of that trade across
distribution shapes (uniform / exponential / bimodal) and stream lengths
(10^3 to 10^6).  The surface the collector actually uses
(:class:`AdaptivePercentileSample`) is *exact* below its cap, so the 1%
bound applies wherever streaming is actually engaged; raw P-squared at
tiny samples (10^3) gets a documented looser bound — the estimator has
seen only ~10 tail observations there.
"""

import random

import pytest

from repro.sim import AdaptivePercentileSample, P2Quantile, PercentileSample

QUANTILES = (0.5, 0.95, 0.99)

DISTRIBUTIONS = {
    "uniform": lambda rng: rng.random(),
    "exponential": lambda rng: rng.expovariate(1.0),
    "bimodal": lambda rng: (rng.gauss(10.0, 1.0) if rng.random() < 0.7
                            else rng.gauss(50.0, 5.0)),
}


def _run_stream(draw, n, seed=42):
    rng = random.Random(seed)
    exact = PercentileSample()
    estimators = {q: P2Quantile(q) for q in QUANTILES}
    adaptive = AdaptivePercentileSample(sample_cap=5_000)
    for _ in range(n):
        value = draw(rng)
        exact.add(value)
        adaptive.add(value)
        for est in estimators.values():
            est.add(value)
    return exact, estimators, adaptive


@pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
@pytest.mark.parametrize("n", [10_000, 100_000])
def test_p2_within_one_percent(name, n):
    exact, estimators, _ = _run_stream(DISTRIBUTIONS[name], n)
    for q, est in estimators.items():
        truth = exact.percentile(q)
        assert est.value() == pytest.approx(truth, rel=0.01), \
            f"{name} n={n} q={q}"


@pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
def test_small_stream_surface_is_exact(name):
    # At 10^3 observations the adaptive sample is below its cap: the
    # percentile surface soak runs actually expose has zero error there.
    exact, estimators, adaptive = _run_stream(DISTRIBUTIONS[name], 1_000)
    for q in QUANTILES:
        assert adaptive.percentile(q) == exact.percentile(q)
    # Raw P-squared at 10^3 gets the documented looser bound: the p99
    # marker has seen only ~10 tail samples.
    for q, est in estimators.items():
        assert est.value() == pytest.approx(exact.percentile(q), rel=0.03)


@pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
@pytest.mark.parametrize("n", [10_000, 100_000])
def test_adaptive_within_one_percent_past_cap(name, n):
    exact, _, adaptive = _run_stream(DISTRIBUTIONS[name], n)
    assert adaptive.streaming
    for q in QUANTILES:
        assert adaptive.percentile(q) == pytest.approx(
            exact.percentile(q), rel=0.01), f"{name} n={n} q={q}"


@pytest.mark.tier2
@pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
def test_p2_million_samples(name):
    exact, estimators, adaptive = _run_stream(DISTRIBUTIONS[name],
                                              1_000_000)
    for q, est in estimators.items():
        truth = exact.percentile(q)
        assert est.value() == pytest.approx(truth, rel=0.01)
        assert adaptive.percentile(q) == pytest.approx(truth, rel=0.01)
