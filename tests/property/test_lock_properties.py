"""Stateful property tests for the lock manager.

A random interleaving of lock-manager operations must preserve the
structural invariants of strict 2PL with lending:

- active holders of a page are mutually compatible (at most one
  UPDATE, or any number of READs plus borrowers per the lending rules);
- lenders are always in the prepared (or precommitted) state;
- no cohort both holds and lends the same page;
- a cohort is never simultaneously granted and waiting for the same
  page;
- every borrower's lender set matches the lock manager's borrow edges.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.db.deadlock import WaitForGraph
from repro.db.locks import LockManager, LockMode
from repro.db.transaction import CohortState
from repro.sim import Environment

from tests.db.conftest import FakeCohort

PAGES = st.integers(min_value=0, max_value=5)
MODES = st.sampled_from([LockMode.READ, LockMode.UPDATE])


class LockManagerMachine(RuleBasedStateMachine):
    @initialize(lending=st.booleans())
    def setup(self, lending):
        self.env = Environment()
        self.aborted = []
        self.wfg = WaitForGraph(on_victim=self._on_victim)
        self.lm = LockManager(
            self.env, 0, self.wfg, lending_enabled=lending,
            on_lender_abort=self._on_lender_abort)
        self.cohorts = [FakeCohort(submit_time=float(i)) for i in range(6)]
        self.finished = set()

    def _on_victim(self, txn):
        txn.aborting = True
        for cohort in self.cohorts:
            if cohort.txn is txn:
                self._finish(cohort, committed=False)

    def _on_lender_abort(self, borrower):
        if borrower not in self.finished:
            borrower.txn.aborting = True
            self._finish(borrower, committed=False)

    def _finish(self, cohort, committed):
        if cohort in self.finished:
            return
        self.finished.add(cohort)
        cohort.state = (CohortState.COMMITTED if committed
                        else CohortState.ABORTED)
        self.lm.finalize(cohort, committed=committed)

    # ------------------------------------------------------------------
    @rule(idx=st.integers(0, 5), page=PAGES, mode=MODES)
    def acquire(self, idx, page, mode):
        cohort = self.cohorts[idx]
        if cohort in self.finished:
            return
        if cohort in self.lm._waiting_requests:
            return  # one outstanding request per cohort, like the system
        if cohort.state in (CohortState.PREPARED, CohortState.PRECOMMITTED):
            return  # prepared cohorts make no new requests

        def proc():
            yield from self.lm.acquire(cohort, page, mode)

        self.env.process(proc())
        self.env.run(until=self.env.now)

    @rule(idx=st.integers(0, 5))
    def prepare(self, idx):
        cohort = self.cohorts[idx]
        if cohort in self.finished or cohort.lenders:
            return  # the shelf rule: borrowers cannot prepare
        if cohort in self.lm._waiting_requests:
            return  # still executing (blocked)
        if cohort.state is not CohortState.EXECUTING:
            return
        cohort.state = CohortState.PREPARED
        self.lm.prepare(cohort)

    @rule(idx=st.integers(0, 5), committed=st.booleans())
    def finish(self, idx, committed):
        cohort = self.cohorts[idx]
        if cohort in self.finished:
            return
        self._finish(cohort, committed)

    # ------------------------------------------------------------------
    @invariant()
    def holders_mutually_compatible(self):
        for page, entry in self.lm._entries.items():
            updates = [c for c, m in entry.holders.items()
                       if m is LockMode.UPDATE]
            assert len(updates) <= 1, (
                f"page {page}: two active UPDATE holders {updates}")

    @invariant()
    def lenders_are_prepared(self):
        self.lm.assert_consistent()

    @invariant()
    def waiting_cohorts_not_holding_their_page(self):
        for cohort, request in self.lm._waiting_requests.items():
            held = cohort.held_locks.get(request.page)
            if held is not None:
                # Only legal while upgrading READ -> UPDATE.
                assert held is LockMode.READ
                assert request.mode is LockMode.UPDATE

    @invariant()
    def borrow_edges_symmetric(self):
        for lender, borrowers in self.lm._borrows.items():
            for borrower in borrowers:
                assert lender in borrower.lenders, (
                    f"{borrower} missing lender edge to {lender}")

    @invariant()
    def finished_cohorts_hold_nothing(self):
        for cohort in self.finished:
            assert not cohort.held_locks
            assert not cohort.lending_pages
            for entry in self.lm._entries.values():
                assert cohort not in entry.holders
                assert cohort not in entry.lenders


TestLockManagerStateful = LockManagerMachine.TestCase
TestLockManagerStateful.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None)
