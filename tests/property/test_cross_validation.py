"""Cross-validation against independent implementations.

The statistics quantiles and the deadlock detector are hand-rolled (the
library has no runtime dependencies); here they are checked against
scipy and networkx, which the test environment provides.
"""

import random

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st
from scipy import stats as scipy_stats

from repro.db.deadlock import WaitForGraph
from repro.sim.stats import normal_quantile, student_t_quantile

from tests.db.conftest import FakeTransaction


class _Key:
    pass


class TestQuantilesAgainstScipy:
    @given(p=st.floats(min_value=0.001, max_value=0.999))
    @settings(max_examples=100)
    def test_normal_quantile(self, p):
        assert normal_quantile(p) == pytest.approx(
            scipy_stats.norm.ppf(p), abs=2e-4)

    @given(p=st.floats(min_value=0.01, max_value=0.99),
           df=st.integers(min_value=1, max_value=500))
    @settings(max_examples=100)
    def test_t_quantile(self, p, df):
        expected = scipy_stats.t.ppf(p, df)
        # The series expansion is weakest at small df + extreme p; the
        # commit study uses 90-99% confidence with df >= 2, where the
        # approximation is comfortably tight.
        tolerance = 0.02 if df >= 3 else 0.06
        assert student_t_quantile(p, df) == pytest.approx(
            expected, rel=tolerance, abs=5e-3)


class TestDeadlockAgainstNetworkx:
    @given(seed=st.integers(0, 2**30), num_txns=st.integers(2, 10),
           num_edges=st.integers(1, 25))
    @settings(max_examples=120, deadline=None)
    def test_cycle_detection_matches_networkx(self, seed, num_txns,
                                              num_edges):
        """Build a random wait graph; our detector must report a cycle
        through the probe node exactly when networkx finds one."""
        rng = random.Random(seed)
        txns = [FakeTransaction(submit_time=float(i))
                for i in range(num_txns)]
        victims = []
        wfg = WaitForGraph(on_victim=lambda t: (victims.append(t),
                                                setattr(t, "aborting",
                                                        True)))
        graph = nx.DiGraph()
        graph.add_nodes_from(range(num_txns))
        edges = []
        for _ in range(num_edges):
            a, b = rng.sample(range(num_txns), 2)
            edges.append((a, b))
            graph.add_edge(a, b)
            wfg.set_edges(_Key(), txns[a], {txns[b]})
        probe = rng.randrange(num_txns)

        in_nx_cycle = any(probe in cycle
                          for cycle in nx.simple_cycles(graph))
        found = wfg.check_for_deadlock(txns[probe])
        if in_nx_cycle:
            assert found, "networkx sees a cycle through the probe"
        else:
            assert not found, "no cycle exists through the probe"

    @given(seed=st.integers(0, 2**30), num_txns=st.integers(3, 8))
    @settings(max_examples=60, deadline=None)
    def test_resolution_breaks_all_probe_cycles(self, seed, num_txns):
        """After check_for_deadlock, ignoring aborting nodes, no cycle
        through the probe may remain."""
        rng = random.Random(seed)
        txns = [FakeTransaction(submit_time=float(i))
                for i in range(num_txns)]
        wfg = WaitForGraph(on_victim=lambda t: setattr(t, "aborting", True))
        graph = nx.DiGraph()
        for _ in range(num_txns * 2):
            a, b = rng.sample(range(num_txns), 2)
            graph.add_edge(a, b)
            wfg.set_edges(_Key(), txns[a], {txns[b]})
        probe = rng.randrange(num_txns)
        wfg.check_for_deadlock(txns[probe])
        surviving = nx.DiGraph()
        for a, b in graph.edges:
            if not txns[a].aborting and not txns[b].aborting:
                surviving.add_edge(a, b)
        if not txns[probe].aborting:
            assert not any(probe in cycle
                           for cycle in nx.simple_cycles(surviving))
