"""Property tests across the whole protocol family.

Each random configuration must satisfy the cross-protocol invariants
that follow from the protocols' definitions, independent of workload.
"""

from hypothesis import given, settings, strategies as st

import repro
from repro.config import ModelParams

PROTOCOLS = ["2PC", "PA", "PC", "3PC", "OPT", "OPT-PC", "OPT-3PC",
             "UV", "EP", "LIN-2PC", "OPT-LIN"]


@given(dist_degree=st.integers(1, 6), seed=st.integers(0, 2**20))
@settings(max_examples=10, deadline=None)
def test_conflict_free_overheads_are_integral(dist_degree, seed):
    """On a conflict-free run, every protocol's measured overheads are
    exact integers (each committing transaction does identical work)."""
    params = ModelParams(num_sites=8, db_size=48000, mpl=1,
                         dist_degree=dist_degree, cohort_size=2)
    for protocol in ("2PC", "PC", "UV", "EP", "LIN-2PC"):
        result = repro.simulate(protocol, params=params, seed=seed,
                                measured_transactions=25,
                                warmup_transactions=5)
        assert result.aborted == 0
        for value in result.overheads.rounded():
            assert value == int(value), (protocol, result.overheads)


@given(protocol=st.sampled_from(PROTOCOLS), seed=st.integers(0, 2**20))
@settings(max_examples=15, deadline=None)
def test_lending_flag_controls_borrowing(protocol, seed):
    """Only lending protocols may ever report borrows."""
    params = ModelParams(num_sites=4, db_size=300, mpl=4,
                         dist_degree=2, cohort_size=3)
    result = repro.simulate(protocol, params=params, seed=seed,
                            measured_transactions=80,
                            warmup_transactions=10)
    lending = repro.create_protocol(protocol).lending
    if not lending:
        assert result.borrow_ratio == 0
        assert result.shelf_entries == 0
        assert "lender_abort" not in result.aborts_by_reason


@given(seed=st.integers(0, 2**20))
@settings(max_examples=6, deadline=None)
def test_forced_writes_ordering_invariant(seed):
    """Across the 2PC family, per-commit forced writes are ordered
    EP = PC <= 2PC <= 3PC regardless of seed."""
    params = ModelParams(num_sites=4, db_size=24000, mpl=1,
                         dist_degree=3, cohort_size=2)

    def forced(protocol):
        result = repro.simulate(protocol, params=params, seed=seed,
                                measured_transactions=30,
                                warmup_transactions=5)
        return result.overheads.forced_writes

    ep, pc, two_pc, three_pc = (forced(p) for p in
                                ("EP", "PC", "2PC", "3PC"))
    assert ep == pc <= two_pc <= three_pc
