"""Fault-injection subsystem tests (ISSUE PR 4 tentpole).

Three contracts are pinned here:

1. **Determinism** -- the fault plan draws from named RNG streams, so the
   same seed reproduces the same crashes, drops, timeouts, and results,
   event for event.
2. **Free when inactive** -- an inactive :class:`FaultConfig` wires
   nothing: the simulated trajectory stays byte-identical to the golden
   fixture (``tests/data/golden_sweep.json``).
3. **Liveness + correctness under faults** -- every registered protocol
   completes a crash-rate sweep with no hung simulation, and in-doubt
   cohorts resolve according to each protocol's presumption rule.
"""

import dataclasses
import json
import pathlib

import pytest

import repro
from repro.config import ModelParams
from repro.db.messages import MessageKind
from repro.db.wal import LogRecordKind
from repro.experiments.availability import AvailabilitySweep
from repro.experiments.runner import point_seed
from repro.faults import (
    CrashEvent,
    FaultConfig,
    FaultInjector,
    FaultPlan,
    FaultTimeouts,
)
from repro.obs import EventLog
from repro.obs.events import EventKind, event_to_dict
from repro.sim.rng import RandomStreams

pytestmark = pytest.mark.faults

GOLDEN = pathlib.Path(__file__).parent / "data" / "golden_sweep.json"

#: a moderately harsh environment every protocol must survive.
HARSH = dict(mttf_ms=25_000.0, mttr_ms=2_000.0, msg_loss_prob=0.02)


def _faulty_run(protocol, seed=42, transactions=80, log_kinds=None,
                **fault_kwargs):
    """One fault-injected run; returns (result, injector, event log)."""
    captured = []
    log = EventLog(kinds=log_kinds)
    result = repro.simulate(
        protocol, mpl=3, measured_transactions=transactions,
        warmup_transactions=0, seed=seed,
        on_system=lambda s: (captured.append(s), log.attach(s.bus)),
        faults=FaultConfig(**(fault_kwargs or HARSH)))
    return result, captured[0].faults, log


# ----------------------------------------------------------------------
# Config and plan plumbing
# ----------------------------------------------------------------------
class TestFaultConfig:
    def test_default_config_is_inactive(self):
        assert not FaultConfig().is_active

    def test_active_configs(self):
        assert FaultConfig(mttf_ms=1.0).is_active
        assert FaultConfig(msg_loss_prob=0.1).is_active
        assert FaultConfig(msg_delay_ms=10.0).is_active
        assert FaultConfig(
            crash_schedule=(CrashEvent(0, 10.0, 5.0),)).is_active

    @pytest.mark.parametrize("bad", [
        dict(mttf_ms=-1.0),
        dict(mttr_ms=0.0),
        dict(msg_loss_prob=-0.1),
        dict(msg_loss_prob=1.0),
        dict(msg_delay_ms=-5.0),
        dict(faulty_kinds=("NO_SUCH_KIND",)),
        dict(crash_schedule=(CrashEvent(0, -5.0, 10.0),)),
        dict(crash_schedule=(CrashEvent(0, 5.0, 0.0),)),
    ])
    def test_validate_rejects(self, bad):
        with pytest.raises(ValueError):
            FaultConfig(**bad).validate()

    def test_timeouts_must_be_positive(self):
        with pytest.raises(ValueError, match="work_timeout_ms"):
            FaultTimeouts(work_timeout_ms=0.0).validate()

    def test_inactive_config_wires_nothing(self):
        system = repro.build_system("2PC", faults=FaultConfig())
        assert system.faults is None
        assert system.fault_timeouts is None
        assert system.network.faults is None

    def test_active_config_wires_injector(self):
        system = repro.build_system("2PC", faults=FaultConfig(mttf_ms=1e6))
        assert isinstance(system.faults, FaultInjector)
        assert system.network.faults is system.faults
        assert system.fault_timeouts is not None


class TestFaultPlan:
    def test_same_seed_same_draws(self):
        config = FaultConfig(mttf_ms=10_000.0, msg_loss_prob=0.1)

        def draws(seed):
            plan = FaultPlan(config, RandomStreams(seed), num_sites=4)
            cycle = plan.crash_cycle(2)
            return ([next(cycle) for _ in range(5)],
                    [plan.lose_message("COMMIT") for _ in range(50)])

        assert draws(7) == draws(7)
        assert draws(7) != draws(8)

    def test_site_streams_are_independent(self):
        config = FaultConfig(mttf_ms=10_000.0)
        plan_a = FaultPlan(config, RandomStreams(7), num_sites=4)
        plan_b = FaultPlan(config, RandomStreams(7), num_sites=4)
        # Draining site 0's cycle must not perturb site 1's draws.
        cycle = plan_a.crash_cycle(0)
        for _ in range(100):
            next(cycle)
        assert next(plan_a.crash_cycle(1)) == next(plan_b.crash_cycle(1))

    def test_schedule_and_eligibility(self):
        schedule = (CrashEvent(1, 50.0, 10.0), CrashEvent(1, 20.0, 10.0),
                    CrashEvent(0, 30.0, 10.0))
        plan = FaultPlan(FaultConfig(crash_schedule=schedule),
                         RandomStreams(1), num_sites=4)
        assert [e.at_ms for e in plan.scheduled_crashes(1)] == [20.0, 50.0]
        assert plan.stochastic_sites() == []
        limited = FaultPlan(
            FaultConfig(mttf_ms=1.0, crashable_sites=(0, 2, 99)),
            RandomStreams(1), num_sites=4)
        assert limited.stochastic_sites() == [0, 2]


# ----------------------------------------------------------------------
# Determinism under faults
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_same_seed_identical_results_and_event_streams(self):
        first_result, _, first_log = _faulty_run("OPT-3PC", **HARSH)
        second_result, _, second_log = _faulty_run("OPT-3PC", **HARSH)
        assert dataclasses.asdict(first_result) == \
            dataclasses.asdict(second_result)
        first = [event_to_dict(e) for e in first_log.events]
        second = [event_to_dict(e) for e in second_log.events]
        assert first == second

    def test_different_seed_diverges(self):
        first, _, _ = _faulty_run("2PC", seed=1, **HARSH)
        second, _, _ = _faulty_run("2PC", seed=2, **HARSH)
        assert dataclasses.asdict(first) != dataclasses.asdict(second)

    def test_availability_sweep_reproducible(self):
        def run():
            sweep = AvailabilitySweep(("2PC",), mttfs=(40_000.0,),
                                      mttr_ms=2_000.0,
                                      measured_transactions=50, seed=5)
            point = sweep.run().point("2PC", 40_000.0)
            return (dataclasses.asdict(point.result), point.crashes,
                    point.messages_dropped, point.in_doubt_resolved)

        assert run() == run()


# ----------------------------------------------------------------------
# Free when inactive: golden byte-identity
# ----------------------------------------------------------------------
class TestInactiveIsFree:
    def test_zero_fault_config_matches_golden_tier1(self):
        grid = json.loads(GOLDEN.read_text())["tier1"]
        mismatched = []
        for protocol in grid["protocols"]:
            for mpl in grid["mpls"]:
                result = repro.simulate(
                    protocol, params=ModelParams(mpl=mpl),
                    measured_transactions=grid["transactions"],
                    seed=point_seed(20250705, 0),
                    faults=FaultConfig())  # inactive: must change nothing
                got = json.loads(json.dumps(dataclasses.asdict(result)))
                if got != grid["points"][f"{protocol}@{mpl}"]:
                    mismatched.append(f"{protocol}@{mpl}")
        assert not mismatched, (
            f"an inactive FaultConfig perturbed {mismatched}; the "
            f"injector must be free when nothing is injected")


# ----------------------------------------------------------------------
# Liveness: every protocol survives every fault mix
# ----------------------------------------------------------------------
class TestSurvival:
    @pytest.mark.parametrize("protocol", repro.PROTOCOL_NAMES)
    def test_protocol_survives_crash_sweep(self, protocol):
        result, injector, _ = _faulty_run(protocol, transactions=60, **HARSH)
        # run() returns only once `measured_transactions` commits have
        # happened: returning at all is the no-hang proof.
        assert result.committed == 60
        assert injector.crashes >= 1, "environment too mild to test"
        assert injector.recoveries <= injector.crashes

    def test_scheduled_crash_fires_and_recovers(self):
        schedule = (CrashEvent(site_id=1, at_ms=500.0, duration_ms=800.0),)
        result, injector, log = _faulty_run(
            "2PC", transactions=40, mttf_ms=0.0, mttr_ms=2_000.0,
            crash_schedule=schedule,
            log_kinds=(EventKind.SITE_CRASH, EventKind.SITE_RECOVER))
        assert result.committed == 40
        assert injector.crashes == 1 and injector.recoveries == 1
        crash, recover = log.events
        assert (crash.kind, crash.site_id) == (EventKind.SITE_CRASH, 1)
        assert (recover.kind, recover.site_id) == (EventKind.SITE_RECOVER, 1)
        assert crash.time == 500.0
        assert recover.time == pytest.approx(1300.0)

    def test_message_loss_only_still_completes(self):
        result, injector, log = _faulty_run(
            "3PC", transactions=60, mttf_ms=0.0, msg_loss_prob=0.05,
            log_kinds=(EventKind.MSG_DROP,))
        assert result.committed == 60
        assert injector.messages_dropped >= 1
        assert {e.reason for e in log.events} == {"loss"}

    def test_message_delay_only_still_completes(self):
        plain, _, _ = _faulty_run("2PC", transactions=60, mttf_ms=0.0,
                                  msg_loss_prob=0.01)
        slow, _, _ = _faulty_run("2PC", transactions=60, mttf_ms=0.0,
                                 msg_loss_prob=0.01, msg_delay_ms=30.0)
        assert slow.committed == 60
        # Injected latency reshuffles the whole trajectory (contention,
        # aborts), so no per-seed monotonicity claim -- just that the
        # delays actually happened and nothing hung.
        assert slow.elapsed_ms != plain.elapsed_ms
        plan = FaultPlan(FaultConfig(msg_delay_ms=30.0), RandomStreams(1),
                         num_sites=4)
        draws = [plan.message_delay("COMMIT") for _ in range(200)]
        assert all(d > 0 for d in draws)
        assert sum(draws) / len(draws) == pytest.approx(30.0, rel=0.3)
        assert plan.message_delay("VOTE_YES") > 0  # every kind by default
        picky = FaultPlan(FaultConfig(msg_delay_ms=30.0,
                                      faulty_kinds=("VOTE_YES",)),
                          RandomStreams(1), num_sites=4)
        assert picky.message_delay("COMMIT") == 0.0

    def test_loss_respects_faulty_kinds(self):
        _, _, log = _faulty_run(
            "2PC", transactions=60, mttf_ms=0.0, msg_loss_prob=0.3,
            faulty_kinds=("VOTE_YES",),
            log_kinds=(EventKind.MSG_DROP,))
        assert log.events, "0.3 loss on votes must drop something"
        assert {e.message.kind for e in log.events} == \
            {MessageKind.VOTE_YES}

    def test_timeout_aborts_are_attributed(self):
        result, _, _ = _faulty_run("2PC", transactions=60, mttf_ms=0.0,
                                   msg_loss_prob=0.08)
        assert result.aborts_by_reason.get("timeout", 0) >= 1


# ----------------------------------------------------------------------
# Presumption rules: what recovery reads from the WAL
# ----------------------------------------------------------------------
class TestPresumptionRules:
    """Unit-level classification: presumed_outcome maps stable log
    records to decisions exactly as each protocol's rule dictates."""

    def outcome(self, protocol, kinds):
        return repro.create_protocol(protocol).presumed_outcome(
            None, frozenset(kinds))

    def test_2pc_presumes_abort_without_a_decision_record(self):
        assert self.outcome("2PC", {LogRecordKind.PREPARE}) == \
            ("abort", "no-decision-record")

    def test_pa_presumes_abort(self):
        assert self.outcome("PA", set()) == ("abort", "presumed-abort")

    def test_pc_collecting_record_means_commit(self):
        assert self.outcome("PC", {LogRecordKind.COLLECTING}) == \
            ("commit", "presumed-commit")
        assert self.outcome("PC", set()) == ("abort", "no-collecting-record")

    def test_ep_reads_like_pc(self):
        assert self.outcome("EP", {LogRecordKind.COLLECTING}) == \
            ("commit", "presumed-commit")
        assert self.outcome("EP", set()) == ("abort", "no-collecting-record")

    def test_3pc_precommit_record_means_commit(self):
        assert self.outcome("3PC", {LogRecordKind.PRECOMMIT,
                                    LogRecordKind.PREPARE}) == \
            ("commit", "precommit-record")
        assert self.outcome("3PC", {LogRecordKind.PREPARE}) == \
            ("abort", "no-decision-record")

    RULES = {
        "2PC": {"decision-record", "no-decision-record"},
        "PA": {"decision-record", "presumed-abort"},
        "PC": {"decision-record", "presumed-commit",
               "no-collecting-record"},
        "3PC": {"decision-record", "termination-protocol",
                "precommit-record", "no-decision-record"},
        "LIN-2PC": {"decision-record", "no-decision-record"},
    }

    @pytest.mark.parametrize("protocol", sorted(RULES))
    def test_runtime_resolutions_use_the_protocol_rules(self, protocol):
        _, injector, log = _faulty_run(
            protocol, transactions=100, seed=9,
            log_kinds=(EventKind.TXN_RESOLVED_IN_DOUBT,), **HARSH)
        assert injector.in_doubt_resolved == len(log.events)
        assert log.events, "environment too mild: nothing went in doubt"
        for event in log.events:
            assert event.rule in self.RULES[protocol], event
            assert event.outcome in ("commit", "abort")
            if event.rule in ("presumed-commit", "precommit-record",
                              "termination-protocol"):
                assert event.outcome == "commit"
            if event.rule in ("presumed-abort", "no-decision-record",
                              "no-collecting-record"):
                assert event.outcome == "abort"

    def test_recovery_replay_publishes_site_events(self):
        _, injector, log = _faulty_run(
            "PA", transactions=100, seed=9,
            log_kinds=(EventKind.SITE_RECOVERY_REPLAY,), **HARSH)
        assert injector.replays == len(log.events)
        assert injector.replays == injector.recoveries


# ----------------------------------------------------------------------
# Scripted blocking scenarios ride on the same machinery
# ----------------------------------------------------------------------
class TestCrashScenarioIntegration:
    def test_3pc_termination_round_is_network_traffic(self):
        from repro.failures import run_crash_scenario
        log = EventLog(kinds=(EventKind.MSG_SEND,))
        run_crash_scenario("3PC", crash_duration_ms=5_000.0,
                           decision_timeout_ms=500.0,
                           measured_transactions=150, seed=11,
                           event_log=log)
        inquiries = [e for e in log.events
                     if e.message.kind is MessageKind.STATUS_INQ]
        assert inquiries, (
            "the termination protocol must route its state-exchange "
            "round through the network, not burn anonymous CPU")

    def test_compare_blocking_accepts_shared_seed(self):
        from repro.failures import compare_blocking
        reports = compare_blocking(crash_duration_ms=5_000.0,
                                   measured_transactions=150,
                                   protocols=("2PC",), seed=11)
        again = compare_blocking(crash_duration_ms=5_000.0,
                                 measured_transactions=150,
                                 protocols=("2PC",), seed=11)
        assert dataclasses.asdict(reports["2PC"]) == \
            dataclasses.asdict(again["2PC"])


# ----------------------------------------------------------------------
# Master work-phase timeout: strays must not postpone the deadline
# ----------------------------------------------------------------------
class TestMasterWorkTimeoutDeadline:
    """Regression: the master's work-phase wait used to restart its
    ``work_timeout_ms`` window on *every* inbox message, so a trickle of
    stray traffic (duplicate ACKs from a recovering site, late reports
    from a dead incarnation) arriving faster than the timeout postponed
    the abort forever.  The wait is now deadline-based: strays consume
    the remaining budget, and only an accepted work report grants a
    fresh window."""

    TIMEOUT_MS = 500.0

    def _wedged_master(self, protocol="2PC"):
        """A launched transaction whose cohorts will never report, with
        a pest dripping stray ACKs into the master's inbox."""
        from repro.db.messages import Message
        from repro.db.transaction import AbortReason

        faults = FaultConfig(
            # Active-but-inert: one crash far beyond the test horizon
            # arms the fault plane (and its timeouts) without firing.
            crash_schedule=(CrashEvent(site_id=0, at_ms=1e9,
                                       duration_ms=1.0),),
            timeouts=FaultTimeouts(work_timeout_ms=self.TIMEOUT_MS))
        system = repro.build_system(protocol, faults=faults)
        env = system.env
        spec = system.workload.generate(0)
        txn = system._launch(spec, 0, env.now)

        def sabotage():
            # Kill every cohort before any WORKDONE can be produced...
            yield env.timeout(1.0)
            for cohort in txn.cohorts:
                cohort.process.interrupt(AbortReason.TIMEOUT)
            # ... then keep the master's inbox busy with stray traffic,
            # five messages per timeout window.
            sender = txn.cohorts[0]
            while txn.master.process.is_alive:
                txn.master.inbox.put(Message(
                    kind=MessageKind.ACK, sender=sender,
                    receiver=txn.master, txn_id=txn.txn_id,
                    incarnation=txn.incarnation))
                yield env.timeout(self.TIMEOUT_MS / 5)

        env.process(sabotage(), name="sabotage")
        return system, txn

    def test_stray_messages_do_not_postpone_work_timeout(self):
        from repro.db.transaction import AbortReason, TransactionOutcome

        system, txn = self._wedged_master()
        env = system.env
        death_time = []

        def waiter():
            yield txn.master.process
            death_time.append(env.now)

        env.process(waiter(), name="waiter")
        # A watchdog horizon, NOT run-until-master: with the old
        # restart-per-message behaviour the master never dies and
        # running until its process would hang the test.
        env.run(until=env.timeout(20 * self.TIMEOUT_MS))
        assert death_time, "master still waiting: strays reset its timeout"
        # One un-reported phase => at most one full window per cohort,
        # plus STARTWORK message-CPU costs; 4x covers dist_degree=3.
        assert death_time[0] <= 4 * self.TIMEOUT_MS
        assert txn.outcome is TransactionOutcome.ABORTED
        assert txn.abort_reason is AbortReason.TIMEOUT

    def test_sequential_master_is_also_bounded(self):
        from repro.db.transaction import TransactionOutcome

        params = ModelParams(
            trans_type=repro.TransactionType.SEQUENTIAL)
        faults = FaultConfig(
            crash_schedule=(CrashEvent(site_id=0, at_ms=1e9,
                                       duration_ms=1.0),),
            timeouts=FaultTimeouts(work_timeout_ms=self.TIMEOUT_MS))
        system = repro.build_system("2PC", params=params, faults=faults)
        env = system.env
        spec = system.workload.generate(0)
        txn = system._launch(spec, 0, env.now)
        from repro.db.messages import Message
        from repro.db.transaction import AbortReason

        def sabotage():
            yield env.timeout(1.0)
            for cohort in txn.cohorts:
                cohort.process.interrupt(AbortReason.TIMEOUT)
            sender = txn.cohorts[0]
            while txn.master.process.is_alive:
                txn.master.inbox.put(Message(
                    kind=MessageKind.ACK, sender=sender,
                    receiver=txn.master, txn_id=txn.txn_id,
                    incarnation=txn.incarnation))
                yield env.timeout(self.TIMEOUT_MS / 5)

        env.process(sabotage(), name="sabotage")
        death_time = []

        def waiter():
            yield txn.master.process
            death_time.append(env.now)

        env.process(waiter(), name="waiter")
        env.run(until=env.timeout(20 * self.TIMEOUT_MS))
        assert death_time, "master still waiting: strays reset its timeout"
        assert death_time[0] <= 4 * self.TIMEOUT_MS
        assert txn.outcome is TransactionOutcome.ABORTED
