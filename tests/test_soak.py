"""Soak runs: windowed aggregates, drain barriers, checkpoint/resume.

The load-bearing property is byte-identity: a soak that is killed at an
arbitrary segment boundary and resumed from its checkpoint must produce
exactly the same windowed JSONL stream as an uninterrupted run.  The
runner makes that hold by construction (every segment proceeds from the
pickled checkpoint state), and these tests pin it.
"""

import dataclasses
import json
import pickle

import pytest

import repro
from repro.config import open_system
from repro.db.workload import AccessSkew, RateCurve, SkewKind
from repro.experiments.soak import (
    CHECKPOINT_SCHEMA,
    SoakCheckpoint,
    SoakConfig,
    SoakRunner,
)
from repro.obs import EventBus, WindowedStats
from repro.obs.events import TxnArrive, TxnCommit, TxnDequeue, TxnShed

from tests.db.conftest import FakeTransaction


def _light_params(**overrides):
    base = dict(arrival_rate_tps=10.0, num_sites=2, mpl=4, db_size=600,
                dist_degree=2, cohort_size=4)
    base.update(overrides)
    return open_system(**base)


def _config(**overrides):
    base = dict(protocol="2PC", params=_light_params(), transactions=400,
                window_ms=5_000.0, checkpoint_every=150, sample_cap=50)
    base.update(overrides)
    return SoakConfig(**base)


class TestSoakRunner:
    def test_run_completes_and_reports(self, tmp_path):
        out = tmp_path / "soak.jsonl"
        summary = SoakRunner(_config(), out).run()
        assert summary["committed"] >= 400
        assert summary["segments"] >= 2
        assert summary["windows"] >= 1
        lines = out.read_text().splitlines()
        header = json.loads(lines[0])["meta"]
        assert header["kind"] == "soak"
        trailer = json.loads(lines[-1])["meta"]
        assert trailer["complete"] is True
        rows = [json.loads(line) for line in lines[1:-1]]
        assert len(rows) == summary["windows"]
        # Windows are contiguous from 0 with no gaps.
        assert [row["window"] for row in rows[:-1]] == \
            list(range(len(rows) - 1))
        assert sum(row["commits"] for row in rows) == summary["committed"]

    def test_deterministic_across_runs(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        SoakRunner(_config(), a).run()
        SoakRunner(_config(), b).run()
        assert a.read_bytes() == b.read_bytes()

    def test_killed_then_resumed_stream_is_byte_identical(self, tmp_path):
        full = tmp_path / "full.jsonl"
        SoakRunner(_config(), full, tmp_path / "full.ckpt").run()

        resumed = tmp_path / "resumed.jsonl"
        ckpt = tmp_path / "resumed.ckpt"
        interrupted = SoakRunner(_config(), resumed, ckpt).run(
            stop_after_segments=1)
        assert interrupted["interrupted"] is True
        # Simulate the kill tearing the output mid-line.
        with resumed.open("a", encoding="utf-8") as handle:
            handle.write('{"torn": tru')
        summary = SoakRunner(_config(), resumed, ckpt).run(resume=True)
        assert summary["interrupted"] is False
        assert full.read_bytes() == resumed.read_bytes()

    def test_resume_at_every_segment_boundary(self, tmp_path):
        # Interrupt at each possible barrier: all resumes converge to
        # the identical stream.
        full = tmp_path / "full.jsonl"
        reference = SoakRunner(_config(), full,
                               tmp_path / "full.ckpt").run()
        for stop_at in range(1, reference["segments"]):
            out = tmp_path / f"stop{stop_at}.jsonl"
            ckpt = tmp_path / f"stop{stop_at}.ckpt"
            SoakRunner(_config(), out, ckpt).run(
                stop_after_segments=stop_at)
            SoakRunner(_config(), out, ckpt).run(resume=True)
            assert out.read_bytes() == full.read_bytes(), stop_at

    def test_resume_rejects_other_configuration(self, tmp_path):
        out, ckpt = tmp_path / "s.jsonl", tmp_path / "s.ckpt"
        SoakRunner(_config(), out, ckpt).run(stop_after_segments=1)
        other = _config(params=_light_params(arrival_rate_tps=12.0))
        with pytest.raises(ValueError, match="different soak"):
            SoakRunner(other, out, ckpt).run(resume=True)

    def test_resume_rejects_stale_schema(self, tmp_path):
        out, ckpt = tmp_path / "s.jsonl", tmp_path / "s.ckpt"
        SoakRunner(_config(), out, ckpt).run(stop_after_segments=1)
        stale = dataclasses.replace(pickle.loads(ckpt.read_bytes()),
                                    schema=CHECKPOINT_SCHEMA + 1)
        ckpt.write_bytes(pickle.dumps(stale))
        with pytest.raises(ValueError, match="schema"):
            SoakRunner(_config(), out, ckpt).run(resume=True)

    def test_resume_requires_output_file(self, tmp_path):
        out, ckpt = tmp_path / "s.jsonl", tmp_path / "s.ckpt"
        SoakRunner(_config(), out, ckpt).run(stop_after_segments=1)
        out.unlink()
        with pytest.raises(FileNotFoundError, match="cannot resume"):
            SoakRunner(_config(), out, ckpt).run(resume=True)

    def test_resume_of_complete_run_is_a_noop(self, tmp_path):
        out, ckpt = tmp_path / "s.jsonl", tmp_path / "s.ckpt"
        SoakRunner(_config(), out, ckpt).run()
        before = out.read_bytes()
        summary = SoakRunner(_config(), out, ckpt).run(resume=True)
        assert summary["resumed"] is True
        assert out.read_bytes() == before

    def test_resume_without_checkpoint_starts_fresh(self, tmp_path):
        out = tmp_path / "s.jsonl"
        summary = SoakRunner(_config(), out,
                             tmp_path / "missing.ckpt").run(resume=True)
        assert summary["committed"] >= 400

    def test_no_checkpointing_single_segment(self, tmp_path):
        out = tmp_path / "s.jsonl"
        summary = SoakRunner(_config(checkpoint_every=0), out).run()
        assert summary["segments"] == 1
        assert summary["committed"] >= 400

    def test_validation(self):
        with pytest.raises(ValueError, match="open workload"):
            SoakConfig(params=repro.ModelParams()).validate()
        with pytest.raises(ValueError, match="transactions"):
            _config(transactions=0).validate()
        with pytest.raises(ValueError, match="window_ms"):
            _config(window_ms=0.0).validate()
        with pytest.raises(ValueError, match="checkpoint_every"):
            _config(checkpoint_every=-1).validate()
        with pytest.raises(ValueError, match="sample_cap"):
            _config(sample_cap=2).validate()


class TestDrainBarrier:
    def test_stop_arrivals_then_drain(self):
        system = repro.build_system("2PC", _light_params())
        system.start()
        system.env.run(until=system.metrics.when_committed(30))
        assert system.admitted_total > system.completed_total or \
            all(len(q) == 0 for q in system.open_queues)
        system.stop_arrivals()
        system.env.run(until=system.when_drained())
        assert system.completed_total == system.admitted_total
        assert all(len(queue) == 0 for queue in system.open_queues)

    def test_capture_requires_quiescence(self):
        system = repro.build_system("2PC", _light_params())
        system.start()
        system.env.run(until=system.metrics.when_committed(10))
        if system.completed_total < system.admitted_total:
            with pytest.raises(RuntimeError, match="mid-flight"):
                system.capture_soak_state()

    def test_capture_requires_open_mode(self):
        system = repro.build_system("2PC")
        with pytest.raises(RuntimeError, match="open mode"):
            system.capture_soak_state()

    def test_bounded_wal_mode_prunes_completed_transactions(self):
        from repro.core import create_protocol
        from repro.db.system import DistributedSystem

        system = DistributedSystem(_light_params(),
                                   create_protocol("2PC"),
                                   wal_retention=False)
        system.start()
        system.env.run(until=system.metrics.when_committed(200))
        # No record history retained, and the recovery index holds only
        # the in-flight population (plus the odd straggler), not the 200
        # completed transactions.
        assert all(site.log_manager.records == []
                   for site in system.sites)
        live = sum(len(site.log_manager._by_txn)
                   for site in system.sites)
        assert live < 100
        # Aggregate tallies survive truncation.
        total_forced = sum(site.log_manager.forced_count
                           for site in system.sites)
        assert total_forced > 0

    def test_restore_requires_matching_clock(self):
        system = repro.build_system("2PC", _light_params())
        system.start()
        system.env.run(until=system.metrics.when_committed(20))
        system.stop_arrivals()
        system.env.run(until=system.when_drained())
        state = system.capture_soak_state()
        fresh = repro.build_system("2PC", _light_params())
        with pytest.raises(RuntimeError, match="clock"):
            fresh.restore_soak_state(state)


class TestWindowedStats:
    def _commit(self, time, response):
        txn = FakeTransaction()
        txn.first_submit_time = time - response
        return TxnCommit(time, txn)

    def test_rows_roll_on_window_boundaries(self):
        rows = []
        stats = WindowedStats(100.0, rows.append)
        bus = EventBus()
        stats.attach(bus)
        bus.publish(TxnArrive(10.0, 0, 1, True))
        bus.publish(TxnDequeue(20.0, 0, 1, 10.0))
        bus.publish(self._commit(90.0, 80.0))
        bus.publish(TxnArrive(150.0, 0, 2, False))
        bus.publish(TxnShed(150.0, 0, 2, 4))
        assert len(rows) == 1
        first = rows[0]
        assert first["window"] == 0
        assert first["t_start_ms"] == 0.0
        assert first["t_end_ms"] == 100.0
        assert first["offered"] == 1
        assert first["admitted"] == 1
        assert first["commits"] == 1
        assert first["response_p50_ms"] == 80.0
        assert first["queue_wait_mean_ms"] == 10.0
        stats.finish(180.0)
        assert len(rows) == 2
        assert rows[1]["shed"] == 1
        assert rows[1]["t_end_ms"] == 180.0

    def test_quiet_windows_still_emit_rows(self):
        rows = []
        stats = WindowedStats(50.0, rows.append)
        bus = EventBus()
        stats.attach(bus)
        bus.publish(TxnArrive(10.0, 0, 1, True))
        # Next event lands four windows later: the three intervening
        # (empty) windows must be emitted so the stream has no gaps.
        bus.publish(TxnArrive(210.0, 0, 2, True))
        assert [row["window"] for row in rows] == [0, 1, 2, 3]
        assert [row["offered"] for row in rows] == [1, 0, 0, 0]

    def test_depth_probe_reported(self):
        rows = []
        stats = WindowedStats(10.0, rows.append, depth_probe=lambda: 7)
        stats.finish(5.0)
        assert rows[0]["queue_depth"] == 7

    def test_capture_restore_preserves_partial_window(self):
        rows_a, rows_b = [], []
        stats = WindowedStats(100.0, rows_a.append)
        bus = EventBus()
        stats.attach(bus)
        bus.publish(TxnArrive(30.0, 0, 1, True))
        state = pickle.loads(pickle.dumps(stats.capture_state()))
        restored = WindowedStats(100.0, rows_b.append)
        restored.restore_state(state)
        bus2 = EventBus()
        restored.attach(bus2)
        bus2.publish(TxnArrive(40.0, 0, 2, True))
        restored.finish(50.0)
        assert rows_b[0]["offered"] == 2

    def test_double_attach_raises(self):
        stats = WindowedStats(10.0, lambda row: None)
        bus = EventBus()
        stats.attach(bus)
        with pytest.raises(RuntimeError, match="already attached"):
            stats.attach(bus)

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError, match="window_ms"):
            WindowedStats(0.0, lambda row: None)


class TestTimeVaryingLoad:
    def test_steps_curve_scales_offered_load(self, tmp_path):
        flat = _config(transactions=200, checkpoint_every=0)
        doubled = _config(
            transactions=200, checkpoint_every=0,
            params=_light_params(
                rate_curve=RateCurve.parse("steps:0=2")))
        out_a, out_b = tmp_path / "flat.jsonl", tmp_path / "fast.jsonl"
        SoakRunner(flat, out_a).run()
        SoakRunner(doubled, out_b).run()

        def offered_rate(path):
            rows = [json.loads(line)
                    for line in path.read_text().splitlines()[1:-1]]
            span = rows[-1]["t_end_ms"]
            return sum(row["offered"] for row in rows) / span

        ratio = offered_rate(out_b) / offered_rate(out_a)
        assert 1.5 < ratio < 2.6

    def test_diurnal_curve_modulates_windows(self, tmp_path):
        config = _config(
            transactions=300, checkpoint_every=0, window_ms=10_000.0,
            params=_light_params(
                arrival_rate_tps=8.0,
                rate_curve=RateCurve.parse("diurnal:40:1.0")))
        out = tmp_path / "diurnal.jsonl"
        SoakRunner(config, out).run()
        rows = [json.loads(line)
                for line in out.read_text().splitlines()[1:-1]]
        offered = [row["offered"] for row in rows if row["offered"] > 0]
        # Amplitude 1.0 over a 40s period vs 10s windows: offered load
        # must visibly swing between peak and trough windows.
        assert len(offered) >= 2
        assert max(offered) > 1.5 * min(row["offered"] for row in rows[:4])

    def test_diurnal_soak_resumes_byte_identical(self, tmp_path):
        config = _config(
            params=_light_params(
                rate_curve=RateCurve.parse("diurnal:30:0.8"),
                skew=AccessSkew(kind=SkewKind.HOTSPOT,
                                drift_period_s=20.0)))
        full = tmp_path / "full.jsonl"
        SoakRunner(config, full, tmp_path / "f.ckpt").run()
        part = tmp_path / "part.jsonl"
        ckpt = tmp_path / "p.ckpt"
        SoakRunner(config, part, ckpt).run(stop_after_segments=1)
        SoakRunner(config, part, ckpt).run(resume=True)
        assert part.read_bytes() == full.read_bytes()


class TestMovingHotspot:
    def _hot_fraction(self, generator, now, num_pages=200, draws=300):
        hits = 0
        for _ in range(draws):
            slots = generator._sample_hotspot(num_pages, 3, now)
            hits += sum(1 for slot in slots if slot < num_pages // 10)
        return hits / (draws * 3)

    def test_hot_set_rotates_with_time(self):
        skew = AccessSkew(kind=SkewKind.HOTSPOT, hot_page_frac=0.10,
                          hot_access_frac=0.90, drift_period_s=100.0)
        params = _light_params(skew=skew)
        system = repro.build_system("2PC", params)
        generator = system.workload
        # At t=0 the hot set is the first 10% of slots; half a period
        # later it has rotated to the middle of the page range.
        assert self._hot_fraction(generator, now=0.0) > 0.6
        assert self._hot_fraction(generator, now=50_000.0) < 0.2

    def test_zero_drift_is_stationary(self):
        skew = AccessSkew(kind=SkewKind.HOTSPOT, hot_page_frac=0.10,
                          hot_access_frac=0.90)
        system = repro.build_system("2PC", _light_params(skew=skew))
        assert self._hot_fraction(system.workload, now=999_999.0) > 0.6

    def test_drift_requires_hotspot(self):
        with pytest.raises(ValueError, match="hotspot"):
            AccessSkew(kind=SkewKind.ZIPF, drift_period_s=5.0).validate()

    def test_parse_drift_spec(self):
        skew = AccessSkew.parse("hotspot:10:90:300")
        assert skew.drift_period_s == 300.0
        assert AccessSkew.parse("hotspot:10:90").drift_period_s == 0.0


class TestRateCurveParsing:
    def test_constant(self):
        curve = RateCurve.parse("constant")
        assert curve.factor_at(123456.0) == 1.0
        assert curve.peak_factor == 1.0

    def test_diurnal_shape(self):
        curve = RateCurve.parse("diurnal:100:0.5")
        assert curve.factor_at(0.0) == pytest.approx(1.0)
        assert curve.factor_at(25_000.0) == pytest.approx(1.5)
        assert curve.factor_at(75_000.0) == pytest.approx(0.5)
        assert curve.peak_factor == pytest.approx(1.5)

    def test_steps_shape(self):
        curve = RateCurve.parse("steps:10=2,20=0.5")
        assert curve.factor_at(0.0) == 1.0  # before the first step
        assert curve.factor_at(10_000.0) == 2.0
        assert curve.factor_at(25_000.0) == 0.5
        assert curve.peak_factor == 2.0

    def test_bad_specs_rejected(self):
        for text in ("nope", "diurnal:100", "diurnal:0:0.5",
                     "diurnal:100:1.5", "steps:", "steps:5=1,5=2",
                     "steps:0=-1", "steps:0=0"):
            with pytest.raises(ValueError, match="rate-curve|steps|"):
                RateCurve.parse(text)

    def test_rate_curve_requires_open_mode(self):
        with pytest.raises(ValueError, match="open workload"):
            repro.ModelParams(rate_curve=RateCurve.parse("constant"))


class TestSoakCli:
    def test_cli_soak_and_resume(self, tmp_path, capsys):
        import io

        from repro.cli import main
        out_path = tmp_path / "cli.jsonl"
        argv = ["soak", "2PC", "--transactions", "200",
                "--arrival-rate", "10", "--checkpoint-every", "80",
                "--window-s", "5", "--out", str(out_path), "--quiet"]
        buffer = io.StringIO()
        assert main(argv, out=buffer) == 0
        assert "committed" in buffer.getvalue()
        assert out_path.exists()
        assert (tmp_path / "cli.jsonl.ckpt").exists()
        # Resuming the complete run is a no-op exit 0.
        buffer = io.StringIO()
        assert main(argv + ["--resume"], out=buffer) == 0

    def test_cli_rejects_bad_curve(self):
        import io

        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["soak", "--rate-curve", "bogus"], out=io.StringIO())
