"""Documentation consistency checks."""

import pathlib
import re

ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_model_doc_exists_and_matches_defaults():
    """docs/MODEL.md quotes baseline arithmetic; keep it honest."""
    from repro.config import ModelParams
    text = (ROOT / "docs" / "MODEL.md").read_text()
    params = ModelParams()
    # The per-transaction page count the arithmetic uses.
    assert f"{int(params.mean_transaction_pages)}" in text
    # Disk and CPU service times.
    assert "20" in text and "5" in text


def test_readme_internal_links_resolve():
    readme = (ROOT / "README.md").read_text()
    for match in re.finditer(r"\]\(([^)#]+)\)", readme):
        target = match.group(1)
        if target.startswith("http"):
            continue
        assert (ROOT / target).exists(), f"README links to missing {target}"


def test_design_doc_substitutions_section():
    design = (ROOT / "DESIGN.md").read_text()
    assert "Substitutions" in design
    assert "SimPy" in design  # the documented substitution


def test_experiments_md_references_results_dir():
    text = (ROOT / "EXPERIMENTS.md").read_text()
    assert "generate_experiments_md.py" in text


def test_results_directory_has_all_experiments():
    from repro.experiments import experiment_ids
    results = ROOT / "results"
    for experiment_id in experiment_ids():
        assert (results / f"{experiment_id}.json").exists(), experiment_id
