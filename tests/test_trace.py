"""Tests for the tracing facility."""

import pytest

import repro
from repro.config import ModelParams
from repro.trace import TraceKind, TraceRecord, Tracer


def traced_run(protocol="OPT", echo=None, limit=None, **overrides):
    defaults = dict(num_sites=4, db_size=400, mpl=4, dist_degree=2,
                    cohort_size=3)
    defaults.update(overrides)
    system = repro.build_system(protocol, params=ModelParams(**defaults))
    tracer = Tracer.attach(system, echo=echo, limit=limit)
    result = system.run(measured_transactions=150, warmup_transactions=0)
    return tracer, result


class TestTracer:
    def test_records_submissions_and_commits(self):
        tracer, result = traced_run()
        submits = tracer.of_kind(TraceKind.SUBMIT)
        commits = tracer.of_kind(TraceKind.COMMIT)
        assert len(submits) > 0
        assert len(commits) >= 150

    def test_borrows_traced_for_opt(self):
        tracer, result = traced_run("OPT")
        borrows = tracer.of_kind(TraceKind.BORROW)
        # Warmup is zero, so the tracer saw exactly the measured borrows
        # (both hooks wrap the same lock-manager callback).
        assert len(borrows) == round(result.borrow_ratio
                                     * result.committed)
        assert borrows, "contended OPT run must borrow"
        for record in borrows[:5]:
            assert "page=" in record.detail

    def test_no_borrows_for_2pc(self):
        tracer, _ = traced_run("2PC")
        assert tracer.of_kind(TraceKind.BORROW) == []

    def test_restarts_follow_aborts(self):
        tracer, result = traced_run("2PC")
        aborts = tracer.of_kind(TraceKind.ABORT)
        restarts = tracer.of_kind(TraceKind.RESTART)
        if aborts:
            assert restarts, "every abort must eventually restart"
            # Each restart names an aborted transaction's successor
            # incarnation (same txn id, incremented suffix).
            aborted_ids = {r.txn.split(".")[0] for r in aborts}
            restarted_ids = {r.txn.split(".")[0] for r in restarts}
            assert restarted_ids <= aborted_ids

    def test_deadlock_victims_tagged(self):
        tracer, result = traced_run("2PC", db_size=160, mpl=6)
        if result.aborts_by_reason.get("deadlock"):
            assert tracer.of_kind(TraceKind.DEADLOCK_VICTIM)

    def test_counts_summary(self):
        tracer, _ = traced_run()
        counts = tracer.counts()
        assert counts[TraceKind.COMMIT] >= 150
        assert sum(counts.values()) == len(tracer)

    def test_of_transaction_filter(self):
        tracer, _ = traced_run()
        commit = tracer.of_kind(TraceKind.COMMIT)[0]
        records = tracer.of_transaction(commit.txn)
        assert all(r.txn == commit.txn for r in records)
        assert any(r.kind in (TraceKind.SUBMIT, TraceKind.RESTART)
                   for r in records)

    def test_echo_callback(self):
        lines = []
        traced_run(echo=lines.append, limit=20)
        assert len(lines) == 20
        assert all("ms]" in line for line in lines)

    def test_limit_caps_memory(self):
        tracer, _ = traced_run(limit=10)
        assert len(tracer) == 10

    def test_record_str_format(self):
        record = TraceRecord(12.5, TraceKind.COMMIT, "T1.0", "x=1")
        text = str(record)
        assert "commit" in text and "T1.0" in text and "x=1" in text

    def test_tracing_does_not_change_results(self):
        plain = repro.simulate("OPT", mpl=4, num_sites=4, db_size=400,
                               dist_degree=2, cohort_size=3,
                               measured_transactions=150,
                               warmup_transactions=0)
        _, traced = traced_run("OPT")
        assert traced.throughput == plain.throughput
        assert traced.aborted == plain.aborted
