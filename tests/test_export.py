"""Tests for the series export module."""

import csv

from repro.analysis.export import (
    export_experiment,
    export_long_csv,
    export_tsv,
)
from repro.config import ModelParams
from repro.experiments import MplSweep


def tiny_results():
    sweep = MplSweep(
        ["2PC", "OPT"],
        lambda mpl: ModelParams(num_sites=2, db_size=400, mpl=mpl,
                                dist_degree=2, cohort_size=2),
        mpls=(1, 2), measured_transactions=40, warmup_transactions=5)
    return sweep.run("E-TEST", "tiny")


def test_tsv_round_trip(tmp_path):
    results = tiny_results()
    path = export_tsv(results, "throughput", tmp_path)
    assert path.name == "E-TEST.throughput.tsv"
    with path.open() as handle:
        rows = list(csv.reader(handle, delimiter="\t"))
    assert rows[0] == ["mpl", "2PC", "OPT"]
    assert len(rows) == 3
    for row, mpl in zip(rows[1:], (1, 2)):
        assert int(row[0]) == mpl
        for value, protocol in zip(row[1:], ("2PC", "OPT")):
            expected = results.point(protocol, mpl).metric("throughput")
            assert abs(float(value) - expected) < 1e-3


def test_long_csv_shape(tmp_path):
    results = tiny_results()
    path = export_long_csv(results, ["throughput", "block_ratio"],
                           tmp_path)
    with path.open() as handle:
        rows = list(csv.DictReader(handle))
    # 2 metrics x 2 protocols x 2 mpls.
    assert len(rows) == 8
    assert {row["metric"] for row in rows} == {"throughput",
                                               "block_ratio"}
    assert {row["protocol"] for row in rows} == {"2PC", "OPT"}


def test_export_experiment_writes_all_files(tmp_path):
    results = tiny_results()
    paths = export_experiment(results, ["throughput"], tmp_path)
    assert len(paths) == 2
    for path in paths:
        assert path.exists()
        assert path.stat().st_size > 0


def test_directories_created(tmp_path):
    results = tiny_results()
    nested = tmp_path / "a" / "b"
    path = export_tsv(results, "throughput", nested)
    assert path.exists()
