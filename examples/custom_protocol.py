#!/usr/bin/env python3
"""Implementing a custom commit protocol against the public API.

Usage::

    python examples/custom_protocol.py

The paper's Section 3.2 lists further 2PC optimizations; one of them,
*Long Locks* ("cohorts piggyback their commit acknowledgments onto
subsequent messages"), is implemented here in ~20 lines by subclassing
:class:`repro.core.two_phase.TwoPhaseCommit`: cohorts skip the explicit
ACK message and the master does not wait for acknowledgements (the
bookkeeping rides on later traffic, off the critical path).

The example then benchmarks it against stock 2PC and OPT.
"""

import repro
from repro.core.two_phase import TwoPhaseCommit
from repro.db.messages import MessageKind
from repro.db.system import DistributedSystem
from repro.db.wal import LogRecordKind


class LongLocks2PC(TwoPhaseCommit):
    """2PC with piggybacked (elided) commit acknowledgements."""

    name = "LL-2PC"

    def master_commit_phase(self, master):
        yield from master.force_log(LogRecordKind.COMMIT)
        for cohort in master.prepared_cohorts:
            yield from master.send(MessageKind.COMMIT, cohort)
        # Long Locks: no ACK wait; the end record is written when the
        # piggybacked acknowledgements eventually arrive (off-path).
        master.log(LogRecordKind.END)

    def cohort_decision(self, cohort):
        message = yield cohort.recv()
        if message.kind is MessageKind.COMMIT:
            yield from cohort.force_log(LogRecordKind.COMMIT)
            cohort.implement_commit()
        else:
            yield from cohort.force_log(LogRecordKind.ABORT)
            cohort.implement_abort()
        # No ACK message: it piggybacks on later traffic.


class OptimisticLongLocks(LongLocks2PC):
    """...and it composes with OPT, as Section 3.2 promises."""

    name = "OPT-LL"
    lending = True


def run(protocol_instance, mpl=6, transactions=800):
    system = DistributedSystem(repro.ModelParams(mpl=mpl),
                               protocol_instance)
    return system.run(measured_transactions=transactions)


def main(transactions: int = 800) -> None:
    print("Custom protocol demo: Long Locks (piggybacked ACKs)\n")
    rows = []
    for protocol in ("2PC", "OPT"):
        rows.append(repro.simulate(protocol, mpl=6,
                                   measured_transactions=transactions))
    rows.append(run(LongLocks2PC(), transactions=transactions))
    rows.append(run(OptimisticLongLocks(), transactions=transactions))

    for result in rows:
        o = result.overheads
        print(f"{result.summary()}   commit_msgs/txn={o.commit_messages:.0f}")

    print("\nLL-2PC saves the two ACK messages per transaction "
          "(8 -> 6 commit messages) and the master's ACK wait; "
          "OPT-LL adds lending on top, matching the paper's point "
          "that OPT composes with most prior optimizations.")


if __name__ == "__main__":
    import sys
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 800)
