#!/usr/bin/env python3
"""Compare all ten protocols across the MPL range (Figure 1a, reduced).

Usage::

    python examples/protocol_comparison.py [--transactions N] [--pure-dc]

Runs the full protocol family over an MPL sweep and renders the
throughput series as a table plus sparkline summary -- a terminal
rendition of the paper's Figure 1a (or 2a with ``--pure-dc``).
"""

import argparse

from repro import PROTOCOL_NAMES, ModelParams, pure_data_contention
from repro.analysis.tables import render_comparison
from repro.experiments import MplSweep


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--transactions", type=int, default=400)
    parser.add_argument("--pure-dc", action="store_true",
                        help="infinite resources (Figure 2a)")
    parser.add_argument("--mpls", default="1,2,4,6,8")
    args = parser.parse_args()

    mpls = tuple(int(p) for p in args.mpls.split(","))

    def factory(mpl: int) -> ModelParams:
        if args.pure_dc:
            return pure_data_contention(mpl=mpl)
        return ModelParams(mpl=mpl)

    sweep = MplSweep(PROTOCOL_NAMES, factory, mpls=mpls,
                     measured_transactions=args.transactions)
    scenario = "pure DC (Fig 2a)" if args.pure_dc else "RC+DC (Fig 1a)"
    print(f"Sweeping {len(PROTOCOL_NAMES)} protocols x MPL {list(mpls)} "
          f"under {scenario}; this takes a minute or two...\n")
    results = sweep.run("comparison", scenario,
                        progress=lambda msg: print(f"  {msg}"))

    print()
    print(results.table("throughput"))
    print()
    print(render_comparison(results))
    print()
    print(results.table("block_ratio", precision=3))


if __name__ == "__main__":
    main()
