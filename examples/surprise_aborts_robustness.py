#!/usr/bin/env python3
"""OPT robustness under surprise aborts (paper Experiment 6).

Usage::

    python examples/surprise_aborts_robustness.py [--transactions N]

OPT lends uncommitted data on the optimistic assumption that prepared
transactions almost always commit.  This example stresses that
assumption: cohorts vote NO with increasing probability, and we watch
OPT's advantage over 2PC erode.  The paper's finding: OPT stays
superior until the *transaction* abort rate passes roughly fifteen
percent -- far beyond realistic failure rates.
"""

import argparse

import repro
from repro.config import surprise_aborts


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--transactions", type=int, default=600)
    parser.add_argument("--mpl", type=int, default=4)
    args = parser.parse_args()

    print(f"MPL = {args.mpl}/site, parallel transactions at 3 sites; "
          f"cohort NO-vote probability swept\n")
    header = (f"{'cohort p(NO)':>13} {'txn aborts':>11} "
              f"{'2PC thr':>9} {'OPT thr':>9} {'OPT gain':>9} "
              f"{'lender aborts':>14}")
    print(header)

    for cohort_prob in (0.0, 0.01, 0.05, 0.10, 0.15):
        params = surprise_aborts(cohort_prob, mpl=args.mpl)
        r2pc = repro.simulate("2PC", params=params,
                              measured_transactions=args.transactions)
        ropt = repro.simulate("OPT", params=params,
                              measured_transactions=args.transactions)
        surprise = ropt.aborts_by_reason.get("surprise_vote", 0)
        lender = ropt.aborts_by_reason.get("lender_abort", 0)
        txn_abort_rate = surprise / max(ropt.committed + surprise, 1)
        gain = (ropt.throughput - r2pc.throughput) / r2pc.throughput
        print(f"{cohort_prob:>13.2f} {txn_abort_rate:>10.1%} "
              f"{r2pc.throughput:>9.2f} {ropt.throughput:>9.2f} "
              f"{gain:>8.1%} {lender:>14d}")

    print("\nReading the table: 'OPT gain' should stay positive (or "
          "near zero) through ~15% transaction aborts; 'lender aborts' "
          "counts borrowers killed by a lender's abort -- the cost of "
          "misplaced optimism.")


if __name__ == "__main__":
    main()
