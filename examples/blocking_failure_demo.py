#!/usr/bin/env python3
"""What "blocking" means in milliseconds (beyond the paper's scope).

Usage::

    python examples/blocking_failure_demo.py [--outage-ms 20000]

The paper's Section 2.4 explains *why* blocking protocols are dangerous:
a master that fails between the voting and decision phases strands its
prepared cohorts, whose retained update locks strand everyone queueing
behind them ("cascading blocking").  The paper measures no-failure
performance; this demo injects exactly that failure and measures the
damage -- the argument for OPT-3PC's "win-win" made quantitative.
"""

import argparse

from repro.failures import run_crash_scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--outage-ms", type=float, default=20_000.0,
                        help="how long the crashed master stays down")
    parser.add_argument("--transactions", type=int, default=400)
    args = parser.parse_args()

    print(f"One transaction's master crashes mid-commit and stays down "
          f"for {args.outage_ms / 1000:.0f}s.\n")

    for protocol in ("2PC", "PA", "PC", "3PC"):
        report = run_crash_scenario(
            protocol, crash_duration_ms=args.outage_ms,
            measured_transactions=args.transactions)
        print(report.summary())

    print(
        "\nReading the results: under the blocking protocols the "
        "prepared cohorts'\nupdate locks stay held for the entire "
        "outage, and throughput collapses as\nother transactions pile "
        "up behind them.  3PC's termination protocol lets\nthe "
        "surviving cohorts decide among themselves within the decision "
        "timeout,\nso the outage barely registers.  Combine this with "
        "Figure 4's result --\nOPT-3PC matches or beats 2PC's "
        "throughput -- and the paper's 'win-win'\nrecommendation "
        "follows: non-blocking safety no longer costs performance.")


if __name__ == "__main__":
    main()
