#!/usr/bin/env python3
"""A scripted walk through OPT's lending mechanism (paper Section 3).

Usage::

    python examples/lending_trace.py

Drives the lock manager directly through the three canonical OPT
scenarios, printing each step:

1. borrow and *lender commits first* -- borrower simply proceeds;
2. *borrower finishes first* -- it goes "on the shelf" until the
   lender resolves;
3. *lender aborts* -- the borrower is aborted too, but the abort chain
   stops there (no cascade).
"""

from repro.db.deadlock import WaitForGraph
from repro.db.locks import LockManager, LockMode
from repro.db.transaction import CohortState
from repro.sim import Environment


class ToyTxn:
    """A minimal stand-in for a transaction (identity + age)."""

    _next_id = 1

    def __init__(self):
        self.txn_id = ToyTxn._next_id
        ToyTxn._next_id += 1
        self.incarnation = 0
        self.submit_time = float(self.txn_id)
        self.aborting = False
        self.outcome = None
        self.pages_borrowed = 0
        self.blocked_cohorts = 0

    @property
    def name(self):
        return f"T{self.txn_id}"

    def is_younger_than(self, other):
        return self.submit_time > other.submit_time


class ToyCohort:
    """A minimal stand-in for a cohort at one site."""

    def __init__(self, label):
        self.label = label
        self.txn = ToyTxn()
        self.state = CohortState.EXECUTING
        self.held_locks = {}
        self.lending_pages = set()
        self.lenders = set()

    def add_lender(self, lender):
        self.lenders.add(lender)
        print(f"    -> {self.label} now borrows from {lender.label}")

    def remove_lender(self, lender):
        self.lenders.discard(lender)
        print(f"    -> {lender.label} resolved; {self.label} has "
              f"{len(self.lenders)} unresolved lender(s)")

    def __repr__(self):
        return f"<{self.label}>"


def grab(env, lm, cohort, page, mode):
    granted = []

    def proc():
        yield from lm.acquire(cohort, page, mode)
        granted.append(True)

    env.process(proc())
    env.run(until=env.now)
    state = "granted" if granted else "BLOCKED"
    extra = f" (borrowing from {len(cohort.lenders)} lender(s))" \
        if cohort.lenders else ""
    print(f"    {cohort.label} requests {mode.value} lock on page "
          f"{page}: {state}{extra}")
    return bool(granted)


def fresh_manager(env):
    aborted = []

    def on_lender_abort(borrower):
        borrower.txn.aborting = True
        aborted.append(borrower)
        print(f"    !! lender aborted -> {borrower.label} must abort "
              f"(chain length 1, no cascade)")

    wfg = WaitForGraph(on_victim=lambda txn: None)
    lm = LockManager(env, site_id=0, wait_for_graph=wfg,
                     lending_enabled=True,
                     on_lender_abort=on_lender_abort)
    return lm, aborted


def scenario_lender_commits_first():
    print("Scenario 1: lender receives its COMMIT decision first")
    env = Environment()
    lm, _ = fresh_manager(env)
    lender = ToyCohort("lender")
    borrower = ToyCohort("borrower")

    grab(env, lm, lender, 42, LockMode.UPDATE)
    print("    lender enters PREPARED state (votes YES): update lock "
          "becomes lendable")
    lender.state = CohortState.PREPARED
    lm.prepare(lender)
    grab(env, lm, borrower, 42, LockMode.READ)
    print("    lender's global decision arrives: COMMIT")
    lm.finalize(lender, committed=True)
    print(f"    borrower now owns its lock normally; lenders left: "
          f"{len(borrower.lenders)}\n")


def scenario_borrower_finishes_first():
    print("Scenario 2: borrower completes execution before the lender "
          "resolves")
    env = Environment()
    lm, _ = fresh_manager(env)
    lender = ToyCohort("lender")
    borrower = ToyCohort("borrower")

    grab(env, lm, lender, 7, LockMode.UPDATE)
    lender.state = CohortState.PREPARED
    lm.prepare(lender)
    grab(env, lm, borrower, 7, LockMode.UPDATE)
    print("    borrower finishes its data accesses...")
    if borrower.lenders:
        print("    borrower is PUT ON THE SHELF: WORKDONE withheld; it "
              "cannot reach the prepared state while borrowing")
    print("    ... time passes; lender's COMMIT arrives")
    lm.finalize(lender, committed=True)
    if not borrower.lenders:
        print("    borrower comes off the shelf and sends WORKDONE\n")


def scenario_lender_aborts():
    print("Scenario 3: lender aborts (a 'surprise' NO vote elsewhere)")
    env = Environment()
    lm, aborted = fresh_manager(env)
    lender = ToyCohort("lender")
    borrower1 = ToyCohort("borrower1")
    borrower2 = ToyCohort("borrower2")

    grab(env, lm, lender, 13, LockMode.UPDATE)
    lender.state = CohortState.PREPARED
    lm.prepare(lender)
    grab(env, lm, borrower1, 13, LockMode.READ)
    grab(env, lm, borrower2, 13, LockMode.READ)
    print("    lender's global decision arrives: ABORT")
    lm.finalize(lender, committed=False)
    print(f"    aborted borrowers: "
          f"{sorted(b.label for b in aborted)}")
    print("    note: borrowers were never prepared, so nothing borrowed "
          "from THEM -- the abort chain is bounded at length one\n")


def main():
    print(__doc__)
    scenario_lender_commits_first()
    scenario_borrower_finishes_first()
    scenario_lender_aborts()


if __name__ == "__main__":
    main()
