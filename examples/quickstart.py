#!/usr/bin/env python3
"""Quickstart: run the simulator and compare two commit protocols.

Usage::

    python examples/quickstart.py

Simulates the paper's baseline workload (8 sites, parallel transactions
at 3 sites, 6 pages per cohort) under classical two-phase commit and
under the paper's OPT protocol, and prints the headline metrics.
"""

import sys

import repro


def main(transactions: int = 1000) -> None:
    print("Baseline workload (Table 2 settings), MPL = 6 per site\n")

    for protocol in ("2PC", "OPT"):
        result = repro.simulate(protocol, mpl=6,
                                measured_transactions=transactions)
        print(result.summary())

    print("\nWhat to look for:")
    print(" - OPT's throughput is >= 2PC's: lending prepared data")
    print("   removes blocking that 2PC incurs during commit processing.")
    print(" - OPT's block ratio is lower, and its borrow ratio is > 0.")

    print("\nOverheads per committing transaction (paper Table 3):")
    for protocol in ("2PC", "PC", "3PC"):
        result = repro.simulate(protocol, mpl=1, db_size=48000,
                                measured_transactions=100)
        o = result.overheads
        print(f"  {protocol:>4}: {o.execution_messages:.0f} execution "
              f"messages, {o.forced_writes:.0f} forced writes, "
              f"{o.commit_messages:.0f} commit messages")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1000)
