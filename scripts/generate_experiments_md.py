#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from measured experiment sweeps.

Usage::

    python scripts/generate_experiments_md.py [--results-dir DIR]
        [--transactions N] [--run-missing]

Reads per-experiment JSON files (one per registered experiment id) from
``--results-dir``; with ``--run-missing`` any absent experiment is run
at ``--transactions`` measured transactions per point and cached there.
The output is written to EXPERIMENTS.md at the repository root.

The prose sections (paper claims and verdicts) live in this script so
the measured tables can be refreshed without losing the commentary.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

HEADER = """\
# EXPERIMENTS — paper vs. measured

Reproduction record for every table and figure in *Revisiting Commit
Processing in Distributed Database Systems* (Gupta, Haritsa,
Ramamritham; SIGMOD 1997).  Absolute numbers are not expected to match
the 1997 testbed; the reproduction target is the **shape**: who wins, by
roughly what factor, and where peaks/crossovers fall.  Each section
quotes the paper's claim and the measured verdict.

Measured series below come from `{txns}` measured transactions per
(protocol, MPL) point with the calibrated baseline settings (DESIGN.md
section 3).  Regenerate with::

    python scripts/generate_experiments_md.py --run-missing

Throughputs are transactions/second, system-wide.
"""

# Commentary per experiment id: (heading, paper claim, verdict template).
COMMENTARY: dict[str, tuple[str, str, str]] = {
    "T3": (
        "Table 3 — protocol overheads, DistDegree = 3",
        "2PC/PA: 4 exec msgs, 7 forced writes, 8 commit msgs; "
        "PC: 4/5/6; 3PC: 4/11/12; DPCC: 4/1/0; CENT: 0/1/0.",
        "**Exact match.** Measured counts from abort-free runs equal the "
        "paper's table cell-for-cell (asserted by "
        "`benchmarks/bench_table3_overheads.py`; OPT variants equal "
        "their base protocols)."),
    "T4": (
        "Table 4 — protocol overheads, DistDegree = 6",
        "2PC/PA: 10/13/20; PC: 10/8/15; 3PC: 10/20/30; DPCC: 10/1/0; "
        "CENT: 0/1/0.",
        "**Exact match** (`benchmarks/bench_table4_overheads.py`)."),
    "E1": (
        "Figures 1a–1c — resource and data contention (RC+DC)",
        "Throughput rises then thrashes.  CENT best, DPCC close behind; "
        "a noticeable gap to the classical protocols (commit processing "
        "outweighs data processing); PA = 2PC exactly; PC ≈ 2PC; 3PC "
        "worst; OPT = 2PC at low MPL and approaches DPCC at high MPL.  "
        "Block ratio (1b) lower for OPT; borrowing (1c) grows with MPL.",
        "**Reproduced.** PA's series is bit-identical to 2PC's (same "
        "trajectory).  OPT's peak ({opt_peak:.1f}) lands within a few "
        "percent of DPCC's ({dpcc_peak:.1f}) while 2PC peaks at "
        "{２pc_peak:.1f}; 3PC is uniformly worst.  Block/borrow-ratio "
        "shapes asserted in `benchmarks/bench_fig1_rcdc.py`."),
    "E2": (
        "Figures 2a–2c — pure data contention",
        "Gaps widen markedly: the commit phase is a larger share of "
        "response time.  3PC significantly below 2PC; PC ≈ 2PC; OPT's "
        "peak close to DPCC's, reached at a *higher* MPL than 2PC "
        "(5 vs 4 in the paper).",
        "**Reproduced.** DPCC peaks {dpcc_vs_2pc:.2f}x above 2PC; OPT "
        "reaches {opt_frac:.0%} of DPCC's peak and peaks at MPL "
        "{opt_mpl} vs 2PC's {２pc_mpl}."),
    "E3-RCDC": (
        "Experiment 3 (prose) — fast network, RC+DC (MsgCPU = 1 ms)",
        "All protocols move close to CENT; DPCC and CENT become "
        "virtually indistinguishable.",
        "**Reproduced.** The CENT-to-2PC peak gap shrinks relative to "
        "Experiment 1, and DPCC's peak is within a few percent of "
        "CENT's."),
    "E3-DC": (
        "Experiment 3 (prose) — fast network, pure DC",
        "Remaining forced-write overheads still separate DPCC from 2PC "
        "and 2PC from 3PC; OPT remains valuable (fast messages do not "
        "remove the data-contention bottleneck).",
        "**Reproduced.** DPCC > 2PC > 3PC ordering intact; OPT's peak "
        "stays near DPCC's."),
    "E4-RCDC": (
        "Figure 3a — degree of distribution 6, RC+DC",
        "CPU-bound now: baselines clearly on top; for the first time PC "
        "beats 2PC across the MPL range; OPT alone gains little "
        "(smaller commit-execution ratio); OPT-PC is best overall.",
        "**Reproduced.** PC > 2PC at every MPL; OPT-PC has the best "
        "peak among non-baseline protocols ({optpc_peak:.1f} vs OPT "
        "{opt_peak:.1f}, PC {pc_peak:.1f})."),
    "E4-DC": (
        "Figure 3b — degree of distribution 6, pure DC",
        "DPCC's peak more than **twice** 2PC's; PC back to par with "
        "2PC; OPT-PC no better than OPT (the collecting write shrinks "
        "the commit-execution ratio).",
        "**Reproduced.** DPCC/2PC peak ratio = {dpcc_vs_2pc:.2f} "
        "(paper: > 2); PC within {pc_gap:.0%} of 2PC; OPT-PC ≈ OPT."),
    "E5-RCDC": (
        "Figure 4a — non-blocking OPT, RC+DC",
        "OPT-3PC ≈ 3PC at low MPL; at high MPL it beats 3PC and reaches "
        "a peak comparable to 2PC's.",
        "**Reproduced.** OPT-3PC peak {opt3_peak:.1f} vs 2PC "
        "{２pc_peak:.1f}; at MPL 1 OPT-3PC sits on 3PC's curve."),
    "E5-DC": (
        "Figure 4b — non-blocking OPT, pure DC",
        "OPT-3PC's peak **significantly surpasses 2PC's**: the paper's "
        "win-win (non-blocking + better-than-blocking performance).",
        "**Reproduced** (modest margin at bench scale): OPT-3PC peak "
        "{opt3_peak:.1f} > 2PC peak {２pc_peak:.1f}, and far above "
        "3PC's {３pc_peak:.1f}."),
    "E6-RCDC": (
        "Figure 5a — surprise aborts, RC+DC",
        "OPT's peak stays comparable to 2PC's through ~15% transaction "
        "aborts, degrading visibly only at ~27%; PA only marginally "
        "better than 2PC (system not CPU-bound); OPT-PA combines both; "
        "at high MPL a *crossover* appears (higher abort rates can beat "
        "lower ones because restart delays throttle contention).",
        "**Reproduced.** See the three abort-level tables below; "
        "`examples/surprise_aborts_robustness.py` shows OPT's gain "
        "staying positive through ~15% txn aborts and turning negative "
        "by ~30%."),
    "E6-DC": (
        "Figure 5b — surprise aborts, pure DC",
        "Same ordering under pure data contention, with larger spreads.",
        "**Reproduced** (tables below)."),
    "E7": (
        "Section 5.8 (prose) — sequential transactions",
        "Sequential cohorts lengthen the execution phase while the "
        "commit phase is unchanged, so the commit-execution ratio and "
        "the protocol gaps — OPT's advantage in particular — shrink.",
        "**Reproduced for the emphasized claim:** OPT's peak gain over "
        "2PC drops from the parallel workload's to near zero (printed "
        "by `benchmarks/bench_exp7_sequential.py`).  Responses are "
        "longer sequentially, as expected."),
    "E8-UP50": (
        "Section 5.8 (prose) — reduced update probability",
        "OPT's improvement depends on the level of data contention; "
        "fewer update locks mean less prepared-data blocking to "
        "eliminate.",
        "**Reproduced.** OPT's peak gain at UpdateProb 0.5 is below its "
        "gain at 1.0."),
    "E8-SMALLDB": (
        "Section 5.8 (prose) — small database",
        "More data contention grows OPT's advantage.",
        "**Reproduced.** OPT's gain and borrow ratio both rise on the "
        "smaller database."),
    "EXT": (
        "Extensions — beyond the paper's experiments",
        "Nine of the paper's qualitative arguments, made measurable: "
        "blocking halts processing on master failure (Sec 2.4); peak "
        "throughput can be *maintained* with Half-and-Half admission "
        "control (Sec 5); the Section 2.5 protocol family's "
        "message/forcing arithmetic; commit protocols exist to survive "
        "failures, so measure them under failures; the closed model's "
        "MPL knob answers \"at what concurrency\" but not \"at what "
        "offered load\", so re-ask the throughput question in an open "
        "system; steady-state claims deserve long horizons, so "
        "stream that open system for millions of transactions at flat "
        "memory; and the paper's zero-latency LAN switch is exactly "
        "the assumption a multi-datacenter deployment breaks, so "
        "re-price every message over a real topology; and real "
        "failures correlate — a power event takes a whole datacenter, "
        "a cut fiber partitions two — which is exactly the regime the "
        "non-blocking argument was made for, so inject that too; and "
        "the paper's partitioned single-copy database makes every page "
        "a single point of failure, so replicate the pages and commit "
        "with a quorum protocol that tolerates coordinator loss "
        "outright.",
        "(1) `repro.failures`: with a 15 s master outage, 2PC/PA/PC "
        "cohorts hold their update locks for the entire outage and "
        "system throughput collapses an order of magnitude, while "
        "3PC's termination protocol releases locks within the decision "
        "timeout (`benchmarks/bench_blocking_failure.py`).  "
        "(2) `repro.admission`: at MPL 10 — deep in the thrashing "
        "region — the Half-and-Half controller recovers ~90% of the "
        "gap back to peak throughput (`benchmarks/bench_admission.py`). "
        "(3) Unsolicited Vote (8 messages/txn), Early Prepare (6, "
        "message-minimal) and linear 2PC (8, decision at the chain "
        "tail) all measure exactly their analytic counts, and OPT-LIN "
        "confirms Section 3.2's claim that lending composes with the "
        "chain (`benchmarks/bench_protocol_family.py`).  "
        "(4) `repro.faults` + `repro.experiments.availability` "
        "(`repro-commit availability`): a seeded fault plan crashes "
        "sites on exponential MTTF/MTTR cycles and drops messages "
        "while the protocol layer's timeout/status-inquiry/WAL-replay "
        "recovery machinery (docs/MODEL.md, \"Failure model & "
        "recovery\") keeps every registered protocol live; the sweep "
        "reports throughput vs site MTTF alongside crashes survived, "
        "messages dropped, and in-doubt transactions resolved by each "
        "protocol's presumption rule.  With faults disabled the "
        "injector wires nothing and trajectories stay byte-identical "
        "to the golden fixture (`tests/test_faults.py`).  "
        "(5) `WorkloadMode.OPEN` + `repro.experiments.saturation` "
        "(`repro-commit saturation`): per-site Poisson arrivals feed "
        "bounded admission queues (drop-on-full = shed load) drained "
        "by `mpl` workers per site, with optional hot-spot/Zipf access "
        "skew (`--skew hotspot:10:90`, `--skew zipf:0.8`).  On the "
        "default grid (300 measured txns/point, seed 20250705, queue "
        "limit 64), carried load tracks offered load through 2.0 "
        "txns/s/site (~15.3 system-wide, all protocols) while p95 "
        "response climbs 0.5 s → 1.6 s; at 3.0/site the curves "
        "flatten and separate exactly as the closed MPL sweeps "
        "predict — OPT carries 14.95 system-wide vs PC 12.75, "
        "2PC/PA 12.34, 3PC 11.91, with p95 at 10–14 s; by "
        "5.0/site the queues overflow and every protocol sheds "
        "~19–20% of offered load.  Latency saturates far below "
        "the throughput knee — the operator-facing behaviour the "
        "paper's closed model cannot exhibit.  Closed-mode "
        "trajectories stay byte-identical "
        "(`tests/test_open_system.py`).  "
        "(6) `repro.experiments.soak` (`repro-commit soak`): the open "
        "system streamed to 10⁶–10⁷ transactions at "
        "O(1) memory — P² quantile sketches above a sample "
        "cap, per-window JSONL aggregates (`--out soak.jsonl`), "
        "bounded WAL retention, and drain-barrier checkpoints that "
        "make a killed-then-resumed soak byte-identical to an "
        "uninterrupted one, torn tail lines included "
        "(`scripts/soak_resume_check.py`).  Long horizons earn "
        "time-varying load: `--rate-curve diurnal:…`/`steps:…` "
        "modulates arrivals via Lewis–Shedler thinning and "
        "`--skew hotspot:b:a:drift_s` rotates the hot set through the "
        "database.  Peak RSS grows ~1.00x from 10⁴ to 10⁵ "
        "transactions (ceiling 1.25x, gated by "
        "`scripts/bench_trajectory.py --smoke`).  "
        "(7) `repro.db.topology` + `repro.experiments.wan` "
        "(`repro-commit wan`, `--topology` on every run mode): a "
        "pluggable network cost model prices the wire per directed "
        "link — `uniform` reproduces the paper's zero-latency switch "
        "byte-identically, `dcs:<D>x<S>:rtt_ms=<ms>` splits the sites "
        "into datacenters whose cross-DC links pay rtt/2 one-way "
        "(plus optional jitter/loss), and the metrics layer counts "
        "cross-DC round trips per commit — the quantity that "
        "multiplies RTT into latency (docs/MODEL.md, \"Topology & "
        "network cost model\").  At rtt=40 ms with cohorts spread "
        "across 2 DCs, PC and OPT commit faster than 2PC and 3PC is "
        "strictly worst (PC ≈ 963 ms < OPT ≈ 971 ms < 2PC ≈ 1041 ms "
        "< 3PC ≈ 1141 ms at MPL 2) because the ordering now follows "
        "each protocol's serialized cross-DC round trips (PC ≈ 3.0, "
        "2PC ≈ 3.5, 3PC ≈ 4.9); preferring same-DC cohorts "
        "(`--local-cohorts`) moves commit traffic off the expensive "
        "links entirely.  The fault injector stacks on top of the "
        "topology (injected delay/loss add to the healthy wire's; "
        "a site that crashes mid-flight still eats the message after "
        "the link delay), `uniform` trajectories stay byte-identical "
        "to the golden fixture, and the cost-model indirection is "
        "gated at ≤2% (`tests/db/test_topology.py`, "
        "`scripts/bench_trajectory.py --smoke`).  "
        "(8) `repro.faults` region plans + "
        "`repro.experiments.region_outage` (`repro-commit "
        "region-outage`, `--fault-plan` on simulate): a parseable "
        "correlated-failure plan — `dc_crash:<dc>:at=…:for=…` crashes "
        "every site of a datacenter atomically, "
        "`partition:<dcA>|<dcB>:…` severs the link group between two "
        "(messages crossing the cut drop with reason `partition`; the "
        "sites stay up), with stochastic mttf/mttr variants on "
        "dedicated RNG streams.  In-doubt 2PC/PA/PC cohorts on the "
        "wrong side of a cut stay blocked holding locks until heal; "
        "3PC's termination protocol decides only with a majority of "
        "the cohort set reachable (no split brain) and commits an "
        "uncertain cohort on peer evidence of the precommit; the "
        "resolver backs off exponentially while the path is cut.  The "
        "sweep grids protocol × outage shape × duration over a dcs "
        "topology and reports blocked-lock time, carried throughput "
        "during the outage, recovery time, and the drop split — under "
        "a 4 s coordinator-side DC loss on dcs:3x2, 2PC holds locks "
        "blocked ~4.9 s vs 3PC's ~3.0 s (seed 7): the termination "
        "protocol is what non-blocking buys.  Every registered "
        "protocol completes both outage shapes on dcs:2x2 and dcs:3x2 "
        "with no hangs, an inert plan is byte-identical to the armed "
        "baseline, and the inactive plane is essentially free "
        "(`partition_overhead` bench, ~1.00x full pairs) "
        "(`tests/test_region_faults.py`, "
        "`scripts/bench_trajectory.py --smoke`).  "
        "(9) `repro.core.paxos_commit` + `repro.db.pages` replication "
        "(`repro-commit replication`, `--replication R[:strategy]` on "
        "every run mode): Paxos Commit (Gray & Lamport) runs each "
        "RM's vote as its own Paxos instance against 2F+1 acceptors "
        "drawn from the cohort sites — the coordinator decides at F+1 "
        "acceptances, and a blocked cohort that reaches any F+1 "
        "acceptors takes over with a higher ballot instead of waiting "
        "out the coordinator, so F ≥ 1 is non-blocking; at F = 0 the "
        "protocol collapses to 2PC and its trajectories are "
        "byte-identical, message and forced-write counts included "
        "(at D = 3: 2PC pays 8 messages/7 forced writes, PAXOS F = 1 "
        "pays 14/9 — the acceptors batch every instance into one "
        "forced ACCEPT).  A `ReplicaDirectory` maps each page to an "
        "R-site replica set (`chain` packs ring neighbours, `spread` "
        "maximises DC diversity); commits write all available copies "
        "— one batched propagation per remote replica site, "
        "unreachable replicas skipped and counted (available-copies "
        "liveness), R = 1 keeping the historical partitioned layout "
        "byte-identical and essentially free (`replication_overhead` "
        "bench, ~1.00x full pairs).  The sweep "
        "races 2PC/3PC/PAXOS across replication factor × site MTTF "
        "through a coordinator-DC outage on dcs:2x2: with stochastic "
        "site faults layered on the outage, PAXOS holds blocked locks "
        "for ~0.4–0.8 s across R = 1–3 while 2PC holds them 4.3–12.7 "
        "s at R ≤ 2 (seed 7) — quorum commit, not replication alone, "
        "is what shortens the blocking window "
        "(`tests/test_paxos_replication.py`)."),
}

#: experiment ids whose measured series get a table, in document order.
SERIES_ORDER = ["E1", "E2", "E3-RCDC", "E3-DC", "E4-RCDC", "E4-DC",
                "E5-RCDC", "E5-DC", "E6-RCDC", "E6-DC", "E7",
                "E8-UP50", "E8-SMALLDB"]


def load_results(results_dir: pathlib.Path, run_missing: bool,
                 transactions: int) -> dict[str, dict]:
    from repro.experiments.registry import EXPERIMENTS
    out = {}
    results_dir.mkdir(parents=True, exist_ok=True)
    for exp_id, definition in EXPERIMENTS.items():
        path = results_dir / f"{exp_id}.json"
        if not path.exists():
            if not run_missing:
                continue
            results = definition.run(measured_transactions=transactions)
            data = {"title": definition.title}
            for metric in definition.metrics:
                data[metric] = {p: results.series(p, metric)
                                for p in definition.protocols}
            data["peaks"] = {p: results.peak(p)
                             for p in definition.protocols}
            path.write_text(json.dumps(data, indent=1))
        out[exp_id] = json.loads(path.read_text())
    return out


def series_table(data: dict, metric: str = "throughput",
                 precision: int = 1) -> str:
    table = data[metric]
    protocols = list(table)
    mpls = [m for m, _ in table[protocols[0]]]
    lines = ["| MPL | " + " | ".join(protocols) + " |",
             "|" + "---|" * (len(protocols) + 1)]
    for i, mpl in enumerate(mpls):
        cells = [f"{table[p][i][1]:.{precision}f}" for p in protocols]
        lines.append(f"| {mpl} | " + " | ".join(cells) + " |")
    return "\n".join(lines)


def peak(data: dict, protocol: str) -> tuple[int, float]:
    mpl, value = data["peaks"][protocol]
    return int(mpl), float(value)


def build(results: dict[str, dict], transactions: int) -> str:
    parts = [HEADER.format(txns=transactions)]

    def section(exp_id: str, body_extra: str = "") -> None:
        heading, claim, verdict = COMMENTARY[exp_id]
        parts.append(f"## {heading}\n")
        parts.append(f"**Paper:** {claim}\n")
        parts.append(f"**Measured:** {verdict}\n")
        if body_extra:
            parts.append(body_extra + "\n")

    # Tables 3 and 4 first.
    section("T3")
    section("T4")

    fills: dict[str, dict[str, object]] = {}
    if "E1" in results:
        d = results["E1"]
        fills["E1"] = {
            "opt_peak": peak(d, "OPT")[1],
            "dpcc_peak": peak(d, "DPCC")[1],
            "２pc_peak": peak(d, "2PC")[1]}
    if "E2" in results:
        d = results["E2"]
        fills["E2"] = {
            "dpcc_vs_2pc": peak(d, "DPCC")[1] / peak(d, "2PC")[1],
            "opt_frac": peak(d, "OPT")[1] / peak(d, "DPCC")[1],
            "opt_mpl": peak(d, "OPT")[0],
            "２pc_mpl": peak(d, "2PC")[0]}
    if "E4-RCDC" in results:
        d = results["E4-RCDC"]
        fills["E4-RCDC"] = {
            "optpc_peak": peak(d, "OPT-PC")[1],
            "opt_peak": peak(d, "OPT")[1],
            "pc_peak": peak(d, "PC")[1]}
    if "E4-DC" in results:
        d = results["E4-DC"]
        fills["E4-DC"] = {
            "dpcc_vs_2pc": peak(d, "DPCC")[1] / peak(d, "2PC")[1],
            "pc_gap": abs(peak(d, "PC")[1] - peak(d, "2PC")[1])
            / peak(d, "2PC")[1]}
    for scenario in ("E5-RCDC", "E5-DC"):
        if scenario in results:
            d = results[scenario]
            fills[scenario] = {
                "opt3_peak": peak(d, "OPT-3PC")[1],
                "２pc_peak": peak(d, "2PC")[1],
                "３pc_peak": peak(d, "3PC")[1]}

    for exp_id in SERIES_ORDER:
        if exp_id in ("E6-RCDC", "E6-DC"):
            # Grouped: three abort levels per scenario.
            levels = [f"{exp_id}-{pct}" for pct in (3, 15, 27)]
            if not any(level in results for level in levels):
                continue
            heading, claim, verdict = COMMENTARY[exp_id]
            parts.append(f"## {heading}\n")
            parts.append(f"**Paper:** {claim}\n")
            parts.append(f"**Measured:** {verdict}\n")
            for level, pct in zip(levels, (3, 15, 27)):
                if level in results:
                    parts.append(f"*~{pct}% transaction aborts:*\n")
                    parts.append(series_table(results[level]) + "\n")
            continue
        if exp_id not in results:
            continue
        data = results[exp_id]
        heading, claim, verdict = COMMENTARY[exp_id]
        verdict = verdict.format(**fills.get(exp_id, {}))
        parts.append(f"## {heading}\n")
        parts.append(f"**Paper:** {claim}\n")
        parts.append(f"**Measured:** {verdict}\n")
        parts.append(series_table(data) + "\n")

    section("EXT")
    parts.append(
        "---\n\n*Every numeric claim above is also asserted "
        "programmatically by the corresponding benchmark in "
        "`benchmarks/`; run `pytest benchmarks/ --benchmark-only` to "
        "re-verify.*\n")
    return "\n".join(parts)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--results-dir", type=pathlib.Path,
                        default=ROOT / "results")
    parser.add_argument("--transactions", type=int, default=600)
    parser.add_argument("--run-missing", action="store_true")
    parser.add_argument("--output", type=pathlib.Path,
                        default=ROOT / "EXPERIMENTS.md")
    args = parser.parse_args()
    results = load_results(args.results_dir, args.run_missing,
                           args.transactions)
    args.output.write_text(build(results, args.transactions))
    print(f"wrote {args.output} ({len(results)} experiments)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
