#!/usr/bin/env python
"""Track the repo's performance trajectory across PRs.

Runs the kernel microbenchmarks plus one small sweep benchmark with
plain ``time.perf_counter`` timing (no pytest-benchmark dependency) and
writes a machine-readable ``BENCH_<n>.json`` at the repo root --
wall-clock, events/sec, txns/sec -- so each PR's perf delta is recorded
next to the previous ones.

Usage::

    PYTHONPATH=src python scripts/bench_trajectory.py            # full run
    PYTHONPATH=src python scripts/bench_trajectory.py --smoke    # CI gate
    PYTHONPATH=src python scripts/bench_trajectory.py --pr 3     # BENCH_3.json

``--smoke`` shrinks the workloads to a couple of seconds total, skips
the JSON artifact (unless ``--output`` is given), and *fails loudly*
(exit 1) if kernel throughput falls below conservative floors -- the
floors are ~5x below current performance, so they only trip on real
regressions, not machine noise.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import re
import sys
import time


REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Conservative --smoke floors (events/sec and txns/sec).  The optimized
#: kernel does ~2M heap-entries/sec and ~1 txn/ms on a laptop core;
#: these trip only on order-of-magnitude regressions.
SMOKE_FLOOR_EVENTS_PER_SEC = 200_000.0
SMOKE_FLOOR_TXNS_PER_SEC = 100.0
#: An idle-bus emit guard is one dict membership test; a tight Python
#: loop of them runs at ~10M/s, so 1M/s only trips on real regressions
#: (e.g. someone making has_subscribers allocate or walk lists).
SMOKE_FLOOR_BUS_GUARDS_PER_SEC = 1_000_000.0
#: An *inactive* FaultConfig must wire nothing: its entire runtime cost
#: is a handful of ``is None`` attribute tests on hot paths.  The true
#: overhead is ~1% (full-bench pairs, BENCH_7), but the smoke samples
#: are ~80 ms on shared 1-core runners whose slow episodes move even a
#: median-of-pairs ratio by several percent, so the gate only flags a
#: structural regression (an accidentally wired subscriber shows up as
#: >=1.2x); the full bench remains the precision measurement.
SMOKE_CEIL_FAULT_OVERHEAD = 1.10
#: The open-system machinery (Poisson arrivals, bounded queues, extra
#: bus events, percentile samples) rides on the same kernel; a mid-load
#: open point must clear the same order-of-magnitude floor as the
#: closed end-to-end run.
SMOKE_FLOOR_OPEN_TXNS_PER_SEC = 100.0
#: The ``uniform`` topology routes every remote send through the
#: LanSwitch cost model -- two extra method calls per message against
#: the no-topology hot path, nothing else (no RNG draws, no counters,
#: byte-identical trajectories, asserted below).  The true overhead is
#: ~0-1% (full-bench pairs), but like ``fault_overhead`` above the
#: ~75 ms smoke samples jitter several percent on shared/virtualized
#: 1-core runners (host steal moves even a median-of-15-pairs ratio
#: past 1.02x -- observed up to 1.13x on an otherwise idle guest), so
#: the gate flags structural regressions only; the full bench remains
#: the precision measurement.
SMOKE_CEIL_COST_MODEL_OVERHEAD = 1.10
#: Replication factor 1 keeps the historical partitioned layout: the
#: replica directory resolves every page to a single site and the
#: commit path ships nothing, so the only added cost is the directory
#: subclass's placement lookup.  Byte-identical trajectories (asserted
#: below); same median-of-adjacent-pairs discipline and jitter-driven
#: ceiling as the cost-model and partition gates.
SMOKE_CEIL_REPLICATION_OVERHEAD = 1.10
#: A WAN grid point adds per-message wire timeouts and delivery
#: processes on the same kernel; it must clear the same
#: order-of-magnitude floor as the LAN end-to-end run.
SMOKE_FLOOR_WAN_TXNS_PER_SEC = 100.0
#: An *inactive* region fault plan (all directives scheduled far past
#: the end of the run) adds one ``link_severed`` set probe per remote
#: send against the armed-injector baseline -- no RNG draws, no bus
#: events, byte-identical trajectories (asserted below).  Same
#: median-of-adjacent-pairs discipline and jitter-driven ceiling as
#: the cost-model gate.
SMOKE_CEIL_PARTITION_OVERHEAD = 1.10
#: Warm-pool chunked sweeps must actually scale: jobs=4 below 1.5x of
#: serial means pool/IPC overhead regressed (BENCH_5 recorded 0.74x on
#: the old cold-pool path).  Only meaningful with cores to use, so the
#: gate applies when the runner has >= 4 CPUs and is skipped (loudly)
#: otherwise.
SMOKE_FLOOR_SWEEP_SPEEDUP_J4 = 1.5
#: Soak runs must hold flat RSS: streaming percentile sketches, windowed
#: JSONL output, and WAL truncation mean a 10x-longer soak may not cost
#: more than 25% extra peak memory.  (Before the streaming plane, RSS
#: grew linearly: 10^5 transactions took ~8x the memory of 10^4.)
SMOKE_CEIL_SOAK_RSS_GROWTH = 1.25


def _best_of(fn, repeats: int) -> tuple[float, object]:
    """(best wall seconds, last return value) over ``repeats`` runs."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


# ----------------------------------------------------------------------
# Kernel micro group (mirrors benchmarks/bench_kernel_micro.py)
# ----------------------------------------------------------------------
def bench_event_loop(events: int, repeats: int) -> dict:
    from repro.sim import Environment

    def run():
        env = Environment()

        def ticker(env):
            for _ in range(events):
                yield env.timeout(1.0)

        env.process(ticker(env))
        env.run()
        return env.now

    wall, now = _best_of(run, repeats)
    assert now == float(events)
    return {"wall_s": wall, "events": events,
            "events_per_sec": events / wall}


def bench_process_spawning(processes: int, repeats: int) -> dict:
    from repro.sim import Environment

    def run():
        env = Environment()
        done = []

        def worker(env):
            yield env.timeout(1.0)
            done.append(1)

        for _ in range(processes):
            env.process(worker(env))
        env.run()
        return len(done)

    wall, count = _best_of(run, repeats)
    assert count == processes
    return {"wall_s": wall, "processes": processes,
            "processes_per_sec": processes / wall}


def bench_lock_grant_release(cycles: int, repeats: int) -> dict:
    from repro.db.deadlock import WaitForGraph
    from repro.db.locks import LockManager, LockMode
    from repro.sim import Environment

    ids = iter(range(1, 10**9))

    class _Txn:
        def __init__(self):
            self.txn_id = next(ids)
            self.name = f"bench-{self.txn_id}"
            self.incarnation = 0
            self.pages_borrowed = 0

    class _Cohort:
        def __init__(self):
            self.txn = _Txn()
            self.held_locks = {}
            self.lending_pages = set()
            self.lenders = set()

        def add_lender(self, lender):
            self.lenders.add(lender)

        def remove_lender(self, lender):
            self.lenders.discard(lender)

    def run():
        env = Environment()
        wfg = WaitForGraph(on_victim=lambda txn: None)
        lm = LockManager(env, 0, wfg)
        count = 0

        def worker(env):
            nonlocal count
            for i in range(cycles):
                cohort = _Cohort()
                yield from lm.acquire(cohort, i % 64, LockMode.UPDATE)
                lm.finalize(cohort, committed=True)
                count += 1

        env.process(worker(env))
        env.run()
        return count

    wall, count = _best_of(run, repeats)
    assert count == cycles
    return {"wall_s": wall, "cycles": cycles, "cycles_per_sec": cycles / wall}


def bench_bus_overhead(operations: int, repeats: int) -> dict:
    """Cost of the instrumentation plane at the emit sites.

    Every high-frequency emitter guards with ``bus.has_subscribers``, so
    the idle-bus cost per emit site is a single dict membership test --
    this benchmark measures that guard rate directly, plus the dispatch
    rate with one live subscriber for contrast.
    """
    from repro.obs.bus import EventBus
    from repro.obs.events import EventKind, LogWrite

    def run_idle():
        bus = EventBus()
        has = bus.has_subscribers
        kind = EventKind.LOG_WRITE
        hits = 0
        for _ in range(operations):
            if has(kind):  # the guard every idle emit site pays
                hits += 1
        return hits

    def run_live():
        bus = EventBus()
        seen = []
        bus.subscribe(EventKind.LOG_WRITE, seen.append)
        has = bus.has_subscribers
        publish = bus.publish
        kind = EventKind.LOG_WRITE
        for _ in range(operations):
            if has(kind):
                publish(LogWrite(0.0, site_id=0, record_kind="bench",
                                 txn_id=1))
        return len(seen)

    idle_wall, hits = _best_of(run_idle, repeats)
    assert hits == 0
    live_wall, delivered = _best_of(run_live, repeats)
    assert delivered == operations
    return {"wall_s": idle_wall, "operations": operations,
            "idle_guards_per_sec": operations / idle_wall,
            "live_dispatch_per_sec": operations / live_wall}


def bench_end_to_end(transactions: int, repeats: int) -> dict:
    import repro

    def run():
        result = repro.simulate("2PC", measured_transactions=transactions,
                                mpl=2, warmup_transactions=transactions // 10)
        return result.committed

    wall, committed = _best_of(run, repeats)
    return {"wall_s": wall, "txns": committed,
            "txns_per_sec": committed / wall}


def bench_open_saturation_point(transactions: int, repeats: int) -> dict:
    """One open-mode mid-load point (wall-clock cost of the arrival,
    admission-queue, and percentile machinery on top of the kernel)."""
    import repro
    from repro.config import open_system

    params = open_system(arrival_rate_tps=1.0)

    def run():
        return repro.simulate("2PC", params,
                              measured_transactions=transactions,
                              warmup_transactions=transactions // 10)

    wall, result = _best_of(run, repeats)
    return {"wall_s": wall, "txns": result.committed,
            "txns_per_sec": result.committed / wall,
            "arrival_rate_tps": params.arrival_rate_tps,
            "carried_tps_sim": result.throughput,
            "shed_ratio": result.shed_ratio}


def bench_fault_overhead(transactions: int, repeats: int) -> dict:
    """Cost of the fault-injection plane when nothing is injected.

    Runs the identical seeded workload with ``faults=None`` and with an
    inactive :class:`FaultConfig`; the inactive config must leave the
    simulation byte-identical (asserted) and essentially free (the
    smoke gate pins the wall-clock ratio).
    """
    import repro
    from repro.faults import FaultConfig

    def run(faults):
        result = repro.simulate("2PC", measured_transactions=transactions,
                                mpl=2, warmup_transactions=0, seed=1,
                                faults=faults)
        return result.throughput

    # Time adjacent plain/inactive pairs (after a warmup) and report the
    # MEDIAN of the per-pair ratios: the two halves of a pair sit next
    # to each other in time, so a throttling episode or load spike slows
    # both and cancels in the ratio, and the median discards the pairs
    # where it did not.  (Ratio-of-minima is not enough here — a slow
    # episode spanning one variant's whole schedule skews both minima.)
    assert run(None) == run(FaultConfig()), \
        "inactive FaultConfig perturbed the trajectory"
    plain_wall = inactive_wall = float("inf")
    ratios = []
    for _ in range(max(repeats, 5)):
        start = time.perf_counter()
        run(None)
        plain = time.perf_counter() - start
        start = time.perf_counter()
        run(FaultConfig())
        inactive = time.perf_counter() - start
        plain_wall = min(plain_wall, plain)
        inactive_wall = min(inactive_wall, inactive)
        ratios.append(inactive / plain)
    ratios.sort()
    median = ratios[len(ratios) // 2] if len(ratios) % 2 else \
        (ratios[len(ratios) // 2 - 1] + ratios[len(ratios) // 2]) / 2
    return {"wall_s": inactive_wall, "plain_wall_s": plain_wall,
            "txns": transactions,
            "overhead_ratio": median}


def bench_cost_model_overhead(transactions: int, repeats: int) -> dict:
    """Cost of the pluggable network cost model when the wire is free.

    Runs the identical seeded workload with no topology (the historical
    zero-consult hot path) and with the ``uniform`` topology (every
    remote send consults the LanSwitch).  The two must be byte-identical
    (asserted); the smoke gate pins the wall-clock ratio of the
    indirection itself.  Same median-of-adjacent-pairs discipline as
    ``bench_fault_overhead``.
    """
    import dataclasses

    import repro

    uniform = repro.NetworkTopology.parse("uniform")

    def run(topology):
        return repro.simulate("2PC", measured_transactions=transactions,
                              mpl=2, warmup_transactions=0, seed=1,
                              network_topology=topology)

    assert (json.dumps(dataclasses.asdict(run(None)))
            == json.dumps(dataclasses.asdict(run(uniform)))), \
        "uniform topology perturbed the trajectory"
    plain_wall = uniform_wall = float("inf")
    ratios = []
    for _ in range(max(repeats, 5)):
        start = time.perf_counter()
        run(None)
        plain = time.perf_counter() - start
        start = time.perf_counter()
        run(uniform)
        with_model = time.perf_counter() - start
        plain_wall = min(plain_wall, plain)
        uniform_wall = min(uniform_wall, with_model)
        ratios.append(with_model / plain)
    ratios.sort()
    median = ratios[len(ratios) // 2] if len(ratios) % 2 else \
        (ratios[len(ratios) // 2 - 1] + ratios[len(ratios) // 2]) / 2
    return {"wall_s": uniform_wall, "plain_wall_s": plain_wall,
            "txns": transactions,
            "overhead_ratio": median}


def bench_partition_overhead(transactions: int, repeats: int) -> dict:
    """Cost of the partition plane when no partition is active.

    Runs the identical seeded workload on a 2x2-DC topology with an
    armed injector (a crash scheduled far past the end of the run) and
    with the same injector plus a far-future region fault plan.  The
    plan adds the ``link_severed`` probe to every remote send; with no
    cut active it must leave the simulation byte-identical (asserted)
    and essentially free (the smoke gate pins the wall-clock ratio).
    Same median-of-adjacent-pairs discipline as
    ``bench_cost_model_overhead``.
    """
    import dataclasses

    import repro
    from repro.faults import CrashEvent, FaultConfig, RegionPlan

    topology = repro.NetworkTopology.parse("dcs:2x2:rtt_ms=0")
    # Both variants arm the injector identically; only the region plan
    # differs, so the ratio isolates the partition plane itself.
    armed = FaultConfig(crash_schedule=(CrashEvent(0, 1e9, 1.0),))
    planned = dataclasses.replace(
        armed, region=RegionPlan.parse("partition:0|1:at=1e9:for=1"))

    def run(faults):
        return repro.simulate("2PC", measured_transactions=transactions,
                              mpl=2, warmup_transactions=0, seed=1,
                              num_sites=4, network_topology=topology,
                              faults=faults)

    assert (json.dumps(dataclasses.asdict(run(armed)))
            == json.dumps(dataclasses.asdict(run(planned)))), \
        "inactive region plan perturbed the trajectory"
    armed_wall = planned_wall = float("inf")
    ratios = []
    for _ in range(max(repeats, 5)):
        start = time.perf_counter()
        run(armed)
        plain = time.perf_counter() - start
        start = time.perf_counter()
        run(planned)
        with_plan = time.perf_counter() - start
        armed_wall = min(armed_wall, plain)
        planned_wall = min(planned_wall, with_plan)
        ratios.append(with_plan / plain)
    ratios.sort()
    median = ratios[len(ratios) // 2] if len(ratios) % 2 else \
        (ratios[len(ratios) // 2 - 1] + ratios[len(ratios) // 2]) / 2
    return {"wall_s": planned_wall, "plain_wall_s": armed_wall,
            "txns": transactions,
            "overhead_ratio": median}


def bench_replication_overhead(transactions: int, repeats: int) -> dict:
    """Cost of the replication plane at factor 1 (the inactive case).

    Runs the identical seeded workload with no replication spec (the
    historical partitioned :class:`PageDirectory`) and with
    ``--replication 1`` (the :class:`ReplicaDirectory` resolving every
    page to a one-site replica set).  Factor 1 must leave the
    simulation byte-identical (asserted) and essentially free (the
    smoke gate pins the wall-clock ratio).  Same
    median-of-adjacent-pairs discipline as ``bench_partition_overhead``.
    """
    import dataclasses

    import repro

    def run(replication):
        return repro.simulate("2PC", measured_transactions=transactions,
                              mpl=2, warmup_transactions=0, seed=1,
                              replication=replication)

    single = repro.ReplicationSpec(1)
    assert (json.dumps(dataclasses.asdict(run(None)))
            == json.dumps(dataclasses.asdict(run(single)))), \
        "replication factor 1 perturbed the trajectory"
    plain_wall = replicated_wall = float("inf")
    ratios = []
    for _ in range(max(repeats, 5)):
        start = time.perf_counter()
        run(None)
        plain = time.perf_counter() - start
        start = time.perf_counter()
        run(single)
        with_directory = time.perf_counter() - start
        plain_wall = min(plain_wall, plain)
        replicated_wall = min(replicated_wall, with_directory)
        ratios.append(with_directory / plain)
    ratios.sort()
    median = ratios[len(ratios) // 2] if len(ratios) % 2 else \
        (ratios[len(ratios) // 2 - 1] + ratios[len(ratios) // 2]) / 2
    return {"wall_s": replicated_wall, "plain_wall_s": plain_wall,
            "txns": transactions,
            "overhead_ratio": median}


def bench_wan_point(transactions: int, repeats: int) -> dict:
    """One WAN grid point: 2PC across 2 datacenters at 40 ms RTT.

    The per-message wire charge turns every remote send into a delivery
    process with a timeout, so this tracks the kernel cost of the WAN
    path (and the cross-DC accounting) rather than the protocol story
    -- the ordering claims live in ``repro-commit wan`` and
    ``tests/experiments/test_wan.py``.
    """
    import repro

    captured = []
    topology = repro.NetworkTopology.parse("dcs:2x4:rtt_ms=40")

    def run():
        captured.clear()
        result = repro.simulate(
            "2PC", measured_transactions=transactions, mpl=2,
            warmup_transactions=transactions // 10, seed=1,
            network_topology=topology, on_system=captured.append)
        return result

    wall, result = _best_of(run, repeats)
    system = captured[0]
    return {"wall_s": wall, "txns": result.committed,
            "txns_per_sec": result.committed / wall,
            "rtt_ms": 40.0,
            "response_ms": result.response_time_ms,
            "cross_dc_messages": system.network.cross_dc_messages,
            "cross_dc_round_trips_per_commit":
                system.metrics.cross_dc_round_trips_per_commit()}


# ----------------------------------------------------------------------
# Soak memory benchmark (peak RSS vs run length)
# ----------------------------------------------------------------------
def bench_soak_memory(small_txns: int, large_txns: int) -> dict:
    """Peak RSS of a short vs a 10x-longer soak run.

    Each probe runs ``python -m repro.experiments.soak`` in its own
    subprocess so ``ru_maxrss`` is that run's true high-water mark.  The
    interesting number is ``rss_growth_ratio``: with O(1)-memory metrics
    (P-squared sketches, windowed JSONL, WAL truncation) it stays ~1.0;
    any per-transaction retention drags it toward ``large/small``.
    """
    import os
    import subprocess

    def probe(transactions: int) -> dict:
        env = dict(os.environ)
        env["PYTHONPATH"] = (str(REPO_ROOT / "src") + os.pathsep
                             + env.get("PYTHONPATH", ""))
        result = subprocess.run(
            [sys.executable, "-m", "repro.experiments.soak",
             "--transactions", str(transactions)],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT,
            check=True)
        return json.loads(result.stdout)

    small = probe(small_txns)
    large = probe(large_txns)
    return {"small_transactions": small_txns,
            "large_transactions": large_txns,
            "small_maxrss_kb": small["maxrss_kb"],
            "large_maxrss_kb": large["maxrss_kb"],
            "small_committed": small["committed"],
            "large_committed": large["committed"],
            "rss_growth_ratio": large["maxrss_kb"] / small["maxrss_kb"]}


# ----------------------------------------------------------------------
# Sweep scaling benchmark (serial vs warm-pool chunked wall-clock)
# ----------------------------------------------------------------------
def bench_sweep_scaling(transactions: int, mpls: tuple[int, ...],
                        jobs_list: tuple[int, ...]) -> dict:
    """E1 sweep wall-clock at several ``jobs`` values.

    Exercises the warm-pool chunked execution path: for each parallel
    jobs value the pool is pre-warmed with a throwaway one-point sweep
    (matching how a CLI invocation amortizes startup across its
    sweeps), then the grid is timed.  ``speedup_vs_serial`` only means
    much when the machine actually has spare cores -- ``cpus`` is
    recorded alongside so the artifact is honest on 1-core runners.
    """
    import os

    from repro.experiments import get_experiment, shutdown_pool

    definition = get_experiment("E1")
    timings = {}
    for jobs in jobs_list:
        if jobs > 1:
            # Warm the pool outside the timed window, as a long-lived
            # CLI/session would have it warm from earlier sweeps.
            definition.run(measured_transactions=5, mpls=(1,), jobs=jobs)
        start = time.perf_counter()
        definition.run(measured_transactions=transactions, mpls=mpls,
                       jobs=jobs)
        timings[str(jobs)] = time.perf_counter() - start
    shutdown_pool()
    serial = timings.get("1")
    speedups = ({j: serial / t for j, t in timings.items()}
                if serial else {})
    return {"experiment": "E1", "transactions": transactions,
            "mpls": list(mpls), "cpus": os.cpu_count() or 1,
            "wall_s_by_jobs": timings,
            "speedup_vs_serial": speedups,
            "path": "warm-pool chunked"}


# ----------------------------------------------------------------------
def next_bench_number() -> int:
    taken = [int(m.group(1)) for path in REPO_ROOT.glob("BENCH_*.json")
             if (m := re.match(r"BENCH_(\d+)\.json$", path.name))]
    return max(taken, default=0) + 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fast CI gate: tiny sizes, enforce perf "
                             "floors, no artifact by default")
    parser.add_argument("--pr", type=int, default=None,
                        help="PR number for BENCH_<n>.json "
                             "(default: next free number)")
    parser.add_argument("--output", default=None,
                        help="explicit output path (overrides --pr)")
    parser.add_argument("--jobs", default="1,2,4",
                        help="comma-separated jobs values for the sweep "
                             "scaling benchmark (default 1,2,4)")
    args = parser.parse_args(argv)

    sys.path.insert(0, str(REPO_ROOT / "src"))
    jobs_list = tuple(int(part) for part in args.jobs.split(","))

    if args.smoke:
        sizes = dict(events=5_000, processes=2_000, cycles=1_000,
                     bus_ops=50_000, transactions=60, repeats=1)
        sweep_txns, sweep_mpls = 30, (1, 2)
        soak_small, soak_large = 1_000, 10_000
    else:
        sizes = dict(events=20_000, processes=5_000, cycles=2_000,
                     bus_ops=200_000, transactions=300, repeats=3)
        sweep_txns, sweep_mpls = 120, (1, 2)
        soak_small, soak_large = 10_000, 100_000

    print(f"== kernel micro group ({'smoke' if args.smoke else 'full'}) ==")
    kernel = {
        "event_loop": bench_event_loop(sizes["events"], sizes["repeats"]),
        "process_spawning": bench_process_spawning(sizes["processes"],
                                                   sizes["repeats"]),
        "lock_grant_release": bench_lock_grant_release(sizes["cycles"],
                                                       sizes["repeats"]),
        "bus_overhead": bench_bus_overhead(sizes["bus_ops"],
                                           sizes["repeats"]),
        "end_to_end": bench_end_to_end(sizes["transactions"],
                                       sizes["repeats"]),
        "open_saturation_point": bench_open_saturation_point(
            sizes["transactions"], sizes["repeats"]),
        # Wall-clock ratios need many best-of pairs even in smoke mode:
        # on a busy 1-core runner, 5 interleaved pairs jitter the ratio
        # far more than 15 do (the ceilings above absorb the rest).
        "fault_overhead": bench_fault_overhead(sizes["transactions"], 15),
        "cost_model_overhead": bench_cost_model_overhead(
            sizes["transactions"], 15),
        "partition_overhead": bench_partition_overhead(
            sizes["transactions"], 15),
        "replication_overhead": bench_replication_overhead(
            sizes["transactions"], 15),
        "wan_point": bench_wan_point(sizes["transactions"],
                                     sizes["repeats"]),
    }
    for name, row in kernel.items():
        rate_key = next((k for k in row if k.endswith("_per_sec")), None)
        if rate_key is not None:
            detail = (f"{row[rate_key]:12,.0f} "
                      f"{rate_key.replace('_per_sec', '')}/s")
        else:
            detail = f"{row['overhead_ratio']:12.3f} x plain"
        print(f"  {name:<20} {row['wall_s'] * 1e3:8.1f} ms   {detail}")

    print("== soak memory benchmark (flat-RSS gate) ==")
    soak = bench_soak_memory(soak_small, soak_large)
    print(f"  {soak['small_transactions']:>7,} txns  "
          f"{soak['small_maxrss_kb'] / 1024:8.1f} MiB peak")
    print(f"  {soak['large_transactions']:>7,} txns  "
          f"{soak['large_maxrss_kb'] / 1024:8.1f} MiB peak  "
          f"({soak['rss_growth_ratio']:.2f}x)")

    print("== sweep scaling benchmark (warm-pool chunked path) ==")
    sweep = bench_sweep_scaling(sweep_txns, sweep_mpls, jobs_list)
    for jobs, wall in sweep["wall_s_by_jobs"].items():
        speedup = sweep["speedup_vs_serial"].get(jobs)
        extra = f"  ({speedup:.2f}x vs serial)" if speedup else ""
        print(f"  jobs={jobs:<3} {wall * 1e3:8.1f} ms{extra}")
    print(f"  ({sweep['cpus']} CPU core(s) available)")

    report = {
        "schema": 2,
        "smoke": args.smoke,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "kernel_micro": kernel,
        "soak_memory": soak,
        "sweep_scaling": sweep,
    }

    if args.smoke:
        failures = []
        if kernel["event_loop"]["events_per_sec"] < \
                SMOKE_FLOOR_EVENTS_PER_SEC:
            failures.append(
                f"event loop below floor: "
                f"{kernel['event_loop']['events_per_sec']:,.0f} < "
                f"{SMOKE_FLOOR_EVENTS_PER_SEC:,.0f} events/s")
        if kernel["bus_overhead"]["idle_guards_per_sec"] < \
                SMOKE_FLOOR_BUS_GUARDS_PER_SEC:
            failures.append(
                f"idle-bus guard below floor: "
                f"{kernel['bus_overhead']['idle_guards_per_sec']:,.0f} < "
                f"{SMOKE_FLOOR_BUS_GUARDS_PER_SEC:,.0f} guards/s")
        if kernel["end_to_end"]["txns_per_sec"] < SMOKE_FLOOR_TXNS_PER_SEC:
            failures.append(
                f"end-to-end below floor: "
                f"{kernel['end_to_end']['txns_per_sec']:,.0f} < "
                f"{SMOKE_FLOOR_TXNS_PER_SEC:,.0f} txns/s")
        if kernel["open_saturation_point"]["txns_per_sec"] < \
                SMOKE_FLOOR_OPEN_TXNS_PER_SEC:
            failures.append(
                f"open-mode point below floor: "
                f"{kernel['open_saturation_point']['txns_per_sec']:,.0f} < "
                f"{SMOKE_FLOOR_OPEN_TXNS_PER_SEC:,.0f} txns/s")
        if kernel["fault_overhead"]["overhead_ratio"] > \
                SMOKE_CEIL_FAULT_OVERHEAD:
            failures.append(
                f"inactive fault injector above ceiling: "
                f"{kernel['fault_overhead']['overhead_ratio']:.3f}x > "
                f"{SMOKE_CEIL_FAULT_OVERHEAD}x plain")
        if kernel["cost_model_overhead"]["overhead_ratio"] > \
                SMOKE_CEIL_COST_MODEL_OVERHEAD:
            failures.append(
                f"LanSwitch cost-model indirection above ceiling: "
                f"{kernel['cost_model_overhead']['overhead_ratio']:.3f}x "
                f"> {SMOKE_CEIL_COST_MODEL_OVERHEAD}x plain")
        if kernel["partition_overhead"]["overhead_ratio"] > \
                SMOKE_CEIL_PARTITION_OVERHEAD:
            failures.append(
                f"inactive partition plane above ceiling: "
                f"{kernel['partition_overhead']['overhead_ratio']:.3f}x "
                f"> {SMOKE_CEIL_PARTITION_OVERHEAD}x armed baseline")
        if kernel["replication_overhead"]["overhead_ratio"] > \
                SMOKE_CEIL_REPLICATION_OVERHEAD:
            failures.append(
                f"inactive replication plane above ceiling: "
                f"{kernel['replication_overhead']['overhead_ratio']:.3f}x "
                f"> {SMOKE_CEIL_REPLICATION_OVERHEAD}x plain")
        if kernel["wan_point"]["txns_per_sec"] < \
                SMOKE_FLOOR_WAN_TXNS_PER_SEC:
            failures.append(
                f"WAN point below floor: "
                f"{kernel['wan_point']['txns_per_sec']:,.0f} < "
                f"{SMOKE_FLOOR_WAN_TXNS_PER_SEC:,.0f} txns/s")
        if soak["rss_growth_ratio"] > SMOKE_CEIL_SOAK_RSS_GROWTH:
            failures.append(
                f"soak RSS growth above ceiling: "
                f"{soak['rss_growth_ratio']:.2f}x > "
                f"{SMOKE_CEIL_SOAK_RSS_GROWTH}x for a "
                f"{soak['large_transactions'] // soak['small_transactions']}"
                f"x-longer soak (memory is not flat)")
        speedup_j4 = sweep["speedup_vs_serial"].get("4")
        if sweep["cpus"] >= 4 and speedup_j4 is not None:
            if speedup_j4 < SMOKE_FLOOR_SWEEP_SPEEDUP_J4:
                failures.append(
                    f"warm-pool sweep scaling below floor: "
                    f"{speedup_j4:.2f}x < "
                    f"{SMOKE_FLOOR_SWEEP_SPEEDUP_J4}x at jobs=4 "
                    f"({sweep['cpus']} cpus)")
        elif speedup_j4 is not None:
            print(f"smoke: sweep-scaling floor skipped "
                  f"({sweep['cpus']} cpu(s) < 4; jobs=4 measured "
                  f"{speedup_j4:.2f}x)")
        if failures:
            for failure in failures:
                print(f"SMOKE FAIL: {failure}", file=sys.stderr)
            return 1
        print("smoke floors ok")

    if args.output or not args.smoke:
        number = args.pr if args.pr is not None else next_bench_number()
        path = (pathlib.Path(args.output) if args.output
                else REPO_ROOT / f"BENCH_{number}.json")
        existing = {}
        if path.exists():
            existing = json.loads(path.read_text())
            # Preserve hand-recorded context (e.g. the seed baseline).
            existing.pop("kernel_micro", None)
            existing.pop("sweep", None)
            existing.pop("sweep_scaling", None)
            existing.pop("soak_memory", None)
        existing.update(report)
        path.write_text(json.dumps(existing, indent=2) + "\n")
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
