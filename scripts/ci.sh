#!/usr/bin/env bash
# CI entry point: tier-1 tests, tier-2 (slow sweep) tests, and the
# benchmark smoke gate so kernel perf regressions fail loudly.
#
#   scripts/ci.sh              # everything
#   CI_SKIP_TIER2=1 scripts/ci.sh   # quick loop: tier-1 + bench smoke only
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: fast test suite =="
python -m pytest -x -q -m "not tier2"

echo "== fault smoke: injection subsystem lane =="
python -m pytest -q -m faults

# One cheap region-outage point end-to-end through the CLI: a DC crash
# on a 2x2-DC grid must finish (no hangs in recovery/termination) and
# exit 0 with both protocols committing every transaction.
echo "== region-outage smoke (correlated-failure plane) =="
python -m repro.cli region-outage --protocols 2PC,3PC \
    --outages dc_crash --durations 1500 --transactions 40 --quiet

# One cheap replication point end-to-end through the CLI: quorum
# commit (PAXOS) racing 2PC over replicated pages must finish with
# every transaction carried at both replication factors.
echo "== replication smoke (quorum commit over replicated pages) =="
python -m repro.cli replication --protocols 2PC,PAXOS --factors 1,2 \
    --mttfs 0 --transactions 30 --quiet

if [ "${CI_SKIP_TIER2:-0}" != "1" ]; then
    echo "== tier-2: slow sweep / parallel determinism tests =="
    python -m pytest -q -m tier2
fi

# A killed-then-resumed soak must reproduce the identical windowed
# JSONL stream (checkpoint/restore byte-identity, incl. torn-tail
# recovery).
echo "== soak-resume check (checkpoint byte-identity) =="
python scripts/soak_resume_check.py

# Perf floors: kernel micros, end-to-end txn rate, idle-bus/fault
# overhead ceilings, the LanSwitch cost-model indirection ceiling
# (uniform topology vs the no-topology hot path), the
# inactive-partition-plane ceiling (far-future region plan vs the
# armed-injector baseline), the inactive-replication ceiling
# (factor 1 vs the historical directory) -- all three smoke-gated at
# 1.10x for shared-runner jitter, ~1.00x on the full bench -- plus the
# WAN-point floor, the flat-RSS soak-memory ceiling, and the
# warm-pool sweep-scaling floor (speedup_vs_serial["4"] >= 1.5 --
# auto-skipped on < 4-core runners).
echo "== benchmark smoke (perf floors) =="
python scripts/bench_trajectory.py --smoke

echo "ci.sh: all stages passed"
