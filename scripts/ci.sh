#!/usr/bin/env bash
# CI entry point: tier-1 tests, tier-2 (slow sweep) tests, and the
# benchmark smoke gate so kernel perf regressions fail loudly.
#
#   scripts/ci.sh              # everything
#   CI_SKIP_TIER2=1 scripts/ci.sh   # quick loop: tier-1 + bench smoke only
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: fast test suite =="
python -m pytest -x -q -m "not tier2"

echo "== fault smoke: injection subsystem lane =="
python -m pytest -q -m faults

# One cheap region-outage point end-to-end through the CLI: a DC crash
# on a 2x2-DC grid must finish (no hangs in recovery/termination) and
# exit 0 with both protocols committing every transaction.
echo "== region-outage smoke (correlated-failure plane) =="
python -m repro.cli region-outage --protocols 2PC,3PC \
    --outages dc_crash --durations 1500 --transactions 40 --quiet

if [ "${CI_SKIP_TIER2:-0}" != "1" ]; then
    echo "== tier-2: slow sweep / parallel determinism tests =="
    python -m pytest -q -m tier2
fi

# A killed-then-resumed soak must reproduce the identical windowed
# JSONL stream (checkpoint/restore byte-identity, incl. torn-tail
# recovery).
echo "== soak-resume check (checkpoint byte-identity) =="
python scripts/soak_resume_check.py

# Perf floors: kernel micros, end-to-end txn rate, idle-bus/fault
# overhead ceilings, the LanSwitch cost-model indirection ceiling
# (uniform topology <= 1.02x of the no-topology hot path), the
# inactive-partition-plane ceiling (far-future region plan <= 1.02x
# of the armed-injector baseline) plus the
# WAN-point floor, the flat-RSS soak-memory ceiling, and the
# warm-pool sweep-scaling floor (speedup_vs_serial["4"] >= 1.5 --
# auto-skipped on < 4-core runners).
echo "== benchmark smoke (perf floors) =="
python scripts/bench_trajectory.py --smoke

echo "ci.sh: all stages passed"
