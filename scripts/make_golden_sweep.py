#!/usr/bin/env python
"""Regenerate the golden sweep fixture used by tests/test_equivalence.py.

Runs the canonical :class:`MplSweep` grids (a fast tier-1 subset and the
full every-protocol tier-2 grid) and records every
:class:`SimulationResult` field as JSON.  The fixture pins the simulated
trajectory bit-for-bit: any refactor that perturbs event order, metric
accounting, or seeding shows up as a diff.

Usage::

    PYTHONPATH=src python scripts/make_golden_sweep.py

Only rerun this when a change is *meant* to alter simulation results;
commit the regenerated fixture together with that change.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

OUTPUT = REPO_ROOT / "tests" / "data" / "golden_sweep.json"

#: (name, protocols, mpls, measured transactions) per grid.
GRIDS = [
    ("tier1", ("2PC", "PA", "PC", "3PC", "OPT"), (1, 2, 4), 60),
    ("tier2", None, (1, 2, 3, 4, 6, 8, 10), 40),  # None = all protocols
]


def run_grid(protocols, mpls, transactions):
    from repro.config import ModelParams
    from repro.experiments.base import MplSweep

    sweep = MplSweep(protocols, lambda mpl: ModelParams(mpl=mpl),
                     mpls=mpls, measured_transactions=transactions)
    results = sweep.run("golden")
    grid = {}
    for (protocol, mpl), point in results.points.items():
        grid[f"{protocol}@{mpl}"] = dataclasses.asdict(point.result)
    return grid


def main() -> int:
    from repro.core import PROTOCOL_NAMES

    fixture = {"_comment": "regenerate with scripts/make_golden_sweep.py"}
    for name, protocols, mpls, transactions in GRIDS:
        if protocols is None:
            protocols = PROTOCOL_NAMES
        print(f"{name}: {len(protocols)} protocols x {len(mpls)} MPLs "
              f"({transactions} txns/point)")
        fixture[name] = {
            "protocols": list(protocols),
            "mpls": list(mpls),
            "transactions": transactions,
            "points": run_grid(protocols, mpls, transactions),
        }
    OUTPUT.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT.write_text(json.dumps(fixture, indent=1, sort_keys=True) + "\n")
    print(f"wrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
