#!/usr/bin/env python
"""CI check: a killed-then-resumed soak reproduces the identical stream.

Runs the same small soak twice: once uninterrupted, once interrupted at
the first checkpoint barrier (with a torn partial line appended to the
output, as a real kill mid-write would leave) and then resumed.  The two
windowed JSONL streams must be byte-identical.

Usage::

    PYTHONPATH=src python scripts/soak_resume_check.py

Exit 0 on byte-identity, 1 with a diff summary otherwise.  Wall-clock is
a few seconds; ``scripts/ci.sh`` runs it as its soak-resume stage.
"""

from __future__ import annotations

import hashlib
import pathlib
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def main() -> int:
    from repro.config import open_system
    from repro.experiments.soak import SoakConfig, SoakRunner

    config = SoakConfig(
        protocol="2PC",
        params=open_system(arrival_rate_tps=10.0, num_sites=2, mpl=4,
                           db_size=600, dist_degree=2, cohort_size=4),
        transactions=600,
        window_ms=5_000.0,
        checkpoint_every=200,
        sample_cap=50)

    with tempfile.TemporaryDirectory(prefix="soak-resume-") as tmp:
        tmp_path = pathlib.Path(tmp)
        full = tmp_path / "full.jsonl"
        SoakRunner(config, full, tmp_path / "full.ckpt").run()

        resumed = tmp_path / "resumed.jsonl"
        ckpt = tmp_path / "resumed.ckpt"
        interrupted = SoakRunner(config, resumed, ckpt).run(
            stop_after_segments=1)
        assert interrupted["interrupted"], "soak was not interrupted"
        # A kill mid-write leaves a torn final line; resume must cope.
        with resumed.open("a", encoding="utf-8") as handle:
            handle.write('{"torn": tr')
        summary = SoakRunner(config, resumed, ckpt).run(resume=True)

        full_bytes = full.read_bytes()
        resumed_bytes = resumed.read_bytes()
        if full_bytes == resumed_bytes:
            print(f"soak-resume check ok: {summary['committed']} commits, "
                  f"{summary['windows']} windows, "
                  f"sha256 {hashlib.sha256(full_bytes).hexdigest()[:16]}")
            return 0
        print("soak-resume check FAILED: resumed stream differs from "
              "the uninterrupted run", file=sys.stderr)
        full_lines = full_bytes.decode().splitlines()
        resumed_lines = resumed_bytes.decode().splitlines()
        print(f"  uninterrupted: {len(full_lines)} lines, "
              f"resumed: {len(resumed_lines)} lines", file=sys.stderr)
        for index, (a, b) in enumerate(zip(full_lines, resumed_lines)):
            if a != b:
                print(f"  first difference at line {index}:",
                      file=sys.stderr)
                print(f"    uninterrupted: {a[:120]}", file=sys.stderr)
                print(f"    resumed:       {b[:120]}", file=sys.stderr)
                break
        return 1


if __name__ == "__main__":
    sys.exit(main())
