"""Admission-control benchmark (extension; paper Section 5 footnote).

"We also emphasize the peak throughput ... since this represents the
maximum attainable performance and by using a suitable admission
control policy (for example, Half-and-Half), the throughput can be
maintained at this level in high-performance systems."

This bench drives the system deep into the thrashing region (MPL 10)
with and without the Half-and-Half controller and checks that the
controller recovers most of the gap to the peak.
"""

import pytest

import repro


@pytest.mark.benchmark(group="admission")
def test_half_and_half_maintains_peak_throughput(benchmark):
    def measure():
        out = {}
        for protocol in ("2PC", "OPT"):
            peak = max(
                repro.simulate(protocol, mpl=mpl,
                               measured_transactions=400).throughput
                for mpl in (2, 3, 4))
            plain = repro.simulate(protocol, mpl=10,
                                   measured_transactions=400)
            controlled = repro.simulate(protocol, mpl=10,
                                        admission_control=True,
                                        measured_transactions=400)
            out[protocol] = (peak, plain.throughput, controlled.throughput)
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    for protocol, (peak, plain, controlled) in results.items():
        print(f"{protocol:>4}: peak {peak:5.1f}/s | MPL 10 plain "
              f"{plain:5.1f}/s | MPL 10 + Half-and-Half "
              f"{controlled:5.1f}/s")
        assert controlled > plain, "load control must help when thrashing"
        recovered = (controlled - plain) / max(peak - plain, 1e-9)
        assert controlled >= 0.8 * peak, (
            f"{protocol}: Half-and-Half should hold throughput near the "
            f"peak (recovered {recovered:.0%} of the gap)")
