"""Figures 4a-4b: non-blocking OPT (OPT-3PC).

Paper claims reproduced here:

- OPT-3PC behaves like 3PC at low MPL (no borrowing opportunity);
- at high MPL OPT-3PC clearly beats 3PC;
- OPT-3PC's peak throughput is comparable to 2PC's under RC+DC
  (Fig 4a) and significantly surpasses it under pure DC (Fig 4b) --
  the "win-win": non-blocking safety plus blocking-protocol
  performance;
- the lending window is longer under 3PC, so OPT-3PC borrows more than
  OPT at equal MPL.
"""

import pytest

from benchmarks.conftest import BENCH_MPLS


@pytest.mark.benchmark(group="fig4")
def test_fig4a_nonblocking_rcdc(figure_runner):
    results = figure_runner("E5-RCDC",
                            metrics=("throughput", "borrow_ratio"),
                            header="Figure 4a: non-blocking OPT, RC+DC")
    peak = {p: results.peak(p)[1] for p in results.protocols}
    low = min(BENCH_MPLS)
    high = max(BENCH_MPLS)
    # Low MPL: OPT-3PC ~ 3PC.
    t3pc = results.point("3PC", low).metric("throughput")
    topt3 = results.point("OPT-3PC", low).metric("throughput")
    assert abs(topt3 - t3pc) / t3pc < 0.12
    # High MPL: OPT-3PC beats 3PC.
    assert (results.point("OPT-3PC", high).metric("throughput")
            >= results.point("3PC", high).metric("throughput"))
    # Peak comparable to 2PC.
    assert peak["OPT-3PC"] >= 0.9 * peak["2PC"]


@pytest.mark.benchmark(group="fig4")
def test_fig4b_nonblocking_pure_dc(figure_runner):
    results = figure_runner("E5-DC",
                            metrics=("throughput", "borrow_ratio"),
                            header="Figure 4b: non-blocking OPT, DC")
    peak = {p: results.peak(p)[1] for p in results.protocols}
    # The win-win: a non-blocking protocol whose peak surpasses 2PC's.
    assert peak["OPT-3PC"] > peak["2PC"], (
        "OPT-3PC must beat the blocking 2PC under sufficient contention")
    assert peak["OPT-3PC"] > peak["3PC"]
    # Longer prepared window -> more borrowing than OPT.
    high = max(BENCH_MPLS)
    assert (results.point("OPT-3PC", high).metric("borrow_ratio")
            > results.point("OPT", high).metric("borrow_ratio"))
