"""Figures 2a-2c: pure data contention (infinite physical resources).

Paper claims reproduced here:

- protocol overhead differences are *markedly* larger than under RC+DC
  because the commit phase occupies a larger share of response time;
- 3PC is significantly worse than 2PC; PC stays close to 2PC;
- OPT's peak throughput is close to DPCC's;
- OPT reaches its peak at a *higher* MPL than 2PC (MPL 5 vs 4 in the
  paper) because lending admits more concurrency per contention level;
- Fig 2b: OPT's block ratio is significantly below the others';
- Fig 2c: borrowing grows almost linearly with MPL.
"""

import pytest

from benchmarks.conftest import BENCH_MPLS


def values(results, protocol, metric="throughput"):
    return [v for _, v in results.series(protocol, metric)]


@pytest.mark.benchmark(group="fig2")
def test_fig2a_pure_data_contention_throughput(figure_runner):
    results = figure_runner(
        "E2", metrics=("throughput", "block_ratio", "borrow_ratio"),
        header="Figure 2a-2c: pure DC")
    peak = {p: results.peak(p)[1] for p in results.protocols}

    # Wider gaps than RC+DC: the baselines beat 2PC by a lot.
    assert peak["DPCC"] >= 1.25 * peak["2PC"]
    assert peak["CENT"] >= peak["2PC"]
    # 3PC clearly below 2PC; PC close to 2PC; PA == 2PC.
    assert peak["3PC"] <= 0.9 * peak["2PC"]
    assert abs(peak["PC"] - peak["2PC"]) / peak["2PC"] < 0.15
    assert abs(peak["PA"] - peak["2PC"]) / peak["2PC"] < 0.10
    # OPT's peak is close to DPCC's and clearly above 2PC's.
    assert peak["OPT"] >= 1.2 * peak["2PC"]
    assert peak["OPT"] >= 0.80 * peak["DPCC"]

    # OPT peaks at a later MPL than 2PC (more admissible concurrency).
    mpl_2pc, _ = results.peak("2PC")
    mpl_opt, _ = results.peak("OPT")
    assert mpl_opt >= mpl_2pc


@pytest.mark.benchmark(group="fig2")
def test_fig2b_block_ratio(figure_runner):
    results = figure_runner("E2", metrics=("block_ratio",),
                            header="Figure 2b: block ratio (DC)")
    mid = BENCH_MPLS[len(BENCH_MPLS) // 2]
    assert (results.point("OPT", mid).metric("block_ratio")
            < results.point("2PC", mid).metric("block_ratio"))
    high = max(BENCH_MPLS)
    assert (results.point("OPT", high).metric("block_ratio")
            < results.point("2PC", high).metric("block_ratio"))


@pytest.mark.benchmark(group="fig2")
def test_fig2c_borrowing_nearly_linear(figure_runner):
    results = figure_runner("E2", metrics=("borrow_ratio",),
                            header="Figure 2c: borrow ratio (DC)")
    series = values(results, "OPT", "borrow_ratio")
    # Monotone non-decreasing trend (allow small jitter).
    rises = sum(1 for a, b in zip(series, series[1:]) if b >= a * 0.9)
    assert rises >= len(series) - 2
    assert series[-1] > series[0]
