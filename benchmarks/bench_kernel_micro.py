"""Microbenchmarks of the simulation substrate itself.

Not a paper artifact: these time the building blocks (event loop, lock
manager, full simulation throughput) so regressions in the substrate are
visible independently of the modeled system's results.
"""

import pytest

import repro
from repro.db.deadlock import WaitForGraph
from repro.db.locks import LockManager, LockMode
from repro.sim import Environment


@pytest.mark.benchmark(group="micro")
def test_micro_event_loop_throughput(benchmark):
    """Schedule and process 10k timeout events."""

    def run():
        env = Environment()

        def ticker(env):
            for _ in range(10_000):
                yield env.timeout(1.0)

        env.process(ticker(env))
        env.run()
        return env.now

    assert benchmark(run) == 10_000.0


@pytest.mark.benchmark(group="micro")
def test_micro_process_spawning(benchmark):
    """Spawn 5k short-lived processes."""

    def run():
        env = Environment()
        done = []

        def worker(env):
            yield env.timeout(1.0)
            done.append(1)

        for _ in range(5_000):
            env.process(worker(env))
        env.run()
        return len(done)

    assert benchmark(run) == 5_000


@pytest.mark.benchmark(group="micro")
def test_micro_lock_grant_release(benchmark):
    """Uncontested acquire/finalize cycles through the lock manager."""
    from tests.db.conftest import FakeCohort

    def run():
        env = Environment()
        wfg = WaitForGraph(on_victim=lambda txn: None)
        lm = LockManager(env, 0, wfg)
        count = 0

        def worker(env):
            nonlocal count
            for i in range(2_000):
                cohort = FakeCohort()
                yield from lm.acquire(cohort, i % 64, LockMode.UPDATE)
                lm.finalize(cohort, committed=True)
                count += 1

        env.process(worker(env))
        env.run()
        return count

    assert benchmark(run) == 2_000


@pytest.mark.benchmark(group="micro")
def test_micro_condition_events(benchmark):
    """AllOf fan-in, including the single-child short-circuit path."""

    def run():
        env = Environment()
        fired = []

        def waiter(env):
            for _ in range(1_000):
                pair = yield env.all_of([env.timeout(1.0, value="a"),
                                         env.timeout(1.0, value="b")])
                solo = yield env.all_of([env.timeout(1.0, value="c")])
                fired.append(len(pair) + len(solo))

        env.process(waiter(env))
        env.run()
        return sum(fired)

    assert benchmark(run) == 3_000


@pytest.mark.benchmark(group="micro")
def test_micro_end_to_end_simulation_rate(benchmark):
    """Simulated transactions per wall second for the default model."""

    def run():
        result = repro.simulate("2PC", measured_transactions=300, mpl=2,
                                warmup_transactions=30)
        return result.committed

    assert benchmark.pedantic(run, rounds=1, iterations=1) >= 300
