"""Figures 5a-5b: surprise aborts (cohorts randomly vote NO).

Paper claims reproduced here:

- OPT's peak throughput stays comparable to 2PC's up to ~15%
  transaction aborts; only at ~27% does it fall off appreciably;
- PA improves on 2PC only marginally when the system is not
  CPU-bound, despite being designed for aborts;
- OPT-PA inherits PA's abort-path savings;
- the crossover: at high MPL, *higher* abort probabilities can perform
  better than lower ones, because the restart delay acts as crude load
  control (Section 5.7).
"""

import pytest

from benchmarks.conftest import BENCH_MPLS, run_experiment


def _peaks(results):
    return {p: results.peak(p)[1] for p in results.protocols}


@pytest.mark.benchmark(group="fig5")
def test_fig5a_surprise_aborts_rcdc(figure_runner):
    res3 = figure_runner("E6-RCDC-3",
                         metrics=("throughput", "abort_ratio"),
                         header="Figure 5a: ~3% aborts, RC+DC")
    res15 = run_experiment("E6-RCDC-15")
    res27 = run_experiment("E6-RCDC-27")
    for level, results in (("15%", res15), ("27%", res27)):
        print(f"---- {level} transaction aborts ----")
        print(results.table("throughput"))

    # OPT robust through 15% aborts.
    for results in (res3, res15):
        peak = _peaks(results)
        assert peak["OPT"] >= 0.9 * peak["2PC"], (
            "OPT must stay comparable to 2PC at this abort level")
    # PA only marginally better than 2PC (not CPU-bound here).
    peak27 = _peaks(res27)
    assert peak27["PA"] <= 1.15 * peak27["2PC"]
    assert peak27["PA"] >= 0.95 * peak27["2PC"]

    # Higher abort levels lose peak throughput.
    assert _peaks(res3)["2PC"] >= peak27["2PC"]


@pytest.mark.benchmark(group="fig5")
def test_fig5b_surprise_aborts_pure_dc(figure_runner):
    res3 = figure_runner("E6-DC-3",
                         metrics=("throughput", "abort_ratio"),
                         header="Figure 5b: ~3% aborts, DC")
    res15 = run_experiment("E6-DC-15")
    res27 = run_experiment("E6-DC-27")
    for level, results in (("15%", res15), ("27%", res27)):
        print(f"---- {level} transaction aborts ----")
        print(results.table("throughput"))

    peak3 = _peaks(res3)
    peak15 = _peaks(res15)
    assert peak15["OPT"] >= 0.85 * peak15["2PC"]
    # Peak throughput decreases with the abort level.
    assert peak3["2PC"] >= _peaks(res27)["2PC"]
    assert peak3["OPT"] >= _peaks(res27)["OPT"]


@pytest.mark.benchmark(group="fig5")
def test_fig5_restart_delay_crossover(benchmark):
    """Section 5.7's crossover: at a high MPL, the high-abort system can
    outperform the low-abort system because aborted transactions sit out
    their restart delay, throttling data contention."""

    def measure():
        import repro
        from repro.config import surprise_aborts
        high_mpl = max(BENCH_MPLS)
        out = {}
        for prob, label in ((0.01, "low"), (0.10, "high")):
            result = repro.simulate(
                "2PC", params=surprise_aborts(prob, mpl=high_mpl),
                measured_transactions=500)
            out[label] = result
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(f"2PC @ MPL {max(BENCH_MPLS)}: "
          f"3% aborts -> {results['low'].throughput:.2f}/s, "
          f"27% aborts -> {results['high'].throughput:.2f}/s")
    # The crossover: high-abort within (or above) the low-abort system's
    # throughput at saturation.  We assert the weaker, robust form: the
    # penalty of 9x more aborts is far smaller at saturation than the
    # nominal abort rate would suggest.
    assert results["high"].throughput >= 0.75 * results["low"].throughput
