"""Figures 3a-3b: higher degree of distribution (DistDegree = 6).

Paper claims reproduced here:

- Fig 3a (RC+DC): the message-heavy workload turns the system
  CPU-bound; the baseline-vs-classical gap widens; for the first time
  PC clearly beats 2PC (its message savings matter when CPU-bound);
  OPT alone gains little (commit-execution ratio shrinks), but OPT-PC
  combines both optimizations and is the best protocol overall;
- Fig 3b (pure DC): the DPCC-vs-2PC gap is very large (paper: DPCC's
  peak is more than twice 2PC's); PC returns to par with 2PC; OPT-PC
  loses its edge over plain OPT (the collecting write lengthens the
  execution phase).
"""

import pytest


@pytest.mark.benchmark(group="fig3")
def test_fig3a_distribution6_rcdc(figure_runner):
    results = figure_runner("E4-RCDC", header="Figure 3a: DistDegree 6, RC+DC")
    peak = {p: results.peak(p)[1] for p in results.protocols}
    # CPU-bound: PC's reduced messages beat 2PC now.
    assert peak["PC"] > peak["2PC"]
    # OPT-PC is the best non-baseline protocol.
    contenders = [p for p in results.protocols if p not in ("CENT", "DPCC")]
    best = max(contenders, key=lambda p: peak[p])
    assert peak["OPT-PC"] >= 0.97 * peak[best], (
        f"OPT-PC should lead; best was {best}")
    # Baselines clearly on top in a CPU-bound system.
    assert peak["DPCC"] >= peak["2PC"]


@pytest.mark.benchmark(group="fig3")
def test_fig3b_distribution6_pure_dc(figure_runner):
    results = figure_runner("E4-DC", header="Figure 3b: DistDegree 6, DC")
    peak = {p: results.peak(p)[1] for p in results.protocols}
    # Very large commit-processing effect.
    assert peak["DPCC"] >= 1.6 * peak["2PC"], (
        "distributed commit should cost most of the throughput here")
    # PC back to par with 2PC without resource contention.
    assert abs(peak["PC"] - peak["2PC"]) / peak["2PC"] < 0.15
    # OPT still clearly better than 2PC.
    assert peak["OPT"] >= 1.2 * peak["2PC"]
    # OPT-PC no better than OPT under pure DC (paper: equal at low MPL,
    # slightly worse at high MPL).
    assert peak["OPT-PC"] <= 1.1 * peak["OPT"]
