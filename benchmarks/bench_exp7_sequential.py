"""Section 5.8: sequential transactions.

Paper claim reproduced here: with sequential cohort execution the
execution phase lengthens while the commit phase stays the same, so the
commit-execution ratio -- and with it both the protocol differences and
OPT's advantage -- shrinks relative to the parallel workload.
"""

import pytest

from benchmarks.conftest import run_experiment


@pytest.mark.benchmark(group="exp7")
def test_exp7_sequential_narrows_protocol_gaps(figure_runner):
    sequential = figure_runner("E7", header="Section 5.8: sequential txns")
    parallel = run_experiment("E1")

    def relative_gap(results, a="DPCC", b="2PC"):
        peak_a = results.peak(a)[1]
        peak_b = results.peak(b)[1]
        return (peak_a - peak_b) / peak_a

    gap_seq = relative_gap(sequential)
    gap_par = relative_gap(parallel)
    # Informational: the commit-processing gap itself is noisy at bench
    # scale (sequential execution also raises lock-holding times, which
    # pushes the other way); the paper's emphasized claim is the next
    # assertion -- OPT's impact shrinks.
    print(f"\nDPCC-vs-2PC relative peak gap: parallel={gap_par:.3f} "
          f"sequential={gap_seq:.3f}")

    # The paper's claim: the commit-execution ratio shrinks, "resulting
    # in OPT having lesser impact on the throughput".
    def opt_gain(results):
        return (results.peak("OPT")[1] - results.peak("2PC")[1]) \
            / results.peak("2PC")[1]

    gain_seq = opt_gain(sequential)
    gain_par = opt_gain(parallel)
    print(f"OPT-vs-2PC peak gain: parallel={gain_par:.3f} "
          f"sequential={gain_seq:.3f}")
    assert gain_seq <= gain_par + 0.02

    # Sanity: response times are longer sequentially (same work, no
    # intra-transaction parallelism).
    seq_resp = sequential.point("2PC", 1).metric("response_time")
    par_resp = parallel.point("2PC", 1).metric("response_time")
    assert seq_resp > par_resp
