"""The 2PC-family taxonomy (extension; paper Section 2.5).

Places every implemented protocol on the message/forced-write plane the
paper's Tables 3-4 span, including the Section 2.5 protocols the paper
names but does not evaluate (Unsolicited Vote, Early Prepare, linear
2PC), and checks the structural relations between them.
"""

import pytest

import repro

#: (execution msgs, forced writes, commit msgs) at DistDegree 3.
EXPECTED = {
    "2PC": (4, 7, 8),
    "PA": (4, 7, 8),
    "PC": (4, 5, 6),
    "3PC": (4, 11, 12),
    "OPT": (4, 7, 8),
    "OPT-PA": (4, 7, 8),
    "OPT-PC": (4, 5, 6),
    "OPT-3PC": (4, 11, 12),
    "UV": (2, 7, 6),
    "EP": (2, 5, 4),
    "LIN-2PC": (4, 5, 4),
    "OPT-LIN": (4, 5, 4),
    "DPCC": (4, 1, 0),
    "CENT": (0, 1, 0),
}


@pytest.mark.benchmark(group="family")
def test_protocol_family_overheads(benchmark):
    def measure():
        out = {}
        for protocol in EXPECTED:
            result = repro.simulate(protocol, mpl=1, db_size=48000,
                                    measured_transactions=50,
                                    warmup_transactions=10)
            assert result.aborted == 0
            out[protocol] = result.overheads.rounded()
        return out

    measured = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(f"{'protocol':>9} {'exec':>5} {'forced':>7} {'commit':>7} "
          f"{'total msgs':>11}")
    for protocol, row in measured.items():
        print(f"{protocol:>9} {row[0]:>5.0f} {row[1]:>7.0f} "
              f"{row[2]:>7.0f} {row[0] + row[2]:>11.0f}")
    for protocol, expected in EXPECTED.items():
        assert measured[protocol] == expected, protocol

    def messages(name):
        return EXPECTED[name][0] + EXPECTED[name][2]

    def forced(name):
        return EXPECTED[name][1]

    # Structural relations across the family:
    # EP is message-minimal among the real commit protocols (the
    # baselines fake a free commit phase and do not count).
    assert all(messages("EP") <= messages(p) for p in EXPECTED
               if p not in ("CENT", "DPCC"))
    # UV saves exactly one message round over 2PC at each remote cohort
    # x2 (PREPARE out, votes merged into completion reports).
    assert messages("2PC") - messages("UV") == 4
    # The chain halves 2PC's commit messages.
    assert EXPECTED["LIN-2PC"][2] == EXPECTED["2PC"][2] // 2
    # 3PC pays one extra forced write per participant (master + D).
    assert forced("3PC") - forced("2PC") == 4
    # Lending never costs messages or log writes.
    for base, opt in (("2PC", "OPT"), ("PA", "OPT-PA"), ("PC", "OPT-PC"),
                      ("3PC", "OPT-3PC"), ("LIN-2PC", "OPT-LIN")):
        assert EXPECTED[base] == EXPECTED[opt]


@pytest.mark.benchmark(group="family")
def test_family_throughput_under_contention(benchmark):
    """Under the baseline contended workload, no variant may hang, and
    the lending variants must dominate their bases."""

    def measure():
        return {protocol: repro.simulate(protocol, mpl=6,
                                         measured_transactions=300)
                for protocol in ("2PC", "UV", "EP", "LIN-2PC",
                                 "OPT", "OPT-LIN")}

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    for protocol, result in results.items():
        print(result.summary())
    # Short-run tolerance: at bench scale the series carry a few
    # percent of noise; lending must not *hurt* beyond that.
    assert (results["OPT"].throughput
            >= 0.92 * results["2PC"].throughput)
    assert (results["OPT-LIN"].throughput
            >= 0.92 * results["LIN-2PC"].throughput)
