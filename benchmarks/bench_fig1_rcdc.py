"""Figures 1a-1c: throughput, block ratio, borrow ratio under RC+DC.

Paper claims reproduced here:

- throughput first rises with MPL, then falls (thrashing);
- CENT is best and DPCC is close to CENT;
- the classical protocols (2PC/PA/PC/3PC) sit clearly below the
  baselines -- distributed *commit* costs more than distributed *data*
  processing;
- PA and PC perform essentially like 2PC at DistDegree 3; 3PC is worst;
- OPT matches 2PC at low MPL and approaches DPCC at high MPL;
- OPT's block ratio is below 2PC's at equal MPL (Fig 1b);
- borrowing grows with MPL (Fig 1c).
"""

import pytest

from benchmarks.conftest import BENCH_MPLS


def series_values(results, protocol, metric="throughput"):
    return [v for _, v in results.series(protocol, metric)]


@pytest.mark.benchmark(group="fig1")
def test_fig1_resource_and_data_contention(figure_runner):
    results = figure_runner(
        "E1", metrics=("throughput", "block_ratio", "borrow_ratio"),
        header="Figure 1a-1c: RC+DC")

    peak = {p: results.peak(p)[1] for p in results.protocols}

    # Baselines on top; commit processing dominates data processing.
    assert peak["CENT"] >= peak["2PC"]
    assert peak["DPCC"] >= 0.85 * peak["CENT"], "DPCC tracks CENT closely"
    commit_cost = peak["DPCC"] - peak["2PC"]
    data_cost = peak["CENT"] - peak["DPCC"]
    assert commit_cost >= 0, "distributed commit must cost throughput"

    # Classical protocol ordering.
    assert peak["3PC"] <= peak["2PC"], "3PC pays for non-blocking"
    assert abs(peak["PA"] - peak["2PC"]) / peak["2PC"] < 0.10
    assert abs(peak["PC"] - peak["2PC"]) / peak["2PC"] < 0.15

    # OPT: >= 2PC everywhere, near DPCC at the high-contention end.
    thr_opt = series_values(results, "OPT")
    thr_2pc = series_values(results, "2PC")
    assert all(o >= 0.9 * t for o, t in zip(thr_opt, thr_2pc))
    high = BENCH_MPLS.index(max(BENCH_MPLS))
    thr_dpcc = series_values(results, "DPCC")
    assert thr_opt[high] >= 0.85 * thr_dpcc[high]

    # Thrashing: the curve does not increase monotonically to MPL 10.
    assert peak["2PC"] > thr_2pc[high] * 1.02 or peak["2PC"] > thr_2pc[-1]


@pytest.mark.benchmark(group="fig1")
def test_fig1b_opt_blocks_less(figure_runner):
    results = figure_runner("E1", metrics=("block_ratio",),
                            header="Figure 1b: block ratio")
    high_mpl = max(BENCH_MPLS)
    block_2pc = results.point("2PC", high_mpl).metric("block_ratio")
    block_opt = results.point("OPT", high_mpl).metric("block_ratio")
    assert block_opt < block_2pc, (
        "prepared-data lending must reduce blocking")
    # Block ratio rises with MPL for 2PC.
    series = series_values(results, "2PC", "block_ratio")
    assert series[-1] > series[0]


@pytest.mark.benchmark(group="fig1")
def test_fig1c_borrowing_grows_with_mpl(figure_runner):
    results = figure_runner("E1", metrics=("borrow_ratio",),
                            header="Figure 1c: borrow ratio")
    series = series_values(results, "OPT", "borrow_ratio")
    assert series[0] < 0.6, "little borrowing opportunity at MPL 1"
    assert series[-1] > series[0], "borrowing increases with contention"
    assert max(series) > 0.5, "borrowing is substantial at high MPL"
    # Non-lending protocols never borrow.
    for protocol in ("2PC", "PA", "PC", "3PC", "CENT", "DPCC"):
        assert all(v == 0 for v in series_values(results, protocol,
                                                 "borrow_ratio"))
