"""Shared benchmark harness.

Every benchmark regenerates one paper artifact (a table or a figure's
series), prints it, and asserts the paper's qualitative claims (who
wins, by roughly what factor, where the peaks fall).  Absolute numbers
differ from the paper's testbed; the *shape* is the reproduction target.

Run sizes are laptop-scale by default; set ``REPRO_BENCH_TXNS`` (e.g. to
5000) and ``REPRO_BENCH_MPLS`` (e.g. ``1,2,3,4,5,6,7,8,9,10``) for
paper-scale fidelity.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.tables import render_comparison
from repro.experiments import get_experiment
from repro.experiments.base import ExperimentResults

#: measured transactions per sweep point.
BENCH_TXNS = int(os.environ.get("REPRO_BENCH_TXNS", "500"))
#: MPL grid for the figures.
BENCH_MPLS = tuple(
    int(part) for part in
    os.environ.get("REPRO_BENCH_MPLS", "1,2,3,4,6,8,10").split(","))

_cache: dict[str, ExperimentResults] = {}


def run_experiment(experiment_id: str) -> ExperimentResults:
    """Run (once per session) and cache an experiment's sweep."""
    key = experiment_id.upper()
    if key not in _cache:
        definition = get_experiment(key)
        _cache[key] = definition.run(measured_transactions=BENCH_TXNS,
                                     mpls=BENCH_MPLS)
    return _cache[key]


def print_figure(results: ExperimentResults, metrics: tuple[str, ...],
                 header: str) -> None:
    """Emit the regenerated series (visible with ``pytest -s`` and in
    captured output on failure)."""
    print()
    print(f"==== {header} ====")
    for metric in metrics:
        print(results.table(metric))
    print(render_comparison(results))


@pytest.fixture
def figure_runner(benchmark):
    """Benchmark wrapper: time the sweep once, return its results."""
    def run(experiment_id: str, metrics=("throughput",), header=None):
        results = benchmark.pedantic(
            run_experiment, args=(experiment_id,), rounds=1, iterations=1)
        print_figure(results, metrics, header or experiment_id)
        return results
    return run
