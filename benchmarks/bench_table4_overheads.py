"""Table 4: protocol overheads at DistDegree = 6 (CohortSize = 3)."""

import pytest

from repro.experiments.overheads import build_table, render_table

PAPER_TABLE4 = {
    "2PC": (10, 13, 20),
    "PA": (10, 13, 20),
    "PC": (10, 8, 15),
    "3PC": (10, 20, 30),
    "DPCC": (10, 1, 0),
    "CENT": (0, 1, 0),
}


@pytest.mark.benchmark(group="table4")
def test_table4_protocol_overheads(benchmark):
    rows = benchmark.pedantic(
        build_table, args=(6, 3), kwargs={"transactions": 50},
        rounds=1, iterations=1)
    print()
    print(render_table(6, 3, transactions=50))
    for expected, measured in rows:
        paper_row = PAPER_TABLE4[measured.protocol]
        assert measured.as_tuple() == paper_row
        assert expected.as_tuple() == paper_row


@pytest.mark.benchmark(group="table4")
def test_overheads_scale_linearly_with_remote_cohorts(benchmark):
    """Between Tables 3 and 4 message counts scale with DistDegree - 1
    and forced writes with DistDegree -- a structural sanity check on
    the protocol implementations."""
    from repro.experiments.overheads import expected_overheads

    def check():
        for protocol in ("2PC", "PC", "3PC"):
            t3 = expected_overheads(protocol, 3)
            t4 = expected_overheads(protocol, 6)
            # remote cohorts: 2 -> 5.
            assert t4.execution_messages * 2 == t3.execution_messages * 5
            assert t4.commit_messages * 2 == t3.commit_messages * 5
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)
