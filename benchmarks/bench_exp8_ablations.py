"""Section 5.8 ablations: update probability and database size.

Paper claim reproduced here: "the performance improvement delivered by
OPT [is] dependent on the level of data contention in the system."
Lower update probability (fewer exclusive locks) shrinks OPT's edge;
a smaller database (more conflicts) grows it.

Also includes the group-commit ablation (a Section 3.2 optimization the
paper lists but does not plot): batching forced writes at the log disk.
"""

import pytest

import repro
from benchmarks.conftest import run_experiment


def opt_gain(results):
    return (results.peak("OPT")[1] - results.peak("2PC")[1]) \
        / results.peak("2PC")[1]


@pytest.mark.benchmark(group="exp8")
def test_exp8_update_probability_ablation(figure_runner):
    half = figure_runner("E8-UP50",
                         metrics=("throughput", "borrow_ratio"),
                         header="Section 5.8: UpdateProb = 0.5")
    full = run_experiment("E1")
    gain_half = opt_gain(half)
    gain_full = opt_gain(full)
    print(f"\nOPT peak gain over 2PC: update_prob=1.0 -> {gain_full:.3f}, "
          f"update_prob=0.5 -> {gain_half:.3f}")
    assert gain_half <= gain_full + 0.03, (
        "less data contention must shrink OPT's advantage")


@pytest.mark.benchmark(group="exp8")
def test_exp8_small_database_ablation(figure_runner):
    small = figure_runner("E8-SMALLDB",
                          metrics=("throughput", "borrow_ratio"),
                          header="Section 5.8: DBSize = 1200")
    baseline = run_experiment("E1")
    gain_small = opt_gain(small)
    gain_base = opt_gain(baseline)
    print(f"\nOPT peak gain over 2PC: db=4800 -> {gain_base:.3f}, "
          f"db=1200 -> {gain_small:.3f}")
    assert gain_small >= gain_base - 0.03, (
        "more data contention must grow (or preserve) OPT's advantage")
    # More borrowing on the smaller database at equal MPL.
    high = max(small.mpls)
    assert (small.point("OPT", high).metric("borrow_ratio")
            >= baseline.point("OPT", high).metric("borrow_ratio"))


@pytest.mark.benchmark(group="exp8")
def test_exp8_group_commit_ablation(benchmark):
    """Group commit (Section 3.2 list): batching forced writes reduces
    log-disk work.  OPT composes with it -- the paper calls this pair
    especially attractive since group commit lengthens the prepared
    window."""

    def measure():
        out = {}
        for group_commit in (False, True):
            system = repro.build_system("OPT", mpl=8)
            for site in system.sites:
                site.log_manager.group_commit = group_commit
            out[group_commit] = system.run(measured_transactions=400)
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    plain = results[False]
    grouped = results[True]
    print(f"\nOPT @ MPL 8: plain {plain.throughput:.2f}/s, "
          f"group commit {grouped.throughput:.2f}/s")
    # Batching must not hurt materially, and the log manager must have
    # actually batched some writes.
    assert grouped.throughput >= 0.9 * plain.throughput
