"""Experiment 3 (prose): a five-times-faster network (MsgCPU = 1ms).

Paper claims reproduced here:

- all protocols move closer to CENT than with the slow interface;
- DPCC and CENT become virtually indistinguishable;
- under pure DC the forced-write overheads still separate DPCC from
  2PC, and 2PC from 3PC;
- OPT's peak remains close to DPCC's in both scenarios: fast messages
  do not remove the data-contention bottleneck.
"""

import pytest

from benchmarks.conftest import run_experiment


@pytest.mark.benchmark(group="exp3")
def test_exp3_fast_network_rcdc(figure_runner):
    results = figure_runner("E3-RCDC", header="Expt 3: fast network, RC+DC")
    peak = {p: results.peak(p)[1] for p in results.protocols}
    # DPCC ~ CENT.
    assert abs(peak["DPCC"] - peak["CENT"]) / peak["CENT"] < 0.10
    # Everything within a tighter band of CENT than the slow network.
    slow = run_experiment("E1")
    slow_peak = {p: slow.peak(p)[1] for p in slow.protocols}
    gap_fast = (peak["CENT"] - peak["2PC"]) / peak["CENT"]
    gap_slow = (slow_peak["CENT"] - slow_peak["2PC"]) / slow_peak["CENT"]
    assert gap_fast <= gap_slow + 0.03
    assert peak["OPT"] >= 0.85 * peak["DPCC"]


@pytest.mark.benchmark(group="exp3")
def test_exp3_fast_network_pure_dc(figure_runner):
    results = figure_runner("E3-DC", header="Expt 3: fast network, pure DC")
    peak = {p: results.peak(p)[1] for p in results.protocols}
    # Forced writes still hurt: DPCC > 2PC > 3PC remains visible.
    assert peak["DPCC"] >= 1.15 * peak["2PC"]
    assert peak["2PC"] >= 1.05 * peak["3PC"]
    # OPT remains valuable even with a fast network.
    assert peak["OPT"] >= 1.15 * peak["2PC"]
    assert peak["OPT"] >= 0.8 * peak["DPCC"]
