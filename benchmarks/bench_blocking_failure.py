"""Blocking-analysis benchmark (extension; see DESIGN.md section 6).

Injects a master crash between the voting and decision phases and
measures the cohorts' lock-holding time and the system's throughput
during the outage, for each blocking protocol and for 3PC with its
termination protocol.  Quantifies the paper's Section 2.4 argument.
"""

import pytest

from repro.failures import run_crash_scenario

OUTAGE_MS = 15_000.0


@pytest.mark.benchmark(group="blocking")
def test_blocking_vs_nonblocking_under_master_crash(benchmark):
    def run_all():
        return {protocol: run_crash_scenario(
            protocol, crash_duration_ms=OUTAGE_MS,
            measured_transactions=300)
            for protocol in ("2PC", "PA", "PC", "3PC")}

    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    for report in reports.values():
        print(report.summary())

    for protocol in ("2PC", "PA", "PC"):
        assert reports[protocol].unblock_latency_ms >= OUTAGE_MS, (
            f"{protocol} is a blocking protocol: cohorts must hold "
            "locks until recovery")
    assert reports["3PC"].unblock_latency_ms < OUTAGE_MS / 10, (
        "3PC's termination protocol must unblock within the timeout")
    # The outage must visibly hurt blocking protocols' throughput.
    assert (reports["3PC"].outage_throughput
            > 1.5 * reports["2PC"].outage_throughput)
