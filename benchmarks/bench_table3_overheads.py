"""Table 3: protocol overheads at DistDegree = 3.

Regenerates the paper's Table 3 from simulation and asserts that every
measured count equals the analytic (paper) value.
"""

import pytest

from repro.experiments.overheads import (
    TABLE_PROTOCOLS,
    build_table,
    render_table,
)

PAPER_TABLE3 = {
    "2PC": (4, 7, 8),
    "PA": (4, 7, 8),
    "PC": (4, 5, 6),
    "3PC": (4, 11, 12),
    "DPCC": (4, 1, 0),
    "CENT": (0, 1, 0),
}


@pytest.mark.benchmark(group="table3")
def test_table3_protocol_overheads(benchmark):
    rows = benchmark.pedantic(
        build_table, args=(3, 6), kwargs={"transactions": 50},
        rounds=1, iterations=1)
    print()
    print(render_table(3, 6, transactions=50))
    for expected, measured in rows:
        paper_row = PAPER_TABLE3[measured.protocol]
        assert measured.as_tuple() == paper_row, (
            f"{measured.protocol}: measured {measured.as_tuple()} != "
            f"paper {paper_row}")
        assert expected.as_tuple() == paper_row


@pytest.mark.benchmark(group="table3")
def test_table3_opt_variants_cost_no_extra_overheads(benchmark):
    """OPT's lending is free in messages and forced writes (Section 3):
    the OPT rows equal their base protocols' rows."""
    from repro.experiments.overheads import measure_overheads

    def measure_all():
        return {name: measure_overheads(name, 3, 6, transactions=50)
                for name in ("OPT", "OPT-PA", "OPT-PC", "OPT-3PC")}

    rows = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    assert rows["OPT"].as_tuple() == PAPER_TABLE3["2PC"]
    assert rows["OPT-PA"].as_tuple() == PAPER_TABLE3["PA"]
    assert rows["OPT-PC"].as_tuple() == PAPER_TABLE3["PC"]
    assert rows["OPT-3PC"].as_tuple() == PAPER_TABLE3["3PC"]
