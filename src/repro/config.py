"""Simulation model parameters (paper Table 1) and baseline settings.

The dataclass mirrors Table 1 of the paper; the preset constructors mirror
the per-experiment settings of Section 5.  Times are in **milliseconds**.

Paper Table 2 (baseline values) is garbled in the available scan; values
are reconstructed from the paper's prose and the authors' companion
simulator (see DESIGN.md section 3 for the provenance of each value).
"""

from __future__ import annotations

import dataclasses
import enum
import math
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.pages import ReplicationSpec
    from repro.db.topology import NetworkTopology
    from repro.db.workload import AccessSkew, RateCurve


class WorkloadMode(enum.Enum):
    """How transactions enter the system."""

    #: The paper's closed queueing model: a fixed multiprogramming level
    #: of ``mpl`` transactions per site, each slot refilled on commit.
    CLOSED = "closed"
    #: Open system: per-site Poisson arrivals at ``arrival_rate_tps``,
    #: a bounded admission queue (``admission_queue_limit``) shedding
    #: load when full, and at most ``mpl`` concurrently executing
    #: transactions per site.
    OPEN = "open"


class TransactionType(enum.Enum):
    """How a transaction's cohorts execute (paper Section 4.1)."""

    #: Cohorts are started together and execute independently.
    PARALLEL = "parallel"
    #: Cohorts execute one after another.
    SEQUENTIAL = "sequential"


class Topology(enum.Enum):
    """Placement of data and processing."""

    #: Normal distributed system: pages striped across ``num_sites``.
    DISTRIBUTED = "distributed"
    #: CENT baseline: one site holding all data, with the aggregate
    #: physical resources of the distributed configuration, and the
    #: aggregate multiprogramming level.  The cohort structure of
    #: transactions is retained so that exactly the *distribution* effect
    #: is removed (paper Section 5.1).
    CENTRALIZED = "centralized"


@dataclasses.dataclass
class ModelParams:
    """All knobs of the closed queueing model (paper Table 1).

    Defaults are the baseline settings of Experiment 1 (resource plus
    data contention, "RC+DC").
    """

    # ----- workload ---------------------------------------------------
    num_sites: int = 8
    #: Table 2 is unreadable in the available scan; 2400 (the value in
    #: the authors' companion RTSS'96 simulator) thrashes earlier than
    #: the paper's figures, so the default is calibrated to 4800, which
    #: puts the peak-throughput MPL at 3-4 under both RC+DC and pure DC,
    #: where Figures 1a/2a have it.  See DESIGN.md section 3.
    db_size: int = 4800
    mpl: int = 8                       # transactions per site
    trans_type: TransactionType = TransactionType.PARALLEL
    dist_degree: int = 3               # number of cohorts
    cohort_size: int = 6               # average pages per cohort
    update_prob: float = 1.0

    # ----- physical resources ------------------------------------------
    num_cpus: int = 1
    num_data_disks: int = 2
    num_log_disks: int = 1
    page_cpu_ms: float = 5.0
    page_disk_ms: float = 20.0
    msg_cpu_ms: float = 5.0

    #: Experiment 2: make CPUs and disks infinite (pure data contention).
    infinite_resources: bool = False

    # ----- scenario ----------------------------------------------------
    topology: Topology = Topology.DISTRIBUTED

    #: network placement and wire costs (extension; see docs/MODEL.md).
    #: None keeps the paper's zero-latency switch on the historical hot
    #: path; the ``uniform`` spec is byte-identical but routes through
    #: the pluggable :class:`repro.db.topology.LanSwitch` cost model;
    #: ``dcs:``/``matrix:`` specs pay per-link wire latency/jitter/loss.
    network_topology: "NetworkTopology | None" = None
    #: workload placement: pick cohort sites from the master's own
    #: datacenter first (requires a multi-DC ``network_topology``).
    prefer_local_cohorts: bool = False

    #: Probability that a cohort "surprise"-votes NO on PREPARE
    #: (Experiment 6).  0.01/0.05/0.10 give transaction abort
    #: probabilities of roughly 3%/15%/27% at dist_degree=3.
    surprise_abort_prob: float = 0.0

    #: Enable the read-only one-phase optimization (paper Section 3.2,
    #: "Read-Only").  Only observable when update_prob < 1.
    read_only_optimization: bool = False

    #: Enable Half-and-Half admission control (paper Section 5 cites it
    #: as the way peak throughput "can be maintained" past the thrashing
    #: MPL).  See :mod:`repro.admission`.
    admission_control: bool = False
    #: blocked-transaction fraction at which admissions stop.
    admission_blocked_limit: float = 0.5

    #: Batch forced log writes at the log disks (paper Section 3.2,
    #: "Group Commit").
    group_commit: bool = False

    # ----- open-system workload (extension; see docs/MODEL.md) ---------
    #: CLOSED keeps the paper's fixed-MPL model byte-identical; OPEN
    #: turns ``mpl`` into a per-site concurrency cap fed by arrivals.
    workload_mode: WorkloadMode = WorkloadMode.CLOSED
    #: mean Poisson arrival rate per site, transactions/second (OPEN).
    arrival_rate_tps: float = 0.0
    #: per-site admission queue bound; arrivals beyond it are shed (OPEN).
    admission_queue_limit: int = 64
    #: page-access skew (None = the paper's uniform model).  An
    #: :class:`repro.db.workload.AccessSkew`; applies in both modes.
    skew: "AccessSkew | None" = None
    #: time-varying multiplier on ``arrival_rate_tps`` (OPEN only;
    #: None = homogeneous Poisson).  A :class:`repro.db.workload.RateCurve`.
    rate_curve: "RateCurve | None" = None

    #: page replication (extension; see docs/MODEL.md).  None or R=1
    #: keeps the paper's strictly partitioned placement byte-identical
    #: on the historical hot path; R>1 gives every page an R-site
    #: replica set (read-one-local / write-all-available).  A
    #: :class:`repro.db.pages.ReplicationSpec`.
    replication: "ReplicationSpec | None" = None

    # ----- run control --------------------------------------------------
    seed: int = 20250705

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise ``ValueError`` on any inconsistent setting."""
        if self.num_sites < 1:
            raise ValueError("num_sites must be >= 1")
        if self.db_size < self.num_sites:
            raise ValueError("db_size must be >= num_sites")
        if self.mpl < 1:
            raise ValueError("mpl must be >= 1")
        if not 1 <= self.dist_degree <= self.num_sites:
            raise ValueError(
                f"dist_degree must be in [1, num_sites={self.num_sites}] "
                f"(one cohort per distinct site), got {self.dist_degree}")
        if self.cohort_size < 1:
            raise ValueError("cohort_size must be >= 1")
        if not 0.0 <= self.update_prob <= 1.0:
            raise ValueError("update_prob must be in [0, 1]")
        if not 0.0 <= self.surprise_abort_prob <= 1.0:
            raise ValueError("surprise_abort_prob must be in [0, 1]")
        if self.num_cpus < 1 or self.num_data_disks < 1 or self.num_log_disks < 1:
            raise ValueError("resource counts must be >= 1")
        if self.page_cpu_ms < 0 or self.page_disk_ms < 0 or self.msg_cpu_ms < 0:
            raise ValueError("service times must be >= 0")
        if not 0.0 < self.admission_blocked_limit <= 1.0:
            raise ValueError("admission_blocked_limit must be in (0, 1]")
        max_cohort_pages = self.max_cohort_pages
        if self.pages_per_site < max_cohort_pages:
            raise ValueError(
                f"a site must hold at least the largest cohort access set "
                f"(1.5 x cohort_size = {max_cohort_pages} pages), but "
                f"db_size={self.db_size} over num_sites={self.num_sites} "
                f"leaves only {self.pages_per_site} pages per site")
        if self.arrival_rate_tps < 0:
            raise ValueError(
                f"arrival_rate_tps must be >= 0, got {self.arrival_rate_tps}")
        if self.workload_mode is WorkloadMode.OPEN \
                and self.arrival_rate_tps <= 0:
            raise ValueError(
                "the open workload mode needs arrival_rate_tps > 0 "
                "(per-site Poisson arrival rate in transactions/second)")
        if self.admission_queue_limit < 1:
            raise ValueError(
                f"admission_queue_limit must be >= 1, got "
                f"{self.admission_queue_limit}")
        if self.network_topology is not None:
            self.network_topology.validate()
            self.network_topology.check_num_sites(self.num_sites)
            if not self.network_topology.is_uniform \
                    and self.topology is Topology.CENTRALIZED:
                raise ValueError(
                    "the CENT baseline runs at a single site; a "
                    "multi-datacenter network_topology does not apply")
        if self.prefer_local_cohorts:
            if self.network_topology is None \
                    or self.network_topology.placement(self.num_sites) \
                    is None:
                raise ValueError(
                    "prefer_local_cohorts needs a multi-datacenter "
                    "network_topology (dcs:... or matrix:...) so that "
                    "'local' has a meaning")
        if self.skew is not None:
            self.skew.validate()
        if self.rate_curve is not None:
            if self.workload_mode is not WorkloadMode.OPEN:
                raise ValueError(
                    "rate_curve only applies to the open workload mode")
            self.rate_curve.validate()
        if self.replication is not None:
            self.replication.validate(self.num_sites)
            if self.replication.is_active \
                    and self.topology is Topology.CENTRALIZED:
                raise ValueError(
                    "the CENT baseline holds all data at a single site; "
                    "page replication does not apply")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def pages_per_site(self) -> int:
        """Pages stored at each site (uniform striping)."""
        return self.db_size // self.num_sites

    @property
    def min_cohort_pages(self) -> int:
        """Smallest cohort access-set size (0.5 x CohortSize)."""
        return max(1, math.ceil(0.5 * self.cohort_size))

    @property
    def max_cohort_pages(self) -> int:
        """Largest cohort access-set size (1.5 x CohortSize)."""
        return max(1, math.floor(1.5 * self.cohort_size))

    @property
    def mean_transaction_pages(self) -> float:
        """Expected total pages accessed by one transaction."""
        return self.dist_degree * self.cohort_size

    def initial_response_time_estimate(self) -> float:
        """A crude prior for the restart-delay heuristic.

        Before any transaction has committed there is no measured mean
        response time; use the no-contention service demand instead.
        """
        per_page = self.page_cpu_ms + self.page_disk_ms
        if self.trans_type is TransactionType.PARALLEL:
            execution = self.cohort_size * per_page
        else:
            execution = self.mean_transaction_pages * per_page
        commit = 3 * self.page_disk_ms + 4 * self.msg_cpu_ms
        return execution + commit

    def replace(self, **changes: object) -> "ModelParams":
        """A copy with the given fields changed (validates the result)."""
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Presets matching the paper's experiments (Section 5)
# ----------------------------------------------------------------------

def baseline_rc_dc(**overrides: object) -> ModelParams:
    """Experiment 1: significant resource *and* data contention."""
    return ModelParams(**overrides)  # type: ignore[arg-type]


def pure_data_contention(**overrides: object) -> ModelParams:
    """Experiment 2: infinite physical resources, contention on data only."""
    params = {"infinite_resources": True}
    params.update(overrides)
    return ModelParams(**params)  # type: ignore[arg-type]


def fast_network(pure_dc: bool = False, **overrides: object) -> ModelParams:
    """Experiment 3: five-times-faster network interface (MsgCPU = 1ms)."""
    params: dict[str, object] = {"msg_cpu_ms": 1.0}
    if pure_dc:
        params["infinite_resources"] = True
    params.update(overrides)
    return ModelParams(**params)  # type: ignore[arg-type]


def high_distribution(pure_dc: bool = False, **overrides: object) -> ModelParams:
    """Experiment 4: DistDegree = 6 with CohortSize = 3.

    The cohort size is reduced so the average transaction length matches
    the baseline (6 x 3 = 3 x 6 = 18 pages).
    """
    params: dict[str, object] = {"dist_degree": 6, "cohort_size": 3}
    if pure_dc:
        params["infinite_resources"] = True
    params.update(overrides)
    return ModelParams(**params)  # type: ignore[arg-type]


def surprise_aborts(cohort_abort_prob: float, pure_dc: bool = False,
                    **overrides: object) -> ModelParams:
    """Experiment 6: cohorts vote NO with the given probability."""
    params: dict[str, object] = {"surprise_abort_prob": cohort_abort_prob}
    if pure_dc:
        params["infinite_resources"] = True
    params.update(overrides)
    return ModelParams(**params)  # type: ignore[arg-type]


def sequential_transactions(**overrides: object) -> ModelParams:
    """Section 5.8: sequential (rather than parallel) cohort execution."""
    params: dict[str, object] = {"trans_type": TransactionType.SEQUENTIAL}
    params.update(overrides)
    return ModelParams(**params)  # type: ignore[arg-type]


#: Per-site arrival rate used when the CLI enables ``--open`` without an
#: explicit ``--arrival-rate`` (a mid-load point under the baseline
#: hardware: each site sustains ~1.6 committed txns/s at mpl=8, so 1.0
#: offered txns/s/site is roughly 60% utilization).
DEFAULT_OPEN_ARRIVAL_TPS = 1.0


def open_system(arrival_rate_tps: float = DEFAULT_OPEN_ARRIVAL_TPS,
                skew: "AccessSkew | None" = None,
                admission_queue_limit: int = 64,
                rate_curve: "RateCurve | None" = None,
                **overrides: object) -> ModelParams:
    """Open-system extension: Poisson arrivals + bounded admission queue.

    ``mpl`` becomes the per-site concurrency cap (service parallelism)
    rather than a fixed population; ``skew`` optionally concentrates
    accesses on hot pages (see :class:`repro.db.workload.AccessSkew`).
    """
    params: dict[str, object] = {
        "workload_mode": WorkloadMode.OPEN,
        "arrival_rate_tps": arrival_rate_tps,
        "admission_queue_limit": admission_queue_limit,
        "skew": skew,
        "rate_curve": rate_curve,
    }
    params.update(overrides)
    return ModelParams(**params)  # type: ignore[arg-type]
