"""Shared experiment machinery: MPL sweeps, replications, series.

The paper's figures plot a metric (throughput, block ratio, borrow
ratio) against the per-site multiprogramming level, one curve per
protocol.  :class:`MplSweep` runs that grid; :class:`ExperimentResults`
holds it and renders the series as text tables.

Replications: the paper uses one long run per point with batch-means
confidence intervals; we support both one long run (default) and
multiple independent replications (``replications > 1``) whose means are
combined with a Student-t interval (:func:`repro.sim.stats.confidence_interval`).
"""

from __future__ import annotations

import dataclasses
import typing

import repro
from repro.config import ModelParams
from repro.db.system import SimulationResult
from repro.experiments.runner import (
    ParallelSweepRunner,
    PointSpec,
    PointSummary,
    point_seed,
)
from repro.sim.stats import StoppingRule, confidence_interval

#: Replication cap in adaptive (``target_ci``) mode when the caller
#: left ``replications`` at its fixed-mode default of 1.
DEFAULT_ADAPTIVE_CAP = 8

#: Builds the parameters for one sweep point.
ParamsFactory = typing.Callable[[int], ModelParams]

#: Extracts a plotted metric from a result.
MetricFn = typing.Callable[[SimulationResult], float]

METRICS: dict[str, MetricFn] = {
    "throughput": lambda r: r.throughput,
    "response_time": lambda r: r.response_time_ms,
    "block_ratio": lambda r: r.block_ratio,
    "borrow_ratio": lambda r: r.borrow_ratio,
    "abort_ratio": lambda r: r.abort_ratio,
}

DEFAULT_MPLS: tuple[int, ...] = (1, 2, 3, 4, 6, 8, 10)


@dataclasses.dataclass
class SweepPoint:
    """One (protocol, mpl) grid point, possibly replicated.

    ``results`` holds full :class:`SimulationResult` objects on the
    default paths, or lean :class:`PointSummary` objects when the sweep
    ran with the compact wire format (adaptive mode, ``lean=True``) --
    both expose the metric attributes :data:`METRICS` reads.
    """

    protocol: str
    mpl: int
    results: list[SimulationResult | PointSummary]

    @property
    def result(self) -> SimulationResult | PointSummary:
        """The first (or only) replication's result."""
        return self.results[0]

    def metric(self, name: str) -> float:
        """Mean of a metric across replications."""
        fn = METRICS[name]
        values = [fn(r) for r in self.results]
        return sum(values) / len(values)

    def metric_interval(self, name: str,
                        confidence: float = 0.90) -> tuple[float, float]:
        """(mean, half-width) across replications."""
        fn = METRICS[name]
        return confidence_interval([fn(r) for r in self.results],
                                   confidence)


@dataclasses.dataclass
class ExperimentResults:
    """All points of one experiment, with rendering helpers."""

    experiment_id: str
    title: str
    points: dict[tuple[str, int], SweepPoint]
    protocols: tuple[str, ...]
    mpls: tuple[int, ...]
    #: simulated work actually executed: the sum of configured measured
    #: transactions over every replication run (adaptive mode stops
    #: early, so this is how much work ``target_ci`` saved).
    total_measured_transactions: int = 0
    #: the CI target the sweep ran under (None = fixed replications).
    target_ci: float | None = None

    def point(self, protocol: str, mpl: int) -> SweepPoint:
        return self.points[(protocol, mpl)]

    def max_rel_half_width(self, metric: str = "throughput",
                           confidence: float = 0.90) -> float:
        """The loosest point's relative CI half-width (inf with < 2
        replications anywhere) -- the quantity ``target_ci`` bounds."""
        worst = 0.0
        for point in self.points.values():
            mean, half = point.metric_interval(metric, confidence)
            if half == 0.0:
                continue
            worst = max(worst,
                        abs(half / mean) if mean else float("inf"))
        return worst

    def series(self, protocol: str, metric: str = "throughput",
               ) -> list[tuple[int, float]]:
        """[(mpl, value), ...] for one curve of a figure."""
        return [(mpl, self.points[(protocol, mpl)].metric(metric))
                for mpl in self.mpls]

    def peak(self, protocol: str, metric: str = "throughput",
             ) -> tuple[int, float]:
        """(mpl, value) of the curve's maximum (peak throughput)."""
        return max(self.series(protocol, metric), key=lambda p: p[1])

    def table(self, metric: str = "throughput",
              precision: int = 2) -> str:
        """Text table: rows are MPLs, one column per protocol."""
        from repro.analysis.tables import render_series_table
        return render_series_table(self, metric, precision)

    def summary(self) -> str:
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append(self.table("throughput"))
        return "\n".join(lines)


class MplSweep:
    """Runs a protocol x MPL grid of simulations."""

    def __init__(self, protocols: typing.Sequence[str],
                 params_factory: ParamsFactory,
                 mpls: typing.Sequence[int] = DEFAULT_MPLS,
                 measured_transactions: int = 1500,
                 warmup_transactions: int | None = None,
                 replications: int = 1,
                 base_seed: int = 20250705) -> None:
        if replications < 1:
            raise ValueError("replications must be >= 1")
        self.protocols = tuple(protocols)
        self.params_factory = params_factory
        self.mpls = tuple(mpls)
        self.measured_transactions = measured_transactions
        self.warmup_transactions = warmup_transactions
        self.replications = replications
        self.base_seed = base_seed

    def run_point(self, protocol: str, mpl: int,
                  on_system: typing.Callable[..., None] | None = None,
                  ) -> SweepPoint:
        """Run all replications of one grid point.

        ``on_system(system, protocol=..., mpl=..., rep=...)`` is invoked
        per replication, before it runs -- the hook for attaching
        observers to the system's event bus.
        """
        params = self.params_factory(mpl)
        results = []
        for rep in range(self.replications):
            results.append(repro.simulate(
                protocol, params=params,
                measured_transactions=self.measured_transactions,
                warmup_transactions=self.warmup_transactions,
                seed=point_seed(self.base_seed, rep),
                on_system=(None if on_system is None else
                           (lambda system, _rep=rep: on_system(
                               system, protocol=protocol, mpl=mpl,
                               rep=_rep)))))
        return SweepPoint(protocol, mpl, results)

    def point_specs(self) -> list[PointSpec]:
        """The whole grid as picklable specs, in (protocol, mpl, rep)
        order -- the exact inputs (seeds included) the serial path uses."""
        specs = []
        for protocol in self.protocols:
            for mpl in self.mpls:
                params = self.params_factory(mpl)
                for rep in range(self.replications):
                    specs.append(PointSpec(
                        protocol=protocol, mpl=mpl, rep=rep, params=params,
                        measured_transactions=self.measured_transactions,
                        warmup_transactions=self.warmup_transactions,
                        seed=point_seed(self.base_seed, rep)))
        return specs

    def run(self, experiment_id: str = "sweep",
            title: str = "",
            progress: typing.Callable[[str], None] | None = None,
            jobs: int = 1,
            events_out: str | None = None,
            target_ci: float | None = None,
            ci_metric: str = "throughput",
            ci_confidence: float = 0.90,
            lean: bool = False,
            ) -> ExperimentResults:
        """Run the whole grid.

        ``jobs=1`` runs in-process (the historical path); ``jobs>1``
        fans the grid out over that many processes of the warm shared
        pool.  Results are identical either way -- each point's seed is
        fixed by ``(base_seed, rep)``, not by execution order -- and
        progress fires as each point *completes* on both paths.

        ``target_ci`` switches to adaptive replication: each point runs
        waves of replications (seeds continue the serial
        ``base_seed + rep * 7919`` scheme) until its ``ci_confidence``
        CI relative half-width on ``ci_metric`` drops to ``target_ci``,
        up to a cap of ``replications`` (or ``DEFAULT_ADAPTIVE_CAP``
        when ``replications`` was left at 1).  Adaptive results ship as
        lean :class:`PointSummary` objects.

        ``lean`` ships compact summaries instead of full results on the
        parallel fixed-rep path too (cheaper IPC for big grids; the
        default keeps full results, which the golden byte-identity
        contract pins).

        ``events_out`` streams every simulation event of every point to
        a JSONL file (one ``{"meta": ...}`` line per point, then its
        events); it requires the serial fixed-replication path
        (``jobs=1``, no ``target_ci``).
        """
        if events_out is not None and jobs != 1:
            raise ValueError("events_out requires jobs=1 (events are "
                             "interleaved per point, in grid order)")
        if target_ci is not None:
            if events_out is not None:
                raise ValueError("events_out requires fixed replications "
                                 "(target_ci changes how many reps run)")
            return self._run_adaptive(experiment_id, title, progress,
                                      jobs, target_ci, ci_metric,
                                      ci_confidence)
        grid_points = (len(self.protocols) * len(self.mpls)
                       * self.replications)
        total_txns = grid_points * self.measured_transactions
        points: dict[tuple[str, int], SweepPoint] = {}
        if jobs == 1:
            exporter = None
            on_system = None
            if events_out is not None:
                from repro.obs.export import JsonlExporter
                exporter = JsonlExporter.open(events_out)

                def on_system(system, protocol, mpl, rep,
                              _exporter=exporter):
                    _exporter.detach()
                    _exporter.meta(experiment=experiment_id,
                                   protocol=protocol, mpl=mpl, rep=rep,
                                   seed=point_seed(self.base_seed, rep))
                    _exporter.attach(system.bus)
            try:
                for protocol in self.protocols:
                    for mpl in self.mpls:
                        points[(protocol, mpl)] = self.run_point(
                            protocol, mpl, on_system=on_system)
                        if progress is not None:
                            progress(
                                f"{experiment_id}: {protocol} @ MPL {mpl}")
            finally:
                if exporter is not None:
                    exporter.close()
            return ExperimentResults(
                experiment_id, title, points, self.protocols, self.mpls,
                total_measured_transactions=total_txns)

        specs = self.point_specs()
        runner = ParallelSweepRunner(
            jobs=jobs,
            progress=(None if progress is None else
                      (lambda label: progress(f"{experiment_id}: {label}"))))
        results = runner.run(specs, lean=lean)
        for spec, result in zip(specs, results):
            key = (spec.protocol, spec.mpl)
            if key not in points:
                points[key] = SweepPoint(spec.protocol, spec.mpl, [])
            points[key].results.append(result)
        return ExperimentResults(
            experiment_id, title, points, self.protocols, self.mpls,
            total_measured_transactions=total_txns)

    # ------------------------------------------------------------------
    def _run_adaptive(self, experiment_id: str, title: str,
                      progress: typing.Callable[[str], None] | None,
                      jobs: int, target_ci: float, ci_metric: str,
                      ci_confidence: float) -> ExperimentResults:
        """Wave-based adaptive replication (CI-driven early stopping).

        Every wave gathers the next batch of replications for every
        still-unsettled point into one spec list and runs it through the
        (possibly parallel) runner with the lean wire format, so a wave
        costs one dispatch round regardless of how many points are
        still converging.
        """
        metric_fn = METRICS[ci_metric]
        cap = (self.replications if self.replications > 1
               else DEFAULT_ADAPTIVE_CAP)
        runner = ParallelSweepRunner(
            jobs=jobs,
            progress=(None if progress is None else
                      (lambda label: progress(f"{experiment_id}: {label}"))))
        keys = [(protocol, mpl) for protocol in self.protocols
                for mpl in self.mpls]
        params = {key: self.params_factory(key[1]) for key in keys}
        # cap >= 2 always: replications=1 bumps to the adaptive default.
        rules = {key: StoppingRule(target_ci, confidence=ci_confidence,
                                   min_replications=2,
                                   max_replications=cap)
                 for key in keys}
        points = {key: SweepPoint(key[0], key[1], []) for key in keys}
        reps_done = dict.fromkeys(keys, 0)
        total_txns = 0
        while True:
            wave: list[PointSpec] = []
            for key in keys:
                for rep in range(reps_done[key],
                                 reps_done[key] + rules[key].next_wave()):
                    wave.append(PointSpec(
                        protocol=key[0], mpl=key[1], rep=rep,
                        params=params[key],
                        measured_transactions=self.measured_transactions,
                        warmup_transactions=self.warmup_transactions,
                        seed=point_seed(self.base_seed, rep)))
            if not wave:
                break
            for spec, summary in zip(wave, runner.run(wave, lean=True)):
                key = (spec.protocol, spec.mpl)
                points[key].results.append(summary)
                rules[key].observe(metric_fn(summary))
                reps_done[key] += 1
                total_txns += spec.measured_transactions
        return ExperimentResults(
            experiment_id, title, points, self.protocols, self.mpls,
            total_measured_transactions=total_txns, target_ci=target_ci)


@dataclasses.dataclass
class ExperimentDefinition:
    """Binds a paper artifact to a runnable sweep."""

    experiment_id: str
    title: str
    paper_artifacts: tuple[str, ...]
    protocols: tuple[str, ...]
    params_factory: ParamsFactory
    mpls: tuple[int, ...] = DEFAULT_MPLS
    #: metrics worth reporting for this experiment.
    metrics: tuple[str, ...] = ("throughput",)
    description: str = ""

    def sweep(self, measured_transactions: int = 1500,
              warmup_transactions: int | None = None,
              mpls: typing.Sequence[int] | None = None,
              replications: int = 1,
              base_seed: int = 20250705) -> MplSweep:
        return MplSweep(self.protocols, self.params_factory,
                        mpls=tuple(mpls) if mpls is not None else self.mpls,
                        measured_transactions=measured_transactions,
                        warmup_transactions=warmup_transactions,
                        replications=replications,
                        base_seed=base_seed)

    def run(self, measured_transactions: int = 1500,
            mpls: typing.Sequence[int] | None = None,
            replications: int = 1,
            progress: typing.Callable[[str], None] | None = None,
            jobs: int = 1,
            events_out: str | None = None,
            target_ci: float | None = None,
            lean: bool = False,
            ) -> ExperimentResults:
        sweep = self.sweep(measured_transactions=measured_transactions,
                           mpls=mpls, replications=replications)
        return sweep.run(self.experiment_id, self.title, progress=progress,
                         jobs=jobs, events_out=events_out,
                         target_ci=target_ci, lean=lean)
