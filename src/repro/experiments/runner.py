"""Parallel execution of experiment grids.

Every point of a paper figure -- one (protocol, MPL, replication)
triple -- is an independent simulation with its own
:class:`~repro.sim.engine.Environment` and its own deterministic seed,
so the grid is embarrassingly parallel.  This module fans it out over a
:class:`concurrent.futures.ProcessPoolExecutor`.

Determinism: parallelism changes *scheduling*, never *inputs*.  Each
:class:`PointSpec` carries the exact seed the serial path would have
used (``base_seed + rep * 7919``), the worker runs the same
``repro.simulate`` call, and results are reassembled in grid order --
so a parallel sweep is bit-identical to a serial one.

The pool is only worth its fork/pickle overhead for real sweeps;
``jobs=1`` (the default everywhere) never touches
:mod:`concurrent.futures` and runs the exact pre-existing in-process
path.
"""

from __future__ import annotations

import dataclasses
import os
import typing

from repro.config import ModelParams
from repro.db.system import SimulationResult

#: Multiplier spacing replication seeds (prime, matching the historical
#: serial behavior -- changing it would invalidate recorded results).
REPLICATION_SEED_STRIDE = 7919

#: Called with a short human-readable label as each point completes.
ProgressFn = typing.Callable[[str], None]


@dataclasses.dataclass(frozen=True)
class PointSpec:
    """Everything a worker process needs to run one simulation.

    Deliberately holds plain data only (``ModelParams`` is a dataclass of
    scalars and enums), so specs pickle cheaply and identically under
    both the ``fork`` and ``spawn`` start methods.
    """

    protocol: str
    mpl: int
    rep: int
    params: ModelParams
    measured_transactions: int
    warmup_transactions: int | None
    seed: int

    @property
    def label(self) -> str:
        rep_suffix = f" rep {self.rep}" if self.rep else ""
        return f"{self.protocol} @ MPL {self.mpl}{rep_suffix}"


def point_seed(base_seed: int, rep: int) -> int:
    """The seed the serial runner has always used for replication ``rep``."""
    return base_seed + rep * REPLICATION_SEED_STRIDE


def run_point_spec(spec: PointSpec) -> SimulationResult:
    """Execute one spec (the worker entry point; must stay module-level
    so it pickles by reference)."""
    import repro  # local import: keeps worker startup lazy

    return repro.simulate(
        spec.protocol, params=spec.params,
        measured_transactions=spec.measured_transactions,
        warmup_transactions=spec.warmup_transactions,
        seed=spec.seed)


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: ``None``/0 -> all cores, negatives
    rejected."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 1 (or 0 for all cores), got {jobs}")
    return jobs


class ParallelSweepRunner:
    """Runs a list of :class:`PointSpec` over a process pool.

    Results come back in *spec order* regardless of completion order, so
    callers can zip them against their grid.  Progress callbacks fire
    from the parent process as points complete (completion order).
    """

    def __init__(self, jobs: int | None = None,
                 progress: ProgressFn | None = None) -> None:
        self.jobs = resolve_jobs(jobs)
        self.progress = progress

    def run(self, specs: typing.Sequence[PointSpec]
            ) -> list[SimulationResult]:
        if self.jobs == 1 or len(specs) <= 1:
            return self._run_serial(specs)
        return self._run_parallel(specs)

    # ------------------------------------------------------------------
    def _run_serial(self, specs: typing.Sequence[PointSpec]
                    ) -> list[SimulationResult]:
        results = []
        for spec in specs:
            if self.progress is not None:
                self.progress(spec.label)
            results.append(run_point_spec(spec))
        return results

    def _run_parallel(self, specs: typing.Sequence[PointSpec]
                      ) -> list[SimulationResult]:
        import concurrent.futures

        workers = min(self.jobs, len(specs))
        results: list[SimulationResult | None] = [None] * len(specs)
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=workers) as pool:
            futures = {pool.submit(run_point_spec, spec): index
                       for index, spec in enumerate(specs)}
            for future in concurrent.futures.as_completed(futures):
                index = futures[future]
                results[index] = future.result()  # re-raises worker errors
                if self.progress is not None:
                    self.progress(specs[index].label)
        return typing.cast("list[SimulationResult]", results)
