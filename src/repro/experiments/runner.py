"""Parallel execution of experiment grids.

Every point of a paper figure -- one (protocol, MPL, replication)
triple -- is an independent simulation with its own
:class:`~repro.sim.engine.Environment` and its own deterministic seed,
so the grid is embarrassingly parallel.  This module fans it out over
the *warm* shared process pool (:mod:`repro.experiments.pool`),
amortizing worker startup across every sweep of a CLI invocation, and
groups specs into per-worker **chunks** so one IPC round dispatches
many replications at once.

Determinism: parallelism changes *scheduling*, never *inputs*.  Each
:class:`PointSpec` carries the exact seed the serial path would have
used (``base_seed + rep * 7919``), the worker runs the same
``repro.simulate`` call, and results are reassembled in grid order --
so a parallel sweep is bit-identical to a serial one.

Wire format: by default workers ship the full
:class:`~repro.db.system.SimulationResult` back (it is a flat dataclass
of scalars, and the golden byte-identity contract pins every field).
Callers that only consume the plotted scalars -- big grids, adaptive
replication -- pass ``lean=True`` and get :class:`PointSummary`
objects, which duck-type the metric attributes the experiment layer
reads and keep the return pipe minimal.

The pool is only worth its IPC overhead for real sweeps; ``jobs=1``
(the default everywhere) never touches the pool module and runs the
exact pre-existing in-process path.
"""

from __future__ import annotations

import dataclasses
import os
import traceback
import typing

from repro.config import ModelParams
from repro.db.system import SimulationResult
from repro.metrics import ProtocolOverheads

#: Multiplier spacing replication seeds (prime, matching the historical
#: serial behavior -- changing it would invalidate recorded results).
REPLICATION_SEED_STRIDE = 7919

#: Called with a short human-readable label as each point *completes*
#: (both serial and parallel paths -- completion-time semantics).
ProgressFn = typing.Callable[[str], None]

#: Chunks per worker the auto chunksize aims for: small enough to
#: amortize dispatch, large enough that stragglers rebalance.
_CHUNKS_PER_WORKER = 4


@dataclasses.dataclass(frozen=True)
class SweepCounts:
    """Queue state of a running sweep, for progress displays.

    ``running`` is an upper-bound estimate (the executor does not
    expose per-task start events): the number of not-yet-finished
    points that fit in the in-flight chunk windows.
    """

    queued: int
    running: int
    done: int
    total: int


#: Called with a :class:`SweepCounts` whenever ``done`` advances.
CountsFn = typing.Callable[[SweepCounts], None]


@dataclasses.dataclass(frozen=True)
class PointSpec:
    """Everything a worker process needs to run one simulation.

    Deliberately holds plain data only (``ModelParams`` is a dataclass of
    scalars and enums), so specs pickle cheaply and identically under
    both the ``fork`` and ``spawn`` start methods.
    """

    protocol: str
    mpl: int
    rep: int
    params: ModelParams
    measured_transactions: int
    warmup_transactions: int | None
    seed: int

    @property
    def label(self) -> str:
        rep_suffix = f" rep {self.rep}" if self.rep else ""
        return f"{self.protocol} @ MPL {self.mpl}{rep_suffix}"


@dataclasses.dataclass(frozen=True)
class PointSummary:
    """The lean wire format: exactly the scalars the experiment layer
    (``METRICS``, tables, exports) consumes, nothing else.

    Duck-types the :class:`~repro.db.system.SimulationResult` attributes
    those consumers read, so a :class:`~repro.experiments.base.SweepPoint`
    can hold either interchangeably.
    """

    protocol: str
    mpl: int
    rep: int
    committed: int
    aborted: int
    elapsed_ms: float
    throughput: float
    response_time_ms: float
    block_ratio: float
    borrow_ratio: float
    abort_ratio: float
    response_ci_rel_half_width: float
    deadlocks: int
    shelf_entries: int
    overheads: ProtocolOverheads

    @classmethod
    def from_result(cls, spec: "PointSpec",
                    result: SimulationResult) -> "PointSummary":
        return cls(
            protocol=result.protocol, mpl=result.mpl, rep=spec.rep,
            committed=result.committed, aborted=result.aborted,
            elapsed_ms=result.elapsed_ms, throughput=result.throughput,
            response_time_ms=result.response_time_ms,
            block_ratio=result.block_ratio,
            borrow_ratio=result.borrow_ratio,
            abort_ratio=result.abort_ratio,
            response_ci_rel_half_width=result.response_ci_rel_half_width,
            deadlocks=result.deadlocks,
            shelf_entries=result.shelf_entries,
            overheads=result.overheads)


class SweepWorkerError(RuntimeError):
    """A spec raised inside a pool worker.

    The message carries the worker-side traceback verbatim; when the
    original exception pickles, it is chained as ``__cause__``.  The
    pool itself stays healthy (the worker caught the exception and
    returned it as data), so later sweeps reuse it normally.
    """


@dataclasses.dataclass(frozen=True)
class _SpecFailure:
    """How a worker reports one failed spec without killing itself."""

    label: str
    exc_type: str
    message: str
    traceback_text: str
    exception: BaseException | None


def point_seed(base_seed: int, rep: int) -> int:
    """The seed the serial runner has always used for replication ``rep``."""
    return base_seed + rep * REPLICATION_SEED_STRIDE


def run_point_spec(spec: PointSpec) -> SimulationResult:
    """Execute one spec (shared by the serial path and the workers)."""
    import repro  # local import: keeps worker startup lazy

    return repro.simulate(
        spec.protocol, params=spec.params,
        measured_transactions=spec.measured_transactions,
        warmup_transactions=spec.warmup_transactions,
        seed=spec.seed)


def run_chunk(chunk: typing.Sequence[PointSpec], lean: bool
              ) -> list[object]:
    """Worker entry point: run a whole chunk, one IPC round per chunk.

    Must stay module-level so it pickles by reference.  Exceptions are
    caught per spec and returned as :class:`_SpecFailure` data -- the
    worker survives, the pool stays warm, and the parent re-raises with
    the original traceback attached.
    """
    out: list[object] = []
    for spec in chunk:
        try:
            result = run_point_spec(spec)
            out.append(PointSummary.from_result(spec, result) if lean
                       else result)
        except Exception as exc:  # noqa: BLE001 - report, don't die
            import pickle
            carried: BaseException | None = exc
            try:
                pickle.loads(pickle.dumps(exc))
            except Exception:  # noqa: BLE001 - unpicklable exception
                carried = None
            out.append(_SpecFailure(
                label=spec.label, exc_type=type(exc).__name__,
                message=str(exc), traceback_text=traceback.format_exc(),
                exception=carried))
    return out


def default_chunksize(points: int, workers: int) -> int:
    """Auto chunk size: aim for ~4 chunks per worker.

    Large grids amortize dispatch over many reps per IPC round; small
    grids degrade to chunksize 1, which is just the old per-point
    submission.
    """
    if points <= 0 or workers <= 0:
        return 1
    return max(1, -(-points // (workers * _CHUNKS_PER_WORKER)))


def resolve_jobs(jobs: int | None, *, allow_all_cores: bool = True) -> int:
    """Normalize a ``--jobs`` value.

    ``None`` means "auto" (one worker per CPU core).  ``0`` also means
    all cores, but only where that was *intended*: the CLI documents it
    (``--jobs 0``), so it resolves there (``allow_all_cores=True``, the
    default); library entry points pass ``allow_all_cores=False`` and
    reject 0 rather than silently fanning out to every core.  Negative
    values are always rejected.
    """
    if jobs is None:
        return os.cpu_count() or 1
    if jobs == 0:
        if allow_all_cores:
            return os.cpu_count() or 1
        raise ValueError(
            "jobs=0 ('all cores') is a CLI convenience; library callers "
            "must pass an explicit worker count (or None for auto)")
    if jobs < 0:
        raise ValueError(f"jobs must be >= 1 (or 0 for all cores), got {jobs}")
    return jobs


class ParallelSweepRunner:
    """Runs a list of :class:`PointSpec` over the warm shared pool.

    Results come back in *spec order* regardless of completion order, so
    callers can zip them against their grid.  Progress callbacks fire
    from the parent process as points complete -- completion-time
    semantics on **both** the serial and parallel paths -- and the
    optional ``counts`` callback reports queued/running/done totals for
    chunked mode.
    """

    def __init__(self, jobs: int | None = None,
                 progress: ProgressFn | None = None,
                 chunksize: int | None = None,
                 counts: CountsFn | None = None) -> None:
        self.jobs = resolve_jobs(jobs, allow_all_cores=False)
        self.progress = progress
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self.chunksize = chunksize
        self.counts = counts

    def run(self, specs: typing.Sequence[PointSpec], *,
            lean: bool = False) -> list[SimulationResult | PointSummary]:
        if self.jobs == 1 or len(specs) <= 1:
            return self._run_serial(specs, lean)
        return self._run_parallel(specs, lean)

    # ------------------------------------------------------------------
    def _emit(self, spec: PointSpec, done: int, total: int,
              running: int) -> None:
        """Completion-time progress + counts for one finished point."""
        if self.progress is not None:
            self.progress(spec.label)
        if self.counts is not None:
            running = min(running, total - done)
            self.counts(SweepCounts(queued=total - done - running,
                                    running=running, done=done,
                                    total=total))

    def _run_serial(self, specs: typing.Sequence[PointSpec], lean: bool
                    ) -> list[SimulationResult | PointSummary]:
        results: list[SimulationResult | PointSummary] = []
        total = len(specs)
        for index, spec in enumerate(specs):
            result = run_point_spec(spec)
            results.append(PointSummary.from_result(spec, result) if lean
                           else result)
            self._emit(spec, index + 1, total, running=1)
        return results

    def _run_parallel(self, specs: typing.Sequence[PointSpec], lean: bool
                      ) -> list[SimulationResult | PointSummary]:
        import concurrent.futures
        from concurrent.futures.process import BrokenProcessPool

        from repro.experiments.pool import get_pool, shutdown_pool

        total = len(specs)
        workers = min(self.jobs, total)
        chunksize = (self.chunksize if self.chunksize is not None
                     else default_chunksize(total, workers))
        pool = get_pool(workers)
        results: list[SimulationResult | PointSummary | None] = \
            [None] * total
        chunks = [(start, specs[start:start + chunksize])
                  for start in range(0, total, chunksize)]
        futures = {pool.submit(run_chunk, chunk, lean): (start, chunk)
                   for start, chunk in chunks}
        done = 0
        window = workers * chunksize
        try:
            for future in concurrent.futures.as_completed(futures):
                start, chunk = futures[future]
                try:
                    chunk_results = future.result()
                except BrokenProcessPool:
                    # A worker died uncleanly (hard crash, not a Python
                    # exception); the executor is unusable -- drop it so
                    # the next sweep builds a fresh one.
                    shutdown_pool()
                    raise
                for offset, (spec, item) in enumerate(
                        zip(chunk, chunk_results)):
                    if isinstance(item, _SpecFailure):
                        raise SweepWorkerError(
                            f"sweep point '{item.label}' raised "
                            f"{item.exc_type}: {item.message}\n"
                            f"--- worker traceback ---\n"
                            f"{item.traceback_text}") from item.exception
                    results[start + offset] = item
                    done += 1
                    self._emit(spec, done, total, running=window)
        finally:
            # On failure, stop dispatching work nobody will read; chunks
            # already running finish harmlessly in the (healthy) pool.
            if done < total:
                for future in futures:
                    future.cancel()
        return typing.cast(
            "list[SimulationResult | PointSummary]", results)
