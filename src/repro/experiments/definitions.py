"""The paper's MPL-sweep experiments (Section 5) as definitions.

Every figure in the paper is an MPL sweep; the definitions below bind
each figure's protocol set and parameter settings.  See DESIGN.md
section 4 for the full experiment index.
"""

from __future__ import annotations

from repro.config import (
    ModelParams,
    baseline_rc_dc,
    fast_network,
    high_distribution,
    pure_data_contention,
    sequential_transactions,
    surprise_aborts,
)
from repro.experiments.base import ExperimentDefinition

#: The protocol set of Figures 1 and 2.
STANDARD_PROTOCOLS = ("CENT", "DPCC", "2PC", "PA", "PC", "3PC", "OPT")


def _factory(preset, **kwargs):
    """A params factory for an MPL sweep over the given preset."""
    def build(mpl: int) -> ModelParams:
        return preset(mpl=mpl, **kwargs)
    return build


EXP1 = ExperimentDefinition(
    experiment_id="E1",
    title="Experiment 1: Resource and Data Contention (Figures 1a-1c)",
    paper_artifacts=("Fig 1a", "Fig 1b", "Fig 1c"),
    protocols=STANDARD_PROTOCOLS,
    params_factory=_factory(baseline_rc_dc),
    metrics=("throughput", "block_ratio", "borrow_ratio"),
    description=(
        "Baseline settings: parallel transactions at 3 sites, 6 pages "
        "per cohort, I/O-bound region.  Shows CENT >= DPCC >> classical "
        "protocols, and OPT approaching DPCC at high MPL."),
)

EXP2 = ExperimentDefinition(
    experiment_id="E2",
    title="Experiment 2: Pure Data Contention (Figures 2a-2c)",
    paper_artifacts=("Fig 2a", "Fig 2b", "Fig 2c"),
    protocols=STANDARD_PROTOCOLS,
    params_factory=_factory(pure_data_contention),
    metrics=("throughput", "block_ratio", "borrow_ratio"),
    description=(
        "Infinite CPUs and disks isolate data contention.  Protocol "
        "overheads occupy a larger share of response time, widening the "
        "gaps; OPT's peak approaches DPCC's."),
)

EXP3_RCDC = ExperimentDefinition(
    experiment_id="E3-RCDC",
    title="Experiment 3: Fast Network, RC+DC (MsgCPU = 1ms)",
    paper_artifacts=("Expt 3 prose",),
    protocols=STANDARD_PROTOCOLS,
    params_factory=_factory(fast_network),
    metrics=("throughput",),
    description=(
        "A five-times-faster network interface.  All protocols close in "
        "on CENT; DPCC and CENT become virtually indistinguishable."),
)

EXP3_DC = ExperimentDefinition(
    experiment_id="E3-DC",
    title="Experiment 3: Fast Network, pure DC (MsgCPU = 1ms)",
    paper_artifacts=("Expt 3 prose",),
    protocols=STANDARD_PROTOCOLS,
    params_factory=_factory(fast_network, pure_dc=True),
    metrics=("throughput",),
    description=(
        "Even with cheap messages, forced-write overheads keep DPCC "
        "above 2PC and 2PC above 3PC under pure data contention; OPT "
        "remains valuable because fast messages do not remove the data "
        "contention bottleneck."),
)

EXP4_RCDC = ExperimentDefinition(
    experiment_id="E4-RCDC",
    title="Experiment 4: Degree of Distribution 6, RC+DC (Figure 3a)",
    paper_artifacts=("Fig 3a",),
    protocols=STANDARD_PROTOCOLS + ("OPT-PC",),
    params_factory=_factory(high_distribution),
    metrics=("throughput",),
    description=(
        "Six cohorts of three pages keep transaction length constant "
        "while tripling message counts: the system turns CPU-bound.  "
        "PC now clearly beats 2PC, and OPT-PC combines both wins."),
)

EXP4_DC = ExperimentDefinition(
    experiment_id="E4-DC",
    title="Experiment 4: Degree of Distribution 6, pure DC (Figure 3b)",
    paper_artifacts=("Fig 3b",),
    protocols=STANDARD_PROTOCOLS + ("OPT-PC",),
    params_factory=_factory(high_distribution, pure_dc=True),
    metrics=("throughput",),
    description=(
        "Under pure data contention the DPCC-vs-2PC gap widens (peak "
        "throughput of DPCC more than twice 2PC's in the paper); PC "
        "returns to par with 2PC, and OPT-PC loses its edge over OPT."),
)

EXP5_RCDC = ExperimentDefinition(
    experiment_id="E5-RCDC",
    title="Experiment 5: Non-Blocking OPT, RC+DC (Figure 4a)",
    paper_artifacts=("Fig 4a",),
    protocols=("2PC", "3PC", "OPT", "OPT-3PC"),
    params_factory=_factory(baseline_rc_dc),
    metrics=("throughput", "borrow_ratio"),
    description=(
        "OPT applied to 3PC: similar to 3PC at low MPL, but at high "
        "MPL OPT-3PC reaches peak throughput comparable to 2PC -- "
        "non-blocking safety without the classical 3PC penalty."),
)

EXP5_DC = ExperimentDefinition(
    experiment_id="E5-DC",
    title="Experiment 5: Non-Blocking OPT, pure DC (Figure 4b)",
    paper_artifacts=("Fig 4b",),
    protocols=("2PC", "3PC", "OPT", "OPT-3PC"),
    params_factory=_factory(pure_data_contention),
    metrics=("throughput", "borrow_ratio"),
    description=(
        "Under pure data contention OPT-3PC's peak throughput "
        "significantly surpasses 2PC's: the paper's win-win result."),
)


def _surprise_factory(cohort_prob: float, pure_dc: bool):
    def build(mpl: int) -> ModelParams:
        return surprise_aborts(cohort_prob, pure_dc=pure_dc, mpl=mpl)
    return build


def _surprise_defs(scenario: str, pure_dc: bool):
    """Three abort levels x one scenario (Figure 5a or 5b)."""
    defs = []
    for cohort_prob, txn_pct in ((0.01, 3), (0.05, 15), (0.10, 27)):
        defs.append(ExperimentDefinition(
            experiment_id=f"E6-{scenario}-{txn_pct}",
            title=(f"Experiment 6: Surprise Aborts ~{txn_pct}% "
                   f"({scenario}, cohort NO-vote p={cohort_prob})"),
            paper_artifacts=("Fig 5a",) if not pure_dc else ("Fig 5b",),
            protocols=("2PC", "PA", "OPT", "OPT-PA"),
            params_factory=_surprise_factory(cohort_prob, pure_dc),
            metrics=("throughput", "abort_ratio"),
            description=(
                "Cohorts randomly vote NO on PREPARE.  OPT stays "
                "competitive up to ~15% transaction aborts; PA only "
                "marginally beats 2PC unless the system is CPU-bound."),
        ))
    return defs


EXP6_RCDC = _surprise_defs("RCDC", pure_dc=False)
EXP6_DC = _surprise_defs("DC", pure_dc=True)

EXP7 = ExperimentDefinition(
    experiment_id="E7",
    title="Section 5.8: Sequential Transactions",
    paper_artifacts=("Sec 5.8 prose",),
    protocols=("CENT", "DPCC", "2PC", "3PC", "OPT"),
    params_factory=_factory(sequential_transactions),
    metrics=("throughput",),
    description=(
        "Sequential cohorts lengthen the execution phase while the "
        "commit phase is unchanged, shrinking the commit-execution "
        "ratio: protocol differences (and OPT's advantage) narrow."),
)

EXP8_UPDATE_HALF = ExperimentDefinition(
    experiment_id="E8-UP50",
    title="Section 5.8: Reduced Update Probability (0.5)",
    paper_artifacts=("Sec 5.8 prose",),
    protocols=("2PC", "PC", "OPT"),
    params_factory=_factory(baseline_rc_dc, update_prob=0.5),
    metrics=("throughput", "borrow_ratio"),
    description=(
        "Fewer update locks mean less prepared-data blocking, so OPT's "
        "improvement shrinks with the data contention level."),
)

EXP8_SMALL_DB = ExperimentDefinition(
    experiment_id="E8-SMALLDB",
    title="Section 5.8: Small Database (DBSize = 1200)",
    paper_artifacts=("Sec 5.8 prose",),
    protocols=("2PC", "PC", "OPT"),
    params_factory=_factory(baseline_rc_dc, db_size=1200),
    metrics=("throughput", "borrow_ratio"),
    description=(
        "Halving the database doubles data contention: OPT's advantage "
        "over 2PC grows."),
)
