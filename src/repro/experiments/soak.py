"""Soak runs: long-horizon open-system execution at flat RSS.

A soak drives 10^6-10^7 open-system transactions through one protocol
while holding memory constant: percentile samples degrade to P-squared
sketches above a cap (:class:`repro.sim.stats.AdaptivePercentileSample`),
and per-window aggregates stream out as JSONL rows
(:class:`repro.obs.WindowedStats`) instead of accumulating.

**Checkpointing model.**  Kernel state (the pending-event heap) holds
live generator frames and cannot be serialized, so a soak is executed as
a sequence of *segments* separated by sharp drain barriers: after every
``checkpoint_every`` commits the arrival processes are stopped, admitted
transactions run to commit, and at that quiescent point every piece of
persistent state is plain data — the clock, RNG stream states, metric
accumulators, admission-queue counters, and the partial output window.
The next segment rebuilds a fresh system at the checkpointed clock and
restores that state.  The barrier is the simulation analogue of a sharp
database checkpoint: arrivals pause for the (brief, simulated) drain.
Uninterrupted and killed-then-resumed runs execute the *same* segment
schedule — the runner always proceeds from the serialized checkpoint —
so their windowed JSONL streams are byte-identical, which is exactly
what the resume check in CI diffs.  ``checkpoint_every=0`` disables
barriers and runs one unbroken (unresumable) segment.

The output file starts with one ``{"meta": ...}`` header line, carries
one JSON row per window, and ends with a ``{"meta": {"complete": ...}}``
trailer.  On resume, the file is truncated to the header plus the rows
the checkpoint had durably emitted (tolerating a torn tail line from the
kill) and appending continues.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import pickle
import typing

from repro.config import ModelParams, WorkloadMode, open_system
from repro.core import create_protocol
from repro.db.system import DistributedSystem
from repro.obs.windowed import WindowedStats

#: bump when the checkpoint layout changes (stale files are rejected).
CHECKPOINT_SCHEMA = 1

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    pass


@dataclasses.dataclass(frozen=True)
class SoakConfig:
    """Everything that determines a soak run's output stream."""

    protocol: str = "2PC"
    params: ModelParams = dataclasses.field(default_factory=open_system)
    #: total committed transactions to run.
    transactions: int = 1_000_000
    seed: int | None = None
    #: simulated milliseconds per output window.
    window_ms: float = 60_000.0
    #: commits per segment between drain barriers (0 = single segment,
    #: no checkpointing).
    checkpoint_every: int = 100_000
    #: retained observations before percentile samples go streaming.
    sample_cap: int = 10_000

    def validate(self) -> None:
        if self.params.workload_mode is not WorkloadMode.OPEN:
            raise ValueError("soak runs require the open workload mode "
                             "(repro.open_system(...))")
        self.params.validate()
        if self.transactions < 1:
            raise ValueError(
                f"transactions must be >= 1, got {self.transactions}")
        if self.window_ms <= 0:
            raise ValueError(
                f"window_ms must be > 0, got {self.window_ms}")
        if self.checkpoint_every < 0:
            raise ValueError(f"checkpoint_every must be >= 0, got "
                             f"{self.checkpoint_every}")
        if self.sample_cap < 5:
            raise ValueError(
                f"sample_cap must be >= 5, got {self.sample_cap}")

    def fingerprint(self) -> dict:
        """Stable identity: a resumed run must match it exactly."""
        params = dataclasses.asdict(self.params)
        for key, value in params.items():
            # Enums (workload_mode, skew/rate-curve kinds) -> strings so
            # the fingerprint is JSON-able for the meta header.
            params[key] = _jsonable(value)
        return {
            "kind": "soak",
            "schema": CHECKPOINT_SCHEMA,
            "protocol": self.protocol,
            "transactions": self.transactions,
            "seed": self.seed if self.seed is not None
                    else self.params.seed,
            "window_ms": self.window_ms,
            "checkpoint_every": self.checkpoint_every,
            "sample_cap": self.sample_cap,
            "params": params,
        }


def _jsonable(value: object) -> object:
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "value") and value.__class__.__module__ != "builtins":
        return value.value  # enum
    return value


@dataclasses.dataclass
class SoakCheckpoint:
    """One quiescent barrier's serialized state."""

    schema: int
    fingerprint: dict
    segments_done: int
    #: lifetime committed transactions at this barrier.
    committed: int
    clock_ms: float
    system_state: dict
    windowed_state: dict
    #: complete data rows durably in the output file at this barrier.
    rows_emitted: int


class SoakRunner:
    """Execute (or resume) one soak run.

    ``out_path`` receives the windowed JSONL stream; ``checkpoint_path``
    (optional) persists barrier state so a killed run can resume.  With
    barriers enabled but no checkpoint path, the runner still round-trips
    each barrier through ``pickle`` in memory — the continuous run takes
    the identical code path a resumed run would, which is what makes the
    two streams byte-identical.
    """

    def __init__(self, config: SoakConfig,
                 out_path: str | pathlib.Path,
                 checkpoint_path: str | pathlib.Path | None = None,
                 progress: typing.Callable[[str], None] | None = None,
                 ) -> None:
        config.validate()
        self.config = config
        self.out_path = pathlib.Path(out_path)
        self.checkpoint_path = (pathlib.Path(checkpoint_path)
                                if checkpoint_path is not None else None)
        self._progress = progress or (lambda message: None)
        self._out: typing.TextIO | None = None
        self._system: DistributedSystem | None = None

    # ------------------------------------------------------------------
    # Checkpoint persistence
    # ------------------------------------------------------------------
    def _save_checkpoint(self, checkpoint: SoakCheckpoint) -> SoakCheckpoint:
        """Persist (atomically) and reload, so the continuing run uses
        exactly the state a resumed run would read back."""
        blob = pickle.dumps(checkpoint, protocol=pickle.HIGHEST_PROTOCOL)
        if self.checkpoint_path is not None:
            tmp = self.checkpoint_path.with_name(
                self.checkpoint_path.name + ".tmp")
            tmp.write_bytes(blob)
            os.replace(tmp, self.checkpoint_path)
        return pickle.loads(blob)

    def _load_checkpoint(self) -> SoakCheckpoint | None:
        if self.checkpoint_path is None \
                or not self.checkpoint_path.exists():
            return None
        with self.checkpoint_path.open("rb") as handle:
            checkpoint = pickle.load(handle)
        if checkpoint.schema != CHECKPOINT_SCHEMA:
            raise ValueError(
                f"checkpoint schema {checkpoint.schema} != "
                f"{CHECKPOINT_SCHEMA}; delete {self.checkpoint_path} "
                f"and restart the soak")
        if checkpoint.fingerprint != self.config.fingerprint():
            raise ValueError(
                "checkpoint was written by a different soak "
                "configuration; delete it or rerun with the original "
                "parameters")
        return checkpoint

    # ------------------------------------------------------------------
    # Output stream
    # ------------------------------------------------------------------
    def _write_row(self, row: dict) -> None:
        assert self._out is not None
        json.dump(row, self._out)
        self._out.write("\n")

    def _truncate_output(self, rows_emitted: int) -> None:
        """Cut the stream back to header + ``rows_emitted`` data rows.

        Rows past the last barrier (including a torn final line from the
        kill) are discarded; the resumed segments re-emit them.
        """
        if not self.out_path.exists():
            raise FileNotFoundError(
                f"cannot resume: output file {self.out_path} is missing "
                f"(windows before the checkpoint cannot be regenerated)")
        with self.out_path.open("r", encoding="utf-8") as handle:
            content = handle.read()
        lines = content.split("\n")
        keep = 1 + rows_emitted  # meta header + durable data rows
        if len(lines) < keep:
            raise ValueError(
                f"cannot resume: {self.out_path} holds "
                f"{max(0, len(lines) - 1)} rows but the checkpoint "
                f"recorded {rows_emitted}")
        with self.out_path.open("w", encoding="utf-8") as handle:
            handle.write("\n".join(lines[:keep]))
            if keep:
                handle.write("\n")

    # ------------------------------------------------------------------
    # Segment execution
    # ------------------------------------------------------------------
    def _build_system(self, checkpoint: SoakCheckpoint | None,
                      ) -> DistributedSystem:
        config = self.config
        clock = checkpoint.clock_ms if checkpoint is not None else 0.0
        system = DistributedSystem(
            config.params, create_protocol(config.protocol),
            seed=config.seed, initial_time=clock,
            percentile_sample_cap=config.sample_cap,
            # Bounded memory: WAL recovery-index entries are pruned as
            # transactions complete instead of retained for analysis.
            wal_retention=False)
        if checkpoint is not None:
            system.restore_soak_state(checkpoint.system_state)
        return system

    def _queue_depth(self) -> int:
        system = self._system
        if system is None:
            return 0
        return sum(len(queue) for queue in system.open_queues)

    def run(self, resume: bool = False,
            stop_after_segments: int | None = None) -> dict:
        """Run to completion (or to ``stop_after_segments``, the test
        hook simulating a kill) and return a summary dict."""
        config = self.config
        checkpoint = self._load_checkpoint() if resume else None
        if checkpoint is not None and \
                checkpoint.committed >= config.transactions:
            self._progress("soak already complete; nothing to resume")
            return self._summary(checkpoint, resumed=True)

        windowed = WindowedStats(config.window_ms, self._write_row,
                                 depth_probe=self._queue_depth)
        if checkpoint is not None:
            windowed.restore_state(checkpoint.windowed_state)
            self._truncate_output(checkpoint.rows_emitted)
            out = self.out_path.open("a", encoding="utf-8")
        else:
            out = self.out_path.open("w", encoding="utf-8")
        self._out = out
        try:
            if checkpoint is None:
                json.dump({"meta": config.fingerprint()}, out)
                out.write("\n")
                out.flush()

            committed = checkpoint.committed if checkpoint else 0
            segments = checkpoint.segments_done if checkpoint else 0
            while committed < config.transactions:
                remaining = config.transactions - committed
                segment_quota = (min(config.checkpoint_every, remaining)
                                 if config.checkpoint_every else remaining)
                system = self._build_system(checkpoint)
                self._system = system
                subscription = windowed.attach(system.bus)
                system.start()
                system.env.run(
                    until=system.metrics.when_committed(segment_quota))
                # Sharp drain barrier: shut the arrival taps, let every
                # admitted transaction run to commit.  Drain commits
                # count toward the total (they are real commits).
                system.stop_arrivals()
                system.env.run(until=system.when_drained())
                subscription.cancel()
                windowed.detach()
                self._system = None
                committed = system.completed_total
                segments += 1
                out.flush()
                checkpoint = SoakCheckpoint(
                    schema=CHECKPOINT_SCHEMA,
                    fingerprint=config.fingerprint(),
                    segments_done=segments,
                    committed=committed,
                    clock_ms=system.env.now,
                    system_state=system.capture_soak_state(),
                    windowed_state=windowed.capture_state(),
                    rows_emitted=windowed.rows_emitted)
                checkpoint = self._save_checkpoint(checkpoint)
                windowed.restore_state(checkpoint.windowed_state)
                self._progress(
                    f"segment {segments}: {committed}/"
                    f"{config.transactions} committed, "
                    f"clock {checkpoint.clock_ms / 1000.0:.0f}s, "
                    f"{windowed.rows_emitted} windows")
                if stop_after_segments is not None \
                        and segments >= stop_after_segments \
                        and committed < config.transactions:
                    return self._summary(checkpoint, interrupted=True)

            windowed.finish(checkpoint.clock_ms)
            json.dump({"meta": {"complete": True,
                                "committed": committed,
                                "segments": segments,
                                "windows": windowed.rows_emitted,
                                "clock_ms": checkpoint.clock_ms}}, out)
            out.write("\n")
            out.flush()
            final = dataclasses.replace(
                checkpoint, rows_emitted=windowed.rows_emitted)
            self._save_checkpoint(final)
            return self._summary(final)
        finally:
            out.close()
            self._out = None

    def _summary(self, checkpoint: SoakCheckpoint,
                 interrupted: bool = False, resumed: bool = False) -> dict:
        return {
            "protocol": self.config.protocol,
            "committed": checkpoint.committed,
            "transactions": self.config.transactions,
            "segments": checkpoint.segments_done,
            "windows": checkpoint.rows_emitted,
            "clock_ms": checkpoint.clock_ms,
            "interrupted": interrupted,
            "resumed": resumed,
            "out": str(self.out_path),
            "checkpoint": (str(self.checkpoint_path)
                           if self.checkpoint_path else None),
        }


# ----------------------------------------------------------------------
# RSS probe entry point (scripts/bench_trajectory.py soak_memory section)
# ----------------------------------------------------------------------
def _probe_main(argv: list[str] | None = None) -> int:
    """Run a small soak and print peak RSS as JSON (subprocess probe).

    Each probe runs in its own process so ``ru_maxrss`` is that run's
    true high-water mark, uncontaminated by other benchmark sections.
    """
    import argparse
    import resource

    parser = argparse.ArgumentParser(
        description="soak RSS probe (internal; used by bench_trajectory)")
    parser.add_argument("--transactions", type=int, required=True)
    parser.add_argument("--checkpoint-every", type=int, default=0)
    parser.add_argument("--out", default=os.devnull)
    args = parser.parse_args(argv)

    params = open_system(
        arrival_rate_tps=10.0, num_sites=2, mpl=4, db_size=600,
        dist_degree=2, cohort_size=4)
    config = SoakConfig(protocol="2PC", params=params,
                        transactions=args.transactions,
                        window_ms=10_000.0,
                        checkpoint_every=args.checkpoint_every,
                        sample_cap=10_000)
    runner = SoakRunner(config, args.out)
    summary = runner.run()
    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    print(json.dumps({"committed": summary["committed"],
                      "windows": summary["windows"],
                      "maxrss_kb": peak_kb}))
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    raise SystemExit(_probe_main())
