"""Availability under failures: what the commit protocols deliver when
sites actually crash.

The paper's experiments are failure-free; its *arguments* about
blocking, presumption and non-blocking termination are about failures.
This sweep (an extension, like :mod:`repro.failures`) makes those
arguments measurable for **every** registered protocol: each grid point
runs one protocol under a seeded :class:`repro.faults.FaultConfig` --
stochastic site crash/recover cycles (exponential MTTF/MTTR) and
optional message loss -- and reports the throughput the protocol
sustains alongside the injector's accounting (crashes survived, messages
dropped, in-doubt transactions resolved by recovery).

The x-axis is the site MTTF: shorter MTTF means a harsher environment.
``mttf_ms=0`` disables crashes at that point (the failure-free
baseline), which makes the degradation visible in one table.
"""

from __future__ import annotations

import dataclasses
import typing

import repro
from repro.config import ModelParams
from repro.db.system import DistributedSystem, SimulationResult
from repro.faults import FaultConfig, FaultTimeouts

DEFAULT_MTTFS: tuple[float, ...] = (0.0, 400_000.0, 200_000.0, 100_000.0)


@dataclasses.dataclass
class AvailabilityPoint:
    """One (protocol, mttf) grid point."""

    protocol: str
    mttf_ms: float
    result: SimulationResult
    crashes: int
    recoveries: int
    messages_dropped: int
    in_doubt_resolved: int
    #: network drop split, e.g. {"site_down": 3, "injected_loss": 2};
    #: sums to the network layer's total drop count for the run.
    drops_by_reason: dict[str, int] = dataclasses.field(
        default_factory=dict)

    @property
    def throughput(self) -> float:
        return self.result.throughput

    @property
    def abort_ratio(self) -> float:
        return self.result.abort_ratio


@dataclasses.dataclass
class AvailabilityResults:
    """All points of one availability sweep, with rendering helpers."""

    points: dict[tuple[str, float], AvailabilityPoint]
    protocols: tuple[str, ...]
    mttfs: tuple[float, ...]

    def point(self, protocol: str, mttf_ms: float) -> AvailabilityPoint:
        return self.points[(protocol, mttf_ms)]

    def series(self, protocol: str) -> list[tuple[float, float]]:
        """[(mttf_ms, throughput), ...] for one protocol's curve."""
        return [(mttf, self.points[(protocol, mttf)].throughput)
                for mttf in self.mttfs]

    def table(self, precision: int = 2) -> str:
        """Text table: rows are MTTFs, one throughput column per
        protocol (``inf`` row label for the failure-free baseline)."""
        width = max(8, max(len(p) for p in self.protocols) + 1)
        header = f"{'MTTF(s)':>9} " + "".join(
            f"{p:>{width}}" for p in self.protocols)
        lines = [header, "-" * len(header)]
        for mttf in self.mttfs:
            label = "inf" if mttf == 0 else f"{mttf / 1000:.0f}"
            row = f"{label:>9} "
            for protocol in self.protocols:
                value = self.points[(protocol, mttf)].throughput
                row += f"{value:>{width}.{precision}f}"
            lines.append(row)
        return "\n".join(lines)

    def summary(self) -> str:
        lines = ["== availability: throughput vs site MTTF =="]
        lines.append(self.table())
        totals = {}
        splits: dict[str, dict[str, int]] = {}
        for point in self.points.values():
            entry = totals.setdefault(point.protocol, [0, 0, 0])
            entry[0] += point.crashes
            entry[1] += point.messages_dropped
            entry[2] += point.in_doubt_resolved
            split = splits.setdefault(point.protocol, {})
            for reason, count in point.drops_by_reason.items():
                split[reason] = split.get(reason, 0) + count
        for protocol in self.protocols:
            crashes, dropped, resolved = totals[protocol]
            rendered = ", ".join(
                f"{reason}={count}" for reason, count
                in sorted(splits[protocol].items()))
            by_reason = f" ({rendered})" if rendered else ""
            lines.append(
                f"{protocol:>8}: {crashes} crashes survived, "
                f"{dropped} messages dropped{by_reason}, "
                f"{resolved} in-doubt transactions resolved")
        return "\n".join(lines)


class AvailabilitySweep:
    """Runs a protocol x MTTF grid of fault-injected simulations.

    Every grid point of one sweep shares ``seed``: the workload *and*
    the fault plan draws are reproducible, so two sweeps with the same
    arguments produce identical results (the determinism contract the
    fault tests pin).
    """

    def __init__(self, protocols: typing.Sequence[str],
                 mttfs: typing.Sequence[float] = DEFAULT_MTTFS,
                 mttr_ms: float = 5_000.0,
                 msg_loss_prob: float = 0.0,
                 mpl: int = 2,
                 params: ModelParams | None = None,
                 measured_transactions: int = 300,
                 timeouts: FaultTimeouts | None = None,
                 seed: int = 20250705) -> None:
        self.protocols = tuple(protocols)
        self.mttfs = tuple(mttfs)
        self.mttr_ms = mttr_ms
        self.msg_loss_prob = msg_loss_prob
        self.params = (params if params is not None
                       else ModelParams()).replace(mpl=mpl)
        self.measured_transactions = measured_transactions
        self.timeouts = timeouts if timeouts is not None else FaultTimeouts()
        self.seed = seed

    def fault_config(self, mttf_ms: float) -> FaultConfig:
        return FaultConfig(mttf_ms=mttf_ms, mttr_ms=self.mttr_ms,
                           msg_loss_prob=self.msg_loss_prob,
                           timeouts=self.timeouts)

    def run_point(self, protocol: str, mttf_ms: float) -> AvailabilityPoint:
        captured: list[DistributedSystem] = []
        result = repro.simulate(
            protocol, params=self.params,
            measured_transactions=self.measured_transactions,
            warmup_transactions=0, seed=self.seed,
            on_system=captured.append,
            faults=self.fault_config(mttf_ms))
        injector = captured[0].faults
        drops = dict(captured[0].network.drops_by_reason)
        if injector is None:  # failure-free baseline point
            return AvailabilityPoint(protocol, mttf_ms, result, 0, 0, 0, 0,
                                     drops_by_reason=drops)
        return AvailabilityPoint(
            protocol, mttf_ms, result,
            crashes=injector.crashes,
            recoveries=injector.recoveries,
            messages_dropped=injector.messages_dropped,
            in_doubt_resolved=injector.in_doubt_resolved,
            drops_by_reason=drops)

    def run(self, progress: typing.Callable[[str], None] | None = None,
            jobs: int = 1) -> AvailabilityResults:
        """Run the grid; ``jobs > 1`` fans points out to the warm shared
        process pool (each point is an independent simulation, so the
        parallel results are byte-identical to a serial run)."""
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        grid = [(protocol, mttf) for protocol in self.protocols
                for mttf in self.mttfs]
        points: dict[tuple[str, float], AvailabilityPoint] = {}
        if jobs == 1:
            for protocol, mttf in grid:
                if progress is not None:
                    label = "inf" if mttf == 0 else f"{mttf / 1000:.0f}s"
                    progress(f"availability: {protocol} @ MTTF {label}")
                points[(protocol, mttf)] = self.run_point(protocol, mttf)
            return AvailabilityResults(points, self.protocols, self.mttfs)
        from repro.experiments.pool import get_pool
        pool = get_pool(min(jobs, len(grid)))
        futures = {key: pool.submit(_pool_run_point, self, *key)
                   for key in grid}
        for protocol, mttf in grid:
            if progress is not None:
                label = "inf" if mttf == 0 else f"{mttf / 1000:.0f}s"
                progress(f"availability: {protocol} @ MTTF {label}")
            points[(protocol, mttf)] = futures[(protocol, mttf)].result()
        return AvailabilityResults(points, self.protocols, self.mttfs)


def _pool_run_point(sweep: AvailabilitySweep, protocol: str,
                    mttf_ms: float) -> AvailabilityPoint:
    """Module-level so the process pool can pickle it."""
    return sweep.run_point(protocol, mttf_ms)
