"""Experiment registry: id -> definition."""

from __future__ import annotations

from repro.experiments import definitions as d
from repro.experiments.base import ExperimentDefinition

EXPERIMENTS: dict[str, ExperimentDefinition] = {}

for _definition in (
        [d.EXP1, d.EXP2, d.EXP3_RCDC, d.EXP3_DC, d.EXP4_RCDC, d.EXP4_DC,
         d.EXP5_RCDC, d.EXP5_DC]
        + d.EXP6_RCDC + d.EXP6_DC
        + [d.EXP7, d.EXP8_UPDATE_HALF, d.EXP8_SMALL_DB]):
    EXPERIMENTS[_definition.experiment_id] = _definition


def experiment_ids() -> tuple[str, ...]:
    """All registered experiment ids (tables 3/4 are separate: see
    :mod:`repro.experiments.overheads`)."""
    return tuple(EXPERIMENTS)


def get_experiment(experiment_id: str) -> ExperimentDefinition:
    try:
        return EXPERIMENTS[experiment_id.upper()]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"choose from {experiment_ids()}") from None
