"""Replication sweep: quorum commit meets available-copies replication.

Races commit protocols (by default the blocking baseline 2PC, Skeen's
3PC, and Paxos Commit) across a replication-factor x site-MTTF grid
while a scheduled datacenter outage (the PR 9 correlated-failure plane)
hits the topology.  The question the grid answers: once pages are
replicated, the data survives the blast radius -- does the *commit
protocol* still block the survivors?

Per point it reports the same outage-centric metrics as the
region-outage sweep -- carried throughput during the outage, blocked
lock time, recovery time -- plus the replication plane's own counters
(update propagations shipped vs skipped by the available-copies rule).
Every grid point shares the workload seed, so protocols and factors face
common random numbers and differences isolate the commit path.
"""

from __future__ import annotations

import dataclasses
import typing

import repro
from repro.config import ModelParams
from repro.db.pages import ReplicationSpec
from repro.db.topology import NetworkTopology, TopologyKind
from repro.faults import FaultConfig, RegionPlan
from repro.obs import EventKind

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.system import SimulationResult

DEFAULT_PROTOCOLS: tuple[str, ...] = ("2PC", "3PC", "PAXOS")

DEFAULT_FACTORS: tuple[int, ...] = (1, 2, 3)

#: site MTTFs in ms; 0 = only the scheduled DC outage, no extra crashes.
DEFAULT_MTTFS: tuple[float, ...] = (0.0, 60_000.0)


@dataclasses.dataclass
class ReplicationPoint:
    """One (protocol, replication factor, MTTF) grid point."""

    protocol: str
    factor: int
    mttf_ms: float
    result: "SimulationResult"
    blocked_lock_ms: float
    in_doubt_resolved: int
    #: replica propagations shipped / skipped (available copies).
    replica_updates_sent: int
    replica_writes_skipped: int
    #: commits landing inside / after the outage window.
    commits_during: int
    commits_after: int
    #: ms from the heal instant to the first post-outage commit.
    recovery_ms: float | None
    outage_ms: float

    @property
    def throughput_during(self) -> float:
        """Committed tps carried while the DC outage was live."""
        return self.commits_during / (self.outage_ms / 1000.0)


@dataclasses.dataclass
class ReplicationResults:
    """All points of one replication sweep, with rendering helpers."""

    points: dict[tuple[str, int, float], ReplicationPoint]
    protocols: tuple[str, ...]
    factors: tuple[int, ...]
    mttfs: tuple[float, ...]
    topology: str

    def point(self, protocol: str, factor: int,
              mttf: float) -> ReplicationPoint:
        return self.points[(protocol, factor, mttf)]

    def table(self, mttf: float) -> str:
        """Text table: rows are replication factors, one cell of
        blocked-ms / carried-tps-during-outage per protocol."""
        width = max(20, max(len(p) for p in self.protocols) + 13)
        header = f"{'replication':>12} " + "".join(
            f"{p + ' (blk/tps)':>{width}}" for p in self.protocols)
        label = "outage only" if mttf == 0 else f"MTTF {mttf:.0f}ms"
        lines = [f"-- site faults: {label} --", header, "-" * len(header)]
        for factor in self.factors:
            row = f"{'R=' + str(factor):>12} "
            for protocol in self.protocols:
                point = self.points[(protocol, factor, mttf)]
                cell = (f"{point.blocked_lock_ms:.0f}ms"
                        f"/{point.throughput_during:.1f}")
                row += f"{cell:>{width}}"
            lines.append(row)
        return "\n".join(lines)

    def summary(self) -> str:
        lines = [f"== replication: quorum commit over replicated pages "
                 f"({self.topology}, DC 0 outage) =="]
        for mttf in self.mttfs:
            lines.append(self.table(mttf))
        top_factor = self.factors[-1]
        top_mttf = self.mttfs[-1]
        ranked = sorted(
            self.protocols,
            key=lambda p: self.points[(p, top_factor,
                                       top_mttf)].blocked_lock_ms)
        lines.append(f"at R={top_factor}: least blocking "
                     + " < ".join(ranked))
        shipped = sum(p.replica_updates_sent for p in self.points.values())
        skipped = sum(p.replica_writes_skipped
                      for p in self.points.values())
        lines.append(f"replica propagations: {shipped} shipped, "
                     f"{skipped} skipped (available copies)")
        return "\n".join(lines)


class ReplicationSweep:
    """Runs a protocol x replication-factor x MTTF grid under a DC
    outage on a multi-datacenter topology.

    Every point injects one scheduled ``dc_crash`` of datacenter 0 at
    ``at_ms`` for ``outage_ms``; MTTF values above zero add independent
    per-site crashes on top of the correlated loss.  ``num_sites``
    derives from the topology; the replication factor is capped by it.
    """

    def __init__(self, protocols: typing.Sequence[str] = DEFAULT_PROTOCOLS,
                 factors: typing.Sequence[int] = DEFAULT_FACTORS,
                 mttfs: typing.Sequence[float] = DEFAULT_MTTFS,
                 topology: str = "dcs:2x2:rtt_ms=5",
                 mpl: int = 2,
                 at_ms: float = 1000.0,
                 outage_ms: float = 1500.0,
                 mttr_ms: float = 2000.0,
                 params: ModelParams | None = None,
                 measured_transactions: int = 40,
                 seed: int = 7) -> None:
        self.topology = NetworkTopology.parse(topology) \
            if isinstance(topology, str) else topology
        if self.topology.kind is not TopologyKind.DCS:
            raise ValueError(
                "replication sweep needs a dcs:<D>x<S> topology (the DC "
                f"outage defines the blast radius), got {topology!r}")
        if self.topology.num_dcs < 2:
            raise ValueError(
                "replication sweep needs at least 2 datacenters")
        if not factors:
            raise ValueError("factors must be non-empty")
        for factor in factors:
            ReplicationSpec(factor).validate(self.num_sites)
        if not mttfs:
            raise ValueError("mttfs must be non-empty")
        for mttf in mttfs:
            if mttf < 0:
                raise ValueError(f"MTTF must be >= 0, got {mttf}")
        if outage_ms <= 0:
            raise ValueError(
                f"outage duration must be positive, got {outage_ms}")
        self.protocols = tuple(protocols)
        self.factors = tuple(int(f) for f in factors)
        self.mttfs = tuple(float(m) for m in mttfs)
        self.mpl = mpl
        self.at_ms = float(at_ms)
        self.outage_ms = float(outage_ms)
        self.mttr_ms = float(mttr_ms)
        self.base_params = params if params is not None else ModelParams()
        self.measured_transactions = measured_transactions
        self.seed = seed

    @property
    def num_sites(self) -> int:
        return self.topology.num_dcs * self.topology.sites_per_dc

    def point_params(self, factor: int) -> ModelParams:
        return self.base_params.replace(
            num_sites=self.num_sites,
            mpl=self.mpl,
            network_topology=self.topology,
            replication=ReplicationSpec(factor) if factor > 1 else None)

    def fault_config(self, mttf: float) -> FaultConfig:
        plan = RegionPlan.parse(
            f"dc_crash:0:at={self.at_ms}:for={self.outage_ms}")
        return FaultConfig(mttf_ms=mttf, mttr_ms=self.mttr_ms, region=plan)

    def run_point(self, protocol: str, factor: int,
                  mttf: float) -> ReplicationPoint:
        captured: list[repro.DistributedSystem] = []
        commit_times: list[float] = []

        def hook(system: repro.DistributedSystem) -> None:
            captured.append(system)
            system.bus.subscribe(
                EventKind.TXN_COMMIT,
                lambda event: commit_times.append(event.time))

        result = repro.simulate(
            protocol, params=self.point_params(factor),
            measured_transactions=self.measured_transactions,
            seed=self.seed, faults=self.fault_config(mttf), on_system=hook)
        system = captured[0]
        faults = system.faults
        assert faults is not None
        heal = self.at_ms + self.outage_ms
        during = sum(1 for t in commit_times if self.at_ms <= t < heal)
        after = [t for t in commit_times if t >= heal]
        return ReplicationPoint(
            protocol, factor, mttf, result,
            blocked_lock_ms=faults.blocked_lock_ms,
            in_doubt_resolved=faults.in_doubt_resolved,
            replica_updates_sent=system.replica_updates_sent,
            replica_writes_skipped=system.replica_writes_skipped,
            commits_during=during,
            commits_after=len(after),
            recovery_ms=(min(after) - heal) if after else None,
            outage_ms=self.outage_ms)

    def run(self, progress: typing.Callable[[str], None] | None = None,
            ) -> ReplicationResults:
        points: dict[tuple[str, int, float], ReplicationPoint] = {}
        for mttf in self.mttfs:
            for factor in self.factors:
                for protocol in self.protocols:
                    if progress is not None:
                        progress(f"replication: {protocol} R={factor} "
                                 f"mttf={mttf:.0f}ms")
                    points[(protocol, factor, mttf)] = self.run_point(
                        protocol, factor, mttf)
        return ReplicationResults(points, self.protocols, self.factors,
                                  self.mttfs, self.topology.describe())
