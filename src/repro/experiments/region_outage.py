"""Region-outage sweep: commit protocols under correlated failures.

The availability sweep (``repro-commit avail``) injects *independent*
per-site crashes -- the regime the paper's Section 4 experiments model.
Real deployments fail in correlated ways: a datacenter power event takes
every replica in the blast radius down at once, and a WAN cut leaves
both sides running but mutually unreachable.  This sweep (an extension;
see docs/MODEL.md, "Failure model & recovery") drives the fault plane's
region plans -- ``dc_crash:<dc>:at=..:for=..`` and
``partition:<dcA>|<dcB>:at=..:for=..`` -- over a protocol x outage x
duration grid on a multi-datacenter topology and reports, per point:

- **blocked lock time**: total milliseconds in-doubt cohorts spent
  operationally blocked (holding locks, actively trying to resolve)
  before the outcome was learned.  This is the paper's blocking
  phenomenon made measurable: under a coordinator-side DC loss, 2PC
  cohorts must wait out the outage while 3PC's termination protocol
  commits from peer evidence, so 2PC's blocked time is strictly higher;
- **carried throughput during the outage** and after it -- how much of
  the offered load the surviving region still commits;
- **recovery time**: how long after the heal instant the first
  post-outage commit lands, a proxy for time back to steady state;
- the ``drops_by_reason`` split from the network layer, separating
  partition drops from crashed-site and stochastic-loss drops.

Every grid point shares the workload seed, so protocols face common
random numbers and differences isolate commit-path behaviour.
"""

from __future__ import annotations

import dataclasses
import typing

import repro
from repro.config import ModelParams
from repro.db.topology import NetworkTopology, TopologyKind
from repro.faults import FaultConfig, RegionPlan
from repro.obs import EventKind

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.system import SimulationResult

#: Outage shapes: lose a whole datacenter, or cut the link between two.
DEFAULT_OUTAGES: tuple[str, ...] = ("dc_crash", "partition")

DEFAULT_DURATIONS: tuple[float, ...] = (2000.0, 4000.0)


@dataclasses.dataclass
class RegionOutagePoint:
    """One (protocol, outage, duration) grid point."""

    protocol: str
    outage: str
    duration_ms: float
    result: "SimulationResult"
    #: operational blocking (see FaultInjector.note_resolved).
    blocked_lock_ms: float
    in_doubt_resolved: int
    dc_crashes: int
    link_partitions: int
    #: network drop split, e.g. {"site_down": 3, "partition": 7}.
    drops_by_reason: dict[str, int]
    #: commits landing inside / after the outage window.
    commits_during: int
    commits_after: int
    #: ms from the heal instant to the first post-outage commit
    #: (None when nothing committed after the heal).
    recovery_ms: float | None

    @property
    def throughput_during(self) -> float:
        """Committed tps carried while the outage was live."""
        return self.commits_during / (self.duration_ms / 1000.0)


@dataclasses.dataclass
class RegionOutageResults:
    """All points of one region-outage sweep, with rendering helpers."""

    points: dict[tuple[str, str, float], RegionOutagePoint]
    protocols: tuple[str, ...]
    outages: tuple[str, ...]
    durations: tuple[float, ...]
    topology: str
    at_ms: float

    def point(self, protocol: str, outage: str,
              duration: float) -> RegionOutagePoint:
        return self.points[(protocol, outage, duration)]

    def table(self, outage: str) -> str:
        """Text table: rows are durations; blocked/tps-during/recovery
        per protocol."""
        width = max(24, max(len(p) for p in self.protocols) + 17)
        header = f"{'outage for':>12} " + "".join(
            f"{p + ' (blk/tps/rec)':>{width}}" for p in self.protocols)
        lines = [f"-- outage: {outage} at t={self.at_ms:.0f}ms --",
                 header, "-" * len(header)]
        for duration in self.durations:
            row = f"{duration:>10.0f}ms "
            for protocol in self.protocols:
                point = self.points[(protocol, outage, duration)]
                recovery = ("-" if point.recovery_ms is None
                            else f"{point.recovery_ms:.0f}ms")
                cell = (f"{point.blocked_lock_ms:.0f}ms"
                        f"/{point.throughput_during:.1f}"
                        f"/{recovery}")
                row += f"{cell:>{width}}"
            lines.append(row)
        return "\n".join(lines)

    def drop_split(self, outage: str) -> dict[str, int]:
        """Drop reasons summed over the grid for one outage shape."""
        total: dict[str, int] = {}
        for (_, point_outage, _), point in self.points.items():
            if point_outage != outage:
                continue
            for reason, count in point.drops_by_reason.items():
                total[reason] = total.get(reason, 0) + count
        return total

    def summary(self) -> str:
        lines = [f"== region-outage: correlated failures over "
                 f"{self.topology} =="]
        for outage in self.outages:
            lines.append(self.table(outage))
            split = self.drop_split(outage)
            rendered = ", ".join(f"{reason}={count}" for reason, count
                                 in sorted(split.items())) or "none"
            lines.append(f"   dropped messages by reason: {rendered}")
        top = self.durations[-1]
        for outage in self.outages:
            ranked = sorted(
                self.protocols,
                key=lambda p: self.points[(p, outage, top)].blocked_lock_ms)
            lines.append(f"at {outage} for {top:.0f}ms: least blocking "
                         + " < ".join(ranked))
        if "2PC" in self.protocols and "3PC" in self.protocols \
                and "dc_crash" in self.outages:
            blocking = self.points[("2PC", "dc_crash", top)].blocked_lock_ms
            skeen = self.points[("3PC", "dc_crash", top)].blocked_lock_ms
            lines.append(
                f"coordinator-side DC loss ({top:.0f}ms): 2PC blocked "
                f"{blocking:.0f}ms vs 3PC {skeen:.0f}ms -- the "
                f"termination protocol is what non-blocking buys")
        return "\n".join(lines)


class RegionOutageSweep:
    """Runs a protocol x outage x duration grid on a dcs topology.

    Each point injects one scheduled outage at ``at_ms``: ``dc_crash``
    takes down datacenter 0 (the side hosting coordinators for roughly
    its share of transactions) atomically for the duration;
    ``partition`` severs every link between datacenters 0 and 1 and
    heals them together.  ``num_sites`` is derived from the topology, so
    ``dcs:2x2`` runs 4 sites and ``dcs:3x2`` runs 6.
    """

    def __init__(self, protocols: typing.Sequence[str],
                 outages: typing.Sequence[str] = DEFAULT_OUTAGES,
                 durations_ms: typing.Sequence[float] = DEFAULT_DURATIONS,
                 topology: str = "dcs:2x2:rtt_ms=5",
                 mpl: int = 2,
                 at_ms: float = 1000.0,
                 params: ModelParams | None = None,
                 measured_transactions: int = 40,
                 seed: int = 7) -> None:
        for outage in outages:
            if outage not in DEFAULT_OUTAGES:
                raise ValueError(
                    f"unknown outage {outage!r}; expected one of "
                    f"{', '.join(DEFAULT_OUTAGES)}")
        if not durations_ms:
            raise ValueError("durations_ms must be non-empty")
        for duration in durations_ms:
            if duration <= 0:
                raise ValueError(
                    f"outage durations must be positive, got {duration}")
        self.topology = NetworkTopology.parse(topology) \
            if isinstance(topology, str) else topology
        if self.topology.kind is not TopologyKind.DCS:
            raise ValueError(
                "region-outage needs a dcs:<D>x<S> topology (datacenter "
                f"boundaries define the blast radius), got {topology!r}")
        if self.topology.num_dcs < 2:
            raise ValueError("region-outage needs at least 2 datacenters")
        self.protocols = tuple(protocols)
        self.outages = tuple(outages)
        self.durations = tuple(float(d) for d in durations_ms)
        self.mpl = mpl
        self.at_ms = float(at_ms)
        self.base_params = params if params is not None else ModelParams()
        self.measured_transactions = measured_transactions
        self.seed = seed

    @property
    def num_sites(self) -> int:
        return self.topology.num_dcs * self.topology.sites_per_dc

    def plan_for(self, outage: str, duration_ms: float) -> RegionPlan:
        if outage == "dc_crash":
            spec = f"dc_crash:0:at={self.at_ms}:for={duration_ms}"
        else:
            spec = f"partition:0|1:at={self.at_ms}:for={duration_ms}"
        return RegionPlan.parse(spec)

    def point_params(self) -> ModelParams:
        return self.base_params.replace(
            num_sites=self.num_sites,
            mpl=self.mpl,
            network_topology=self.topology)

    def run_point(self, protocol: str, outage: str,
                  duration_ms: float) -> RegionOutagePoint:
        captured: list[repro.DistributedSystem] = []
        commit_times: list[float] = []

        def hook(system: repro.DistributedSystem) -> None:
            captured.append(system)
            system.bus.subscribe(
                EventKind.TXN_COMMIT,
                lambda event: commit_times.append(event.time))

        config = FaultConfig(region=self.plan_for(outage, duration_ms))
        result = repro.simulate(
            protocol, params=self.point_params(),
            measured_transactions=self.measured_transactions,
            seed=self.seed, faults=config, on_system=hook)
        system = captured[0]
        faults = system.faults
        assert faults is not None
        heal = self.at_ms + duration_ms
        during = sum(1 for t in commit_times if self.at_ms <= t < heal)
        after = [t for t in commit_times if t >= heal]
        return RegionOutagePoint(
            protocol, outage, duration_ms, result,
            blocked_lock_ms=faults.blocked_lock_ms,
            in_doubt_resolved=faults.in_doubt_resolved,
            dc_crashes=faults.dc_crashes,
            link_partitions=faults.link_partitions,
            drops_by_reason=dict(system.network.drops_by_reason),
            commits_during=during,
            commits_after=len(after),
            recovery_ms=(min(after) - heal) if after else None)

    def run(self, progress: typing.Callable[[str], None] | None = None,
            ) -> RegionOutageResults:
        points: dict[tuple[str, str, float], RegionOutagePoint] = {}
        for outage in self.outages:
            for protocol in self.protocols:
                for duration in self.durations:
                    if progress is not None:
                        progress(f"region-outage: {protocol} {outage} "
                                 f"for {duration:.0f}ms")
                    points[(protocol, outage, duration)] = self.run_point(
                        protocol, outage, duration)
        return RegionOutageResults(points, self.protocols, self.outages,
                                   self.durations, self.topology.describe(),
                                   self.at_ms)
