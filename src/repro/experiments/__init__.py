"""The paper's experiment suite (Section 5), one module per experiment.

Each experiment module exposes an :data:`EXPERIMENT` definition mapping
a paper artifact (table or figure) to a parameter sweep; the shared
runner in :mod:`repro.experiments.base` executes sweeps and collects
series.  ``python -m repro.cli`` runs them from the command line; the
``benchmarks/`` directory wraps them for pytest-benchmark.
"""

from repro.experiments.availability import (
    AvailabilityPoint,
    AvailabilityResults,
    AvailabilitySweep,
)
from repro.experiments.base import (
    ExperimentDefinition,
    ExperimentResults,
    MplSweep,
    SweepPoint,
)
from repro.experiments.pool import shutdown_pool
from repro.experiments.region_outage import (
    RegionOutagePoint,
    RegionOutageResults,
    RegionOutageSweep,
)
from repro.experiments.registry import (
    EXPERIMENTS,
    experiment_ids,
    get_experiment,
)
from repro.experiments.replication import (
    ReplicationPoint,
    ReplicationResults,
    ReplicationSweep,
)
from repro.experiments.runner import (
    ParallelSweepRunner,
    PointSpec,
    PointSummary,
    SweepCounts,
    SweepWorkerError,
    point_seed,
    resolve_jobs,
)
from repro.experiments.saturation import (
    SaturationPoint,
    SaturationResults,
    SaturationSweep,
)
from repro.experiments.wan import (
    WanPoint,
    WanResults,
    WanSweep,
)

__all__ = [
    "AvailabilityPoint",
    "AvailabilityResults",
    "AvailabilitySweep",
    "EXPERIMENTS",
    "ExperimentDefinition",
    "ExperimentResults",
    "MplSweep",
    "ParallelSweepRunner",
    "PointSpec",
    "PointSummary",
    "RegionOutagePoint",
    "RegionOutageResults",
    "RegionOutageSweep",
    "ReplicationPoint",
    "ReplicationResults",
    "ReplicationSweep",
    "SaturationPoint",
    "SaturationResults",
    "SaturationSweep",
    "SweepCounts",
    "SweepPoint",
    "SweepWorkerError",
    "WanPoint",
    "WanResults",
    "WanSweep",
    "experiment_ids",
    "get_experiment",
    "point_seed",
    "resolve_jobs",
    "shutdown_pool",
]
