"""Saturation sweep: open-system throughput versus offered load.

The paper's closed model reports throughput at a fixed multiprogramming
level; an open system instead asks *how much offered load each commit
protocol can carry before the admission queues overflow*.  This sweep
(an extension; see docs/MODEL.md, "Open-system workload") runs every
requested protocol across a grid of per-site Poisson arrival rates and
reports, per point:

- **carried** throughput (committed transactions/second) against the
  **offered** load -- the two coincide until saturation, then carried
  flattens at the protocol's service ceiling;
- the **shed ratio** (arrivals dropped on a full admission queue);
- mean admission-queue wait and the p50/p95/p99 response percentiles,
  which diverge from the mean far below the point where throughput
  visibly flattens -- the behaviour the closed model cannot show.

Faster commit protocols (e.g. OPT's lending) saturate later: their
curves separate exactly where the paper's MPL sweeps predict.
"""

from __future__ import annotations

import dataclasses
import typing

import repro
from repro.config import ModelParams, open_system

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.system import OpenSimulationResult
    from repro.db.workload import AccessSkew

#: Per-site arrival rates (txns/second) bracketing the baseline
#: hardware's ~1.6 txns/s/site service ceiling at mpl=8: linear region,
#: the knee, saturation (latency blows up), deep overload (queues
#: overflow and load is shed).
DEFAULT_RATES: tuple[float, ...] = (0.5, 1.0, 1.5, 2.0, 3.0, 5.0)


@dataclasses.dataclass
class SaturationPoint:
    """One (protocol, arrival rate) grid point."""

    protocol: str
    arrival_rate_tps: float
    result: "OpenSimulationResult"

    @property
    def carried(self) -> float:
        return self.result.throughput

    @property
    def shed_ratio(self) -> float:
        return self.result.shed_ratio

    @property
    def p95_ms(self) -> float:
        return self.result.response_p95_ms


@dataclasses.dataclass
class SaturationResults:
    """All points of one saturation sweep, with rendering helpers."""

    points: dict[tuple[str, float], SaturationPoint]
    protocols: tuple[str, ...]
    rates: tuple[float, ...]

    def point(self, protocol: str, rate: float) -> SaturationPoint:
        return self.points[(protocol, rate)]

    def series(self, protocol: str) -> list[tuple[float, float]]:
        """[(arrival_rate_tps, carried_tps), ...] for one protocol."""
        return [(rate, self.points[(protocol, rate)].carried)
                for rate in self.rates]

    def table(self, precision: int = 2) -> str:
        """Text table: rows are rates; carried/shed/p95 per protocol."""
        width = max(20, max(len(p) for p in self.protocols) + 13)
        header = f"{'rate/site':>10} " + "".join(
            f"{p + ' (car/shed/p95)':>{width}}" for p in self.protocols)
        lines = [header, "-" * len(header)]
        for rate in self.rates:
            row = f"{rate:>10.2f} "
            for protocol in self.protocols:
                point = self.points[(protocol, rate)]
                cell = (f"{point.carried:.{precision}f}"
                        f"/{point.shed_ratio:.2f}"
                        f"/{point.p95_ms:.0f}ms")
                row += f"{cell:>{width}}"
            lines.append(row)
        return "\n".join(lines)

    def summary(self) -> str:
        lines = ["== saturation: carried load vs offered load "
                 "(per-site txns/s) =="]
        lines.append(self.table())
        for protocol in self.protocols:
            knee = next((rate for rate in self.rates
                         if self.points[(protocol, rate)].shed_ratio > 0.01),
                        None)
            if knee is None:
                lines.append(f"{protocol:>8}: no shedding up to "
                             f"{self.rates[-1]:.2f} txns/s/site")
            else:
                lines.append(f"{protocol:>8}: sheds load from "
                             f"{knee:.2f} txns/s/site")
        return "\n".join(lines)


class SaturationSweep:
    """Runs a protocol x arrival-rate grid of open-system simulations.

    Every grid point of one sweep shares ``seed``: arrival timing and
    workload shape are drawn from the same substreams everywhere, so the
    protocols face literally the same offered load (common random
    numbers) and two sweeps with the same arguments are identical.
    """

    def __init__(self, protocols: typing.Sequence[str],
                 rates: typing.Sequence[float] = DEFAULT_RATES,
                 mpl: int = 8,
                 skew: "AccessSkew | None" = None,
                 queue_limit: int = 64,
                 params: ModelParams | None = None,
                 measured_transactions: int = 300,
                 seed: int = 20250705) -> None:
        if not rates:
            raise ValueError("rates must be non-empty")
        self.protocols = tuple(protocols)
        self.rates = tuple(rates)
        self.skew = skew
        self.queue_limit = queue_limit
        self.base_params = params
        self.mpl = mpl
        self.measured_transactions = measured_transactions
        self.seed = seed

    def point_params(self, rate: float) -> ModelParams:
        if self.base_params is not None:
            return self.base_params.replace(
                workload_mode=repro.WorkloadMode.OPEN,
                arrival_rate_tps=rate,
                admission_queue_limit=self.queue_limit,
                skew=self.skew,
                mpl=self.mpl)
        return open_system(arrival_rate_tps=rate, skew=self.skew,
                           admission_queue_limit=self.queue_limit,
                           mpl=self.mpl)

    def run_point(self, protocol: str, rate: float) -> SaturationPoint:
        result = repro.simulate(
            protocol, params=self.point_params(rate),
            measured_transactions=self.measured_transactions,
            seed=self.seed)
        return SaturationPoint(protocol, rate,
                               typing.cast("OpenSimulationResult", result))

    def run(self, progress: typing.Callable[[str], None] | None = None,
            ) -> SaturationResults:
        points: dict[tuple[str, float], SaturationPoint] = {}
        for protocol in self.protocols:
            for rate in self.rates:
                if progress is not None:
                    progress(f"saturation: {protocol} @ "
                             f"{rate:.2f} txns/s/site")
                points[(protocol, rate)] = self.run_point(protocol, rate)
        return SaturationResults(points, self.protocols, self.rates)
