"""WAN sweep: commit protocols across multi-datacenter topologies.

The paper's LAN switch makes wire latency free, so protocols differ only
in CPU/disk overheads.  Spread the same system across datacenters and
the picture inverts: every cross-DC message now pays ``rtt_ms / 2`` of
wire latency, so commit latency is dominated by *how many cross-DC round
trips the protocol's commit path serializes* (the metric Gray & Lamport
count protocols by).  This sweep (an extension; see docs/MODEL.md,
"Topology & network cost model") runs a protocol x RTT x placement grid
and reports, per point:

- mean commit **response time** -- at WAN RTTs the fewer-round-trip
  variants (PC skips the commit-ACK round, OPT lends locks across the
  prepared window) beat 2PC, and 3PC's extra PRECOMMIT round makes it
  strictly worse;
- **cross-DC round trips per commit** from the metrics layer (two
  cross-DC messages = one round trip), the quantity that multiplies RTT
  into latency;
- the intra- vs cross-DC message split from the network layer, showing
  how much traffic the ``local`` placement policy (cohorts drawn from
  the master's own DC first) keeps off the expensive links.

Placements: ``spread`` picks cohort sites uniformly (the paper's rule);
``local`` prefers same-DC cohorts (``prefer_local_cohorts``).
"""

from __future__ import annotations

import dataclasses
import typing

import repro
from repro.config import ModelParams
from repro.db.topology import NetworkTopology, TopologyKind

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.system import SimulationResult

#: Cross-DC round-trip times (ms) from "same metro" to
#: "cross-continent"; 0 isolates the placement/accounting machinery.
DEFAULT_RTTS: tuple[float, ...] = (0.0, 10.0, 40.0, 100.0)

DEFAULT_PLACEMENTS: tuple[str, ...] = ("spread", "local")


@dataclasses.dataclass
class WanPoint:
    """One (protocol, rtt, placement) grid point."""

    protocol: str
    rtt_ms: float
    placement: str
    result: "SimulationResult"
    #: remote-message split observed by the network layer (whole run).
    cross_dc_messages: int
    intra_dc_messages: int
    #: per-committed-transaction round trips from the metrics layer
    #: (measured period only).
    cross_dc_round_trips_per_commit: float

    @property
    def response_ms(self) -> float:
        return self.result.response_time_ms

    @property
    def throughput(self) -> float:
        return self.result.throughput


@dataclasses.dataclass
class WanResults:
    """All points of one WAN sweep, with rendering helpers."""

    points: dict[tuple[str, float, str], WanPoint]
    protocols: tuple[str, ...]
    rtts: tuple[float, ...]
    placements: tuple[str, ...]

    def point(self, protocol: str, rtt: float, placement: str) -> WanPoint:
        return self.points[(protocol, rtt, placement)]

    def series(self, protocol: str,
               placement: str) -> list[tuple[float, float]]:
        """[(rtt_ms, response_ms), ...] for one protocol/placement."""
        return [(rtt, self.points[(protocol, rtt, placement)].response_ms)
                for rtt in self.rtts]

    def table(self, placement: str, precision: int = 0) -> str:
        """Text table: rows are RTTs; resp/xdc-rt per protocol."""
        width = max(18, max(len(p) for p in self.protocols) + 11)
        header = f"{'rtt':>8} " + "".join(
            f"{p + ' (resp/xdc-rt)':>{width}}" for p in self.protocols)
        lines = [f"-- placement: {placement} --", header,
                 "-" * len(header)]
        for rtt in self.rtts:
            row = f"{rtt:>6.0f}ms "
            for protocol in self.protocols:
                point = self.points[(protocol, rtt, placement)]
                cell = (f"{point.response_ms:.{precision}f}ms"
                        f"/{point.cross_dc_round_trips_per_commit:.1f}")
                row += f"{cell:>{width}}"
            lines.append(row)
        return "\n".join(lines)

    def summary(self) -> str:
        lines = ["== wan: commit latency vs cross-DC round-trip time =="]
        for placement in self.placements:
            lines.append(self.table(placement))
        top_rtt = self.rtts[-1]
        for placement in self.placements:
            ranked = sorted(
                self.protocols,
                key=lambda p: self.points[(p, top_rtt,
                                           placement)].response_ms)
            lines.append(
                f"at rtt={top_rtt:.0f}ms, {placement}: fastest commit "
                + " < ".join(ranked))
        return "\n".join(lines)


class WanSweep:
    """Runs a protocol x RTT x placement grid over a multi-DC topology.

    Every grid point shares ``seed``: workload shape comes from the same
    substreams everywhere, so protocols face common random numbers and
    latency differences isolate the commit path.  The topology is
    ``num_dcs`` datacenters of ``num_sites / num_dcs`` sites each
    (``dcs:DxS:rtt_ms=<rtt>``), closed mode at the given ``mpl``.
    """

    def __init__(self, protocols: typing.Sequence[str],
                 rtts_ms: typing.Sequence[float] = DEFAULT_RTTS,
                 placements: typing.Sequence[str] = DEFAULT_PLACEMENTS,
                 num_dcs: int = 2,
                 mpl: int = 2,
                 params: ModelParams | None = None,
                 measured_transactions: int = 300,
                 seed: int = 20250705) -> None:
        if not rtts_ms:
            raise ValueError("rtts_ms must be non-empty")
        for placement in placements:
            if placement not in ("spread", "local"):
                raise ValueError(
                    f"unknown placement {placement!r}; expected "
                    f"'spread' or 'local'")
        self.protocols = tuple(protocols)
        self.rtts = tuple(float(rtt) for rtt in rtts_ms)
        self.placements = tuple(placements)
        self.num_dcs = num_dcs
        self.mpl = mpl
        self.base_params = params if params is not None else ModelParams()
        if self.base_params.num_sites % num_dcs:
            raise ValueError(
                f"num_sites={self.base_params.num_sites} does not split "
                f"into {num_dcs} equal datacenters")
        self.measured_transactions = measured_transactions
        self.seed = seed

    def topology_for(self, rtt_ms: float) -> NetworkTopology:
        return NetworkTopology(
            kind=TopologyKind.DCS,
            num_dcs=self.num_dcs,
            sites_per_dc=self.base_params.num_sites // self.num_dcs,
            rtt_ms=rtt_ms)

    def point_params(self, rtt_ms: float, placement: str) -> ModelParams:
        return self.base_params.replace(
            mpl=self.mpl,
            network_topology=self.topology_for(rtt_ms),
            prefer_local_cohorts=(placement == "local"))

    def run_point(self, protocol: str, rtt_ms: float,
                  placement: str) -> WanPoint:
        captured: list[repro.DistributedSystem] = []
        result = repro.simulate(
            protocol, params=self.point_params(rtt_ms, placement),
            measured_transactions=self.measured_transactions,
            seed=self.seed, on_system=captured.append)
        system = captured[0]
        return WanPoint(
            protocol, rtt_ms, placement, result,
            cross_dc_messages=system.network.cross_dc_messages,
            intra_dc_messages=system.network.intra_dc_messages,
            cross_dc_round_trips_per_commit=(
                system.metrics.cross_dc_round_trips_per_commit()))

    def run(self, progress: typing.Callable[[str], None] | None = None,
            ) -> WanResults:
        points: dict[tuple[str, float, str], WanPoint] = {}
        for placement in self.placements:
            for protocol in self.protocols:
                for rtt in self.rtts:
                    if progress is not None:
                        progress(f"wan: {protocol} @ rtt={rtt:.0f}ms "
                                 f"({placement})")
                    points[(protocol, rtt, placement)] = self.run_point(
                        protocol, rtt, placement)
        return WanResults(points, self.protocols, self.rtts,
                          self.placements)
