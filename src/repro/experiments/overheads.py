"""Tables 3 and 4: protocol overheads for committing transactions.

The paper tabulates, per committing transaction, the number of
execution-phase messages, forced log writes, and commit-phase messages,
at ``DistDegree`` 3 (Table 3) and 6 (Table 4).  Here both the *analytic*
counts (closed forms below) and *measured* counts (from abort-free
simulation runs) are produced; the benchmark asserts they agree.

Closed forms, with ``D`` = DistDegree (so ``D - 1`` remote cohorts,
``r = D - 1``):

===========  ===================  =======================  ==================
Protocol     execution messages   forced writes            commit messages
===========  ===================  =======================  ==================
2PC / PA     ``2r``               ``2D + 1``               ``4r``
PC           ``2r``               ``D + 2``                ``3r``
3PC          ``2r``               ``3D + 2``               ``6r``
DPCC         ``2r``               ``1``                    ``0``
CENT         ``0``                ``1``                    ``0``
===========  ===================  =======================  ==================

OPT variants inherit the counts of their base protocol (lending is free
in messages and log writes).
"""

from __future__ import annotations

import dataclasses
import typing

import repro
from repro.config import ModelParams


@dataclasses.dataclass(frozen=True)
class OverheadRow:
    """One protocol's row of Table 3/4."""

    protocol: str
    execution_messages: float
    forced_writes: float
    commit_messages: float

    def as_tuple(self) -> tuple[float, float, float]:
        return (self.execution_messages, self.forced_writes,
                self.commit_messages)


#: The protocols the paper tabulates, in table order.
TABLE_PROTOCOLS: tuple[str, ...] = ("2PC", "PA", "PC", "3PC", "DPCC", "CENT")


def expected_overheads(protocol: str, dist_degree: int) -> OverheadRow:
    """Analytic per-committing-transaction overheads."""
    remote = dist_degree - 1
    base = protocol.upper().replace("OPT-", "")
    if base == "OPT":
        base = "2PC"
    if base in ("2PC", "PA"):
        row = (2 * remote, 2 * dist_degree + 1, 4 * remote)
    elif base == "PC":
        row = (2 * remote, dist_degree + 2, 3 * remote)
    elif base == "3PC":
        row = (2 * remote, 3 * dist_degree + 2, 6 * remote)
    elif base == "DPCC":
        row = (2 * remote, 1, 0)
    elif base == "CENT":
        row = (0, 1, 0)
    else:
        raise KeyError(f"no analytic overheads for protocol {protocol!r}")
    return OverheadRow(protocol, *row)


#: base seed of the table measurement runs; adaptive replications step
#: by the sweep runner's historical stride.
MEASURE_SEED = 20250705


def measure_overheads(protocol: str, dist_degree: int, cohort_size: int,
                      transactions: int = 60,
                      seed: int = MEASURE_SEED) -> OverheadRow:
    """Measured overheads from a conflict-free simulation run."""
    params = ModelParams(num_sites=8, db_size=48000, mpl=1,
                         dist_degree=dist_degree, cohort_size=cohort_size)
    result = repro.simulate(protocol, params=params,
                            measured_transactions=transactions,
                            warmup_transactions=10, seed=seed)
    if result.aborted:
        raise RuntimeError(
            "overhead measurement expected an abort-free run; got "
            f"{result.aborted} aborts")
    exec_msgs, forced, commit_msgs = result.overheads.rounded()
    return OverheadRow(protocol, exec_msgs, forced, commit_msgs)


def _measure_row(spec: tuple[str, int, int, int, int]) -> OverheadRow:
    """Worker entry point for parallel table measurement (module-level
    so it pickles by reference)."""
    protocol, dist_degree, cohort_size, transactions, seed = spec
    return measure_overheads(protocol, dist_degree, cohort_size,
                             transactions=transactions, seed=seed)


def _measure_rows(specs: list[tuple[str, int, int, int, int]],
                  jobs: int) -> list[OverheadRow]:
    """Run measurement specs, through the warm shared pool if asked."""
    if jobs > 1 and len(specs) > 1:
        from repro.experiments.pool import get_pool
        pool = get_pool(min(jobs, len(specs)))
        return list(pool.map(_measure_row, specs))
    return [_measure_row(spec) for spec in specs]


def build_table(dist_degree: int, cohort_size: int,
                protocols: typing.Sequence[str] = TABLE_PROTOCOLS,
                measured: bool = True,
                transactions: int = 60,
                jobs: int = 1,
                target_ci: float | None = None,
                ) -> list[tuple[OverheadRow, OverheadRow]]:
    """[(expected, measured), ...] rows of Table 3 (D=3) or 4 (D=6).

    ``jobs > 1`` measures the per-protocol rows on the warm shared
    worker pool; each row is an independent simulation with a fixed
    seed, so the table is identical to the serial one.

    ``target_ci`` replicates each row's measurement with fresh seeds
    until all three overhead means reach that 90%-CI relative
    half-width (waves of reps via :class:`~repro.sim.stats.StoppingRule`);
    the reported row is the mean over replications.  Since the paper's
    overheads are deterministic per committing transaction, rows
    normally settle at the two-replication floor.
    """
    expected_rows = [expected_overheads(protocol, dist_degree)
                     for protocol in protocols]
    if not measured:
        return [(expected, expected) for expected in expected_rows]
    if target_ci is not None:
        return list(zip(expected_rows,
                        _measure_adaptive(list(protocols), dist_degree,
                                          cohort_size, transactions,
                                          jobs, target_ci)))
    specs = [(protocol, dist_degree, cohort_size, transactions,
              MEASURE_SEED)
             for protocol in protocols]
    return list(zip(expected_rows, _measure_rows(specs, jobs)))


def _measure_adaptive(protocols: list[str], dist_degree: int,
                      cohort_size: int, transactions: int, jobs: int,
                      target_ci: float) -> list[OverheadRow]:
    """CI-driven replication of the measured rows (mean per metric)."""
    from repro.experiments.runner import point_seed
    from repro.sim.stats import StoppingRule

    def fresh_rules():
        return tuple(StoppingRule(target_ci, min_replications=2,
                                  max_replications=8) for _ in range(3))

    rules = {protocol: fresh_rules() for protocol in protocols}
    reps_done = dict.fromkeys(protocols, 0)
    while True:
        wave: list[tuple[str, int, int, int, int]] = []
        for protocol in protocols:
            pending = max(rule.next_wave() for rule in rules[protocol])
            for rep in range(reps_done[protocol],
                             reps_done[protocol] + pending):
                wave.append((protocol, dist_degree, cohort_size,
                             transactions, point_seed(MEASURE_SEED, rep)))
        if not wave:
            break
        for spec, row in zip(wave, _measure_rows(wave, jobs)):
            for rule, value in zip(rules[spec[0]], row.as_tuple()):
                rule.observe(value)
            reps_done[spec[0]] += 1
    return [OverheadRow(protocol, *(rule.interval()[0]
                                    for rule in rules[protocol]))
            for protocol in protocols]


def render_table(dist_degree: int, cohort_size: int,
                 protocols: typing.Sequence[str] = TABLE_PROTOCOLS,
                 transactions: int = 60,
                 jobs: int = 1,
                 target_ci: float | None = None) -> str:
    """The paper's table, with measured-vs-analytic agreement marks."""
    rows = build_table(dist_degree, cohort_size, protocols,
                       transactions=transactions, jobs=jobs,
                       target_ci=target_ci)
    header = (f"Protocol Overheads (DistDegree = {dist_degree})\n"
              f"{'Protocol':>9} {'ExecMsgs':>9} {'ForcedWrites':>13} "
              f"{'CommitMsgs':>11}  match")
    lines = [header]
    for expected, actual in rows:
        ok = "yes" if expected.as_tuple() == actual.as_tuple() else "NO"
        lines.append(
            f"{actual.protocol:>9} {actual.execution_messages:>9.0f} "
            f"{actual.forced_writes:>13.0f} {actual.commit_messages:>11.0f}"
            f"  {ok}")
    return "\n".join(lines)
