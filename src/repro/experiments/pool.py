"""The warm, process-wide worker pool behind parallel sweeps.

Sweep grids are embarrassingly parallel but individual points are
cheap, so pool *lifecycle* cost dominates unless it is amortized:
spawning a fresh :class:`~concurrent.futures.ProcessPoolExecutor` per
``run()`` call pays fork + interpreter startup + ``import repro`` per
worker per sweep, which BENCH_5 measured at **0.74x of serial** for a
jobs=4 E1 sweep.  This module instead keeps ONE lazily created pool per
process and reuses it across :class:`~repro.experiments.runner.
ParallelSweepRunner` calls, sweeps, experiments, and overhead tables in
a single CLI invocation.

Lifecycle rules:

- **Lazy**: no pool exists until the first ``get_pool()`` call; serial
  code paths (``jobs=1``) never touch this module.
- **Warm**: workers pre-import :mod:`repro` once via the initializer,
  so later task batches pay only IPC, never import cost.
- **Grow-only**: a request for more workers than the current pool has
  replaces it; a request for fewer reuses the bigger pool (idle
  workers cost nothing).
- **Fork-safe**: the pool handle records its creating PID.  A process
  that inherits the module state through ``fork()`` (or a worker that
  somehow imports this module) sees a PID mismatch, silently drops the
  inherited handle, and builds its own pool on demand -- it never
  touches the parent's executor machinery.
- **Hygienic**: ``shutdown_pool()`` tears the pool down explicitly and
  is registered with :mod:`atexit`; it is idempotent and safe to call
  on a pool that already broke.
"""

from __future__ import annotations

import atexit
import concurrent.futures
import os
import typing

_pool: "concurrent.futures.ProcessPoolExecutor | None" = None
_pool_workers: int = 0
_pool_pid: int = 0


def _worker_init() -> None:  # pragma: no cover - runs in worker processes
    """Pre-import the package once per worker, so every task batch the
    worker ever receives starts hot."""
    import repro  # noqa: F401


def get_pool(workers: int) -> "concurrent.futures.ProcessPoolExecutor":
    """The shared pool, created (or grown) on demand.

    ``workers`` is the number of workers the caller needs *right now*;
    the returned pool has at least that many.
    """
    global _pool, _pool_workers, _pool_pid
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if _pool is not None and _pool_pid != os.getpid():
        # Inherited across a fork: the executor's queues and threads
        # belong to the parent; just forget the handle.
        _pool = None
        _pool_workers = 0
    if _pool is not None and _pool_workers < workers:
        shutdown_pool()
    if _pool is None:
        _pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=workers, initializer=_worker_init)
        _pool_workers = workers
        _pool_pid = os.getpid()
    return _pool


def active_pool() -> "concurrent.futures.ProcessPoolExecutor | None":
    """The current pool if this process owns one (None otherwise);
    never creates."""
    if _pool is not None and _pool_pid == os.getpid():
        return _pool
    return None


def pool_workers() -> int:
    """Worker count of the active pool (0 when no pool exists)."""
    return _pool_workers if active_pool() is not None else 0


def shutdown_pool() -> None:
    """Tear down the shared pool (idempotent; also the atexit hook).

    Safe to call on a broken pool -- ``Executor.shutdown`` tolerates
    that -- and a no-op in processes that merely inherited the handle.
    """
    global _pool, _pool_workers
    pool = active_pool()
    _pool = None
    _pool_workers = 0
    if pool is not None:
        pool.shutdown(wait=True, cancel_futures=True)


atexit.register(shutdown_pool)
