"""repro: a reproduction of *Revisiting Commit Processing in Distributed
Database Systems* (Gupta, Haritsa, Ramamritham; SIGMOD 1997).

The package simulates a distributed DBMS (closed queueing model) under a
family of transaction commit protocols -- 2PC, presumed abort, presumed
commit, 3PC, the paper's new OPT protocol and its combinations -- plus
the CENT and DPCC baselines, and regenerates every table and figure of
the paper's evaluation.

Quickstart::

    from repro import simulate

    result = simulate("OPT", mpl=6)
    print(result.summary())

See ``examples/`` for richer usage and ``benchmarks/`` for the paper's
experiments.
"""

from __future__ import annotations

import typing

from repro.config import (
    ModelParams,
    Topology,
    TransactionType,
    WorkloadMode,
    baseline_rc_dc,
    fast_network,
    high_distribution,
    open_system,
    pure_data_contention,
    sequential_transactions,
    surprise_aborts,
)
from repro.core import (
    PROTOCOL_NAMES,
    CommitProtocol,
    create_protocol,
    protocol_requires_centralized_topology,
)
from repro.db.system import (
    DistributedSystem,
    OpenSimulationResult,
    SimulationResult,
)
from repro.db.topology import (
    LanSwitch,
    NetworkTopology,
    TopologyKind,
    WanTopology,
)
from repro.db.pages import ReplicationSpec
from repro.db.workload import AccessSkew, SkewKind

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults import FaultConfig

__version__ = "1.0.0"

__all__ = [
    "PROTOCOL_NAMES",
    "AccessSkew",
    "CommitProtocol",
    "DistributedSystem",
    "LanSwitch",
    "ModelParams",
    "NetworkTopology",
    "OpenSimulationResult",
    "ReplicationSpec",
    "SimulationResult",
    "SkewKind",
    "Topology",
    "TopologyKind",
    "TransactionType",
    "WanTopology",
    "WorkloadMode",
    "baseline_rc_dc",
    "build_system",
    "create_protocol",
    "fast_network",
    "high_distribution",
    "open_system",
    "protocol_requires_centralized_topology",
    "pure_data_contention",
    "sequential_transactions",
    "simulate",
    "surprise_aborts",
]


def build_system(protocol: str, params: ModelParams | None = None,
                 seed: int | None = None,
                 faults: "FaultConfig | None" = None,
                 **param_overrides: object,
                 ) -> DistributedSystem:
    """Construct a ready-to-run system for the named protocol.

    The CENT baseline automatically switches the topology to
    centralized; everything else runs distributed unless the caller's
    ``params`` say otherwise.

    ``faults`` (a :class:`repro.faults.FaultConfig`) arms the fault
    injector: site crash/recover cycles, message loss, and the protocol
    timeout machinery.  ``None`` (the default) keeps the failure-free
    model byte-identical to previous releases.
    """
    if params is None:
        params = ModelParams()
    if param_overrides:
        params = params.replace(**param_overrides)
    if protocol_requires_centralized_topology(protocol):
        params = params.replace(topology=Topology.CENTRALIZED)
    return DistributedSystem(params, create_protocol(protocol), seed=seed,
                             faults=faults)


def simulate(protocol: str, params: ModelParams | None = None,
             measured_transactions: int = 2000,
             warmup_transactions: int | None = None,
             seed: int | None = None,
             on_system: object = None,
             faults: "FaultConfig | None" = None,
             **param_overrides: object) -> SimulationResult:
    """Run one simulation and return its :class:`SimulationResult`.

    ``param_overrides`` are applied on top of ``params`` (or the
    baseline settings), e.g. ``simulate("2PC", mpl=4, dist_degree=6)``.

    ``on_system`` (if given) is called with the built
    :class:`DistributedSystem` before the run starts -- the hook for
    attaching observers to ``system.bus`` (tracers, event exporters,
    phase-latency breakdowns; see :mod:`repro.obs`).

    ``faults`` (if given) is the :class:`repro.faults.FaultConfig` for
    the run; see :mod:`repro.faults`.
    """
    system = build_system(protocol, params, seed=seed, faults=faults,
                          **param_overrides)
    if on_system is not None:
        on_system(system)  # type: ignore[operator]
    return system.run(measured_transactions=measured_transactions,
                      warmup_transactions=warmup_transactions)
