"""Result rendering: text tables and simple ASCII charts."""

from repro.analysis.export import (
    export_experiment,
    export_long_csv,
    export_tsv,
)
from repro.analysis.tables import (
    render_comparison,
    render_series_table,
    render_sparkline,
)

__all__ = [
    "export_experiment",
    "export_long_csv",
    "export_tsv",
    "render_comparison",
    "render_series_table",
    "render_sparkline",
]
