"""Exporting experiment series for external plotting.

The paper presents line plots; this module writes the regenerated
series in two plotting-friendly formats:

- **TSV**: one file per (experiment, metric): a header row, then one
  row per MPL with a column per protocol -- directly loadable by
  gnuplot, pandas, R, or a spreadsheet;
- **CSV long form**: one file per experiment with columns
  ``metric, protocol, mpl, value`` -- convenient for ggplot/seaborn.
"""

from __future__ import annotations

import csv
import pathlib
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.base import ExperimentResults


def export_tsv(results: "ExperimentResults", metric: str,
               directory: pathlib.Path | str) -> pathlib.Path:
    """Write one metric's series as TSV; returns the file path."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    safe_id = results.experiment_id.replace("/", "_")
    path = directory / f"{safe_id}.{metric}.tsv"
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter="\t")
        writer.writerow(["mpl", *results.protocols])
        for mpl in results.mpls:
            row: list[object] = [mpl]
            for protocol in results.protocols:
                row.append(f"{results.points[(protocol, mpl)].metric(metric):.6g}")
            writer.writerow(row)
    return path


def export_long_csv(results: "ExperimentResults",
                    metrics: typing.Sequence[str],
                    directory: pathlib.Path | str) -> pathlib.Path:
    """Write all metrics in long form; returns the file path."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    safe_id = results.experiment_id.replace("/", "_")
    path = directory / f"{safe_id}.long.csv"
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["metric", "protocol", "mpl", "value"])
        for metric in metrics:
            for protocol in results.protocols:
                for mpl, value in results.series(protocol, metric):
                    writer.writerow([metric, protocol, mpl,
                                     f"{value:.6g}"])
    return path


def export_experiment(results: "ExperimentResults",
                      metrics: typing.Sequence[str],
                      directory: pathlib.Path | str) -> list[pathlib.Path]:
    """TSV per metric plus one long-form CSV."""
    paths = [export_tsv(results, metric, directory) for metric in metrics]
    paths.append(export_long_csv(results, metrics, directory))
    return paths
