"""Rendering experiment results as text.

The paper presents its results as line plots; a terminal reproduction
renders the same series as tables (rows = MPL, columns = protocols) plus
optional unicode sparklines to eyeball curve shapes.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.base import ExperimentResults

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def render_series_table(results: "ExperimentResults", metric: str,
                        precision: int = 2) -> str:
    """Rows = MPL, one column per protocol, for the given metric."""
    protocols = results.protocols
    width = max(8, max(len(p) for p in protocols) + 1)
    header = f"{'MPL':>4} " + " ".join(f"{p:>{width}}" for p in protocols)
    lines = [f"[{metric}]", header]
    for mpl in results.mpls:
        cells = []
        for protocol in protocols:
            value = results.points[(protocol, mpl)].metric(metric)
            cells.append(f"{value:>{width}.{precision}f}")
        lines.append(f"{mpl:>4} " + " ".join(cells))
    return "\n".join(lines)


def render_sparkline(values: typing.Sequence[float]) -> str:
    """A one-line unicode sketch of a curve."""
    if not values:
        return ""
    low = min(values)
    high = max(values)
    if high == low:
        return _SPARK_LEVELS[0] * len(values)
    scale = (len(_SPARK_LEVELS) - 1) / (high - low)
    return "".join(_SPARK_LEVELS[round((v - low) * scale)] for v in values)


def render_comparison(results: "ExperimentResults",
                      metric: str = "throughput") -> str:
    """Per-protocol peak values plus curve sparklines."""
    lines = [f"[{metric}] peak value @ MPL, curve over "
             f"MPL={list(results.mpls)}"]
    for protocol in results.protocols:
        series = results.series(protocol, metric)
        values = [v for _, v in series]
        peak_mpl, peak = results.peak(protocol, metric)
        lines.append(f"{protocol:>8}: {peak:8.2f} @ {peak_mpl:<2d} "
                     f"{render_sparkline(values)}")
    return "\n".join(lines)
