"""In-memory event recording.

:class:`EventLog` is the simplest useful subscriber: it appends every
event it sees to a list.  Tests use it to assert on *sequences* of
behaviour (e.g. that a failure-injection run is indistinguishable from a
healthy run right up to the crash instant); tools use it to snapshot a
run for offline inspection.
"""

from __future__ import annotations

import typing

from repro.obs.bus import EventBus, Subscription
from repro.obs.events import EventKind, SimEvent, event_to_dict


class EventLog:
    """Record events of the given kinds (default: all kinds)."""

    def __init__(self, kinds: typing.Iterable[EventKind] | None = None,
                 limit: int | None = None) -> None:
        self.kinds = tuple(kinds) if kinds is not None else tuple(EventKind)
        self.events: list[SimEvent] = []
        self._limit = limit
        self._subscription: Subscription | None = None

    # ------------------------------------------------------------------
    def attach(self, bus: EventBus) -> "EventLog":
        if self._subscription is not None:
            raise RuntimeError("EventLog is already attached")
        self._subscription = bus.subscribe(self.kinds, self._record)
        return self

    def detach(self) -> None:
        if self._subscription is not None:
            self._subscription.cancel()
            self._subscription = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.detach()

    def _record(self, event: SimEvent) -> None:
        if self._limit is not None and len(self.events) >= self._limit:
            return
        self.events.append(event)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def of_kind(self, kind: EventKind) -> list[SimEvent]:
        return [e for e in self.events if e.kind is kind]

    def until(self, time: float) -> list[SimEvent]:
        """Events strictly before ``time`` (a run's comparable prefix)."""
        return [e for e in self.events if e.time < time]

    def as_dicts(self, until: float | None = None) -> list[dict]:
        """Flattened events, optionally truncated, for comparisons."""
        events = self.events if until is None else self.until(until)
        return [event_to_dict(e) for e in events]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> typing.Iterator[SimEvent]:
        return iter(self.events)
