"""The instrumentation plane: a typed simulation event bus.

Every observable fact of the simulated system -- transaction lifecycle,
lock traffic, OPT lending, messages, log writes, deadlock victims,
failure injection, commit-protocol phases -- is published as a typed
event (:mod:`repro.obs.events`) on the system's :class:`EventBus`
(``system.bus``).  Observers subscribe; nothing monkeypatches.

Emit sites are guarded with ``bus.has_subscribers(kind)``, so kinds
nobody listens to cost one dict membership test (see the
``bus_overhead`` micro-benchmark in ``scripts/bench_trajectory.py``).

Built-in subscribers:

- :class:`repro.metrics.MetricsCollector` -- the paper's statistics;
- :class:`repro.trace.Tracer` -- human-readable lifecycle traces;
- :class:`repro.admission.HalfAndHalfController` -- load control;
- :class:`EventLog` -- raw in-memory recording (tests, diffing runs);
- :class:`PhaseLatencyObserver` -- per-phase commit latency breakdown;
- :class:`JsonlExporter` -- ``--events-out`` offline event streams;
- :class:`WindowedStats` -- O(1)-memory per-window aggregates for
  soak runs (``repro-commit soak``).
"""

from repro.obs.bus import EventBus, Subscription
from repro.obs.events import (
    Borrow,
    CommitPhase,
    DeadlockVictim,
    EventKind,
    LenderAbort,
    LockBlock,
    LockGrant,
    LockRelease,
    LockRequest,
    LogForce,
    LogWrite,
    MessageDeliver,
    MessageSend,
    MsgDrop,
    PhaseTransition,
    ShelfEnter,
    SimEvent,
    SiteCrash,
    SiteRecover,
    SiteRecoveryReplay,
    TimeoutFired,
    TxnAbort,
    TxnBlock,
    TxnCommit,
    TxnResolvedInDoubt,
    TxnRestart,
    TxnSubmit,
    TxnUnblock,
    event_to_dict,
)
from repro.obs.export import JsonlExporter
from repro.obs.phases import PhaseLatencyObserver, PhaseStats
from repro.obs.recorder import EventLog
from repro.obs.windowed import WindowedStats

__all__ = [
    "Borrow",
    "CommitPhase",
    "DeadlockVictim",
    "EventBus",
    "EventKind",
    "EventLog",
    "JsonlExporter",
    "LenderAbort",
    "LockBlock",
    "LockGrant",
    "LockRelease",
    "LockRequest",
    "LogForce",
    "LogWrite",
    "MessageDeliver",
    "MessageSend",
    "MsgDrop",
    "PhaseLatencyObserver",
    "PhaseStats",
    "PhaseTransition",
    "ShelfEnter",
    "SimEvent",
    "SiteCrash",
    "SiteRecover",
    "SiteRecoveryReplay",
    "Subscription",
    "TimeoutFired",
    "TxnAbort",
    "TxnBlock",
    "TxnCommit",
    "TxnResolvedInDoubt",
    "TxnRestart",
    "TxnSubmit",
    "TxnUnblock",
    "WindowedStats",
    "event_to_dict",
]
