"""The closed event taxonomy of the simulation.

Every observable fact of the simulated system is one of the frozen
dataclasses below, published on the system's :class:`~repro.obs.bus.EventBus`.
The set is *closed* by design: observers can rely on these kinds (and
only these) existing, and emitters pay for an event only when someone
subscribed to its kind.

Events carry the objects they describe (transactions, cohorts, messages)
rather than pre-rendered strings, so subscribers can follow references;
:func:`event_to_dict` flattens an event into JSON-serializable scalars
for export.
"""

from __future__ import annotations

import dataclasses
import enum
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.locks import LockMode
    from repro.db.messages import Message
    from repro.db.transaction import AbortReason, CohortAgent, Transaction
    from repro.db.wal import LogRecordKind


class EventKind(enum.Enum):
    """Every event kind the simulation can publish."""

    # Transaction lifecycle.
    TXN_SUBMIT = "txn_submit"
    TXN_RESTART = "txn_restart"
    TXN_COMMIT = "txn_commit"
    TXN_ABORT = "txn_abort"
    #: first cohort of a transaction started waiting on a lock.
    TXN_BLOCK = "txn_block"
    #: last waiting cohort of a transaction stopped waiting.
    TXN_UNBLOCK = "txn_unblock"
    # Locking (cohort granularity, per site).
    LOCK_REQUEST = "lock_request"
    LOCK_GRANT = "lock_grant"
    LOCK_BLOCK = "lock_block"
    LOCK_RELEASE = "lock_release"
    # OPT lending.
    BORROW = "borrow"
    SHELF_ENTER = "shelf_enter"
    LENDER_ABORT = "lender_abort"
    # Network.
    MSG_SEND = "msg_send"
    MSG_DELIVER = "msg_deliver"
    #: a message was lost on the wire or addressed to a crashed site.
    MSG_DROP = "msg_drop"
    # Write-ahead log.
    LOG_WRITE = "log_write"
    LOG_FORCE = "log_force"
    # Concurrency control.
    DEADLOCK_VICTIM = "deadlock_victim"
    # Failure injection.
    SITE_CRASH = "site_crash"
    SITE_RECOVER = "site_recover"
    #: a protocol-layer timeout expired (vote wait, decision wait, ...).
    TIMEOUT_FIRED = "timeout_fired"
    #: a recovering site started replaying its WAL (in-doubt resolution).
    SITE_RECOVERY_REPLAY = "site_recovery_replay"
    #: an in-doubt cohort was resolved per the protocol's presumption rule.
    TXN_RESOLVED_IN_DOUBT = "txn_resolved_in_doubt"
    # Correlated failures (region fault plans).
    #: every site of one datacenter crashed atomically.
    DC_CRASH = "dc_crash"
    #: the link group between two datacenters was severed.
    LINK_PARTITION = "link_partition"
    #: a severed inter-datacenter link group was restored.
    LINK_HEAL = "link_heal"
    # Open-system workload (Poisson arrivals + bounded admission queue).
    #: a transaction arrived at a site's admission queue (offered load).
    TXN_ARRIVE = "txn_arrive"
    #: an arrival was dropped because the admission queue was full.
    TXN_SHED = "txn_shed"
    #: a queued arrival was picked up by a free server slot.
    TXN_DEQUEUE = "txn_dequeue"
    # Paxos Commit (quorum commit extension).
    #: an acceptor registered/accepted an RM's vote instance(s).
    ACCEPTOR = "acceptor"
    #: a recovering participant opened a higher ballot to close
    #: unresolved vote instances (coordinator takeover).
    BALLOT = "ballot"
    # Replication (available copies).
    #: a committed cohort's updates were propagated to a replica site.
    REPLICA_PROPAGATE = "replica_propagate"
    # Commit-protocol phase transitions (master side).
    PHASE = "phase"


class CommitPhase(enum.Enum):
    """Master-side phases of commit processing.

    A :class:`PhaseTransition` marks the *entry* into a phase; the phase
    ends at the next transition (or at the transaction's outcome).
    Protocols without a distinct round simply never enter that phase --
    e.g. presumed commit sends no ACK round on commit.
    """

    EXECUTE = "execute"   # cohorts performing data accesses
    VOTE = "vote"         # voting round (PREPARE / votes)
    DECIDE = "decide"     # all votes in; decision logged + distributed
    ACK = "ack"           # decision sent; awaiting acknowledgements


@dataclasses.dataclass(frozen=True, slots=True)
class SimEvent:
    """Base class: every event carries its simulation timestamp (ms)."""

    time: float

    #: overridden by each concrete event class.
    kind: typing.ClassVar[EventKind]


@dataclasses.dataclass(frozen=True, slots=True)
class TxnSubmit(SimEvent):
    """A fresh transaction entered a multiprogramming slot."""

    kind = EventKind.TXN_SUBMIT
    txn: "Transaction"
    sites: tuple[int, ...]


@dataclasses.dataclass(frozen=True, slots=True)
class TxnRestart(SimEvent):
    """An aborted incarnation was relaunched."""

    kind = EventKind.TXN_RESTART
    txn: "Transaction"
    sites: tuple[int, ...]


@dataclasses.dataclass(frozen=True, slots=True)
class TxnCommit(SimEvent):
    kind = EventKind.TXN_COMMIT
    txn: "Transaction"


@dataclasses.dataclass(frozen=True, slots=True)
class TxnAbort(SimEvent):
    kind = EventKind.TXN_ABORT
    txn: "Transaction"
    reason: "AbortReason"


@dataclasses.dataclass(frozen=True, slots=True)
class TxnBlock(SimEvent):
    kind = EventKind.TXN_BLOCK
    txn: "Transaction"


@dataclasses.dataclass(frozen=True, slots=True)
class TxnUnblock(SimEvent):
    kind = EventKind.TXN_UNBLOCK
    txn: "Transaction"


@dataclasses.dataclass(frozen=True, slots=True)
class LockRequest(SimEvent):
    kind = EventKind.LOCK_REQUEST
    site_id: int
    cohort: "CohortAgent"
    page: int
    mode: "LockMode"


@dataclasses.dataclass(frozen=True, slots=True)
class LockGrant(SimEvent):
    kind = EventKind.LOCK_GRANT
    site_id: int
    cohort: "CohortAgent"
    page: int
    mode: "LockMode"
    #: True when the grant bypassed prepared lenders (an OPT borrow).
    borrowed: bool


@dataclasses.dataclass(frozen=True, slots=True)
class LockBlock(SimEvent):
    """A cohort joined a page's FCFS wait queue."""

    kind = EventKind.LOCK_BLOCK
    site_id: int
    cohort: "CohortAgent"
    page: int
    mode: "LockMode"


@dataclasses.dataclass(frozen=True, slots=True)
class LockRelease(SimEvent):
    """A cohort released everything it held at one site (finalize)."""

    kind = EventKind.LOCK_RELEASE
    site_id: int
    cohort: "CohortAgent"
    committed: bool


@dataclasses.dataclass(frozen=True, slots=True)
class Borrow(SimEvent):
    """A page was borrowed from prepared lender(s) (OPT)."""

    kind = EventKind.BORROW
    site_id: int
    cohort: "CohortAgent"
    page: int


@dataclasses.dataclass(frozen=True, slots=True)
class ShelfEnter(SimEvent):
    """A borrower finished its work with unresolved lenders (OPT)."""

    kind = EventKind.SHELF_ENTER
    cohort: "CohortAgent"


@dataclasses.dataclass(frozen=True, slots=True)
class LenderAbort(SimEvent):
    """A borrower is being aborted because one of its lenders aborted."""

    kind = EventKind.LENDER_ABORT
    borrower: "CohortAgent"


@dataclasses.dataclass(frozen=True, slots=True)
class MessageSend(SimEvent):
    kind = EventKind.MSG_SEND
    message: "Message"
    #: same-site messages are free and delivered synchronously.
    local: bool
    #: (sender site, receiver site); None before the topology layer
    #: resolved it (local sends use the shared site id twice).
    link: tuple[int, int] | None = None
    #: wire latency charged to this message by the active cost model
    #: (0 on the paper's zero-latency switch; excludes fault delays).
    delay_ms: float = 0.0
    #: True when the link crosses datacenters under the active topology.
    cross_dc: bool = False


@dataclasses.dataclass(frozen=True, slots=True)
class MessageDeliver(SimEvent):
    kind = EventKind.MSG_DELIVER
    message: "Message"
    #: (sender site, receiver site); see :class:`MessageSend`.
    link: tuple[int, int] | None = None
    #: total wire latency this message actually paid (topology + faults).
    delay_ms: float = 0.0
    #: True when the link crosses datacenters under the active topology.
    cross_dc: bool = False


@dataclasses.dataclass(frozen=True, slots=True)
class MsgDrop(SimEvent):
    """A message was dropped: lost on the wire, or its receiver's site
    is down (in-flight deliveries to a crashed site are discarded)."""

    kind = EventKind.MSG_DROP
    message: "Message"
    #: ``"loss"`` (fault-injected), ``"topology_loss"`` (lossy WAN
    #: link), ``"site_down"``, or ``"partition"`` (the message's link
    #: group is severed by a region fault plan).
    reason: str


@dataclasses.dataclass(frozen=True, slots=True)
class LogWrite(SimEvent):
    """A non-forced log record (free, per the paper's cost model)."""

    kind = EventKind.LOG_WRITE
    site_id: int
    record_kind: "LogRecordKind"
    txn_id: int


@dataclasses.dataclass(frozen=True, slots=True)
class LogForce(SimEvent):
    """A forced log write was initiated (the caller suspends on it)."""

    kind = EventKind.LOG_FORCE
    site_id: int
    record_kind: "LogRecordKind"
    txn_id: int


@dataclasses.dataclass(frozen=True, slots=True)
class DeadlockVictim(SimEvent):
    kind = EventKind.DEADLOCK_VICTIM
    txn: "Transaction"


@dataclasses.dataclass(frozen=True, slots=True)
class SiteCrash(SimEvent):
    """A failure: a whole site (``txn_id == -1``) or -- in the scripted
    blocking scenarios -- a single master process going silent."""

    kind = EventKind.SITE_CRASH
    site_id: int
    txn_id: int = -1


@dataclasses.dataclass(frozen=True, slots=True)
class SiteRecover(SimEvent):
    kind = EventKind.SITE_RECOVER
    site_id: int
    txn_id: int = -1


@dataclasses.dataclass(frozen=True, slots=True)
class TimeoutFired(SimEvent):
    """A protocol-layer wait expired before the expected message."""

    kind = EventKind.TIMEOUT_FIRED
    #: the agent whose wait expired (master or cohort).
    agent: object
    #: which wait: ``"startwork"``, ``"work"``, ``"votes"``,
    #: ``"prepare"``, ``"decision"``, ``"acks"``, ``"precommit-acks"``.
    wait: str
    waited_ms: float


@dataclasses.dataclass(frozen=True, slots=True)
class SiteRecoveryReplay(SimEvent):
    """A recovered site is replaying its WAL to resolve in-doubt
    transactions."""

    kind = EventKind.SITE_RECOVERY_REPLAY
    site_id: int
    #: number of in-doubt cohorts found at the site.
    in_doubt: int


@dataclasses.dataclass(frozen=True, slots=True)
class TxnResolvedInDoubt(SimEvent):
    """An in-doubt (prepared/precommitted) cohort reached a decision via
    status inquiry, WAL replay, or the 3PC termination protocol."""

    kind = EventKind.TXN_RESOLVED_IN_DOUBT
    cohort: "CohortAgent"
    #: ``"commit"`` or ``"abort"``.
    outcome: str
    #: which rule decided: ``"decision-record"``, ``"presumed-abort"``,
    #: ``"presumed-commit"``, ``"termination-protocol"``, ...
    rule: str


@dataclasses.dataclass(frozen=True, slots=True)
class DcCrash(SimEvent):
    """A whole datacenter went down atomically (a correlated failure;
    per-site :class:`SiteCrash` events are published alongside)."""

    kind = EventKind.DC_CRASH
    dc: int
    #: the sites this outage actually took down (sites already down via
    #: an overlapping per-site fault are skipped).
    sites: tuple[int, ...]


@dataclasses.dataclass(frozen=True, slots=True)
class LinkPartition(SimEvent):
    """The network severed every link between two datacenters: messages
    and status inquiries across the cut are dropped until heal."""

    kind = EventKind.LINK_PARTITION
    dc_a: int
    dc_b: int


@dataclasses.dataclass(frozen=True, slots=True)
class LinkHeal(SimEvent):
    """A severed inter-datacenter link group was restored."""

    kind = EventKind.LINK_HEAL
    dc_a: int
    dc_b: int


@dataclasses.dataclass(frozen=True, slots=True)
class TxnArrive(SimEvent):
    """An open-system arrival reached a site's admission queue."""

    kind = EventKind.TXN_ARRIVE
    site_id: int
    txn_id: int
    #: False when the arrival was dropped on a full queue (a matching
    #: :class:`TxnShed` is published as well).
    admitted: bool


@dataclasses.dataclass(frozen=True, slots=True)
class TxnShed(SimEvent):
    """An arrival was dropped: the site's admission queue was full."""

    kind = EventKind.TXN_SHED
    site_id: int
    txn_id: int
    queue_length: int


@dataclasses.dataclass(frozen=True, slots=True)
class TxnDequeue(SimEvent):
    """A queued arrival was handed to a free per-site server slot."""

    kind = EventKind.TXN_DEQUEUE
    site_id: int
    txn_id: int
    #: time the transaction spent in the admission queue.
    wait_ms: float


@dataclasses.dataclass(frozen=True, slots=True)
class PhaseTransition(SimEvent):
    """The master entered a commit-processing phase."""

    kind = EventKind.PHASE
    txn: "Transaction"
    phase: CommitPhase
    protocol: str


@dataclasses.dataclass(frozen=True, slots=True)
class AcceptorEvent(SimEvent):
    """A Paxos Commit acceptor logged its batched acceptance: one forced
    ACCEPT record covering every RM vote instance of the transaction."""

    kind = EventKind.ACCEPTOR
    txn_id: int
    #: the site hosting the acceptor.
    site_id: int
    #: how many RM vote instances the acceptance covers.
    instances: int
    #: True when every instance carried a YES vote.
    all_yes: bool


@dataclasses.dataclass(frozen=True, slots=True)
class BallotOpened(SimEvent):
    """A blocked participant took over coordination with a higher ballot
    to close unresolved Paxos vote instances (deciding abort for any
    instance no quorum member had accepted)."""

    kind = EventKind.BALLOT
    txn_id: int
    #: the site of the cohort that opened the ballot.
    site_id: int
    #: acceptors the new leader could reach (>= F+1, or it stays blocked).
    reached: int
    #: vote instances the ballot closed as abort.
    closed_as_abort: int


@dataclasses.dataclass(frozen=True, slots=True)
class ReplicaPropagate(SimEvent):
    """A committed cohort shipped its updates to one replica site (or
    skipped it: available-copies drops unreachable replicas)."""

    kind = EventKind.REPLICA_PROPAGATE
    txn_id: int
    #: the primary site whose updates are being propagated.
    src_site: int
    #: the replica site addressed.
    dst_site: int
    #: number of updated pages in the batch.
    pages: int
    #: False when the replica was down/partitioned and dropped from the
    #: write set (to re-sync via WAL replay on recovery).
    shipped: bool


def _json_value(value: object) -> object:
    """Flatten one event field into a JSON-serializable value."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, tuple):
        return [_json_value(item) for item in value]
    # Agents: render as "T<id>.<inc>@<site>"; transactions as "T<id>.<inc>".
    txn = getattr(value, "txn", None)
    if txn is not None and hasattr(value, "site"):
        return f"{txn.name}@{value.site.site_id}"
    name = getattr(value, "name", None)
    if isinstance(name, str):
        return name
    # Messages: kind plus endpoints.
    kind = getattr(value, "kind", None)
    if kind is not None and hasattr(value, "sender"):
        return {"kind": kind.value,
                "sender": _json_value(value.sender),
                "receiver": _json_value(value.receiver)}
    return repr(value)


def event_to_dict(event: SimEvent) -> dict[str, object]:
    """Flatten an event into scalars (for JSONL export and comparisons)."""
    out: dict[str, object] = {"kind": event.kind.value}
    for field in dataclasses.fields(event):
        out[field.name] = _json_value(getattr(event, field.name))
    return out
