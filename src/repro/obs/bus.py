"""A typed publish/subscribe bus for simulation events.

Design constraints (see docs/MODEL.md, "Instrumentation plane"):

- **zero overhead when idle**: emit sites guard with
  ``if bus.has_subscribers(kind):`` before even *constructing* the event
  object, so a kind nobody listens to costs one attribute load plus one
  dict membership test;
- **synchronous, deterministic dispatch**: subscribers run inline at the
  publish site, in subscription order -- observing an event never
  consumes simulated time, and two runs with the same subscribers see
  the same interleaving;
- **detachable**: :meth:`subscribe` returns a :class:`Subscription`
  handle whose :meth:`~Subscription.cancel` removes every callback it
  added (also usable as a context manager).

Subscribers may mutate the system (the admission controller cancels
transactions from its handler); such *actors* must be subscribed in a
deterministic order relative to pure observers -- the system subscribes
its own components first, user observers after.
"""

from __future__ import annotations

import typing

from repro.obs.events import EventKind, SimEvent

Callback = typing.Callable[[SimEvent], None]


class Subscription:
    """Handle over a batch of (kind, callback) registrations."""

    __slots__ = ("_bus", "_entries")

    def __init__(self, bus: "EventBus",
                 entries: list[tuple[EventKind, Callback]]) -> None:
        self._bus = bus
        self._entries = entries

    @property
    def active(self) -> bool:
        return bool(self._entries)

    def cancel(self) -> None:
        """Remove every callback this subscription added (idempotent)."""
        entries, self._entries = self._entries, []
        for kind, callback in entries:
            self._bus._remove(kind, callback)

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.cancel()

    def __repr__(self) -> str:
        kinds = sorted({kind.value for kind, _ in self._entries})
        return f"<Subscription {kinds or 'cancelled'}>"


class EventBus:
    """Synchronous event dispatch keyed by :class:`EventKind`.

    Only kinds with at least one live subscriber appear in the internal
    table, so :meth:`has_subscribers` -- the emitters' guard -- is a
    plain dict membership test against a usually-empty dict.
    """

    __slots__ = ("_subscribers",)

    def __init__(self) -> None:
        self._subscribers: dict[EventKind, list[Callback]] = {}

    # ------------------------------------------------------------------
    # Emitter side
    # ------------------------------------------------------------------
    def has_subscribers(self, kind: EventKind) -> bool:
        """The emit guard: is anyone listening for ``kind``?"""
        return kind in self._subscribers

    def publish(self, event: SimEvent) -> None:
        """Deliver ``event`` to its kind's subscribers, in order.

        A no-subscriber publish is a cheap no-op, but emitters on hot
        paths should still guard with :meth:`has_subscribers` to skip
        constructing the event object.
        """
        callbacks = self._subscribers.get(event.kind)
        if callbacks:
            for callback in tuple(callbacks):
                callback(event)

    # ------------------------------------------------------------------
    # Subscriber side
    # ------------------------------------------------------------------
    def subscribe(self, kinds: EventKind | typing.Iterable[EventKind],
                  callback: Callback) -> Subscription:
        """Register ``callback`` for one kind or an iterable of kinds."""
        if isinstance(kinds, EventKind):
            kinds = (kinds,)
        entries = []
        for kind in kinds:
            self._subscribers.setdefault(kind, []).append(callback)
            entries.append((kind, callback))
        return Subscription(self, entries)

    def subscribe_map(self, handlers: typing.Mapping[EventKind, Callback],
                      ) -> Subscription:
        """Register one callback per kind from a mapping."""
        entries = []
        for kind, callback in handlers.items():
            self._subscribers.setdefault(kind, []).append(callback)
            entries.append((kind, callback))
        return Subscription(self, entries)

    def _remove(self, kind: EventKind, callback: Callback) -> None:
        callbacks = self._subscribers.get(kind)
        if callbacks is None:
            return
        try:
            callbacks.remove(callback)
        except ValueError:
            pass
        if not callbacks:
            del self._subscribers[kind]

    # ------------------------------------------------------------------
    @property
    def subscribed_kinds(self) -> frozenset[EventKind]:
        return frozenset(self._subscribers)

    def __repr__(self) -> str:
        return (f"<EventBus kinds={sorted(k.value for k in self._subscribers)}"
                f">")
