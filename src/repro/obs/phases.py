"""Per-phase commit latency breakdown.

The paper reports end-to-end response times; this observer decomposes
them: for every *committed* transaction it measures how long the master
spent in each commit-processing phase (execute / vote / decide / ack)
and aggregates per protocol.  The old hook-based design could not
support this -- phase boundaries are interior to the protocol generators
and were never surfaced; with the event bus they are one
:class:`~repro.obs.events.PhaseTransition` each.

A phase's duration runs from its transition to the next one (the last
phase ends at the commit).  Protocols that skip a round (e.g. presumed
commit sends no ACK round) simply contribute no sample for that phase.
"""

from __future__ import annotations

import dataclasses

from repro.obs.bus import EventBus, Subscription
from repro.obs.events import (
    CommitPhase,
    EventKind,
    PhaseTransition,
    TxnAbort,
    TxnCommit,
)
from repro.sim.stats import WelfordAccumulator

#: rendering order of the phases.
PHASE_ORDER = (CommitPhase.EXECUTE, CommitPhase.VOTE,
               CommitPhase.DECIDE, CommitPhase.ACK)


@dataclasses.dataclass
class PhaseStats:
    """Aggregated latency of one (protocol, phase) cell."""

    phase: CommitPhase
    samples: WelfordAccumulator = dataclasses.field(
        default_factory=WelfordAccumulator)

    @property
    def mean_ms(self) -> float:
        return self.samples.mean

    @property
    def count(self) -> int:
        return self.samples.count


class PhaseLatencyObserver:
    """Per-protocol, per-phase latency over committed transactions."""

    def __init__(self) -> None:
        #: protocol -> phase -> PhaseStats.
        self.stats: dict[str, dict[CommitPhase, PhaseStats]] = {}
        #: open (txn_id, incarnation) -> [(phase, entry time), ...].
        self._open: dict[tuple[int, int], list[tuple[CommitPhase, float]]] = {}
        self._protocols: dict[tuple[int, int], str] = {}
        self.committed = 0
        self._subscription: Subscription | None = None

    # ------------------------------------------------------------------
    def attach(self, bus: EventBus) -> "PhaseLatencyObserver":
        if self._subscription is not None:
            raise RuntimeError("PhaseLatencyObserver is already attached")
        self._subscription = bus.subscribe_map({
            EventKind.PHASE: self._on_phase,
            EventKind.TXN_COMMIT: self._on_commit,
            EventKind.TXN_ABORT: self._on_abort,
        })
        return self

    def detach(self) -> None:
        if self._subscription is not None:
            self._subscription.cancel()
            self._subscription = None

    def __enter__(self) -> "PhaseLatencyObserver":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.detach()

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _on_phase(self, event: PhaseTransition) -> None:
        key = (event.txn.txn_id, event.txn.incarnation)
        self._open.setdefault(key, []).append((event.phase, event.time))
        self._protocols[key] = event.protocol

    def _on_commit(self, event: TxnCommit) -> None:
        key = (event.txn.txn_id, event.txn.incarnation)
        marks = self._open.pop(key, None)
        protocol = self._protocols.pop(key, None)
        if not marks or protocol is None:
            return
        self.committed += 1
        by_phase = self.stats.setdefault(protocol, {})
        for (phase, start), (_, end) in zip(
                marks, marks[1:] + [(None, event.time)]):
            cell = by_phase.get(phase)
            if cell is None:
                cell = by_phase[phase] = PhaseStats(phase)
            cell.samples.add(end - start)

    def _on_abort(self, event: TxnAbort) -> None:
        # Aborted incarnations are discarded: the breakdown describes
        # the cost structure of *successful* commit processing.
        key = (event.txn.txn_id, event.txn.incarnation)
        self._open.pop(key, None)
        self._protocols.pop(key, None)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def breakdown(self, protocol: str) -> dict[str, float]:
        """phase name -> mean latency (ms) for one protocol."""
        by_phase = self.stats.get(protocol, {})
        return {phase.value: by_phase[phase].mean_ms
                for phase in PHASE_ORDER if phase in by_phase}

    def report(self) -> str:
        """Text table: one row per protocol, one column per phase."""
        header = (f"{'protocol':>10} " +
                  " ".join(f"{p.value:>10}" for p in PHASE_ORDER) +
                  f" {'total':>10}")
        lines = [header]
        for protocol in sorted(self.stats):
            by_phase = self.stats[protocol]
            cells = []
            total = 0.0
            for phase in PHASE_ORDER:
                cell = by_phase.get(phase)
                if cell is None or not cell.count:
                    cells.append(f"{'-':>10}")
                else:
                    cells.append(f"{cell.mean_ms:>10.1f}")
                    total += cell.mean_ms
            lines.append(f"{protocol:>10} " + " ".join(cells) +
                         f" {total:>10.1f}")
        return "\n".join(lines)
