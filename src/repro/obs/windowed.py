"""Windowed open-system aggregates for soak runs.

A :class:`WindowedStats` subscriber folds the open-system event stream
(arrivals, sheds, dequeues, commits, aborts) into fixed-width windows of
simulated time and emits one plain-dict row per window — carried/shed
counts, response percentiles, queue-wait statistics, and the current
admission backlog.  Each window uses O(1) memory (P-squared estimators,
Welford accumulators), so a 10^7-transaction soak produces a bounded
JSONL stream instead of an unbounded sample list.

Rows are emitted in window order with no gaps: quiet windows still
produce a row (zero counts), which keeps downstream diffing trivial —
the checkpoint/resume byte-identity check is a straight file compare.
"""

from __future__ import annotations

import typing

from repro.obs.events import EventKind
from repro.sim.stats import P2Quantile, WelfordAccumulator

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.bus import EventBus, Subscription
    from repro.obs.events import (
        TxnAbort,
        TxnArrive,
        TxnCommit,
        TxnDequeue,
        TxnShed,
    )


class _WindowAccumulator:
    """Per-window counters and O(1) latency sketches."""

    def __init__(self) -> None:
        self.offered = 0
        self.admitted = 0
        self.shed = 0
        self.commits = 0
        self.aborts = 0
        self.response = WelfordAccumulator()
        self.response_p50 = P2Quantile(0.50)
        self.response_p95 = P2Quantile(0.95)
        self.response_p99 = P2Quantile(0.99)
        self.queue_wait = WelfordAccumulator()
        self.queue_wait_p95 = P2Quantile(0.95)


class WindowedStats:
    """Bus subscriber emitting per-window open-system aggregate rows.

    ``emit`` receives one dict per completed window, in order.  The
    window grid is anchored at simulated time 0 with width
    ``window_ms``; :meth:`finish` flushes the final partial window.

    ``depth_probe`` (optional) is called at each emit to report the
    instantaneous admission backlog (e.g. summed queue lengths).

    The subscriber is checkpointable: :meth:`capture_state` /
    :meth:`restore_state` carry the partial window across soak segment
    boundaries, so a resumed run continues the exact same row stream.
    """

    def __init__(self, window_ms: float,
                 emit: typing.Callable[[dict], None],
                 start_ms: float = 0.0,
                 depth_probe: typing.Callable[[], int] | None = None) -> None:
        if window_ms <= 0:
            raise ValueError(f"window_ms must be > 0, got {window_ms}")
        self.window_ms = window_ms
        self._emit = emit
        self.depth_probe = depth_probe
        self.rows_emitted = 0
        self._window_index = int(start_ms // window_ms)
        self._acc = _WindowAccumulator()
        self._subscription: "Subscription | None" = None

    # ------------------------------------------------------------------
    def attach(self, bus: "EventBus") -> "Subscription":
        """Subscribe to the open-system event kinds on ``bus``."""
        if self._subscription is not None:
            raise RuntimeError("WindowedStats is already attached")
        self._subscription = bus.subscribe_map({
            EventKind.TXN_ARRIVE: self._on_arrive,
            EventKind.TXN_SHED: self._on_shed,
            EventKind.TXN_DEQUEUE: self._on_dequeue,
            EventKind.TXN_COMMIT: self._on_commit,
            EventKind.TXN_ABORT: self._on_abort,
        })
        return self._subscription

    def detach(self) -> None:
        if self._subscription is not None:
            self._subscription.cancel()
            self._subscription = None

    # ------------------------------------------------------------------
    def _roll(self, time: float) -> None:
        """Emit every window that ends at or before ``time``."""
        while time >= (self._window_index + 1) * self.window_ms:
            end = (self._window_index + 1) * self.window_ms
            self._emit_row(end)
            self._window_index += 1
            self._acc = _WindowAccumulator()

    def _emit_row(self, t_end: float) -> None:
        acc = self._acc
        row = {
            "window": self._window_index,
            "t_start_ms": self._window_index * self.window_ms,
            "t_end_ms": t_end,
            "offered": acc.offered,
            "admitted": acc.admitted,
            "shed": acc.shed,
            "commits": acc.commits,
            "aborts": acc.aborts,
            "response_mean_ms": acc.response.mean,
            "response_p50_ms": acc.response_p50.value(),
            "response_p95_ms": acc.response_p95.value(),
            "response_p99_ms": acc.response_p99.value(),
            "queue_wait_mean_ms": acc.queue_wait.mean,
            "queue_wait_p95_ms": acc.queue_wait_p95.value(),
            "queue_depth": (self.depth_probe()
                            if self.depth_probe is not None else None),
        }
        self._emit(row)
        self.rows_emitted += 1

    def finish(self, now: float) -> None:
        """Flush: roll to ``now``, then emit the final partial window."""
        self._roll(now)
        self._emit_row(now)
        self._acc = _WindowAccumulator()

    # ------------------------------------------------------------------
    def _on_arrive(self, event: "TxnArrive") -> None:
        self._roll(event.time)
        self._acc.offered += 1
        if event.admitted:
            self._acc.admitted += 1

    def _on_shed(self, event: "TxnShed") -> None:
        self._roll(event.time)
        self._acc.shed += 1

    def _on_dequeue(self, event: "TxnDequeue") -> None:
        self._roll(event.time)
        self._acc.queue_wait.add(event.wait_ms)
        self._acc.queue_wait_p95.add(event.wait_ms)

    def _on_commit(self, event: "TxnCommit") -> None:
        self._roll(event.time)
        acc = self._acc
        response = event.time - event.txn.first_submit_time
        acc.commits += 1
        acc.response.add(response)
        acc.response_p50.add(response)
        acc.response_p95.add(response)
        acc.response_p99.add(response)

    def _on_abort(self, event: "TxnAbort") -> None:
        self._roll(event.time)
        self._acc.aborts += 1

    # ------------------------------------------------------------------
    # Soak checkpointing
    # ------------------------------------------------------------------
    def capture_state(self) -> dict:
        """Picklable snapshot: partial window + emission cursor."""
        return {"window_index": self._window_index,
                "acc": self._acc,
                "rows_emitted": self.rows_emitted}

    def restore_state(self, state: dict) -> None:
        self._window_index = state["window_index"]
        self._acc = state["acc"]
        self.rows_emitted = state["rows_emitted"]
