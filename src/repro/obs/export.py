"""JSONL event-stream export.

Writes one JSON object per line: meta lines (``{"meta": {...}}``) that
tag the run or sweep point that follows, then one line per simulation
event, flattened by :func:`~repro.obs.events.event_to_dict`.  The format
is append-only and trivially greppable/streamable, for offline analysis
of full event streams (``repro-commit run E1 --events-out events.jsonl``).
"""

from __future__ import annotations

import json
import pathlib
import typing

from repro.obs.bus import EventBus, Subscription
from repro.obs.events import EventKind, SimEvent, event_to_dict


class JsonlExporter:
    """Stream simulation events to a JSONL file or file object."""

    def __init__(self, stream: typing.TextIO,
                 kinds: typing.Iterable[EventKind] | None = None,
                 close_stream: bool = False) -> None:
        self.stream = stream
        self.kinds = tuple(kinds) if kinds is not None else tuple(EventKind)
        self.events_written = 0
        self._close_stream = close_stream
        self._subscription: Subscription | None = None

    @classmethod
    def open(cls, path: str | pathlib.Path,
             kinds: typing.Iterable[EventKind] | None = None,
             ) -> "JsonlExporter":
        """Exporter writing to ``path`` (truncates; closes on exit)."""
        stream = pathlib.Path(path).open("w", encoding="utf-8")
        return cls(stream, kinds=kinds, close_stream=True)

    # ------------------------------------------------------------------
    def attach(self, bus: EventBus) -> "JsonlExporter":
        """Subscribe to ``bus``; detach before attaching elsewhere."""
        if self._subscription is not None:
            raise RuntimeError("JsonlExporter is already attached")
        self._subscription = bus.subscribe(self.kinds, self._write_event)
        return self

    def detach(self) -> None:
        if self._subscription is not None:
            self._subscription.cancel()
            self._subscription = None
        # Flush even when the stream is not ours: a caller that hands us
        # an open file and later dies without closing it would otherwise
        # lose every buffered tail event — which breaks, e.g., soak
        # resume verification against a partially-written stream.
        self.flush()

    def flush(self) -> None:
        """Push buffered lines to the underlying stream."""
        if not getattr(self.stream, "closed", False):
            self.stream.flush()

    def close(self) -> None:
        self.detach()
        if self._close_stream:
            self.stream.close()

    def __enter__(self) -> "JsonlExporter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def meta(self, **fields: object) -> None:
        """Write a ``{"meta": {...}}`` marker line (run/point header)."""
        json.dump({"meta": fields}, self.stream)
        self.stream.write("\n")

    def _write_event(self, event: SimEvent) -> None:
        json.dump(event_to_dict(event), self.stream)
        self.stream.write("\n")
        self.events_written += 1
