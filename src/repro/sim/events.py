"""Simulation events.

An :class:`Event` is the unit of coordination in the kernel.  Processes
yield events; the environment resumes a process when the event it yielded
is *triggered*.  Events may carry a value (delivered as the result of the
``yield``) or a failure (raised inside the yielding process).

The design follows SimPy's, trimmed to what the commit-protocol simulator
needs: plain events, timeouts, and ``AnyOf``/``AllOf`` condition events.

Performance notes: the classes here sit on the simulator's innermost
loop, so they use ``__slots__`` (an event allocation per message, lock
grant, and timeout adds up to millions per sweep) and the trigger paths
touch ``_value``/``_ok`` directly instead of going through the
``triggered``/``ok`` properties.
"""

from __future__ import annotations

import typing
from heapq import heappush as _heappush

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Environment

# Sentinel distinguishing "no value set" from "value is None".
_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait for.

    An event starts *untriggered*.  Calling :meth:`succeed` (or
    :meth:`fail`) schedules it; once the environment pops it from the
    event queue it becomes *processed* and all registered callbacks run.
    Waiting processes register themselves as callbacks.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[typing.Callable[["Event"], None]] | None = []
        self._value: typing.Any = _PENDING
        self._ok: bool | None = None
        # Set by Process when it waits on this event so that interrupts can
        # find and detach the waiting process.
        self.defused = False

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled with a value."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise RuntimeError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> typing.Any:
        """The event's value (or exception if it failed)."""
        if self._value is _PENDING:
            raise RuntimeError("event not yet triggered")
        return self._value

    # ------------------------------------------------------------------
    # Triggering
    # ------------------------------------------------------------------
    def succeed(self, value: typing.Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        env = self.env
        env._eid += 1
        _heappush(env._queue, (env._now, env._eid, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with a failure.

        The exception is raised inside every process waiting on the event
        (unless the event is *defused* first).
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        env = self.env
        env._eid += 1
        _heappush(env._queue, (env._now, env._eid, self))
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (callback helper)."""
        self._ok = event._ok
        self._value = event._value
        env = self.env
        env._eid += 1
        _heappush(env._queue, (env._now, env._eid, self))

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float,
                 value: typing.Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.env = env
        self.callbacks = []
        self.defused = False
        self.delay = delay
        self._ok = True
        self._value = value
        env._eid += 1
        _heappush(env._queue, (env._now + delay, env._eid, self))

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay} at {id(self):#x}>"


class Condition(Event):
    """Base for events that aggregate several child events.

    Subclasses define :meth:`_check`, called whenever a child triggers,
    to decide whether the condition as a whole has been met.

    A child that fails *after* the condition has already triggered is
    defused rather than re-failing the condition: the condition consumed
    the children, so a late failure must not escape ``Environment.run``
    as an unhandled error (nor re-trigger the condition).
    """

    __slots__ = ("events", "_triggered_count")

    def __init__(self, env: "Environment",
                 events: typing.Sequence[Event]) -> None:
        super().__init__(env)
        self.events = list(events)
        self._triggered_count = 0
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.env is not env:
                raise ValueError("events span multiple environments")
        if len(self.events) == 1:
            # Single child: AllOf and AnyOf degenerate to the same thing
            # (mirror the child), so skip the counting machinery.
            event = self.events[0]
            if event.callbacks is None:
                self._on_single(event)
            else:
                event.callbacks.append(self._on_single)
            return
        for event in self.events:
            if event.callbacks is None:
                self._on_child(event)
            elif event.callbacks is not None:
                event.callbacks.append(self._on_child)

    def _on_single(self, event: Event) -> None:
        """Fast path for one-child conditions: mirror the child."""
        if self._value is not _PENDING:
            if not event._ok:
                event.defused = True
            return
        if event._ok:
            self._ok = True
            self._value = {event: event._value}
        else:
            event.defused = True
            self._ok = False
            self._value = event._value
        env = self.env
        env._eid += 1
        _heappush(env._queue, (env._now, env._eid, self))

    def _on_child(self, event: Event) -> None:
        if self._value is not _PENDING:
            # Already triggered (succeeded or failed).  Defuse late child
            # failures so they do not surface as unhandled errors.
            if not event._ok:
                event.defused = True
            return
        if not event._ok:
            event.defused = True
            self.fail(typing.cast(BaseException, event._value))
            return
        self._triggered_count += 1
        self._check()

    def _results(self) -> dict[Event, typing.Any]:
        return {event: event._value for event in self.events
                if event.callbacks is None and event._ok}

    def _check(self) -> None:  # pragma: no cover - abstract hook
        raise NotImplementedError


class AllOf(Condition):
    """Triggers when *all* child events have triggered."""

    __slots__ = ()

    def _check(self) -> None:
        if self._triggered_count == len(self.events):
            self.succeed(self._results())


class AnyOf(Condition):
    """Triggers when *any* child event has triggered."""

    __slots__ = ()

    def _check(self) -> None:
        if self._triggered_count >= 1:
            self.succeed(self._results())
