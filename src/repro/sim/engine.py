"""The simulation environment: clock and event loop.

The :class:`Environment` owns simulated time and the pending-event heap.
Time is a float; the commit-protocol model measures it in **milliseconds**
(matching the paper's parameter units), but the kernel itself is
unit-agnostic.

Performance notes: :meth:`Environment.run` inlines the heap pop and
callback dispatch (rather than calling :meth:`step` per event) and binds
``heapq.heappush``/``heappop`` to locals -- the loop body runs once per
simulated event, hundreds of millions of times across a paper sweep.
:meth:`step` remains as the single-event public API.
"""

from __future__ import annotations

import heapq
import typing

from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process

ProcessGenerator = typing.Generator[Event, typing.Any, typing.Any]

_INF = float("inf")
_heappush = heapq.heappush
_heappop = heapq.heappop


class EmptySchedule(Exception):
    """Raised internally when the event queue runs dry."""


class Environment:
    """A discrete-event simulation environment.

    Usage mirrors SimPy::

        env = Environment()

        def clock(env):
            while True:
                yield env.timeout(1.0)

        env.process(clock(env))
        env.run(until=10.0)
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._eid = 0
        # Last time actually reached by processing an event (as opposed
        # to fast-forwarded to by ``run(until=<number>)`` after the queue
        # drained).  Lets a re-entrant ``run`` tell "genuinely in the
        # past" apart from "before the fast-forward but after all work".
        self._event_now = self._now

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    # ------------------------------------------------------------------
    # Event construction helpers
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: typing.Any = None) -> Timeout:
        """Create an event that triggers ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator,
                name: str | None = None) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: typing.Sequence[Event]) -> AllOf:
        """Event that triggers when all of ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: typing.Sequence[Event]) -> AnyOf:
        """Event that triggers when any of ``events`` has triggered."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling and stepping
    # ------------------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Put a triggered event on the queue ``delay`` units from now."""
        self._eid += 1
        _heappush(self._queue, (self._now + delay, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        queue = self._queue
        return queue[0][0] if queue else _INF

    def step(self) -> None:
        """Process the next scheduled event."""
        try:
            when, _, event = _heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        self._now = when
        self._event_now = when
        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event.defused:
            raise typing.cast(BaseException, event._value)

    def run(self, until: float | Event | None = None) -> typing.Any:
        """Run the simulation.

        ``until`` may be:

        - ``None``: run until no events remain.
        - a number: run until simulated time reaches it.  If the queue
          drains earlier, the clock *fast-forwards* to ``until`` (time
          passes even when nothing is scheduled); a later ``run`` with an
          ``until`` between the last processed event and the
          fast-forwarded clock is a no-op rather than an error.
        - an :class:`Event`: run until that event is processed and return
          its value.
        """
        if until is None:
            stop_event: Event | None = None
            stop_time = _INF
        elif isinstance(until, Event):
            stop_event = until
            stop_time = _INF
            if stop_event.callbacks is None:
                return stop_event._value
        else:
            stop_event = None
            stop_time = float(until)
            if stop_time < self._now:
                if stop_time >= self._event_now and self.peek() > stop_time:
                    # Nothing was or would be processed in
                    # (stop_time, now]: the clock only got ahead by
                    # fast-forwarding.  Treat as already satisfied.
                    return None
                raise ValueError(
                    f"until={stop_time} is in the past (now={self._now})")

        queue = self._queue
        pop = _heappop

        # ``_event_now`` is only consulted between runs, so the loops
        # below update it once on exit (from the last popped ``when``)
        # instead of once per event.
        when = None
        try:
            if stop_event is None and stop_time == _INF:
                # Hot path: run to exhaustion, no per-event stop checks.
                while queue:
                    when, _, event = pop(queue)
                    self._now = when
                    callbacks = event.callbacks
                    event.callbacks = None
                    for callback in callbacks:  # type: ignore[union-attr]
                        callback(event)
                    if not event._ok and not event.defused:
                        raise typing.cast(BaseException, event._value)
                return None

            while queue:
                if queue[0][0] > stop_time:
                    self._now = stop_time
                    return None
                when, _, event = pop(queue)
                self._now = when
                callbacks = event.callbacks
                event.callbacks = None
                for callback in callbacks:  # type: ignore[union-attr]
                    callback(event)
                if not event._ok and not event.defused:
                    raise typing.cast(BaseException, event._value)
                if stop_event is not None and stop_event.callbacks is None:
                    if stop_event._ok:
                        return stop_event._value
                    raise typing.cast(BaseException, stop_event._value)

            if stop_event is not None:
                raise RuntimeError(
                    "simulation ran out of events before `until` event "
                    "triggered")
            if stop_time != _INF:
                self._now = stop_time
            return None
        finally:
            if when is not None:
                self._event_now = when
