"""The simulation environment: clock and event loop.

The :class:`Environment` owns simulated time and the pending-event heap.
Time is a float; the commit-protocol model measures it in **milliseconds**
(matching the paper's parameter units), but the kernel itself is
unit-agnostic.
"""

from __future__ import annotations

import heapq
import typing

from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process

ProcessGenerator = typing.Generator[Event, typing.Any, typing.Any]


class EmptySchedule(Exception):
    """Raised internally when the event queue runs dry."""


class Environment:
    """A discrete-event simulation environment.

    Usage mirrors SimPy::

        env = Environment()

        def clock(env):
            while True:
                yield env.timeout(1.0)

        env.process(clock(env))
        env.run(until=10.0)
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._eid = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    # ------------------------------------------------------------------
    # Event construction helpers
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: typing.Any = None) -> Timeout:
        """Create an event that triggers ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator,
                name: str | None = None) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: typing.Sequence[Event]) -> AllOf:
        """Event that triggers when all of ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: typing.Sequence[Event]) -> AnyOf:
        """Event that triggers when any of ``events`` has triggered."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling and stepping
    # ------------------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Put a triggered event on the queue ``delay`` units from now."""
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    def step(self) -> None:
        """Process the next scheduled event."""
        try:
            when, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event.defused:
            raise typing.cast(BaseException, event._value)

    def run(self, until: float | Event | None = None) -> typing.Any:
        """Run the simulation.

        ``until`` may be:

        - ``None``: run until no events remain.
        - a number: run until simulated time reaches it.
        - an :class:`Event`: run until that event is processed and return
          its value.
        """
        if until is None:
            stop_event: Event | None = None
            stop_time = float("inf")
        elif isinstance(until, Event):
            stop_event = until
            stop_time = float("inf")
            if stop_event.processed:
                return stop_event.value
        else:
            stop_event = None
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(
                    f"until={stop_time} is in the past (now={self._now})")

        while self._queue:
            if self.peek() > stop_time:
                self._now = stop_time
                return None
            self.step()
            if stop_event is not None and stop_event.processed:
                if stop_event.ok:
                    return stop_event.value
                raise typing.cast(BaseException, stop_event.value)

        if stop_event is not None:
            raise RuntimeError(
                "simulation ran out of events before `until` event triggered")
        if stop_time != float("inf"):
            self._now = stop_time
        return None
