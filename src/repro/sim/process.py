"""Generator-based simulation processes with interrupt support.

A :class:`Process` drives a Python generator: each value the generator
yields must be an :class:`~repro.sim.events.Event`; the process sleeps
until that event triggers and then resumes with the event's value.

Interrupts are the mechanism the transaction manager uses to abort
transactions that are blocked (on a lock queue, a disk, or "on the
shelf"): :meth:`Process.interrupt` throws an :class:`Interrupt` exception
into the generator at its current yield point.
"""

from __future__ import annotations

import types
import typing
from heapq import heappush as _heappush

from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Environment


class Interrupt(Exception):
    """Raised inside a process that has been interrupted.

    The ``cause`` is whatever the interrupter supplied -- the commit
    simulator passes an :class:`~repro.db.transaction.AbortReason`.
    """

    @property
    def cause(self) -> typing.Any:
        return self.args[0] if self.args else None

    def __str__(self) -> str:
        return f"Interrupt({self.cause!r})"


class _Resume:
    """A minimal schedulable carrying a resume callback.

    Quacks just enough like a triggered :class:`Event` for
    ``Environment.step`` (``callbacks``/``_ok``/``_value``/``defused``).
    Used for process bootstrap, interrupt delivery, and resuming a
    process that yielded an already-processed event -- paths that used to
    allocate a full relay :class:`Event` apiece.
    """

    __slots__ = ("callbacks", "_ok", "_value", "defused")

    def __init__(self, callback: typing.Callable[[typing.Any], None],
                 ok: bool, value: typing.Any, defused: bool = False) -> None:
        self.callbacks: list[typing.Callable[[typing.Any], None]] | None = \
            [callback]
        self._ok = ok
        self._value = value
        self.defused = defused


class Process(Event):
    """A running simulation process.

    A process *is* an event: it triggers when the generator finishes
    (successfully with its return value, or with the exception that
    escaped it).  Other processes can therefore ``yield`` a process to
    wait for its completion.
    """

    __slots__ = ("_generator", "name", "_target", "_resume")

    def __init__(self, env: "Environment",
                 generator: typing.Generator[Event, typing.Any, typing.Any],
                 name: str | None = None) -> None:
        if not isinstance(generator, types.GeneratorType):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or generator.__name__
        # The bound resume callback is created once and reused for every
        # wait registration (binding a method per yield is measurable).
        self._resume = self._step
        # Bootstrap: resume the process at the current simulation time.
        init = _Resume(self._resume, True, None)
        env._eid += 1
        _heappush(env._queue, (env._now, env._eid, init))
        self._target: Event | None = typing.cast(Event, init)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    @property
    def target(self) -> Event | None:
        """The event this process is currently waiting on."""
        return self._target

    def interrupt(self, cause: typing.Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point.

        Interrupting a finished process is an error; interrupting a
        process that is waiting detaches it from its target event first
        so the event's eventual trigger does not resume it twice.
        """
        if self.triggered:
            raise RuntimeError(f"{self.name} already terminated")
        # Deliver asynchronously via a failed event so that the interrupt
        # happens inside the event loop, in a deterministic order.
        self.env.schedule(_Resume(self._resume_interrupt, False,
                                  Interrupt(cause), defused=True))

    # ------------------------------------------------------------------
    # Internal resume machinery
    # ------------------------------------------------------------------
    def _resume_interrupt(self, event: Event) -> None:
        if self.triggered:
            # Process finished between scheduling and delivery; interrupt
            # is moot.
            return
        # Detach from the current target so a later trigger of that event
        # does not resume us a second time.
        target = self._target
        if target is not None:
            callbacks = target.callbacks
            if callbacks is not None and self._resume in callbacks:
                callbacks.remove(self._resume)
        self._step(event)

    def _step(self, event: Event) -> None:
        self._target = None
        try:
            if event._ok:
                result = self._generator.send(event._value)
            else:
                # The exception is being delivered into the process, so
                # it is handled from the event loop's perspective.
                event.defused = True
                result = self._generator.throw(
                    typing.cast(BaseException, event._value))
        except StopIteration as stop:
            self._ok = True
            self._value = stop.value
            self.env.schedule(self)
            return
        except BaseException as error:  # noqa: BLE001 - deliberate resurface
            self._ok = False
            self._value = error
            self.env.schedule(self)
            return

        try:
            callbacks = result.callbacks
        except AttributeError:
            raise TypeError(
                f"process {self.name!r} yielded non-event {result!r}") \
                from None
        if callbacks is not None:
            # Pending event: wake up when it is processed.
            callbacks.append(self._resume)
            self._target = result
        else:
            # Already-processed event: resume on the next step without
            # allocating a relay Event.
            resume = _Resume(self._resume, result._ok, result._value,
                             defused=not result._ok)
            self.env.schedule(resume)
            self._target = typing.cast(Event, resume)

    def __repr__(self) -> str:
        state = "finished" if self.triggered else "alive"
        return f"<Process {self.name!r} {state}>"
