"""Generator-based simulation processes with interrupt support.

A :class:`Process` drives a Python generator: each value the generator
yields must be an :class:`~repro.sim.events.Event`; the process sleeps
until that event triggers and then resumes with the event's value.

Interrupts are the mechanism the transaction manager uses to abort
transactions that are blocked (on a lock queue, a disk, or "on the
shelf"): :meth:`Process.interrupt` throws an :class:`Interrupt` exception
into the generator at its current yield point.
"""

from __future__ import annotations

import types
import typing

from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Environment


class Interrupt(Exception):
    """Raised inside a process that has been interrupted.

    The ``cause`` is whatever the interrupter supplied -- the commit
    simulator passes an :class:`~repro.db.transaction.AbortReason`.
    """

    @property
    def cause(self) -> typing.Any:
        return self.args[0] if self.args else None

    def __str__(self) -> str:
        return f"Interrupt({self.cause!r})"


class Process(Event):
    """A running simulation process.

    A process *is* an event: it triggers when the generator finishes
    (successfully with its return value, or with the exception that
    escaped it).  Other processes can therefore ``yield`` a process to
    wait for its completion.
    """

    def __init__(self, env: "Environment",
                 generator: typing.Generator[Event, typing.Any, typing.Any],
                 name: str | None = None) -> None:
        if not isinstance(generator, types.GeneratorType):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or generator.__name__
        self._target: Event | None = None
        # Bootstrap: resume the process at the current simulation time.
        init = Event(env)
        init.succeed()
        init.callbacks.append(self._resume)  # type: ignore[union-attr]
        self._target = init

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    @property
    def target(self) -> Event | None:
        """The event this process is currently waiting on."""
        return self._target

    def interrupt(self, cause: typing.Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point.

        Interrupting a finished process is an error; interrupting a
        process that is waiting detaches it from its target event first
        so the event's eventual trigger does not resume it twice.
        """
        if self.triggered:
            raise RuntimeError(f"{self.name} already terminated")
        # Deliver asynchronously via a failed event so that the interrupt
        # happens inside the event loop, in a deterministic order.
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event.defused = True
        interrupt_event.callbacks.append(  # type: ignore[union-attr]
            self._resume_interrupt)
        self.env.schedule(interrupt_event)

    # ------------------------------------------------------------------
    # Internal resume machinery
    # ------------------------------------------------------------------
    def _resume_interrupt(self, event: Event) -> None:
        if self.triggered:
            # Process finished between scheduling and delivery; interrupt
            # is moot.
            return
        # Detach from the current target so a later trigger of that event
        # does not resume us a second time.
        target = self._target
        if target is not None and not target.processed:
            callbacks = target.callbacks
            if callbacks is not None and self._resume in callbacks:
                callbacks.remove(self._resume)
        self._step(event)

    def _resume(self, event: Event) -> None:
        self._step(event)

    def _step(self, event: Event) -> None:
        self._target = None
        try:
            if event._ok:
                result = self._generator.send(event._value)
            else:
                # The exception is being delivered into the process, so
                # it is handled from the event loop's perspective.
                event.defused = True
                result = self._generator.throw(
                    typing.cast(BaseException, event._value))
        except StopIteration as stop:
            self._ok = True
            self._value = stop.value
            self.env.schedule(self)
            return
        except BaseException as error:  # noqa: BLE001 - deliberate resurface
            self._ok = False
            self._value = error
            self.env.schedule(self)
            return

        if not isinstance(result, Event):
            raise TypeError(
                f"process {self.name!r} yielded non-event {result!r}")
        if result.processed:
            # Already-processed events resume immediately (next step).
            resume = Event(self.env)
            resume._ok = result._ok
            resume._value = result._value
            if not result._ok:
                resume.defused = True
            resume.callbacks.append(self._resume)  # type: ignore[union-attr]
            self.env.schedule(resume)
            self._target = resume
        else:
            result.callbacks.append(self._resume)  # type: ignore[union-attr]
            self._target = result

    def __repr__(self) -> str:
        state = "finished" if self.triggered else "alive"
        return f"<Process {self.name!r} {state}>"
