"""Discrete-event simulation kernel.

This subpackage is a self-contained, SimPy-style discrete-event simulation
library built for the commit-protocol study but usable on its own.  The
paper's simulator was written on top of a closed queueing network model; this
kernel provides the pieces such a model needs:

- :mod:`repro.sim.events` -- events, timeouts, and condition events.
- :mod:`repro.sim.engine` -- the :class:`~repro.sim.engine.Environment`
  event loop.
- :mod:`repro.sim.process` -- generator-based processes with interrupt
  support.
- :mod:`repro.sim.resources` -- FCFS and priority queueing resources, plus
  an infinite-server mode used by the paper's "pure data contention"
  experiments.
- :mod:`repro.sim.rng` -- reproducible named random-number streams.
- :mod:`repro.sim.stats` -- output statistics (means, time-weighted
  averages, batch-means confidence intervals).
"""

from repro.sim.engine import Environment
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Interrupt, Process
from repro.sim.resources import (
    InfiniteServer,
    PriorityResource,
    Resource,
    Server,
    Store,
)
from repro.sim.rng import RandomStreams
from repro.sim.stats import (
    AdaptivePercentileSample,
    BatchMeans,
    P2Quantile,
    PercentileSample,
    StoppingRule,
    TimeWeightedAverage,
    WelfordAccumulator,
    confidence_interval,
)

__all__ = [
    "AdaptivePercentileSample",
    "AllOf",
    "AnyOf",
    "BatchMeans",
    "Environment",
    "Event",
    "InfiniteServer",
    "Interrupt",
    "PriorityResource",
    "P2Quantile",
    "PercentileSample",
    "Process",
    "RandomStreams",
    "Resource",
    "Server",
    "StoppingRule",
    "Store",
    "TimeWeightedAverage",
    "Timeout",
    "WelfordAccumulator",
    "confidence_interval",
]
