"""Reproducible named random-number streams.

Simulation studies need *common random numbers* across protocol variants
(the paper compares protocols on identical workloads) and independent
substreams per stochastic component so that, e.g., adding surprise aborts
does not perturb the page-access sequence.  :class:`RandomStreams` derives
one independent ``random.Random`` per named component from a master seed.
"""

from __future__ import annotations

import random


class RandomStreams:
    """A family of independent, named pseudo-random streams.

    Each distinct name yields a stream seeded deterministically from the
    master seed and the name, so:

    - two :class:`RandomStreams` with the same seed produce identical
      streams for identical names (common random numbers), and
    - draws from one stream never affect another.
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the stream for ``name``."""
        stream = self._streams.get(name)
        if stream is None:
            # Derive a per-name seed; Random accepts arbitrary hashables
            # but we want stability across processes, so use a stable
            # string-derived integer rather than hash().
            derived = self.seed ^ _stable_hash(name)
            stream = random.Random(derived)
            self._streams[name] = stream
        return stream

    def indexed_stream(self, name: str, index: int) -> random.Random:
        """The stream for the ``index``-th instance of a per-entity
        component (e.g. one Poisson arrival stream per site).

        Equivalent to ``stream(f"{name}-{index}")``; the helper exists so
        call sites spell the derivation one way and instances stay
        independent of each other and of every other named stream.
        """
        return self.stream(f"{name}-{index}")

    def spawn(self, salt: int) -> "RandomStreams":
        """A new independent family (used for replications)."""
        return RandomStreams(self.seed * 1_000_003 + salt)

    def capture_state(self) -> dict[str, object]:
        """Picklable generator state of every stream touched so far.

        Streams first touched *after* a restore are absent from the
        snapshot and simply derive fresh from the master seed — the same
        state they would have had in an uninterrupted run, since
        derivation depends only on (seed, name).
        """
        return {name: stream.getstate()
                for name, stream in self._streams.items()}

    def restore_state(self, states: dict[str, object]) -> None:
        """Restore a :meth:`capture_state` snapshot.

        States are applied *in place* via :meth:`stream`, so references
        already handed out (e.g. a workload generator's cached stream)
        keep observing the restored sequence.
        """
        for name, state in states.items():
            self.stream(name).setstate(state)  # type: ignore[arg-type]

    def __repr__(self) -> str:
        return f"RandomStreams(seed={self.seed})"


def _stable_hash(name: str) -> int:
    """A process-stable 64-bit hash of a string (FNV-1a)."""
    value = 0xCBF29CE484222325
    for byte in name.encode("utf-8"):
        value ^= byte
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value
