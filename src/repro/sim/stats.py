"""Output statistics for simulation experiments.

The paper reports mean throughputs whose 90%-confidence half-widths are
below 10% of the mean, with runs of at least 50,000 transactions.  This
module supplies the pieces needed to reproduce that methodology:

- :class:`WelfordAccumulator` -- numerically stable running mean/variance
  for observational data (response times, counts per transaction).
- :class:`TimeWeightedAverage` -- time-integrated averages for state
  variables (number of blocked transactions, queue lengths).
- :class:`BatchMeans` -- batch-means confidence intervals for steady-state
  means from a single long run.
- :class:`PercentileSample` -- retained-observation tail percentiles
  (p50/p95/p99) for the open-system latency reports, where means hide
  exactly the queueing behaviour the experiment is about.
- :class:`P2Quantile` -- the P-squared (Jain & Chlamtac 1985) streaming
  quantile estimator: one quantile in O(1) memory, for soak runs whose
  observation counts (10^6-10^7) make retention impossible.
- :class:`AdaptivePercentileSample` -- :class:`PercentileSample` surface
  that stays exact up to a sample cap and degrades to a bank of P-squared
  estimators beyond it.
- :func:`confidence_interval` -- Student-t interval on a sample of
  replication means.
- :class:`StoppingRule` -- sequential CI-driven early stopping: run
  replications in waves, stop once the relative half-width hits a
  target (the adaptive-replication mode of the sweep runner).
"""

from __future__ import annotations

import math
import typing


class WelfordAccumulator:
    """Running mean and variance via Welford's algorithm."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.total = 0.0

    def add(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "WelfordAccumulator") -> None:
        """Fold another accumulator into this one (parallel Welford)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            self.total = other.total
            return
        total_count = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total_count
        self._mean += delta * other.count / total_count
        self.count = total_count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)


class TimeWeightedAverage:
    """Time-integral average of a piecewise-constant state variable.

    Used for the paper's *block ratio* (average fraction of transactions
    in the blocked state) and resource queue lengths.
    """

    def __init__(self, initial_value: float = 0.0,
                 initial_time: float = 0.0) -> None:
        self._value = initial_value
        self._last_time = initial_time
        self._integral = 0.0
        self._start_time = initial_time

    @property
    def value(self) -> float:
        """Current level of the state variable."""
        return self._value

    def update(self, value: float, now: float) -> None:
        """Set a new level at simulated time ``now``."""
        dt = now - self._last_time
        if dt < 0:
            raise ValueError("time moved backwards")
        self._integral += self._value * dt
        self._value = value
        self._last_time = now

    def increment(self, now: float, amount: float = 1.0) -> None:
        self.update(self._value + amount, now)

    def decrement(self, now: float, amount: float = 1.0) -> None:
        self.update(self._value - amount, now)

    def reset(self, now: float) -> None:
        """Discard history (end of warmup); keep the current level."""
        self._integral = 0.0
        self._last_time = now
        self._start_time = now

    def average(self, now: float) -> float:
        """Time-weighted mean from the last reset until ``now``."""
        elapsed = now - self._start_time
        if elapsed <= 0:
            return self._value
        return (self._integral + self._value * (now - self._last_time)) / elapsed


class BatchMeans:
    """Batch-means estimator for a steady-state mean.

    Observations are grouped into fixed-size batches; the batch means are
    treated as (approximately) i.i.d. and a Student-t interval is formed
    on them.  This is the standard single-long-run methodology the paper's
    "relative half-widths ... at the 90 percent confidence level" implies.
    """

    def __init__(self, batch_size: int) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = batch_size
        self._current = WelfordAccumulator()
        self.batch_means: list[float] = []
        # Incremental accumulator over completed batch means, so
        # interval() is O(1) instead of a rebuild over every batch --
        # stopping rules poll it after every wave.
        self._batch_acc = WelfordAccumulator()
        self._all = WelfordAccumulator()

    def add(self, value: float) -> None:
        self._current.add(value)
        self._all.add(value)
        if self._current.count >= self.batch_size:
            self.batch_means.append(self._current.mean)
            self._batch_acc.add(self._current.mean)
            self._current = WelfordAccumulator()

    @property
    def count(self) -> int:
        return self._all.count

    @property
    def mean(self) -> float:
        return self._all.mean

    def interval(self, confidence: float = 0.90) -> tuple[float, float]:
        """(mean, half-width) from the completed batches."""
        n = self._batch_acc.count
        if n < 2:
            return self.mean, math.inf
        t = student_t_quantile(1 - (1 - confidence) / 2, n - 1)
        half = t * self._batch_acc.stddev / math.sqrt(n)
        return self._batch_acc.mean, half

    def relative_half_width(self, confidence: float = 0.90) -> float:
        mean, half = self.interval(confidence)
        if mean == 0:
            return math.inf
        return abs(half / mean)


class PercentileSample:
    """Exact empirical percentiles over retained observations.

    The measured period of a run is bounded (tens of thousands of
    observations), so keeping every value and sorting on demand is both
    exact and cheap; the sorted order is cached until the next ``add``.
    """

    def __init__(self) -> None:
        self._values: list[float] = []
        self._sorted: list[float] | None = None

    def add(self, value: float) -> None:
        if math.isnan(value):
            # A NaN poisons the sorted cache (it is incomparable, so the
            # sort order around it is arbitrary) and every later quantile.
            raise ValueError("cannot add NaN to a PercentileSample")
        self._values.append(value)
        self._sorted = None

    @property
    def count(self) -> int:
        return len(self._values)

    def percentile(self, p: float) -> float:
        """The ``p``-quantile (``p`` in [0, 1]), linearly interpolated.

        Returns 0.0 on an empty sample (consistent with the Welford
        accumulators' "no data" convention).
        """
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        values = self._sorted
        if values is None:
            values = self._sorted = sorted(self._values)
        if not values:
            return 0.0
        if len(values) == 1:
            return values[0]
        position = p * (len(values) - 1)
        low = int(position)
        high = min(low + 1, len(values) - 1)
        fraction = position - low
        return values[low] * (1.0 - fraction) + values[high] * fraction


class P2Quantile:
    """Streaming estimate of a single quantile via the P-squared algorithm.

    Jain & Chlamtac, "The P² Algorithm for Dynamic Calculation of
    Quantiles and Histograms Without Storing Observations", CACM 1985.
    Five markers track (min, p/2, p, (1+p)/2, max); marker heights are
    nudged with a piecewise-parabolic fit whenever their positions drift
    from the ideal positions for the target quantile.  Memory is O(1)
    regardless of stream length, which is what lets a soak run observe
    10^7 response times at flat RSS.

    Exact for the first five observations (they are simply kept sorted).
    """

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError("p must be in (0, 1)")
        self.p = p
        self.count = 0
        # Until five observations arrive, _heights holds the sorted raw
        # values; afterwards it holds the five marker heights.
        self._heights: list[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1 + 2 * p, 1 + 4 * p, 3 + 2 * p, 5.0]
        self._increments = [0.0, p / 2, p, (1 + p) / 2, 1.0]

    def add(self, value: float) -> None:
        """Fold one observation into the estimate."""
        if math.isnan(value):
            # Same convention as PercentileSample: a NaN would silently
            # corrupt every marker it touches.
            raise ValueError("cannot add NaN to a P2Quantile")
        self.count += 1
        heights = self._heights
        if self.count <= 5:
            lo, hi = 0, len(heights)
            while lo < hi:
                mid = (lo + hi) // 2
                if heights[mid] < value:
                    lo = mid + 1
                else:
                    hi = mid
            heights.insert(lo, value)
            return

        positions = self._positions
        # Locate the cell [q_k, q_k+1) containing the new value, widening
        # the extreme markers if it falls outside them.
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        desired = self._desired
        increments = self._increments
        for i in range(5):
            desired[i] += increments[i]

        for i in (1, 2, 3):
            drift = desired[i] - positions[i]
            right_gap = positions[i + 1] - positions[i]
            left_gap = positions[i - 1] - positions[i]
            if (drift >= 1.0 and right_gap > 1.0) or \
                    (drift <= -1.0 and left_gap < -1.0):
                step = 1.0 if drift > 0 else -1.0
                adjusted = self._parabolic(i, step)
                if not heights[i - 1] < adjusted < heights[i + 1]:
                    adjusted = self._linear(i, step)
                heights[i] = adjusted
                positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        q = self._heights
        n = self._positions
        return q[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))

    def _linear(self, i: int, step: float) -> float:
        q = self._heights
        n = self._positions
        j = i + int(step)
        return q[i] + step * (q[j] - q[i]) / (n[j] - n[i])

    @property
    def minimum(self) -> float:
        return self._heights[0] if self._heights else 0.0

    @property
    def maximum(self) -> float:
        return self._heights[-1] if self._heights else 0.0

    def value(self) -> float:
        """Current estimate of the ``p``-quantile (0.0 on no data)."""
        if not self._heights:
            return 0.0
        if self.count <= 5:
            # Exact small-sample path, matching PercentileSample's
            # linear interpolation over the sorted values.
            values = self._heights
            if len(values) == 1:
                return values[0]
            position = self.p * (len(values) - 1)
            low = int(position)
            high = min(low + 1, len(values) - 1)
            fraction = position - low
            return values[low] * (1.0 - fraction) + values[high] * fraction
        return self._heights[2]


class AdaptivePercentileSample:
    """Percentiles that stay exact up to a cap, then stream via P-squared.

    Drop-in for :class:`PercentileSample` (same ``add``/``percentile``/
    ``count`` surface).  Short measured periods — everything the golden
    fixtures pin — never hit the cap, so they keep byte-identical exact
    quantiles.  Once ``count`` exceeds ``sample_cap`` the retained values
    are replayed into one :class:`P2Quantile` per tracked quantile and
    the raw list is dropped: memory is O(1) from then on.

    Beyond the cap, ``percentile(p)`` for an untracked ``p`` linearly
    interpolates between the tracked estimates (anchored at the observed
    min and max), which is ample for reporting; the tracked set defaults
    to the p50/p95/p99 the open-system results expose.
    """

    def __init__(self, sample_cap: int = 10_000,
                 quantiles: typing.Sequence[float] = (0.5, 0.95, 0.99)) -> None:
        if sample_cap < 5:
            raise ValueError("sample_cap must be >= 5 (P-squared needs "
                             f"five markers), got {sample_cap}")
        if not quantiles:
            raise ValueError("need at least one tracked quantile")
        self.sample_cap = sample_cap
        self.quantiles = tuple(sorted(quantiles))
        self._exact: PercentileSample | None = PercentileSample()
        self._estimators: dict[float, P2Quantile] = {}

    @property
    def streaming(self) -> bool:
        """True once the sample has degraded to P-squared estimators."""
        return self._exact is None

    @property
    def count(self) -> int:
        if self._exact is not None:
            return self._exact.count
        return next(iter(self._estimators.values())).count

    def add(self, value: float) -> None:
        exact = self._exact
        if exact is not None:
            exact.add(value)  # NaN guard lives there
            if exact.count > self.sample_cap:
                self._spill()
            return
        for estimator in self._estimators.values():
            estimator.add(value)

    def _spill(self) -> None:
        """Replay the retained values into P-squared and drop them."""
        assert self._exact is not None
        self._estimators = {q: P2Quantile(q) for q in self.quantiles}
        for value in self._exact._values:
            for estimator in self._estimators.values():
                estimator.add(value)
        self._exact = None

    def percentile(self, p: float) -> float:
        """The ``p``-quantile: exact below the cap, estimated above."""
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        if self._exact is not None:
            return self._exact.percentile(p)
        estimator = self._estimators.get(p)
        if estimator is not None:
            return estimator.value()
        # Interpolate between tracked quantiles, anchored at min/max.
        first = next(iter(self._estimators.values()))
        knots = [(0.0, first.minimum)]
        knots += [(q, est.value()) for q, est in self._estimators.items()]
        knots.append((1.0, first.maximum))
        for (p_lo, v_lo), (p_hi, v_hi) in zip(knots, knots[1:]):
            if p_lo <= p <= p_hi:
                if p_hi == p_lo:
                    return v_lo
                fraction = (p - p_lo) / (p_hi - p_lo)
                return v_lo * (1.0 - fraction) + v_hi * fraction
        return first.maximum  # unreachable: knots span [0, 1]


class StoppingRule:
    """CI-driven early stopping for one replicated estimate.

    The paper's methodology: report means whose 90%-confidence relative
    half-widths are below 10%.  A :class:`StoppingRule` encodes that as
    a sequential procedure -- feed it one observation per replication
    (:meth:`observe`) and it answers *whether* the estimate is tight
    enough (:attr:`satisfied`) and *how many more* replications the
    next wave should run (:meth:`next_wave`).  Grids using it do the
    minimum work: points with low variance stop at
    ``min_replications``, noisy points keep going until
    ``max_replications`` caps them.

    The interval is the same Student-t construction as
    :func:`confidence_interval`, maintained incrementally on a
    :class:`WelfordAccumulator`.  A degenerate sample (zero variance,
    e.g. deterministic overhead counts) is satisfied as soon as the
    floor is reached, even at mean zero.
    """

    def __init__(self, target: float, confidence: float = 0.90,
                 min_replications: int = 2,
                 max_replications: int = 16) -> None:
        if not target > 0.0:
            raise ValueError(f"target must be > 0, got {target}")
        if not 0.0 < confidence < 1.0:
            raise ValueError(f"confidence must be in (0, 1), "
                             f"got {confidence}")
        if min_replications < 2:
            raise ValueError("min_replications must be >= 2 (a CI needs "
                             f"two samples), got {min_replications}")
        if max_replications < min_replications:
            raise ValueError(
                f"max_replications ({max_replications}) must be >= "
                f"min_replications ({min_replications})")
        self.target = target
        self.confidence = confidence
        self.min_replications = min_replications
        self.max_replications = max_replications
        self._acc = WelfordAccumulator()

    def observe(self, value: float) -> None:
        """Record one replication's metric value."""
        self._acc.add(value)

    @property
    def count(self) -> int:
        return self._acc.count

    def interval(self) -> tuple[float, float]:
        """(mean, half-width) over the observations so far."""
        n = self._acc.count
        if n == 0:
            return 0.0, math.inf
        if n == 1:
            return self._acc.mean, math.inf
        t = student_t_quantile(1 - (1 - self.confidence) / 2, n - 1)
        return self._acc.mean, t * self._acc.stddev / math.sqrt(n)

    @property
    def relative_half_width(self) -> float:
        mean, half = self.interval()
        if half == 0.0:
            return 0.0  # degenerate sample: exactly pinned, mean or not
        if mean == 0:
            return math.inf
        return abs(half / mean)

    @property
    def satisfied(self) -> bool:
        return (self.count >= self.min_replications
                and self.relative_half_width <= self.target)

    @property
    def exhausted(self) -> bool:
        """The replication budget is spent (stop regardless of width)."""
        return self.count >= self.max_replications

    def next_wave(self) -> int:
        """Replications the next wave should run (0 = stop).

        The first wave fills up to ``min_replications``; later waves
        grow roughly geometrically (half the current sample, at least
        one) so slow-converging points need few dispatch rounds, capped
        by the remaining budget.
        """
        if self.satisfied or self.exhausted:
            return 0
        if self.count < self.min_replications:
            wave = self.min_replications - self.count
        else:
            wave = max(1, self.count // 2)
        return min(wave, self.max_replications - self.count)


def confidence_interval(samples: typing.Sequence[float],
                        confidence: float = 0.90) -> tuple[float, float]:
    """(mean, half-width) Student-t interval over replication means."""
    n = len(samples)
    if n == 0:
        return 0.0, math.inf
    if n == 1:
        return samples[0], math.inf
    acc = WelfordAccumulator()
    for s in samples:
        acc.add(s)
    t = student_t_quantile(1 - (1 - confidence) / 2, n - 1)
    return acc.mean, t * acc.stddev / math.sqrt(n)


def student_t_quantile(p: float, df: int) -> float:
    """Quantile of the Student-t distribution.

    Implemented from scratch (Hill's algorithm via the inverse incomplete
    beta is overkill; we use the classic Abramowitz–Stegun normal-quantile
    expansion plus the Cornish–Fisher-style t correction), accurate to a
    few 1e-4 -- ample for confidence reporting.
    """
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1)")
    if df < 1:
        raise ValueError("df must be >= 1")
    # Exact small-df values for the common tail probabilities would be
    # nice, but the expansion below is already good to ~1e-3 for df >= 3;
    # for df 1 and 2 closed forms exist.
    if df == 1:
        return math.tan(math.pi * (p - 0.5))
    if df == 2:
        return (2 * p - 1) * math.sqrt(2.0 / (4 * p * (1 - p)))
    z = normal_quantile(p)
    g1 = (z**3 + z) / 4.0
    g2 = (5 * z**5 + 16 * z**3 + 3 * z) / 96.0
    g3 = (3 * z**7 + 19 * z**5 + 17 * z**3 - 15 * z) / 384.0
    g4 = (79 * z**9 + 776 * z**7 + 1482 * z**5 - 1920 * z**3 - 945 * z) / 92160.0
    return z + g1 / df + g2 / df**2 + g3 / df**3 + g4 / df**4


def normal_quantile(p: float) -> float:
    """Inverse standard normal CDF (Acklam's rational approximation)."""
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1)")
    # Coefficients for Acklam's approximation.
    a = (-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    if p > 1 - p_low:
        q = math.sqrt(-2 * math.log(1 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / \
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1)
