"""Queueing resources for the closed queueing network model.

The paper's model needs three kinds of service centers:

- **FCFS resources** (data disks, log disks): single queue, one or more
  servers, first-come first-served.
- **Priority resources** (CPUs): a single common queue shared by all the
  site's processors, where *message processing is given higher priority
  than data processing* (Section 4 of the paper).  Priorities are
  non-preemptive.
- **Infinite servers**: Experiment 2 ("pure data contention") makes the
  physical resources infinite -- no queueing, only service time.

All three expose the same ``serve`` coroutine so call sites do not care
which one they talk to.
"""

from __future__ import annotations

import collections
import heapq
import typing

from repro.sim.events import Event, Timeout

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Environment

#: Priority for message handling at CPUs (served before data processing).
PRIORITY_MESSAGE = 0
#: Priority for local data processing at CPUs.
PRIORITY_DATA = 1


class Request(Event):
    """A pending claim on a resource.

    Triggered when the resource grants the claim.  Must be released with
    :meth:`Resource.release` (directly or via ``serve``).
    """

    __slots__ = ("priority",)

    def __init__(self, env: "Environment", priority: int = PRIORITY_DATA):
        super().__init__(env)
        self.priority = priority


class Resource:
    """A multi-server FCFS resource.

    Statistics: tracks busy time per server-slot so utilization can be
    reported, and the time-integral of queue length.
    """

    def __init__(self, env: "Environment", capacity: int = 1,
                 name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._in_service = 0
        self._queue: collections.deque[Request] = collections.deque()
        # Statistics.
        self._busy_integral = 0.0
        self._queue_integral = 0.0
        self._last_change = env.now
        self._served = 0

    # ------------------------------------------------------------------
    # Claims
    # ------------------------------------------------------------------
    def request(self, priority: int = PRIORITY_DATA) -> Request:
        """Claim a server slot; the returned event triggers when granted."""
        self._account()
        req = Request(self.env, priority)
        if self._in_service < self.capacity:
            self._in_service += 1
            req.succeed()
        else:
            self._enqueue(req)
        return req

    def release(self, request: Request) -> None:
        """Release a previously granted claim."""
        self._account()
        if not request.triggered:
            # Still waiting: withdraw from the queue (used when an
            # interrupted process abandons its claim).
            self._dequeue(request)
            return
        self._in_service -= 1
        self._served += 1
        self._grant_next()

    def cancel(self, request: Request) -> None:
        """Withdraw an ungranted request (no-op if already granted)."""
        self._account()
        if not request.triggered:
            self._dequeue(request)

    def serve(self, duration: float, priority: int = PRIORITY_DATA,
              ) -> typing.Generator[Event, typing.Any, None]:
        """Coroutine: wait for a server, hold it for ``duration``, release.

        If the calling process is interrupted while queued or in service,
        the claim is cleanly withdrawn/released before the interrupt
        propagates.
        """
        req = self.request(priority)
        try:
            yield req
            yield Timeout(self.env, duration)
        finally:
            self.release(req)

    # ------------------------------------------------------------------
    # Queue discipline (overridden by PriorityResource)
    # ------------------------------------------------------------------
    def _enqueue(self, req: Request) -> None:
        self._queue.append(req)

    def _dequeue(self, req: Request) -> None:
        try:
            self._queue.remove(req)
        except ValueError:
            pass

    def _pop_next(self) -> Request | None:
        if self._queue:
            return self._queue.popleft()
        return None

    def _grant_next(self) -> None:
        nxt = self._pop_next()
        if nxt is not None:
            self._in_service += 1
            nxt.succeed()

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def _account(self) -> None:
        now = self.env._now
        dt = now - self._last_change
        if dt > 0:
            self._busy_integral += dt * self._in_service
            self._queue_integral += dt * len(self._queue)
            self._last_change = now

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def in_service(self) -> int:
        return self._in_service

    def utilization(self, elapsed: float) -> float:
        """Mean fraction of server capacity busy over ``elapsed`` time."""
        self._account()
        if elapsed <= 0:
            return 0.0
        return self._busy_integral / (elapsed * self.capacity)

    def busy_snapshot(self) -> float:
        """Cumulative busy server-time so far (for windowed utilization:
        take a snapshot at window start and subtract)."""
        self._account()
        return self._busy_integral

    def mean_queue_length(self, elapsed: float) -> float:
        self._account()
        if elapsed <= 0:
            return 0.0
        return self._queue_integral / elapsed


class PriorityResource(Resource):
    """FCFS within priority class; lower priority value served first.

    Used for site CPUs: message processing (priority 0) overtakes queued
    data processing (priority 1), but service is non-preemptive.
    """

    def __init__(self, env: "Environment", capacity: int = 1,
                 name: str = "priority-resource") -> None:
        super().__init__(env, capacity, name)
        self._pqueue: list[tuple[int, int, Request]] = []
        self._seq = 0

    def _enqueue(self, req: Request) -> None:
        self._seq += 1
        heapq.heappush(self._pqueue, (req.priority, self._seq, req))

    def _dequeue(self, req: Request) -> None:
        for i, (_, _, queued) in enumerate(self._pqueue):
            if queued is req:
                self._pqueue[i] = self._pqueue[-1]
                self._pqueue.pop()
                heapq.heapify(self._pqueue)
                return

    def _pop_next(self) -> Request | None:
        if self._pqueue:
            return heapq.heappop(self._pqueue)[2]
        return None

    @property
    def queue_length(self) -> int:
        return len(self._pqueue)

    def mean_queue_length(self, elapsed: float) -> float:
        # _queue_integral in the base class tracks the deque; track the
        # heap length instead via _account override below.
        return super().mean_queue_length(elapsed)

    def _account(self) -> None:
        now = self.env._now
        dt = now - self._last_change
        if dt > 0:
            self._busy_integral += dt * self._in_service
            self._queue_integral += dt * len(self._pqueue)
            self._last_change = now


class InfiniteServer:
    """A service center with unlimited parallel servers (no queueing).

    Experiment 2 of the paper makes CPUs and disks "infinite": requests
    never queue but still take their full service time.  Exposes the same
    ``serve`` interface as :class:`Resource`.
    """

    def __init__(self, env: "Environment", name: str = "infinite") -> None:
        self.env = env
        self.name = name
        self.capacity = float("inf")
        self._served = 0
        self._busy_integral = 0.0

    def serve(self, duration: float, priority: int = PRIORITY_DATA,
              ) -> typing.Generator[Event, typing.Any, None]:
        yield Timeout(self.env, duration)
        self._served += 1
        self._busy_integral += duration

    @property
    def queue_length(self) -> int:
        return 0

    @property
    def in_service(self) -> int:
        return 0

    def utilization(self, elapsed: float) -> float:
        return 0.0

    def busy_snapshot(self) -> float:
        return self._busy_integral

    def mean_queue_length(self, elapsed: float) -> float:
        return 0.0


#: Anything a site can dispatch service requests to.
Server = typing.Union[Resource, PriorityResource, InfiniteServer]


class Store:
    """An unbounded FIFO message store (mailbox).

    ``put`` never blocks; ``get`` returns an event that triggers with the
    oldest item as soon as one is available.  Used for inter-process
    message delivery (master/cohort inboxes).

    Semantics note: if a process that was waiting on ``get`` is
    interrupted, a later ``put`` may still resolve its (now unread) get
    event, consuming the item.  The commit simulator is immune by
    construction -- inboxes belong to per-incarnation agents, and an
    interrupted agent's messages are dead letters anyway -- but library
    users with shared mailboxes should re-``get`` rather than reuse a
    possibly-interrupted get event.
    """

    def __init__(self, env: "Environment", name: str = "store") -> None:
        self.env = env
        self.name = name
        self._items: collections.deque[typing.Any] = collections.deque()
        self._getters: collections.deque[Event] = collections.deque()

    def put(self, item: typing.Any) -> None:
        """Deposit an item, waking the oldest waiting getter if any."""
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:
                getter.succeed(item)
                return
        self._items.append(item)

    def get(self) -> Event:
        """Event that triggers with the next available item."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def clear(self) -> None:
        """Discard all queued items and pending getters.

        Models the loss of volatile state: a crashed site's mailboxes are
        emptied and processes waiting on them are never woken (the fault
        injector interrupts those processes separately).
        """
        self._items.clear()
        self._getters.clear()

    def __len__(self) -> int:
        return len(self._items)
