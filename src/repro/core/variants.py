"""OPT combined with other optimizations (paper Section 3.2).

"An attractive feature of OPT is that it can be integrated, often
synergistically, with most other optimizations proposed earlier."  The
combinations evaluated by the paper:

- **OPT-PC** (Experiment 4): best performer when the workload is heavily
  CPU-bound (high distribution degree), where PC's message savings
  matter;
- **OPT-PA** (Experiment 6): inherits PA's cheap abort path under
  surprise aborts;
- **OPT-3PC** (Experiment 5): non-blocking *and* better peak throughput
  than the blocking 2PC-based protocols under sufficient contention --
  the paper's "win-win".
"""

from __future__ import annotations

from repro.core.presumed_abort import PresumedAbort
from repro.core.presumed_commit import PresumedCommit
from repro.core.three_phase import ThreePhaseCommit


class OptimisticPresumedAbort(PresumedAbort):
    """OPT lending on top of presumed abort."""

    name = "OPT-PA"
    lending = True


class OptimisticPresumedCommit(PresumedCommit):
    """OPT lending on top of presumed commit."""

    name = "OPT-PC"
    lending = True


class OptimisticThreePhase(ThreePhaseCommit):
    """OPT lending on top of three-phase commit.

    The prepared window spans both the precommit and the decision
    phases, so lending has *more* opportunity than under OPT-2PC.
    """

    name = "OPT-3PC"
    lending = True
