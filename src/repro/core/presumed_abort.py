"""Presumed abort (paper Section 2.2).

Identical to 2PC for committing transactions.  On the abort path the
"in case of doubt, abort" recovery rule makes the following overheads
unnecessary:

- cohorts do not acknowledge ABORT messages;
- cohorts do not force their abort records;
- the master does not force its abort record and writes no end record.
"""

from __future__ import annotations

from repro.core.two_phase import TwoPhaseCommit
from repro.db.messages import MessageKind
from repro.db.transaction import CohortAgent, MasterAgent
from repro.db.wal import LogRecordKind


class PresumedAbort(TwoPhaseCommit):
    """2PC with the presumed-abort optimization."""

    name = "PA"

    def master_abort_phase(self, master: MasterAgent):
        """Abort without forcing, without ACKs, without an end record."""
        master.log(LogRecordKind.ABORT)
        for cohort in master.prepared_cohorts:
            yield from master.send(MessageKind.ABORT, cohort)

    def cohort_commit(self, cohort: CohortAgent):
        vote = yield from self.cohort_vote(cohort, no_vote_forced=False)
        if vote != "yes":
            return
        yield from self.cohort_decision(cohort)

    def cohort_decision(self, cohort: CohortAgent):
        master = cohort.master
        assert master is not None
        message = yield from self.await_decision(
            cohort, (MessageKind.COMMIT, MessageKind.ABORT))
        if message is None:
            return  # resolved through recovery
        if message.kind is MessageKind.COMMIT:
            # Commit path is exactly 2PC.
            yield from cohort.force_log(LogRecordKind.COMMIT)
            cohort.implement_commit()
            yield from cohort.send(MessageKind.ACK, master)
        else:
            assert message.kind is MessageKind.ABORT, message
            cohort.log(LogRecordKind.ABORT)
            cohort.implement_abort()
            # Presumed abort: no ACK for the abort decision.

    def presumed_outcome(self, cohort, kinds):
        """Presumed abort: no information at the coordinator means the
        transaction aborted -- no inquiry escalation needed."""
        return ("abort", "presumed-abort")
