"""Paxos Commit (Gray & Lamport, "Consensus on Transaction Commit").

Each transaction elects ``2F + 1`` *acceptors* from its cohort sites;
every resource manager's prepared/aborted vote runs as its own Paxos
instance, and the coordinator commits once ``F + 1`` acceptors have
acknowledged every instance.  At ``F = 0`` the protocol degenerates to
exactly two-phase commit (the paper's central observation) -- this
implementation inherits 2PC and takes the inherited code paths verbatim
when the effective F is zero, so the message and forced-write counts
match 2PC's to the byte.

Mapping onto the simulator's cost model (``F >= 1``):

- The acceptor set is a deterministic function of the transaction spec
  (coordinator site first, then the other cohort sites, ``2F + 1``
  total): every participant can recompute it after a crash without
  extra messages, standing in for Gray & Lamport's statically-known
  acceptor configuration.  The coordinator's own site always hosts one
  acceptor, played by the master itself: a cohort's ``VOTE_YES`` to the
  master *is* its phase-2a message to that acceptor, and the master's
  forced COMMIT record doubles as that acceptor's stable acceptance --
  this is the paper's "co-locate one acceptor with the leader"
  optimization, and it is what makes F = 0 collapse to 2PC.
- Each cohort sends its vote as a ``PAXOS_2A`` to the ``2F`` remaining
  acceptors; an acceptor batches all instances into **one** forced
  ``ACCEPT`` record and **one** ``PAXOS_2B`` to the master (the paper's
  batching optimization: the acceptor cost is per transaction, not per
  instance).
- The master waits for ``F`` remote 2b acknowledgements (its co-located
  acceptance is the ``F + 1``-st) before forcing COMMIT.  With faults
  active the wait is bounded: no quorum means abort, never commit.
- Coordinator recovery: a blocked cohort takes over as a new leader.
  It probes the acceptor sites; with ``F + 1`` reachable and *no*
  acceptance on record anywhere reachable, it opens a higher ballot
  that closes every vote instance as abort (quorum intersection makes
  this safe: a commit would have left acceptance records on at least
  ``F + 1`` of the ``2F + 1`` sites).  Any reachable acceptance with no
  decision record is ambiguous -- the leader stays blocked and falls
  back to the coordinator-WAL inquiry path.  The promise side of the
  ballot is modeled as a shared closed-instances set consulted by
  acceptors and the master before accepting/committing (the probe
  round's message costs are paid; the promises themselves ride on it).
"""

from __future__ import annotations

import typing

from repro.core.two_phase import TwoPhaseCommit
from repro.db.messages import MessageKind
from repro.db.transaction import (
    AbortReason,
    Agent,
    CohortAgent,
    CohortState,
    MasterAgent,
    Transaction,
    TransactionOutcome,
)
from repro.db.wal import LogRecordKind
from repro.obs.events import AcceptorEvent, BallotOpened, EventKind
from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.base import CohortGenerator, MasterGenerator
    from repro.db.site import Site


class PaxosAcceptor(Agent):
    """One remote acceptor of one transaction (an inbox at a site)."""

    def __repr__(self) -> str:
        return f"<Acceptor {self.txn.name}@{self.site.site_id}>"


class PaxosCommit(TwoPhaseCommit):
    """Gray & Lamport's Paxos Commit with per-transaction acceptors."""

    def __init__(self, f: int = 1) -> None:
        super().__init__()
        if f < 0:
            raise ValueError(f"paxos fault tolerance F must be >= 0, got {f}")
        self.f = f
        self.name = "PAXOS" if f == 1 else f"PAXOS:f={f}"
        #: with F >= 1 a blocked participant can terminate through the
        #: acceptor quorum, no coordinator needed; F = 0 *is* 2PC.
        self.non_blocking = f >= 1
        #: (txn_id, incarnation) pairs whose vote instances a recovery
        #: ballot closed as abort; acceptors and the master refuse to
        #: accept/commit them afterwards (the modeled promise).
        self._ballot_closed: set[tuple[int, int]] = set()

    # ------------------------------------------------------------------
    # Acceptor placement
    # ------------------------------------------------------------------
    def effective_f(self, txn: Transaction) -> int:
        """F actually achievable: 2F+1 acceptors need 2F+1 cohort sites."""
        return min(self.f, (len(txn.spec.accesses) - 1) // 2)

    def acceptor_site_ids(self, txn: Transaction) -> tuple[int, ...]:
        """The 2F+1 acceptor sites (coordinator's site first).

        A pure function of the immutable spec, so any participant -- in
        particular a recovering one -- computes the same set.
        """
        f = self.effective_f(txn)
        spec = txn.spec
        others = [a.site_id for a in spec.accesses
                  if a.site_id != spec.origin_site]
        return (spec.origin_site, *others[:2 * f])

    # ------------------------------------------------------------------
    # Master side
    # ------------------------------------------------------------------
    def master_commit(self, master: MasterAgent) -> "MasterGenerator":
        f = self.effective_f(master.txn)
        if f == 0:
            # Degenerate case: the inherited 2PC code paths, verbatim.
            return (yield from super().master_commit(master))
        system = self.system
        assert system is not None
        txn = master.txn
        # Spawn the 2F remote acceptors before any PREPARE goes out so
        # their inboxes exist when the cohorts' 2a messages arrive.
        acceptors = []
        for site_id in self.acceptor_site_ids(txn)[1:]:
            acceptor = PaxosAcceptor(system, txn, system.site_for(site_id))
            acceptor.process = system.env.process(
                self._acceptor(acceptor, master, len(master.cohorts)),
                name=f"{txn.name}-acceptor@{site_id}")
            acceptors.append(acceptor)
        master.paxos_acceptors = acceptors  # read by cohort_vote
        all_yes = yield from self.collect_votes(master)
        if system.fault_timeouts is None:
            # Healthy wire: every acceptor hears every vote, so all 2F
            # acknowledgements are in flight whatever the outcome.
            # Drain them all -- the ACK-phase receive asserts its
            # expected kind in healthy mode, so none may linger.
            quorum = yield from self._await_acceptor_quorum(master, f)
        else:
            quorum = all_yes \
                and (yield from self._await_acceptor_quorum(master, f))
        if not all_yes:
            yield from self.master_abort_phase(master)
            return self.abort_outcome(master)
        key = (txn.txn_id, txn.incarnation)
        if not quorum or key in self._ballot_closed:
            # No acceptor quorum (or a recovery ballot already closed
            # the instances): committing would be unsound; abort.
            if txn.abort_reason is None:
                txn.abort_reason = AbortReason.TIMEOUT
            yield from self.master_abort_phase(master)
            return TransactionOutcome.ABORTED
        # The forced COMMIT record is appended synchronously at this
        # call, so the closed-ballot check above and the decision are
        # one atomic step against any recovery leader's WAL read.
        yield from self.master_commit_phase(master)
        return TransactionOutcome.COMMITTED

    def _await_acceptor_quorum(self, master: MasterAgent, f: int,
                               ) -> typing.Generator[Event, typing.Any, bool]:
        """Collect 2b acknowledgements; True once a quorum is in.

        Healthy runs consume all ``2F`` acknowledgements (they are
        already in flight and would otherwise linger as strays); under
        faults the master proceeds at ``F`` -- with its co-located
        acceptance that is the F+1 quorum -- and missing stragglers are
        abandoned after the ack deadline, but *never* committed past.
        """
        assert self.system is not None
        ft = self.system.fault_timeouts
        if ft is None:
            for _ in range(2 * f):
                message = yield master.recv()
                assert message.kind is MessageKind.PAXOS_2B, message
            return True
        remaining = f
        while remaining:
            message = yield from master.recv_wait(ft.ack_timeout_ms,
                                                  wait="paxos-2b")
            if message is None:
                return False
            if message.kind is MessageKind.PAXOS_2B and message.payload:
                # Only all-YES acceptances count toward the commit
                # quorum; a False 2b reports a NO instance somewhere.
                remaining -= 1
            # stray (late/duplicate) traffic under faults; ignore.
        return True

    # ------------------------------------------------------------------
    # Acceptor side
    # ------------------------------------------------------------------
    def _acceptor(self, acceptor: PaxosAcceptor, master: MasterAgent,
                  expected: int,
                  ) -> typing.Generator[Event, typing.Any, None]:
        """One acceptor's life: gather every RM's 2a, accept, send 2b.

        All ``expected`` vote instances batch into one forced ACCEPT
        record and one 2b message (the paper's batching optimization).
        An acceptor that never hears all votes simply exits: the master
        times out (no quorum means abort) or a recovery ballot closes
        the instances.
        """
        assert self.system is not None
        system = self.system
        ft = system.fault_timeouts
        votes = 0
        all_yes = True
        while votes < expected:
            if ft is None:
                message = yield acceptor.recv()
            else:
                message = yield from acceptor.recv_wait(ft.vote_timeout_ms,
                                                        wait="paxos-2a")
                if message is None:
                    return  # a vote is missing for good; never accept
            if message.kind is not MessageKind.PAXOS_2A:
                continue  # stray traffic under faults; ignore
            votes += 1
            if message.payload == "no":
                all_yes = False
        if not acceptor.site.up:
            return  # crashed before the acceptance could be logged
        txn = acceptor.txn
        if (txn.txn_id, txn.incarnation) in self._ballot_closed:
            return  # promised a higher ballot: refuse the acceptance
        if all_yes:
            yield from acceptor.force_log(LogRecordKind.ACCEPT)
        else:
            # A NO vote decides abort; nothing needs to be stable for
            # that (presumption covers it), so the record is free.
            acceptor.log(LogRecordKind.ABORT)
        bus = system.bus
        if bus.has_subscribers(EventKind.ACCEPTOR):
            bus.publish(AcceptorEvent(system.env.now, txn.txn_id,
                                      acceptor.site.site_id, expected,
                                      all_yes))
        if not acceptor.site.up:
            return
        yield from acceptor.send(MessageKind.PAXOS_2B, master,
                                 payload=all_yes)

    # ------------------------------------------------------------------
    # Cohort side
    # ------------------------------------------------------------------
    def cohort_vote(self, cohort: CohortAgent, no_vote_forced: bool,
                    ) -> typing.Generator[Event, typing.Any, str]:
        vote = yield from super().cohort_vote(cohort, no_vote_forced)
        # Phase 2a to the remote acceptors (the master-site acceptor
        # already got this vote: the VOTE message *is* its 2a).  Votes
        # other than "no" accept the instance; "read_only" still closes
        # it (the RM finished, nothing to redo or undo).
        acceptors = getattr(cohort.master, "paxos_acceptors", ())
        for acceptor in acceptors:
            if not cohort.site.up:
                break
            yield from cohort.send(MessageKind.PAXOS_2A, acceptor,
                                   payload=vote)
        return vote

    # ------------------------------------------------------------------
    # Recovery: the non-blocking property
    # ------------------------------------------------------------------
    def terminate_without_coordinator(self, cohort: CohortAgent,
                                      ) -> typing.Generator[
                                          Event, typing.Any,
                                          typing.Optional[tuple[str, str]]]:
        """New-leader takeover by a blocked participant.

        Probes every acceptor site; decides from what a quorum's stable
        state proves.  Quorum intersection carries the safety argument:
        a commit leaves acceptance/decision records on F+1 of the 2F+1
        acceptor sites, so F+1 *clean* reachable sites refute it.
        """
        if self.effective_f(cohort.txn) == 0:
            return None  # plain 2PC: no acceptors to consult
        if cohort.state is not CohortState.PREPARED:
            return None
        assert self.system is not None
        system = self.system
        network = system.network
        txn = cohort.txn
        f = self.effective_f(txn)
        reached: list["Site"] = []
        for site_id in self.acceptor_site_ids(txn):
            site = system.site_for(site_id)
            ok = yield from network.inquiry_round_trip(cohort, site)
            if ok and site.up:
                reached.append(site)
        # Decision records anywhere reachable settle it outright.
        accepts = 0
        for site in reached:
            kinds = site.log_manager.txn_kinds(txn.txn_id, txn.incarnation)
            if LogRecordKind.COMMIT in kinds:
                return ("commit", "decision-record")
            if LogRecordKind.ABORT in kinds:
                # Either the coordinator's decision or an acceptor that
                # registered a NO instance -- commit is impossible
                # either way (it needs every vote YES), so abort.
                return ("abort", "decision-record")
            if LogRecordKind.ACCEPT in kinds:
                accepts += 1
        if len(reached) <= f:
            return None  # no quorum reachable: must stay blocked
        if accepts:
            # Some instance was accepted but no decision is visible:
            # the coordinator may be mid-commit behind the failure.
            # Deciding either way here is unsound; fall back to the
            # coordinator-WAL inquiry loop.
            return None
        # F+1 reachable acceptor sites with no acceptance on record:
        # commit cannot have been (and, once the instances are closed,
        # can never be) decided.  Open the higher ballot and close every
        # vote instance as abort.
        self._ballot_closed.add((txn.txn_id, txn.incarnation))
        bus = system.bus
        if bus.has_subscribers(EventKind.BALLOT):
            bus.publish(BallotOpened(system.env.now, txn.txn_id,
                                     cohort.site.site_id, len(reached),
                                     len(txn.spec.accesses)))
        return ("abort", "new-ballot")
