"""Linear 2PC -- paper Sections 2.5 and 3.2 (Gray 1978).

"Message overheads are reduced by ordering the sites in a linear chain
for communication purposes."  The master talks only to the first
cohort; PREPARE flows rightward along the chain, with each cohort
preparing before forwarding; the *last* cohort holds every implicit YES
vote, so it makes and logs the commit decision and sends COMMIT back
leftward; each cohort commits as the decision passes through, and the
first cohort reports to the master.

Committing-transaction counts at ``DistDegree = 3`` (first cohort local
to the master, so its two messages are free): 2 PREPARE rightward plus
2 COMMIT leftward = **4** commit messages (half of 2PC's 8); forced
writes: 2 chain prepares + the decider's commit + 2 chain commits =
**5** (the master logs nothing durable -- the decision record lives at
the chain's tail).

The price is latency: the voting phase is fully serialized, so cohorts
near the *head* of the chain sit in the prepared state for the whole
round trip (about ``2(D-1)`` message hops) -- far longer than under
parallel 2PC.  That is why the paper calls linear 2PC "especially
attractive to integrate" with OPT: lending reclaims those long head
windows.  ``OPT-LIN`` is that combination.  (Note one nuance of the
classic chain: the *tail* cohort never enters the prepared state at all
-- it decides and commits in one step -- so it never lends; total
borrowing concentrates at the head of the chain.)

Abort handling: a NO-voting cohort force-writes its abort and sends
ABORT both leftward (prepared cohorts must roll back, master must be
told) and rightward (cohorts still awaiting PREPARE are released).
"""

from __future__ import annotations

from repro.core.base import CohortGenerator, CommitProtocol, MasterGenerator
from repro.db.messages import MessageKind
from repro.db.transaction import (
    AbortReason,
    CohortAgent,
    CohortState,
    MasterAgent,
    TransactionOutcome,
)
from repro.db.wal import LogRecordKind


class LinearTwoPhaseCommit(CommitProtocol):
    """2PC over a communication chain."""

    name = "LIN-2PC"

    # ------------------------------------------------------------------
    # Chain helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _chain(cohort: CohortAgent):
        """(index, left neighbour or master, right neighbour or None)."""
        chain = cohort.txn.cohorts
        index = chain.index(cohort)
        left = cohort.master if index == 0 else chain[index - 1]
        right = chain[index + 1] if index + 1 < len(chain) else None
        return index, left, right

    # ------------------------------------------------------------------
    # Master side: one message out, one message in.
    # ------------------------------------------------------------------
    def master_commit(self, master: MasterAgent) -> MasterGenerator:
        assert self.system is not None
        yield from master.send(MessageKind.PREPARE, master.cohorts[0])
        ft = self.system.fault_timeouts
        if ft is None:
            message = yield master.recv()
        else:
            # The whole chain (2(D-1) hops plus forces) must complete
            # before the decision flows back: give it the work budget.
            message = yield from master.recv_wait(ft.work_timeout_ms,
                                                  wait="chain-decision")
            if message is None:
                return (yield from self._master_resolve(master))
        if message.kind is MessageKind.COMMIT:
            # The decision record is durable at the chain's tail; the
            # master's own records are informational.
            master.log(LogRecordKind.COMMIT)
            master.log(LogRecordKind.END)
            return TransactionOutcome.COMMITTED
        assert message.kind is MessageKind.ABORT, message
        master.log(LogRecordKind.ABORT)
        master.log(LogRecordKind.END)
        return self.abort_outcome(master)

    def _master_resolve(self, master: MasterAgent):
        """The chain went silent: resolve against the tail's stable log.

        The tail is this protocol's decider, so the master must not
        unilaterally abort -- the tail may already have forced COMMIT.
        Inquire until the tail site answers: a decision record settles
        it; a dead tail with no record can never decide, so abort.
        """
        assert self.system is not None
        system = self.system
        ft = system.fault_timeouts
        retry = ft.resolve_retry_ms if ft is not None else 500.0
        tail = master.cohorts[-1]
        target = tail.site
        while True:
            reachable = (target.up
                         and system.network.path_open(master.site, target))
            if reachable:
                ok = yield from system.network.inquiry_round_trip(master,
                                                                  target)
                if not ok:
                    # Partition started mid-exchange; retry after heal.
                    yield system.env.timeout(retry)
                    continue
                kinds = target.log_manager.txn_kinds(
                    master.txn.txn_id, master.txn.incarnation)
                if LogRecordKind.COMMIT in kinds:
                    master.log(LogRecordKind.COMMIT)
                    master.log(LogRecordKind.END)
                    return TransactionOutcome.COMMITTED
                tail_dead = (tail.process is None
                             or not tail.process.is_alive)
                if LogRecordKind.ABORT in kinds or tail_dead:
                    master.log(LogRecordKind.ABORT)
                    master.log(LogRecordKind.END)
                    if master.txn.abort_reason is None:
                        master.txn.abort_reason = AbortReason.TIMEOUT
                    return TransactionOutcome.ABORTED
            yield system.env.timeout(retry)

    # ------------------------------------------------------------------
    # Cohort side.
    # ------------------------------------------------------------------
    def cohort_commit(self, cohort: CohortAgent) -> CohortGenerator:
        assert self.system is not None
        index, left, right = self._chain(cohort)
        ft = self.system.fault_timeouts
        if ft is None:
            message = yield cohort.recv()
        else:
            message = yield from cohort.recv_wait(ft.work_timeout_ms,
                                                  wait="chain-prepare")
            if message is None:
                # PREPARE never reached us: nothing was promised, quit.
                # Our silence aborts the chain (left neighbours resolve
                # against the tail, which can never decide commit now).
                cohort.implement_abort()
                return
        if message.kind is MessageKind.ABORT:
            # A cohort to our left vetoed before we ever saw PREPARE.
            cohort.implement_abort()
            if right is not None:
                yield from cohort.send(MessageKind.ABORT, right)
            return
        assert message.kind is MessageKind.PREPARE, message
        if self.system.surprise_no_vote():
            yield from cohort.force_log(LogRecordKind.ABORT)
            cohort.implement_abort()
            # Veto: roll back the prepared chain to our left and release
            # the waiting chain to our right.
            yield from cohort.send(MessageKind.ABORT, left)
            if right is not None:
                yield from cohort.send(MessageKind.ABORT, right)
            return
        if right is None:
            # Chain tail: every earlier cohort voted YES by forwarding,
            # so the decision is commit -- log it durably here.
            yield from cohort.force_log(LogRecordKind.COMMIT)
            cohort.implement_commit()
            yield from cohort.send(MessageKind.COMMIT, left)
            return
        # Interior (or first) cohort: prepare, forward, await decision.
        yield from cohort.force_log(LogRecordKind.PREPARE)
        cohort.state = CohortState.PREPARED
        cohort.site.lock_manager.prepare(cohort)
        yield from cohort.send(MessageKind.PREPARE, right)
        decision = yield from self.await_decision(
            cohort, (MessageKind.COMMIT, MessageKind.ABORT),
            wait="chain-decision")
        if decision is None:
            return  # resolved against the tail's log; left does the same
        if decision.kind is MessageKind.COMMIT:
            yield from cohort.force_log(LogRecordKind.COMMIT)
            cohort.implement_commit()
        else:
            assert decision.kind is MessageKind.ABORT, decision
            yield from cohort.force_log(LogRecordKind.ABORT)
            cohort.implement_abort()
        yield from cohort.send(decision.kind, left)

    # ------------------------------------------------------------------
    # Recovery: the chain's decider is the tail, not the master.
    # ------------------------------------------------------------------
    def inquiry_site(self, cohort: CohortAgent):
        return cohort.txn.cohorts[-1].site

    def coordinator_finished(self, cohort: CohortAgent) -> bool:
        tail = cohort.txn.cohorts[-1]
        return tail.process is None or not tail.process.is_alive
    # presumed_outcome stays the base rule: the tail forces its COMMIT
    # record *before* propagating the decision, so a dead tail with no
    # record never decided, and abort is safe.


class OptimisticLinear(LinearTwoPhaseCommit):
    """OPT on the linear chain -- the combination the paper singles out
    as especially attractive (Section 3.2), because the serialized
    voting phase maximizes the prepared window that lending reclaims."""

    name = "OPT-LIN"
    lending = True
