"""Early Prepare (EP) -- paper Section 2.5 (Stamos & Cristian).

Early Prepare combines Unsolicited Vote with Presumed Commit: cohorts
prepare unilaterally and vote on their completion reports (UV), and the
commit decision is presumed (PC), so commit needs neither cohort forced
commit records nor acknowledgements.  The price is paid up front: the
master must force its *collecting* (membership) record **before any
cohort starts work**, because a cohort may enter the prepared state at
any moment after that.

Committing-transaction counts at ``DistDegree = 3``:

- messages: 2 STARTWORK + 2 votes + 2 COMMIT = **6** on the wire
  (half of 2PC's 12);
- forced writes: collecting + 3 prepare + master commit = **5**.

This is the message-minimal 2PC-family protocol in the library; the
paper notes EP-style designs pay for it with a longer execution phase
(the early collecting write) and longer prepared windows.  Like UV, it
must not be combined with OPT (Section 3.2).
"""

from __future__ import annotations

from repro.core.unsolicited_vote import UnsolicitedVote
from repro.db.messages import MessageKind
from repro.db.transaction import (
    CohortAgent,
    CohortState,
    MasterAgent,
    TransactionOutcome,
)
from repro.db.wal import LogRecordKind


class EarlyPrepare(UnsolicitedVote):
    """Unsolicited votes + presumed commit."""

    name = "EP"

    def master_begin(self, master: MasterAgent):
        # The membership record must be durable before any cohort can
        # unilaterally enter the prepared state.
        yield from master.force_log(LogRecordKind.COLLECTING)

    def master_commit(self, master: MasterAgent):
        master.prepared_cohorts = [
            message.sender for message in master.early_votes
            if message.kind is MessageKind.VOTE_YES]
        no_votes = sum(1 for message in master.early_votes
                       if message.kind is MessageKind.VOTE_NO)
        all_yes = no_votes == 0 and (
            len(master.prepared_cohorts) == len(master.cohorts))
        if all_yes:
            # Presumed commit: force the decision, tell the cohorts,
            # expect no acknowledgements, write no end record.
            yield from master.force_log(LogRecordKind.COMMIT)
            for cohort in master.prepared_cohorts:
                yield from master.send(MessageKind.COMMIT, cohort)
            return TransactionOutcome.COMMITTED
        # Aborts are presumed against: fully recorded and acknowledged.
        yield from master.force_log(LogRecordKind.ABORT)
        for cohort in master.prepared_cohorts:
            yield from master.send(MessageKind.ABORT, cohort)
        yield from self.collect_acks(master, MessageKind.ACK,
                                     len(master.prepared_cohorts))
        master.log(LogRecordKind.END)
        return self.abort_outcome(master)

    def cohort_commit(self, cohort: CohortAgent):
        if cohort.state is not CohortState.PREPARED:
            return  # voted NO; aborted unilaterally already
        master = cohort.master
        assert master is not None
        message = yield from self.await_decision(
            cohort, (MessageKind.COMMIT, MessageKind.ABORT))
        if message is None:
            return  # resolved through recovery
        if message.kind is MessageKind.COMMIT:
            cohort.log(LogRecordKind.COMMIT)   # not forced, no ACK
            cohort.implement_commit()
            return
        assert message.kind is MessageKind.ABORT, message
        yield from cohort.force_log(LogRecordKind.ABORT)
        cohort.implement_abort()
        yield from cohort.send(MessageKind.ACK, master)

    def presumed_outcome(self, cohort: CohortAgent, kinds):
        """EP inherits the presumed-commit reading: a stable collecting
        record with no decision resolves to commit.  EP forces the
        collecting record before work even starts, so this rule is laxer
        than PC's (see docs/MODEL.md)."""
        if LogRecordKind.COLLECTING in kinds:
            return ("commit", "presumed-commit")
        return ("abort", "no-collecting-record")
