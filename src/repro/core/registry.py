"""Protocol registry: name -> protocol factory.

The names match the labels used in the paper's figures.
"""

from __future__ import annotations

import typing

from repro.core.base import CommitProtocol
from repro.core.centralized import CentralizedCommit
from repro.core.optimistic import OptimisticCommit
from repro.core.presumed_abort import PresumedAbort
from repro.core.presumed_commit import PresumedCommit
from repro.core.three_phase import ThreePhaseCommit
from repro.core.early_prepare import EarlyPrepare
from repro.core.linear import LinearTwoPhaseCommit, OptimisticLinear
from repro.core.paxos_commit import PaxosCommit
from repro.core.two_phase import TwoPhaseCommit
from repro.core.unsolicited_vote import UnsolicitedVote
from repro.core.variants import (
    OptimisticPresumedAbort,
    OptimisticPresumedCommit,
    OptimisticThreePhase,
)

_FACTORIES: dict[str, typing.Callable[[], CommitProtocol]] = {
    "2PC": TwoPhaseCommit,
    "PA": PresumedAbort,
    "PC": PresumedCommit,
    "3PC": ThreePhaseCommit,
    "OPT": OptimisticCommit,
    "OPT-PA": OptimisticPresumedAbort,
    "OPT-PC": OptimisticPresumedCommit,
    "OPT-3PC": OptimisticThreePhase,
    "UV": UnsolicitedVote,
    "EP": EarlyPrepare,
    "LIN-2PC": LinearTwoPhaseCommit,
    "OPT-LIN": OptimisticLinear,
    "DPCC": lambda: CentralizedCommit(name="DPCC"),
    "CENT": lambda: CentralizedCommit(name="CENT"),
    "PAXOS": PaxosCommit,
}

#: All registered protocol names, in the paper's customary order.
PROTOCOL_NAMES: tuple[str, ...] = tuple(_FACTORIES)


def create_protocol(name: str) -> CommitProtocol:
    """Instantiate the protocol registered under ``name``.

    Raises ``ValueError`` (a bad *input*, not a bad lookup -- callers
    like the CLI surface it as a usage error) naming the valid choices.

    ``PAXOS`` accepts a parameterized form ``PAXOS:f=<F>`` selecting the
    fault tolerance (``PAXOS`` alone means F = 1; ``PAXOS:f=0`` *is*
    2PC, message for message and force for force).
    """
    key = name.upper()
    if key.startswith("PAXOS:"):
        return _parse_paxos(name, key)
    try:
        factory = _FACTORIES[key]
    except KeyError:
        raise ValueError(
            f"unknown protocol {name!r}; choose from "
            f"{', '.join(PROTOCOL_NAMES)}"
        ) from None
    return factory()


def _parse_paxos(name: str, key: str) -> PaxosCommit:
    """Parse ``PAXOS:f=<F>`` (``key`` is ``name`` uppercased)."""
    suffix = key[len("PAXOS:"):]
    if suffix.startswith("F="):
        try:
            f = int(suffix[len("F="):])
        except ValueError:
            f = -1
        if f >= 0:
            return PaxosCommit(f=f)
    raise ValueError(
        f"bad paxos spec {name!r}; expected 'PAXOS' or 'PAXOS:f=<F>' "
        f"with F a non-negative integer")


def protocol_requires_centralized_topology(name: str) -> bool:
    """True only for the CENT baseline."""
    return name.upper() == "CENT"
