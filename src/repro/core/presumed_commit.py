"""Presumed commit (paper Section 2.3).

The "in case of doubt, commit" recovery rule shifts the savings to
committing transactions:

- the master force-writes a *collecting* record (naming the cohorts)
  before initiating the protocol;
- cohorts do not force their commit records and do not acknowledge the
  COMMIT decision;
- the master writes no end record on commit.

Aborts, being now the unexpected outcome, must be fully recorded: the
master forces its abort record, cohorts force theirs and acknowledge.

Committing-transaction overheads at ``DistDegree = 3`` (paper Table 3):
5 forced writes (collecting + 3 prepare + master commit) and 6 commit
messages (2 PREPARE + 2 YES + 2 COMMIT).
"""

from __future__ import annotations

from repro.core.base import CohortGenerator, MasterGenerator
from repro.core.two_phase import TwoPhaseCommit
from repro.db.messages import MessageKind
from repro.db.transaction import CohortAgent, MasterAgent, TransactionOutcome
from repro.db.wal import LogRecordKind


class PresumedCommit(TwoPhaseCommit):
    """2PC with the presumed-commit optimization."""

    name = "PC"

    def master_commit(self, master: MasterAgent) -> MasterGenerator:
        # The collecting record (cohort roster) must be stable before
        # any cohort can enter the prepared state.
        yield from master.force_log(LogRecordKind.COLLECTING)
        all_yes = yield from self.collect_votes(master)
        if all_yes:
            yield from self.master_commit_phase(master)
            return TransactionOutcome.COMMITTED
        yield from self.master_abort_phase(master)
        return self.abort_outcome(master)

    def master_commit_phase(self, master: MasterAgent):
        """Force the commit record and notify; no ACKs, no end record."""
        yield from master.force_log(LogRecordKind.COMMIT)
        for cohort in master.prepared_cohorts:
            yield from master.send(MessageKind.COMMIT, cohort)

    # master_abort_phase is inherited from 2PC: abort is the presumed-
    # against outcome, so it is forced and acknowledged, and the master
    # writes an end record once all ACKs arrive.

    def cohort_commit(self, cohort: CohortAgent) -> CohortGenerator:
        vote = yield from self.cohort_vote(cohort, no_vote_forced=True)
        if vote != "yes":
            return
        yield from self.cohort_decision(cohort)

    def cohort_decision(self, cohort: CohortAgent):
        master = cohort.master
        assert master is not None
        message = yield from self.await_decision(
            cohort, (MessageKind.COMMIT, MessageKind.ABORT))
        if message is None:
            return  # resolved through recovery
        if message.kind is MessageKind.COMMIT:
            # Presumed commit: non-forced commit record, no ACK.
            cohort.log(LogRecordKind.COMMIT)
            cohort.implement_commit()
        else:
            assert message.kind is MessageKind.ABORT, message
            yield from cohort.force_log(LogRecordKind.ABORT)
            cohort.implement_abort()
            yield from cohort.send(MessageKind.ACK, master)

    def presumed_outcome(self, cohort, kinds):
        """Presumed commit: a stable *collecting* record with no decision
        resolves to commit.

        This is the cost-model reading of the PC recovery rule (see
        docs/MODEL.md, "Failure model & recovery", for how it diverges
        from a production PC implementation).  Without even a collecting
        record the coordinator never started the protocol, so abort.
        """
        if LogRecordKind.COLLECTING in kinds:
            return ("commit", "presumed-commit")
        return ("abort", "no-collecting-record")
