"""Three-phase (non-blocking) commit (paper Section 2.4; Skeen 1981).

A *precommit* phase is inserted between voting and the decision: after
all YES votes, the master forces a precommit record and sends PRECOMMIT
messages; cohorts force precommit records and acknowledge; only then is
the commit decision logged and distributed.  The preliminary decision
lets operational sites reach a global decision despite master failure --
at the cost of one extra message round trip and extra forced writes.

Committing-transaction overheads at ``DistDegree = 3`` (paper Table 3):
11 forced writes (3 prepare + master precommit + 3 cohort precommit +
master commit + 3 cohort commit) and 12 commit messages (six rounds of
two remote messages each).
"""

from __future__ import annotations

from repro.core.base import CohortGenerator, MasterGenerator
from repro.core.two_phase import TwoPhaseCommit
from repro.db.messages import MessageKind
from repro.db.transaction import (
    CohortAgent,
    CohortState,
    MasterAgent,
    TransactionOutcome,
)
from repro.db.wal import LogRecordKind


class ThreePhaseCommit(TwoPhaseCommit):
    """Skeen's non-blocking three-phase commit."""

    name = "3PC"
    non_blocking = True

    def master_commit(self, master: MasterAgent) -> MasterGenerator:
        all_yes = yield from self.collect_votes(master)
        if not all_yes:
            # Abort is decided before the precommit phase; it proceeds
            # exactly as in 2PC.
            yield from self.master_abort_phase(master)
            return self.abort_outcome(master)
        # Precommit phase: the preliminary decision.  Once the precommit
        # record is stable, commit is inevitable -- this master never
        # aborts past this point, so a crash from here on still counts
        # as a commit (the cohorts resolve to commit from the WAL or via
        # the termination protocol).
        yield from master.force_log(LogRecordKind.PRECOMMIT)
        master.decided = TransactionOutcome.COMMITTED
        for cohort in master.prepared_cohorts:
            yield from master.send(MessageKind.PRECOMMIT, cohort)
        yield from self.collect_acks(master, MessageKind.PRECOMMIT_ACK,
                                     len(master.prepared_cohorts),
                                     wait="precommit-acks")
        # Decision phase.
        yield from self.master_commit_phase(master)
        return TransactionOutcome.COMMITTED

    def cohort_commit(self, cohort: CohortAgent) -> CohortGenerator:
        vote = yield from self.cohort_vote(cohort, no_vote_forced=True)
        if vote != "yes":
            return
        master = cohort.master
        assert master is not None
        message = yield from self.await_decision(
            cohort, (MessageKind.ABORT, MessageKind.PRECOMMIT),
            wait="precommit")
        if message is None:
            return  # resolved through recovery
        if message.kind is MessageKind.ABORT:
            yield from cohort.force_log(LogRecordKind.ABORT)
            cohort.implement_abort()
            yield from cohort.send(MessageKind.ACK, master)
            return
        assert message.kind is MessageKind.PRECOMMIT, message
        yield from cohort.force_log(LogRecordKind.PRECOMMIT)
        # Precommitted cohorts still hold (and, under OPT, lend) their
        # update locks: the prepared window is *longer* than in 2PC,
        # which is exactly why OPT-3PC benefits more from lending.
        cohort.state = CohortState.PRECOMMITTED
        yield from cohort.send(MessageKind.PRECOMMIT_ACK, master)
        message = yield from self.await_decision(
            cohort, (MessageKind.COMMIT,))
        if message is None:
            return  # resolved through recovery
        yield from cohort.force_log(LogRecordKind.COMMIT)
        cohort.implement_commit()
        yield from cohort.send(MessageKind.ACK, master)

    # ------------------------------------------------------------------
    # Recovery: what "non-blocking" buys
    # ------------------------------------------------------------------
    def terminate_without_coordinator(self, cohort: CohortAgent):
        """Cooperative termination (Skeen): a precommitted participant
        can commit with its operational peers, no coordinator needed.

        Sound here because the master forces its precommit record before
        sending any PRECOMMIT message, and never aborts after that: a
        precommitted cohort implies commit is inevitable.

        A *prepared* (uncertain) cohort can also terminate when the
        round surfaces a peer that reached PRECOMMITTED (or logged a
        precommit/commit record): that peer's state proves the master
        forced its precommit record, after which commit is inevitable.
        With no such evidence the uncertain cohort must block -- the
        master may have precommitted without any PRECOMMIT message
        getting out, so unilaterally aborting is unsound here (classic
        3PC solves this with coordinator election and recovery
        obeying the elected decision; this model keeps the conservative
        rule and consults the coordinator's WAL instead).

        Under a *live partition* the non-blocking guarantee narrows to
        the majority side: a participant that cannot reach a majority of
        the cohort set must not decide (both sides deciding
        independently is how split brain happens), so it returns None,
        stays blocked holding its locks, and resolves against the
        coordinator's WAL after heal.  Site crashes alone (no severed
        links) keep the classic termination -- that is the regime
        Skeen's protocol was designed for."""
        if cohort.state not in (CohortState.PRECOMMITTED,
                                CohortState.PREPARED):
            return None
        reached = yield from self.termination_round(cohort)
        assert self.system is not None
        faults = self.system.faults
        if faults is not None and faults.partitions_active:
            total = len(cohort.txn.cohorts)
            if 2 * (reached + 1) <= total:
                return None  # minority side: block until heal
        if cohort.state is CohortState.PRECOMMITTED:
            return ("commit", "termination-protocol")
        if self._peer_commit_evidence(cohort):
            return ("commit", "termination-protocol")
        return None

    def _peer_commit_evidence(self, cohort: CohortAgent) -> bool:
        """Whether a reachable peer proves the precommit phase started."""
        assert self.system is not None
        network = self.system.network
        for peer in cohort.txn.cohorts:
            if peer is cohort or not peer.site.up:
                continue
            if not network.path_open(cohort.site, peer.site):
                continue
            if peer.state is CohortState.PRECOMMITTED:
                return True
            kinds = peer.site.log_manager.txn_kinds(
                cohort.txn.txn_id, cohort.txn.incarnation)
            if LogRecordKind.PRECOMMIT in kinds \
                    or LogRecordKind.COMMIT in kinds:
                return True
        return False

    def presumed_outcome(self, cohort: CohortAgent, kinds):
        """A prepared (not precommitted) cohort consults the coordinator
        log: a stable precommit record means commit was inevitable."""
        if LogRecordKind.PRECOMMIT in kinds:
            return ("commit", "precommit-record")
        return ("abort", "no-decision-record")
