"""Commit protocols (the paper's contribution plus all comparators).

Implemented protocols and the paper sections they reproduce:

========  =======================================================
Name      Protocol
========  =======================================================
2PC       classical two-phase commit (Section 2.1)
PA        presumed abort (Section 2.2)
PC        presumed commit (Section 2.3)
3PC       three-phase (non-blocking) commit (Section 2.4)
OPT       optimistic 2PC with lending/borrowing (Section 3)
UV        unsolicited vote (Section 2.5; no OPT variant by design)
EP        early prepare = UV + PC (Section 2.5; message-minimal)
LIN-2PC   linear 2PC over a communication chain (Section 2.5)
OPT-LIN   OPT on the linear chain (Section 3.2's favourite pairing)
OPT-PA    OPT combined with presumed abort (Section 3.2)
OPT-PC    OPT combined with presumed commit (Section 3.2)
OPT-3PC   non-blocking OPT (Sections 3.2, 5.6)
DPCC      distributed processing / centralized commit baseline
CENT      fully centralized baseline (with centralized topology)
PAXOS     Paxos Commit, F=1 quorum commit (``PAXOS:f=<F>`` general)
========  =======================================================
"""

from repro.core.base import CommitProtocol
from repro.core.centralized import CentralizedCommit
from repro.core.early_prepare import EarlyPrepare
from repro.core.linear import LinearTwoPhaseCommit, OptimisticLinear
from repro.core.optimistic import OptimisticCommit
from repro.core.paxos_commit import PaxosCommit
from repro.core.presumed_abort import PresumedAbort
from repro.core.presumed_commit import PresumedCommit
from repro.core.registry import (
    PROTOCOL_NAMES,
    create_protocol,
    protocol_requires_centralized_topology,
)
from repro.core.three_phase import ThreePhaseCommit
from repro.core.two_phase import TwoPhaseCommit
from repro.core.unsolicited_vote import UnsolicitedVote
from repro.core.variants import (
    OptimisticPresumedAbort,
    OptimisticPresumedCommit,
    OptimisticThreePhase,
)

__all__ = [
    "CentralizedCommit",
    "EarlyPrepare",
    "LinearTwoPhaseCommit",
    "OptimisticLinear",
    "CommitProtocol",
    "OptimisticCommit",
    "OptimisticPresumedAbort",
    "OptimisticPresumedCommit",
    "OptimisticThreePhase",
    "PROTOCOL_NAMES",
    "PaxosCommit",
    "PresumedAbort",
    "PresumedCommit",
    "ThreePhaseCommit",
    "TwoPhaseCommit",
    "UnsolicitedVote",
    "create_protocol",
    "protocol_requires_centralized_topology",
]
