"""The commit protocol interface.

A protocol supplies two generator methods -- the master side and the
cohort side of commit processing -- written against the agent primitives
(:meth:`~repro.db.transaction.Agent.send`,
:meth:`~repro.db.transaction.Agent.recv`,
:meth:`~repro.db.transaction.Agent.force_log`,
:meth:`~repro.db.transaction.Agent.log`).  Because message and log costs
are charged inside those primitives, the per-protocol overhead counts of
the paper's Tables 3 and 4 fall out of the implementation for free.
"""

from __future__ import annotations

import abc
import typing

from repro.db.messages import MessageKind
from repro.db.transaction import (
    AbortReason,
    CohortAgent,
    CohortState,
    MasterAgent,
    TransactionOutcome,
)
from repro.db.wal import LogRecordKind
from repro.obs.events import CommitPhase, EventKind, TxnResolvedInDoubt
from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.site import Site
    from repro.db.system import DistributedSystem

MasterGenerator = typing.Generator[Event, typing.Any, TransactionOutcome]
CohortGenerator = typing.Generator[Event, typing.Any, None]


class CommitProtocol(abc.ABC):
    """Base class for all commit protocols."""

    #: registry name, e.g. ``"2PC"``.
    name: str = "abstract"
    #: True for OPT variants: prepared cohorts lend their update locks.
    lending: bool = False
    #: True for protocols with an extra (precommit) phase.
    non_blocking: bool = False

    def __init__(self) -> None:
        self.system: "DistributedSystem | None" = None

    def bind(self, system: "DistributedSystem") -> None:
        """Attach to the system being simulated (called by the system)."""
        self.system = system

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def master_commit(self, master: MasterAgent) -> MasterGenerator:
        """The master's commit processing; returns the outcome."""

    @abc.abstractmethod
    def cohort_commit(self, cohort: CohortAgent) -> CohortGenerator:
        """The cohort's commit processing (from awaiting PREPARE on)."""

    def send_workdone(self, cohort: CohortAgent,
                      ) -> typing.Generator[Event, typing.Any, None]:
        """Report work completion to the master.

        Protocols that piggyback information on the completion report
        (e.g. Unsolicited Vote's YES votes) override this.
        """
        master = cohort.master
        assert master is not None
        yield from cohort.send(MessageKind.WORKDONE, master)

    def master_begin(self, master: MasterAgent,
                     ) -> typing.Generator[Event, typing.Any, None]:
        """Work the master must do *before* starting its cohorts.

        Early Prepare, for instance, must have its membership
        (collecting) record stable before any cohort can unilaterally
        prepare.  Default: nothing.
        """
        return
        yield  # pragma: no cover - makes this a generator

    # ------------------------------------------------------------------
    # Shared building blocks
    # ------------------------------------------------------------------
    def collect_votes(self, master: MasterAgent,
                      ) -> typing.Generator[Event, typing.Any, bool]:
        """Send PREPARE to every cohort and gather the votes.

        Returns True iff every vote was YES.  YES-voters are recorded in
        ``master.prepared_cohorts`` (the set phase two must talk to);
        read-only voters (when the optimization is enabled) are recorded
        in ``master.read_only_cohorts`` and excluded from phase two.
        """
        assert self.system is not None
        master.prepared_cohorts = []
        master.read_only_cohorts = []
        for cohort in master.cohorts:
            yield from master.send(MessageKind.PREPARE, cohort)
        all_yes = True
        ft = self.system.fault_timeouts
        expected = len(master.cohorts)
        while expected:
            if ft is None:
                message = yield master.recv()
            else:
                message = yield from master.recv_wait(ft.vote_timeout_ms,
                                                      wait="votes")
                if message is None:
                    # A vote (or its PREPARE) is missing: abort.  The
                    # silent cohorts resolve via WAL replay / inquiry.
                    if master.txn.abort_reason is None:
                        master.txn.abort_reason = AbortReason.TIMEOUT
                    all_yes = False
                    break
            if message.kind is MessageKind.VOTE_YES:
                master.prepared_cohorts.append(message.sender)
                expected -= 1
            elif message.kind is MessageKind.VOTE_READ_ONLY:
                master.read_only_cohorts.append(message.sender)
                expected -= 1
            elif message.kind is MessageKind.VOTE_NO:
                all_yes = False
                expected -= 1
            elif ft is None:  # pragma: no cover - protocol violation
                raise RuntimeError(f"unexpected vote {message!r}")
            # else: stray (late/duplicate) traffic under faults; ignore.
        master.mark_phase(CommitPhase.DECIDE)
        return all_yes

    def cohort_vote(self, cohort: CohortAgent,
                    no_vote_forced: bool,
                    ) -> typing.Generator[Event, typing.Any, str]:
        """The cohort's voting step; returns ``"yes"``, ``"no"`` or
        ``"read_only"``.

        A NO vote is a unilateral abort: the cohort undoes locally and
        never waits for a decision.  ``no_vote_forced`` controls whether
        the abort record is forced (2PC/PC: yes; PA: presumed, so no).
        """
        assert self.system is not None
        master = cohort.master
        assert master is not None
        ft = self.system.fault_timeouts
        if ft is None:
            message = yield cohort.recv()
            assert message.kind is MessageKind.PREPARE, message
        else:
            while True:
                message = yield from cohort.recv_wait(ft.work_timeout_ms,
                                                      wait="prepare")
                if message is None or message.kind is MessageKind.ABORT:
                    # PREPARE never came (lost, or the master is gone) or
                    # the master already aborted.  Nothing was promised:
                    # abort unilaterally.
                    cohort.log(LogRecordKind.ABORT)
                    cohort.implement_abort()
                    if message is None:
                        # Tell a master that may still be collecting.
                        yield from cohort.send(MessageKind.VOTE_NO, master)
                    return "no"
                if message.kind is MessageKind.PREPARE:
                    break
                # stray traffic; keep waiting.
        if self.system.surprise_no_vote():
            if no_vote_forced:
                yield from cohort.force_log(LogRecordKind.ABORT)
            else:
                cohort.log(LogRecordKind.ABORT)
            cohort.implement_abort()
            yield from cohort.send(MessageKind.VOTE_NO, master)
            return "no"
        if (self.system.params.read_only_optimization
                and cohort.access.is_read_only):
            # Read-only optimization: one-phase finish, no log records.
            cohort.implement_commit()
            yield from cohort.send(MessageKind.VOTE_READ_ONLY, master)
            return "read_only"
        yield from cohort.force_log(LogRecordKind.PREPARE)
        cohort.state = CohortState.PREPARED
        # Entering the prepared state releases read locks and -- for OPT
        # protocols -- makes the update locks lendable.
        cohort.site.lock_manager.prepare(cohort)
        yield from cohort.send(MessageKind.VOTE_YES, master)
        return "yes"

    def abort_outcome(self, master: MasterAgent) -> TransactionOutcome:
        """Record a protocol-level (surprise-vote) abort on the txn."""
        if master.txn.abort_reason is not AbortReason.TIMEOUT:
            master.txn.abort_reason = AbortReason.SURPRISE_VOTE
        return TransactionOutcome.ABORTED

    # ------------------------------------------------------------------
    # Recovery machinery (fault injection only)
    # ------------------------------------------------------------------
    # Every protocol inherits one in-doubt resolution loop; protocols
    # customize it through four small hooks:
    #
    # - ``inquiry_site``: whom a blocked cohort asks (default: the
    #   coordinator's site; Linear overrides with the chain tail, whose
    #   forced COMMIT record is the decision).
    # - ``terminate_without_coordinator``: a chance to decide without the
    #   coordinator at all (3PC's cooperative termination protocol).
    # - ``presumed_outcome``: what a recovered-but-amnesiac coordinator
    #   log implies (PA: abort; PC: COLLECTING means commit).
    # - ``coordinator_finished``: whether the coordinator can still
    #   decide (inquiries keep retrying until then).

    def await_decision(self, cohort: CohortAgent,
                       expected: tuple[MessageKind, ...],
                       wait: str = "decision",
                       ) -> typing.Generator[Event, typing.Any,
                                             typing.Optional[object]]:
        """The cohort's decision wait.

        Healthy path: a plain blocking receive (asserting the kind).
        Under faults: a deadline; on expiry the cohort is in doubt and
        runs :meth:`resolve_in_doubt`, after which None is returned and
        the caller must finish without further protocol steps.
        """
        assert self.system is not None
        ft = self.system.fault_timeouts
        if ft is None:
            message = yield cohort.recv()
            assert message.kind in expected, message
            return message
        while True:
            message = yield from cohort.recv_wait(ft.decision_timeout_ms,
                                                  wait=wait)
            if message is None:
                yield from self.resolve_in_doubt(cohort)
                return None
            if message.kind in expected:
                return message
            # stray (late/duplicate) traffic under faults; ignore.

    def collect_acks(self, master: MasterAgent,
                     expected_kind: MessageKind, count: int,
                     wait: str = "acks",
                     ) -> typing.Generator[Event, typing.Any, None]:
        """The master's ACK wait.

        Under faults, missing ACKs are abandoned after a deadline: the
        decision is already durable, and silent cohorts terminate through
        the recovery machinery, so waiting longer buys nothing.
        """
        assert self.system is not None
        ft = self.system.fault_timeouts
        remaining = count
        while remaining:
            if ft is None:
                message = yield master.recv()
                assert message.kind is expected_kind, message
                remaining -= 1
                continue
            message = yield from master.recv_wait(ft.ack_timeout_ms,
                                                  wait=wait)
            if message is None:
                break
            if message.kind is expected_kind:
                remaining -= 1
            # stray (late/duplicate) traffic under faults; ignore.

    def resolve_in_doubt(self, cohort: CohortAgent,
                         ) -> typing.Generator[Event, typing.Any, None]:
        """Drive one in-doubt cohort to a decision (and implement it).

        Runs either inside the cohort's own process (decision wait timed
        out) or inside a recovering site's WAL-replay process (the crash
        killed the cohort).  Loops -- termination attempt, then status
        inquiries against the coordinator's stable log -- until one of
        the rules yields an outcome; every blocking master has deadlines,
        so the coordinator always either decides or dies, and the loop
        terminates.
        """
        assert self.system is not None
        system = self.system
        if system.faults is not None and cohort.in_doubt_since is None:
            # Timed-out (not crashed) cohorts enter the in-doubt state
            # here; crash victims were stamped by register_in_doubt().
            cohort.in_doubt_since = system.env.now
        outcome_rule = yield from self.terminate_without_coordinator(cohort)
        if outcome_rule is None:
            ft = system.fault_timeouts
            base_retry = ft.resolve_retry_ms if ft is not None else 500.0
            retry = base_retry
            network = system.network
            target = self.inquiry_site(cohort)
            while True:
                path_open = network.path_open(cohort.site, target)
                if target.up and path_open:
                    ok = yield from network.inquiry_round_trip(cohort,
                                                               target)
                    if ok:
                        retry = base_retry
                        outcome_rule = self.attempt_resolution(cohort,
                                                               target)
                        if outcome_rule is not None:
                            break
                elif not path_open:
                    # The decider is across a severed link: back off
                    # (capped exponential) instead of paying a failed
                    # retry every resolve_retry_ms for the whole
                    # partition.  A merely-crashed target keeps the
                    # plain resolve_retry_ms poll (site repairs are
                    # fast; partitions can last much longer).  Also arm
                    # the injector's heal wake-up: the backoff can reach
                    # 8x, and sleeping out a full interval after the
                    # link is already back would inflate blocked_lock_ms
                    # for nothing.
                    retry = min(retry * 2.0, base_retry * 8.0)
                    if system.faults is not None:
                        healed = system.faults.heal_event()
                        yield system.env.any_of(
                            [system.env.timeout(retry), healed])
                        if healed.triggered:
                            retry = base_retry
                        continue
                yield system.env.timeout(retry)
        outcome, rule = outcome_rule
        if outcome == "commit":
            yield from cohort.force_log(LogRecordKind.COMMIT)
            cohort.implement_commit()
        else:
            yield from cohort.force_log(LogRecordKind.ABORT)
            cohort.implement_abort()
        if system.faults is not None:
            system.faults.note_resolved(cohort)
        bus = system.bus
        if bus.has_subscribers(EventKind.TXN_RESOLVED_IN_DOUBT):
            bus.publish(TxnResolvedInDoubt(system.env.now, cohort, outcome,
                                           rule))

    def attempt_resolution(self, cohort: CohortAgent, site: "Site",
                           ) -> typing.Optional[tuple[str, str]]:
        """Classify one status-inquiry answer (a read of ``site``'s WAL).

        Returns ``(outcome, rule)`` or None when the coordinator exists
        but has not decided yet (the cohort stays blocked and retries).
        """
        kinds = site.log_manager.txn_kinds(cohort.txn.txn_id,
                                           cohort.txn.incarnation)
        if LogRecordKind.COMMIT in kinds:
            return ("commit", "decision-record")
        if LogRecordKind.ABORT in kinds:
            return ("abort", "decision-record")
        if not self.coordinator_finished(cohort):
            return None
        return self.presumed_outcome(cohort, kinds)

    def presumed_outcome(self, cohort: CohortAgent,
                         kinds: set[LogRecordKind]) -> tuple[str, str]:
        """The presumption applied when the coordinator's log holds no
        decision record and the coordinator can no longer decide.

        Base rule (2PC and its OPT variants): a recovering coordinator
        with no information aborts, so the cohort aborts.
        """
        return ("abort", "no-decision-record")

    def coordinator_finished(self, cohort: CohortAgent) -> bool:
        """True when the coordinator can no longer produce a decision."""
        master = cohort.master
        assert master is not None
        return master.process is None or not master.process.is_alive

    def inquiry_site(self, cohort: CohortAgent) -> "Site":
        """The site whose stable log answers status inquiries."""
        assert cohort.master is not None
        return cohort.master.site

    def terminate_without_coordinator(
            self, cohort: CohortAgent,
            ) -> typing.Generator[Event, typing.Any,
                                  typing.Optional[tuple[str, str]]]:
        """Protocol-specific termination that needs no coordinator
        (3PC overrides this with its cooperative termination round)."""
        return None
        yield  # pragma: no cover - makes this a generator

    def termination_round(self, cohort: CohortAgent,
                          ) -> typing.Generator[Event, typing.Any, int]:
        """Pay for one round of state exchange with every peer cohort.

        Returns how many peers were actually reached (site up, and the
        round trip crossed no severed link) -- 3PC's termination
        protocol uses the count to commit only with a majority in hand
        while a partition is live.
        """
        assert self.system is not None
        network = self.system.network
        reached = 0
        for peer in cohort.txn.cohorts:
            if peer is cohort:
                continue
            ok = yield from network.inquiry_round_trip(cohort, peer.site)
            if ok and peer.site.up:
                reached += 1
        return reached

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
