"""The commit protocol interface.

A protocol supplies two generator methods -- the master side and the
cohort side of commit processing -- written against the agent primitives
(:meth:`~repro.db.transaction.Agent.send`,
:meth:`~repro.db.transaction.Agent.recv`,
:meth:`~repro.db.transaction.Agent.force_log`,
:meth:`~repro.db.transaction.Agent.log`).  Because message and log costs
are charged inside those primitives, the per-protocol overhead counts of
the paper's Tables 3 and 4 fall out of the implementation for free.
"""

from __future__ import annotations

import abc
import typing

from repro.db.messages import MessageKind
from repro.db.transaction import (
    AbortReason,
    CohortAgent,
    CohortState,
    MasterAgent,
    TransactionOutcome,
)
from repro.db.wal import LogRecordKind
from repro.obs.events import CommitPhase
from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.system import DistributedSystem

MasterGenerator = typing.Generator[Event, typing.Any, TransactionOutcome]
CohortGenerator = typing.Generator[Event, typing.Any, None]


class CommitProtocol(abc.ABC):
    """Base class for all commit protocols."""

    #: registry name, e.g. ``"2PC"``.
    name: str = "abstract"
    #: True for OPT variants: prepared cohorts lend their update locks.
    lending: bool = False
    #: True for protocols with an extra (precommit) phase.
    non_blocking: bool = False

    def __init__(self) -> None:
        self.system: "DistributedSystem | None" = None

    def bind(self, system: "DistributedSystem") -> None:
        """Attach to the system being simulated (called by the system)."""
        self.system = system

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def master_commit(self, master: MasterAgent) -> MasterGenerator:
        """The master's commit processing; returns the outcome."""

    @abc.abstractmethod
    def cohort_commit(self, cohort: CohortAgent) -> CohortGenerator:
        """The cohort's commit processing (from awaiting PREPARE on)."""

    def send_workdone(self, cohort: CohortAgent,
                      ) -> typing.Generator[Event, typing.Any, None]:
        """Report work completion to the master.

        Protocols that piggyback information on the completion report
        (e.g. Unsolicited Vote's YES votes) override this.
        """
        master = cohort.master
        assert master is not None
        yield from cohort.send(MessageKind.WORKDONE, master)

    def master_begin(self, master: MasterAgent,
                     ) -> typing.Generator[Event, typing.Any, None]:
        """Work the master must do *before* starting its cohorts.

        Early Prepare, for instance, must have its membership
        (collecting) record stable before any cohort can unilaterally
        prepare.  Default: nothing.
        """
        return
        yield  # pragma: no cover - makes this a generator

    # ------------------------------------------------------------------
    # Shared building blocks
    # ------------------------------------------------------------------
    def collect_votes(self, master: MasterAgent,
                      ) -> typing.Generator[Event, typing.Any, bool]:
        """Send PREPARE to every cohort and gather the votes.

        Returns True iff every vote was YES.  YES-voters are recorded in
        ``master.prepared_cohorts`` (the set phase two must talk to);
        read-only voters (when the optimization is enabled) are recorded
        in ``master.read_only_cohorts`` and excluded from phase two.
        """
        master.prepared_cohorts = []
        master.read_only_cohorts = []
        for cohort in master.cohorts:
            yield from master.send(MessageKind.PREPARE, cohort)
        all_yes = True
        for _ in master.cohorts:
            message = yield master.recv()
            if message.kind is MessageKind.VOTE_YES:
                master.prepared_cohorts.append(message.sender)
            elif message.kind is MessageKind.VOTE_READ_ONLY:
                master.read_only_cohorts.append(message.sender)
            elif message.kind is MessageKind.VOTE_NO:
                all_yes = False
            else:  # pragma: no cover - protocol violation
                raise RuntimeError(f"unexpected vote {message!r}")
        master.mark_phase(CommitPhase.DECIDE)
        return all_yes

    def cohort_vote(self, cohort: CohortAgent,
                    no_vote_forced: bool,
                    ) -> typing.Generator[Event, typing.Any, str]:
        """The cohort's voting step; returns ``"yes"``, ``"no"`` or
        ``"read_only"``.

        A NO vote is a unilateral abort: the cohort undoes locally and
        never waits for a decision.  ``no_vote_forced`` controls whether
        the abort record is forced (2PC/PC: yes; PA: presumed, so no).
        """
        assert self.system is not None
        master = cohort.master
        assert master is not None
        message = yield cohort.recv()
        assert message.kind is MessageKind.PREPARE, message
        if self.system.surprise_no_vote():
            if no_vote_forced:
                yield from cohort.force_log(LogRecordKind.ABORT)
            else:
                cohort.log(LogRecordKind.ABORT)
            cohort.implement_abort()
            yield from cohort.send(MessageKind.VOTE_NO, master)
            return "no"
        if (self.system.params.read_only_optimization
                and cohort.access.is_read_only):
            # Read-only optimization: one-phase finish, no log records.
            cohort.implement_commit()
            yield from cohort.send(MessageKind.VOTE_READ_ONLY, master)
            return "read_only"
        yield from cohort.force_log(LogRecordKind.PREPARE)
        cohort.state = CohortState.PREPARED
        # Entering the prepared state releases read locks and -- for OPT
        # protocols -- makes the update locks lendable.
        cohort.site.lock_manager.prepare(cohort)
        yield from cohort.send(MessageKind.VOTE_YES, master)
        return "yes"

    def abort_outcome(self, master: MasterAgent) -> TransactionOutcome:
        """Record a protocol-level (surprise-vote) abort on the txn."""
        master.txn.abort_reason = AbortReason.SURPRISE_VOTE
        return TransactionOutcome.ABORTED

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
