"""OPT: the paper's optimistic commit protocol (Section 3).

OPT is 2PC plus controlled access to uncommitted data:

- a cohort entering the *prepared* state lends its update-locked pages
  to conflicting requests (implemented in
  :class:`repro.db.locks.LockManager`, enabled by ``lending = True``);
- a borrower that finishes execution before its lenders resolve is put
  "on the shelf": its WORKDONE message is withheld, so it cannot enter
  the prepared state itself (implemented in
  :meth:`repro.db.transaction.CohortAgent.wait_off_shelf`);
- if a lender aborts, its borrowers abort with it -- but because
  borrowers are never prepared, the abort chain has length exactly one
  (no cascading aborts, Section 3.1).

The message and logging behaviour is *identical* to 2PC, so OPT costs
nothing when there is no data contention ("at low MPLs ... OPT is
virtually identical to 2PC") and wins by eliminating prepared-data
blocking when contention is high.
"""

from __future__ import annotations

from repro.core.two_phase import TwoPhaseCommit


class OptimisticCommit(TwoPhaseCommit):
    """2PC with optimistic lending of prepared data."""

    name = "OPT"
    lending = True
