"""Unsolicited Vote (UV) -- an "other protocol" from paper Section 2.5.

In UV (distributed INGRES, Stonebraker 1979) a cohort enters the
prepared state *unilaterally* when it finishes its work: it force-writes
its prepare record and its YES vote rides on the work-completion report,
eliminating the master's PREPARE round entirely.  The decision phase is
standard 2PC.

Committing-transaction message counts at ``DistDegree = 3``: the two
PREPARE messages disappear and the two votes *are* the completion
reports, so the wire carries 8 messages per transaction instead of
2PC's 12 (forced writes unchanged at 7).

Why there is deliberately **no** OPT-UV variant: the paper's Section 3.2
warns that protocols "which do not guarantee that a cohort which has
unilaterally entered the prepared state will not be forced back later
into an active state" break OPT's bounded-abort-chain argument --
lending from a UV-prepared cohort can cascade aborts, produce unbounded
shelf times, and create lender/borrower deadlocks.  Subclassing
``UnsolicitedVote`` with ``lending = True`` raises at construction.
"""

from __future__ import annotations

import typing

from repro.core.base import CohortGenerator, CommitProtocol, MasterGenerator
from repro.db.messages import MessageKind
from repro.db.transaction import (
    CohortAgent,
    CohortState,
    MasterAgent,
    TransactionOutcome,
)
from repro.db.wal import LogRecordKind
from repro.sim.events import Event


class UnsolicitedVote(CommitProtocol):
    """2PC with unsolicited votes piggybacked on completion reports."""

    name = "UV"

    def __init__(self) -> None:
        super().__init__()
        if self.lending:
            raise TypeError(
                "OPT cannot be combined with Unsolicited Vote: a "
                "unilaterally prepared cohort offers no guarantee it "
                "will not be forced back to the active state, which "
                "breaks OPT's bounded abort chain (paper Section 3.2)")

    # ------------------------------------------------------------------
    # Cohort side: prepare unilaterally, vote with the work report.
    # ------------------------------------------------------------------
    def send_workdone(self, cohort: CohortAgent,
                      ) -> typing.Generator[Event, typing.Any, None]:
        assert self.system is not None
        master = cohort.master
        assert master is not None
        if self.system.surprise_no_vote():
            yield from cohort.force_log(LogRecordKind.ABORT)
            cohort.implement_abort()
            yield from cohort.send(MessageKind.VOTE_NO, master)
            return
        yield from cohort.force_log(LogRecordKind.PREPARE)
        cohort.state = CohortState.PREPARED
        cohort.site.lock_manager.prepare(cohort)
        yield from cohort.send(MessageKind.VOTE_YES, master)

    def cohort_commit(self, cohort: CohortAgent) -> CohortGenerator:
        if cohort.state is not CohortState.PREPARED:
            return  # voted NO; already aborted unilaterally
        master = cohort.master
        assert master is not None
        message = yield from self.await_decision(
            cohort, (MessageKind.COMMIT, MessageKind.ABORT))
        if message is None:
            return  # resolved through recovery
        if message.kind is MessageKind.COMMIT:
            yield from cohort.force_log(LogRecordKind.COMMIT)
            cohort.implement_commit()
        else:
            assert message.kind is MessageKind.ABORT, message
            yield from cohort.force_log(LogRecordKind.ABORT)
            cohort.implement_abort()
        yield from cohort.send(MessageKind.ACK, master)

    # ------------------------------------------------------------------
    # Master side: the votes arrived with the completion reports.
    # ------------------------------------------------------------------
    def master_commit(self, master: MasterAgent) -> MasterGenerator:
        master.prepared_cohorts = [
            message.sender for message in master.early_votes
            if message.kind is MessageKind.VOTE_YES]
        no_votes = sum(1 for message in master.early_votes
                       if message.kind is MessageKind.VOTE_NO)
        # Local cohorts report for free (same-site messages carry no
        # kind change); they are prepared iff they said so.
        all_yes = no_votes == 0 and (
            len(master.prepared_cohorts) == len(master.cohorts))
        if all_yes:
            yield from master.force_log(LogRecordKind.COMMIT)
            for cohort in master.prepared_cohorts:
                yield from master.send(MessageKind.COMMIT, cohort)
            yield from self.collect_acks(master, MessageKind.ACK,
                                         len(master.prepared_cohorts))
            master.log(LogRecordKind.END)
            return TransactionOutcome.COMMITTED
        yield from master.force_log(LogRecordKind.ABORT)
        for cohort in master.prepared_cohorts:
            yield from master.send(MessageKind.ABORT, cohort)
        yield from self.collect_acks(master, MessageKind.ACK,
                                     len(master.prepared_cohorts))
        master.log(LogRecordKind.END)
        return self.abort_outcome(master)
