"""The classical two-phase commit protocol (paper Section 2.1).

Committing-transaction overheads at ``DistDegree = 3`` (one cohort local
to the master, two remote), matching paper Table 3:

- commit messages: 2 PREPARE + 2 YES + 2 COMMIT + 2 ACK = 8;
- forced writes: 3 cohort *prepare* + 1 master *commit* + 3 cohort
  *commit* = 7.
"""

from __future__ import annotations

from repro.core.base import CohortGenerator, CommitProtocol, MasterGenerator
from repro.db.messages import MessageKind
from repro.db.transaction import CohortAgent, MasterAgent, TransactionOutcome
from repro.db.wal import LogRecordKind
from repro.obs.events import CommitPhase


class TwoPhaseCommit(CommitProtocol):
    """Presumed-nothing two-phase commit."""

    name = "2PC"

    # ------------------------------------------------------------------
    # Master side
    # ------------------------------------------------------------------
    def master_commit(self, master: MasterAgent) -> MasterGenerator:
        all_yes = yield from self.collect_votes(master)
        if all_yes:
            yield from self.master_commit_phase(master)
            return TransactionOutcome.COMMITTED
        yield from self.master_abort_phase(master)
        return self.abort_outcome(master)

    def master_commit_phase(self, master: MasterAgent):
        """Force the commit record, notify cohorts, await their ACKs."""
        yield from master.force_log(LogRecordKind.COMMIT)
        for cohort in master.prepared_cohorts:
            yield from master.send(MessageKind.COMMIT, cohort)
        master.mark_phase(CommitPhase.ACK)
        yield from self.collect_acks(master, MessageKind.ACK,
                                     len(master.prepared_cohorts))
        master.log(LogRecordKind.END)

    def master_abort_phase(self, master: MasterAgent):
        """Force the abort record, notify prepared cohorts, await ACKs."""
        yield from master.force_log(LogRecordKind.ABORT)
        for cohort in master.prepared_cohorts:
            yield from master.send(MessageKind.ABORT, cohort)
        master.mark_phase(CommitPhase.ACK)
        yield from self.collect_acks(master, MessageKind.ACK,
                                     len(master.prepared_cohorts))
        master.log(LogRecordKind.END)

    # ------------------------------------------------------------------
    # Cohort side
    # ------------------------------------------------------------------
    def cohort_commit(self, cohort: CohortAgent) -> CohortGenerator:
        vote = yield from self.cohort_vote(cohort, no_vote_forced=True)
        if vote != "yes":
            return
        yield from self.cohort_decision(cohort)

    def cohort_decision(self, cohort: CohortAgent):
        """Receive and implement the global decision (with ACK)."""
        master = cohort.master
        assert master is not None
        message = yield from self.await_decision(
            cohort, (MessageKind.COMMIT, MessageKind.ABORT))
        if message is None:
            return  # resolved through recovery; no ACK to send
        if message.kind is MessageKind.COMMIT:
            yield from cohort.force_log(LogRecordKind.COMMIT)
            cohort.implement_commit()
        else:
            assert message.kind is MessageKind.ABORT, message
            yield from cohort.force_log(LogRecordKind.ABORT)
            cohort.implement_abort()
        yield from cohort.send(MessageKind.ACK, master)
