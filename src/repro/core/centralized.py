"""Baseline commit processing (paper Section 5.1).

Both baselines commit like a centralized DBMS: the master force-writes a
single decision record and the cohorts implement the decision with no
messages and no further logging.

- **DPCC** runs this protocol on the normal *distributed* topology:
  data processing pays its messages, commit processing is free.  "While
  this system is clearly artificial, modeling it helps to isolate the
  effect of distributed commit processing on throughput"; it is the
  upper bound OPT is measured against.
- **CENT** runs it on the *centralized* topology (one site with the
  aggregate resources), removing distribution altogether.
"""

from __future__ import annotations

from repro.core.base import CohortGenerator, CommitProtocol, MasterGenerator
from repro.db.messages import Message, MessageKind
from repro.db.transaction import CohortAgent, MasterAgent, TransactionOutcome
from repro.db.wal import LogRecordKind


class CentralizedCommit(CommitProtocol):
    """One forced decision record; cohorts told for free."""

    def __init__(self, name: str = "DPCC") -> None:
        super().__init__()
        self.name = name

    def master_commit(self, master: MasterAgent) -> MasterGenerator:
        yield from master.force_log(LogRecordKind.COMMIT)
        # Decision distribution is free (centralized-commit abstraction):
        # deposit the decision directly in each cohort's inbox without
        # network involvement.
        for cohort in master.cohorts:
            cohort.inbox.put(Message(
                kind=MessageKind.COMMIT, sender=master, receiver=cohort,
                txn_id=master.txn.txn_id,
                incarnation=master.txn.incarnation))
        return TransactionOutcome.COMMITTED

    def cohort_commit(self, cohort: CohortAgent) -> CohortGenerator:
        assert self.system is not None
        ft = self.system.fault_timeouts
        if ft is None:
            message = yield cohort.recv()
        else:
            # Cohorts never enter the prepared state here, so a missing
            # decision (master's site crashed) is a plain local abort.
            message = yield from cohort.recv_wait(ft.decision_timeout_ms,
                                                  wait="decision")
            if message is None:
                cohort.implement_abort()
                return
        assert message.kind is MessageKind.COMMIT, message
        cohort.implement_commit()
