"""Structured tracing of transaction lifecycles.

An optional facility (zero cost when unused) that records the simulated
system's interesting events -- submissions, commits, aborts, borrow
grants, deadlock victims, shelf entries -- as structured records.  Used
for debugging the model, for the worked examples, and for assertions in
tests that need to observe *sequences* of behaviour rather than end
counts.

The tracer is a plain subscriber of the system's instrumentation bus
(:mod:`repro.obs`); attaching and detaching never alters behaviour.

Usage::

    system = build_system("OPT", mpl=4)
    with Tracer.attach(system) as tracer:
        system.run(measured_transactions=100)
    for record in tracer.of_kind(TraceKind.BORROW):
        print(record)
"""

from __future__ import annotations

import dataclasses
import enum
import typing

from repro.obs.events import (
    Borrow,
    EventKind,
    ShelfEnter,
    TxnAbort,
    TxnCommit,
    TxnRestart,
    TxnSubmit,
)

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.system import DistributedSystem
    from repro.obs.bus import Subscription


class TraceKind(enum.Enum):
    """Event categories recorded by the tracer."""

    SUBMIT = "submit"            # a fresh transaction enters a slot
    RESTART = "restart"          # an aborted incarnation is relaunched
    COMMIT = "commit"            # master completed a commit
    ABORT = "abort"              # incarnation aborted (any reason)
    BORROW = "borrow"            # a page borrowed from a prepared lender
    SHELF = "shelf"              # a borrower entered the shelf
    DEADLOCK_VICTIM = "deadlock_victim"
    LENDER_ABORT = "lender_abort"


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """One traced event."""

    time: float
    kind: TraceKind
    txn: str                      # transaction name, e.g. "T17.2"
    detail: str = ""

    def __str__(self) -> str:
        detail = f" {self.detail}" if self.detail else ""
        return f"[{self.time:10.1f}ms] {self.kind.value:<16} {self.txn}{detail}"


class Tracer:
    """Collects :class:`TraceRecord` objects from a running system.

    Attach *before* ``system.run()``.  Detach with :meth:`detach` (or
    use the tracer as a context manager) to stop recording; the records
    gathered so far remain queryable.
    """

    def __init__(self, system: "DistributedSystem",
                 echo: typing.Callable[[str], None] | None = None,
                 limit: int | None = None) -> None:
        self.system = system
        self.records: list[TraceRecord] = []
        self._echo = echo
        self._limit = limit
        self._subscription: "Subscription | None" = None

    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, system: "DistributedSystem",
               echo: typing.Callable[[str], None] | None = None,
               limit: int | None = None) -> "Tracer":
        """Subscribe a new tracer to ``system``'s bus and return it."""
        tracer = cls(system, echo=echo, limit=limit)
        tracer._subscribe()
        return tracer

    def _subscribe(self) -> None:
        if self._subscription is not None:
            raise RuntimeError("Tracer is already attached")
        self._subscription = self.system.bus.subscribe_map({
            EventKind.TXN_SUBMIT: self._on_submit,
            EventKind.TXN_RESTART: self._on_submit,
            EventKind.TXN_COMMIT: self._on_commit,
            EventKind.TXN_ABORT: self._on_abort,
            EventKind.BORROW: self._on_borrow,
            EventKind.SHELF_ENTER: self._on_shelf,
        })

    def detach(self) -> None:
        """Unsubscribe from the bus (idempotent); keeps the records."""
        if self._subscription is not None:
            self._subscription.cancel()
            self._subscription = None

    @property
    def attached(self) -> bool:
        return self._subscription is not None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.detach()

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _record(self, time: float, kind: TraceKind, txn_name: str,
                detail: str = "") -> None:
        if self._limit is not None and len(self.records) >= self._limit:
            return
        record = TraceRecord(time, kind, txn_name, detail)
        self.records.append(record)
        if self._echo is not None:
            self._echo(str(record))

    def _on_submit(self, event: "TxnSubmit | TxnRestart") -> None:
        kind = (TraceKind.SUBMIT if event.kind is EventKind.TXN_SUBMIT
                else TraceKind.RESTART)
        sites = ",".join(str(s) for s in event.sites)
        self._record(event.time, kind, event.txn.name, f"sites=[{sites}]")

    def _on_commit(self, event: TxnCommit) -> None:
        self._record(event.time, TraceKind.COMMIT, event.txn.name,
                     f"borrowed={event.txn.pages_borrowed}")

    def _on_abort(self, event: TxnAbort) -> None:
        from repro.db.transaction import AbortReason
        self._record(event.time, TraceKind.ABORT, event.txn.name,
                     event.reason.value)
        if event.reason is AbortReason.DEADLOCK:
            self._record(event.time, TraceKind.DEADLOCK_VICTIM,
                         event.txn.name)
        elif event.reason is AbortReason.LENDER_ABORT:
            self._record(event.time, TraceKind.LENDER_ABORT, event.txn.name)

    def _on_borrow(self, event: Borrow) -> None:
        self._record(event.time, TraceKind.BORROW, event.cohort.txn.name,
                     f"page={event.page}@site{event.site_id}")

    def _on_shelf(self, event: ShelfEnter) -> None:
        self._record(event.time, TraceKind.SHELF, event.cohort.txn.name)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def of_kind(self, kind: TraceKind) -> list[TraceRecord]:
        return [r for r in self.records if r.kind is kind]

    def of_transaction(self, txn_name: str) -> list[TraceRecord]:
        return [r for r in self.records if r.txn == txn_name]

    def counts(self) -> dict[TraceKind, int]:
        out: dict[TraceKind, int] = {}
        for record in self.records:
            out[record.kind] = out.get(record.kind, 0) + 1
        return out

    def __len__(self) -> int:
        return len(self.records)
