"""Structured tracing of transaction lifecycles.

An optional facility (zero cost when unused) that records the simulated
system's interesting events -- submissions, commits, aborts, borrow
grants, deadlock victims, shelf entries -- as structured records.  Used
for debugging the model, for the worked examples, and for assertions in
tests that need to observe *sequences* of behaviour rather than end
counts.

Usage::

    system = build_system("OPT", mpl=4)
    tracer = Tracer.attach(system)
    system.run(measured_transactions=100)
    for record in tracer.of_kind(TraceKind.BORROW):
        print(record)
"""

from __future__ import annotations

import dataclasses
import enum
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.system import DistributedSystem


class TraceKind(enum.Enum):
    """Event categories recorded by the tracer."""

    SUBMIT = "submit"            # a fresh transaction enters a slot
    RESTART = "restart"          # an aborted incarnation is relaunched
    COMMIT = "commit"            # master completed a commit
    ABORT = "abort"              # incarnation aborted (any reason)
    BORROW = "borrow"            # a page borrowed from a prepared lender
    SHELF = "shelf"              # a borrower entered the shelf
    DEADLOCK_VICTIM = "deadlock_victim"
    LENDER_ABORT = "lender_abort"


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """One traced event."""

    time: float
    kind: TraceKind
    txn: str                      # transaction name, e.g. "T17.2"
    detail: str = ""

    def __str__(self) -> str:
        detail = f" {self.detail}" if self.detail else ""
        return f"[{self.time:10.1f}ms] {self.kind.value:<16} {self.txn}{detail}"


class Tracer:
    """Collects :class:`TraceRecord` objects from a running system.

    Attach *before* ``system.run()``.  The tracer wraps the system's
    metric hooks and launch path; it never alters behaviour.
    """

    def __init__(self, system: "DistributedSystem",
                 echo: typing.Callable[[str], None] | None = None,
                 limit: int | None = None) -> None:
        self.system = system
        self.records: list[TraceRecord] = []
        self._echo = echo
        self._limit = limit

    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, system: "DistributedSystem",
               echo: typing.Callable[[str], None] | None = None,
               limit: int | None = None) -> "Tracer":
        """Instrument ``system`` and return the tracer."""
        tracer = cls(system, echo=echo, limit=limit)
        tracer._wrap_launch()
        tracer._wrap_metrics()
        tracer._wrap_lock_hooks()
        return tracer

    def _record(self, kind: TraceKind, txn_name: str,
                detail: str = "") -> None:
        if self._limit is not None and len(self.records) >= self._limit:
            return
        record = TraceRecord(self.system.env.now, kind, txn_name, detail)
        self.records.append(record)
        if self._echo is not None:
            self._echo(str(record))

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------
    def _wrap_launch(self) -> None:
        original = self.system._launch

        def launching(spec, incarnation, first_submit):
            txn = original(spec, incarnation, first_submit)
            kind = TraceKind.SUBMIT if incarnation == 0 else TraceKind.RESTART
            sites = ",".join(str(a.site_id) for a in spec.accesses)
            self._record(kind, txn.name, f"sites=[{sites}]")
            return txn

        self.system._launch = launching

    def _wrap_metrics(self) -> None:
        metrics = self.system.metrics
        original_commit = metrics.transaction_committed
        original_abort = metrics.transaction_aborted

        def committed(txn):
            self._record(TraceKind.COMMIT, txn.name,
                         f"borrowed={txn.pages_borrowed}")
            original_commit(txn)

        def aborted(txn, reason):
            from repro.db.transaction import AbortReason
            self._record(TraceKind.ABORT, txn.name, reason.value)
            if reason is AbortReason.DEADLOCK:
                self._record(TraceKind.DEADLOCK_VICTIM, txn.name)
            elif reason is AbortReason.LENDER_ABORT:
                self._record(TraceKind.LENDER_ABORT, txn.name)
            original_abort(txn, reason)

        original_shelf = metrics.shelf_entered

        def shelf():
            self._record(TraceKind.SHELF, "-")
            original_shelf()

        metrics.transaction_committed = committed
        metrics.transaction_aborted = aborted
        metrics.shelf_entered = shelf

    def _wrap_lock_hooks(self) -> None:
        for site in self.system.sites:
            lock_manager = site.lock_manager
            original = lock_manager._on_borrow

            def borrowing(cohort, page, _original=original,
                          _site=site.site_id):
                self._record(TraceKind.BORROW, cohort.txn.name,
                             f"page={page}@site{_site}")
                _original(cohort, page)

            lock_manager._on_borrow = borrowing

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def of_kind(self, kind: TraceKind) -> list[TraceRecord]:
        return [r for r in self.records if r.kind is kind]

    def of_transaction(self, txn_name: str) -> list[TraceRecord]:
        return [r for r in self.records if r.txn == txn_name]

    def counts(self) -> dict[TraceKind, int]:
        out: dict[TraceKind, int] = {}
        for record in self.records:
            out[record.kind] = out.get(record.kind, 0) + 1
        return out

    def __len__(self) -> int:
        return len(self.records)
