"""Command-line interface.

Examples::

    repro-commit list
    repro-commit run E1 --transactions 1000 --mpls 1,2,4,8
    repro-commit run E5-DC
    repro-commit tables --transactions 80
    repro-commit simulate OPT --mpl 6 --transactions 2000
    repro-commit simulate 2PC --open --arrival-rate 1.5 --skew hotspot:10:90
    repro-commit saturation --rates 0.5,1,1.5,2 --skew zipf:0.8
    repro-commit soak --transactions 1000000 --out soak.jsonl
    repro-commit soak --resume --out soak.jsonl
    repro-commit simulate 2PC --topology dcs:2x2:rtt_ms=5 \\
        --fault-plan dc_crash:0:at=1000:for=3000
    repro-commit region-outage --protocols 2PC,3PC --topology \\
        dcs:3x2:rtt_ms=5
    repro-commit simulate PAXOS --topology dcs:2x2:rtt_ms=5 \\
        --replication 2
    repro-commit replication --protocols 2PC,3PC,PAXOS --factors 1,2,3
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
import typing

import repro
from repro.config import DEFAULT_OPEN_ARRIVAL_TPS
from repro.analysis.tables import render_comparison
from repro.experiments import get_experiment
from repro.experiments.registry import EXPERIMENTS
from repro.experiments.overheads import render_table
from repro.experiments.runner import resolve_jobs


def _parse_jobs(text: str) -> int:
    try:
        jobs = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--jobs wants an integer, got {text!r}")
    if jobs < 0:
        raise argparse.ArgumentTypeError(
            f"--jobs must be >= 1 (or 0 for all cores), got {jobs}")
    return jobs


def _parse_target_ci(text: str) -> float:
    try:
        target = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--target-ci wants a number, got {text!r}")
    if not 0.0 < target < 1.0:
        raise argparse.ArgumentTypeError(
            f"--target-ci wants a relative half-width in (0, 1), "
            f"got {target}")
    return target


def _parse_mpls(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(part) for part in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--mpls wants comma-separated integers, got {text!r}")


def _parse_skew(text: str):
    from repro.db.workload import AccessSkew
    try:
        return AccessSkew.parse(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error))


def _parse_rate_curve(text: str):
    from repro.db.workload import RateCurve
    try:
        return RateCurve.parse(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error))


def _parse_topology(text: str):
    from repro.db.topology import NetworkTopology
    try:
        return NetworkTopology.parse(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error))


def _parse_fault_plan(text: str):
    from repro.faults import RegionPlan
    try:
        return RegionPlan.parse(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error))


def _parse_replication(text: str):
    from repro.db.pages import ReplicationSpec
    try:
        return ReplicationSpec.parse(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error))


def _parse_factors(text: str) -> tuple[int, ...]:
    try:
        factors = tuple(int(part) for part in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--factors wants comma-separated integers, got {text!r}")
    if not factors or any(factor < 1 for factor in factors):
        raise argparse.ArgumentTypeError(
            f"--factors wants replication factors >= 1, got {text!r}")
    return factors


def _parse_rates(text: str) -> tuple[float, ...]:
    try:
        rates = tuple(float(part) for part in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--rates wants comma-separated numbers, got {text!r}")
    if not rates or any(rate <= 0 for rate in rates):
        raise argparse.ArgumentTypeError(
            f"--rates wants positive arrival rates, got {text!r}")
    return rates


def _add_open_args(parser: argparse.ArgumentParser) -> None:
    """Open-system workload flags (simulate and run)."""
    parser.add_argument("--open", action="store_true",
                        help="open-system mode: per-site Poisson arrivals "
                             "feed a bounded admission queue; mpl becomes "
                             "the per-site concurrency cap")
    parser.add_argument("--arrival-rate", type=float, default=None,
                        metavar="TPS",
                        help="per-site arrival rate in txns/s (with "
                             f"--open; default {DEFAULT_OPEN_ARRIVAL_TPS})")
    parser.add_argument("--queue-limit", type=int, default=64,
                        help="per-site admission queue bound; arrivals "
                             "beyond it are shed (with --open)")
    parser.add_argument("--skew", type=_parse_skew, default=None,
                        metavar="SPEC",
                        help="page-access skew: 'uniform', "
                             "'hotspot:<page%%>:<access%%>' (e.g. "
                             "hotspot:10:90), or 'zipf:<theta>'; applies "
                             "in closed mode too")
    _add_topology_args(parser)


def _add_topology_args(parser: argparse.ArgumentParser) -> None:
    """Network-topology flags (see docs/MODEL.md)."""
    parser.add_argument("--topology", type=_parse_topology, default=None,
                        metavar="SPEC",
                        help="network topology: 'uniform' (the paper's "
                             "zero-latency switch, the default), "
                             "'dcs:<D>x<S>:rtt_ms=<ms>' (e.g. "
                             "dcs:2x4:rtt_ms=40), or "
                             "'matrix:<ms>,..;..' per-link latencies")
    parser.add_argument("--local-cohorts", action="store_true",
                        help="prefer cohort sites in the master's own "
                             "datacenter (requires a multi-DC --topology)")
    parser.add_argument("--replication", type=_parse_replication,
                        default=None, metavar="SPEC",
                        help="page replication: 'R' or 'R:<strategy>' "
                             "with strategy 'chain' (adjacent sites, the "
                             "default) or 'spread' (ring-stride); R=1 "
                             "keeps the unreplicated placement "
                             "byte-identical")


def _topology_overrides(args: argparse.Namespace) -> dict[str, object]:
    overrides: dict[str, object] = {}
    if args.topology is not None:
        overrides["network_topology"] = args.topology
    if args.local_cohorts:
        overrides["prefer_local_cohorts"] = True
    if args.replication is not None:
        overrides["replication"] = args.replication
    return overrides


def _open_overrides(args: argparse.Namespace) -> dict[str, object]:
    """Translate the open-system flags into ModelParams overrides."""
    overrides = _topology_overrides(args)
    if args.skew is not None:
        overrides["skew"] = args.skew
    if args.open:
        rate = (args.arrival_rate if args.arrival_rate is not None
                else DEFAULT_OPEN_ARRIVAL_TPS)
        overrides["workload_mode"] = repro.WorkloadMode.OPEN
        overrides["arrival_rate_tps"] = rate
        overrides["admission_queue_limit"] = args.queue_limit
    elif args.arrival_rate is not None:
        raise ValueError("--arrival-rate requires --open")
    return overrides


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-commit",
        description=("Commit-protocol performance study "
                     "(Gupta/Haritsa/Ramamritham, SIGMOD 1997)"))
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list runnable experiments")

    run = sub.add_parser("run", help="run one paper experiment")
    run.add_argument("experiment", help="experiment id, e.g. E1")
    run.add_argument("--transactions", type=int, default=1000,
                     help="measured transactions per point")
    run.add_argument("--mpls", type=_parse_mpls, default=None,
                     help="comma-separated MPL values")
    run.add_argument("--replications", type=int, default=1,
                     help="independent replications per point (with "
                          "--target-ci: the per-point cap)")
    run.add_argument("--jobs", type=_parse_jobs, default=1, metavar="N",
                     help="worker processes for the sweep grid, reused "
                          "from a warm shared pool (0 = all CPU cores, a "
                          "CLI-only convenience -- library APIs reject "
                          "jobs=0; default 1, in-process)")
    run.add_argument("--target-ci", type=_parse_target_ci, default=None,
                     metavar="W",
                     help="adaptive replication: run waves of reps per "
                          "point and stop once the 90%% CI relative "
                          "half-width of throughput is <= W (e.g. 0.1); "
                          "default off (fixed replications)")
    run.add_argument("--quiet", action="store_true",
                     help="suppress per-point progress output")
    run.add_argument("--export", metavar="DIR", default=None,
                     help="also write TSV/CSV series to this directory")
    run.add_argument("--events-out", metavar="FILE", default=None,
                     help="stream every simulation event to this JSONL "
                          "file (one meta line per sweep point; "
                          "requires --jobs 1)")
    _add_open_args(run)

    tables = sub.add_parser("tables",
                            help="regenerate overhead Tables 3 and 4")
    tables.add_argument("--transactions", type=int, default=60)
    tables.add_argument("--jobs", type=_parse_jobs, default=1, metavar="N",
                        help="worker processes for the per-protocol "
                             "measurement runs, reused from a warm "
                             "shared pool (0 = all CPU cores, a "
                             "CLI-only convenience -- library APIs "
                             "reject jobs=0)")
    tables.add_argument("--target-ci", type=_parse_target_ci, default=None,
                        metavar="W",
                        help="replicate each row's measurement with "
                             "fresh seeds until every overhead mean's "
                             "90%% CI relative half-width is <= W; "
                             "default off (one run per row)")

    sim = sub.add_parser("simulate", help="run a single configuration")
    sim.add_argument("protocol", help="protocol name, e.g. OPT")
    sim.add_argument("--mpl", type=int, default=8)
    sim.add_argument("--transactions", type=int, default=2000)
    sim.add_argument("--dist-degree", type=int, default=3)
    sim.add_argument("--cohort-size", type=int, default=6)
    sim.add_argument("--update-prob", type=float, default=1.0)
    sim.add_argument("--msg-cpu-ms", type=float, default=5.0)
    sim.add_argument("--pure-dc", action="store_true",
                     help="infinite physical resources")
    sim.add_argument("--surprise-abort-prob", type=float, default=0.0)
    sim.add_argument("--seed", type=int, default=None)
    sim.add_argument("--events-out", metavar="FILE", default=None,
                     help="stream every simulation event to this JSONL "
                          "file")
    sim.add_argument("--phases", action="store_true",
                     help="report the per-phase commit latency breakdown")
    _add_open_args(sim)
    _add_fault_args(sim)

    sat = sub.add_parser(
        "saturation",
        help="open-system carried load vs offered load, per protocol")
    sat.add_argument("--protocols", default="2PC,PA,PC,3PC,OPT",
                     help="comma-separated protocol names "
                          "(default 2PC,PA,PC,3PC,OPT; 'all' = every "
                          "registered protocol)")
    sat.add_argument("--rates", type=_parse_rates, default=None,
                     help="comma-separated per-site arrival rates in "
                          "txns/s (default 0.5,1,1.5,2,3,5)")
    sat.add_argument("--mpl", type=int, default=8,
                     help="per-site concurrency cap")
    sat.add_argument("--skew", type=_parse_skew, default=None,
                     metavar="SPEC",
                     help="page-access skew (see simulate --skew)")
    sat.add_argument("--queue-limit", type=int, default=64,
                     help="per-site admission queue bound")
    sat.add_argument("--transactions", type=int, default=300,
                     help="measured transactions per point")
    sat.add_argument("--seed", type=int, default=20250705)
    sat.add_argument("--quiet", action="store_true",
                     help="suppress per-point progress output")
    _add_topology_args(sat)

    wan = sub.add_parser(
        "wan",
        help="commit latency vs cross-DC RTT across 2-3 datacenters")
    wan.add_argument("--protocols", default="2PC,PA,PC,3PC,OPT",
                     help="comma-separated protocol names "
                          "(default 2PC,PA,PC,3PC,OPT; 'all' = every "
                          "registered protocol)")
    wan.add_argument("--rtts", default="0,10,40,100",
                     help="comma-separated cross-DC round-trip times "
                          "in ms (default 0,10,40,100)")
    wan.add_argument("--dcs", type=int, default=2,
                     help="number of datacenters the sites split into "
                          "(default 2)")
    wan.add_argument("--placements", default="spread,local",
                     help="comma-separated cohort placements: 'spread' "
                          "(the paper's uniform choice) and/or 'local' "
                          "(prefer same-DC cohorts); default both")
    wan.add_argument("--mpl", type=int, default=2)
    wan.add_argument("--transactions", type=int, default=300,
                     help="measured transactions per point")
    wan.add_argument("--seed", type=int, default=20250705)
    wan.add_argument("--quiet", action="store_true",
                     help="suppress per-point progress output")

    soak = sub.add_parser(
        "soak",
        help="long-horizon open-system run at flat RSS: streaming "
             "percentiles, windowed JSONL output, checkpoint/resume")
    soak.add_argument("protocol", nargs="?", default="2PC",
                      help="protocol name (default 2PC)")
    soak.add_argument("--transactions", type=int, default=1_000_000,
                      help="committed-transaction target; the run stops "
                           "at the first drain barrier at or past it "
                           "(default 1000000)")
    soak.add_argument("--arrival-rate", type=float,
                      default=DEFAULT_OPEN_ARRIVAL_TPS, metavar="TPS",
                      help="per-site arrival rate in txns/s")
    soak.add_argument("--mpl", type=int, default=8,
                      help="per-site concurrency cap")
    soak.add_argument("--queue-limit", type=int, default=64,
                      help="per-site admission queue bound")
    soak.add_argument("--skew", type=_parse_skew, default=None,
                      metavar="SPEC",
                      help="page-access skew: 'uniform', "
                           "'hotspot:<page%%>:<access%%>[:<drift_s>]' "
                           "(drift_s rotates the hot set once per "
                           "period), or 'zipf:<theta>'")
    soak.add_argument("--rate-curve", type=_parse_rate_curve, default=None,
                      metavar="SPEC",
                      help="time-varying arrival rate: 'constant', "
                           "'diurnal:<period_s>:<amplitude>', or "
                           "'steps:<t_s>=<factor>,...'")
    soak.add_argument("--window-s", type=float, default=60.0,
                      help="simulated seconds per output window "
                           "(default 60)")
    soak.add_argument("--checkpoint-every", type=int, default=100_000,
                      help="commits per segment between drain-barrier "
                           "checkpoints (0 = no checkpointing; "
                           "default 100000)")
    soak.add_argument("--out", metavar="FILE", default="soak.jsonl",
                      help="windowed JSONL output (default soak.jsonl)")
    soak.add_argument("--checkpoint", metavar="FILE", default=None,
                      help="checkpoint file (default: <out>.ckpt)")
    soak.add_argument("--resume", action="store_true",
                      help="resume from the checkpoint file; the "
                           "completed stream is byte-identical to an "
                           "uninterrupted run")
    soak.add_argument("--sample-cap", type=int, default=10_000,
                      help="retained observations before percentile "
                           "samples switch to streaming P-squared "
                           "estimators (default 10000)")
    soak.add_argument("--seed", type=int, default=20250705)
    soak.add_argument("--quiet", action="store_true",
                      help="suppress per-segment progress output")
    _add_topology_args(soak)

    avail = sub.add_parser(
        "availability",
        help="throughput vs site MTTF under fault injection")
    avail.add_argument("--protocols", default="2PC,PA,PC,3PC,OPT",
                       help="comma-separated protocol names "
                            "(default 2PC,PA,PC,3PC,OPT; 'all' = every "
                            "registered protocol)")
    avail.add_argument("--mttfs", default="0,400000,200000,100000",
                       help="comma-separated site MTTFs in ms "
                            "(0 = failure-free baseline)")
    avail.add_argument("--mttr-ms", type=float, default=5_000.0,
                       help="mean site repair time in ms")
    avail.add_argument("--msg-loss", type=float, default=0.0,
                       help="per-message loss probability")
    avail.add_argument("--mpl", type=int, default=2)
    avail.add_argument("--transactions", type=int, default=300,
                       help="measured transactions per point")
    avail.add_argument("--seed", type=int, default=20250705)
    avail.add_argument("--jobs", type=_parse_jobs, default=1, metavar="N",
                       help="worker processes for the sweep grid, reused "
                            "from a warm shared pool (0 = all CPU cores; "
                            "default 1, in-process)")
    avail.add_argument("--quiet", action="store_true",
                       help="suppress per-point progress output")
    _add_topology_args(avail)

    region = sub.add_parser(
        "region-outage",
        help="blocked locks and carried load under DC outages and "
             "WAN partitions")
    region.add_argument("--protocols", default="2PC,PA,PC,3PC,OPT",
                        help="comma-separated protocol names "
                             "(default 2PC,PA,PC,3PC,OPT; 'all' = every "
                             "registered protocol)")
    region.add_argument("--outages", default="dc_crash,partition",
                        help="comma-separated outage shapes: 'dc_crash' "
                             "(datacenter 0 down atomically) and/or "
                             "'partition' (links between DCs 0 and 1 "
                             "severed); default both")
    region.add_argument("--durations", default="2000,4000",
                        help="comma-separated outage durations in ms "
                             "(default 2000,4000)")
    region.add_argument("--topology", type=_parse_topology,
                        default=None, metavar="SPEC",
                        help="multi-DC topology the outage hits "
                             "(default dcs:2x2:rtt_ms=5); num_sites is "
                             "derived from it")
    region.add_argument("--at-ms", type=float, default=1000.0,
                        help="outage onset time in ms (default 1000)")
    region.add_argument("--mpl", type=int, default=2)
    region.add_argument("--transactions", type=int, default=40,
                        help="measured transactions per point")
    region.add_argument("--seed", type=int, default=7)
    region.add_argument("--quiet", action="store_true",
                        help="suppress per-point progress output")

    repl = sub.add_parser(
        "replication",
        help="quorum commit over replicated pages: blocked locks and "
             "carried load across replication factor x site MTTF under "
             "a DC outage")
    repl.add_argument("--protocols", default="2PC,3PC,PAXOS",
                      help="comma-separated protocol names "
                           "(default 2PC,3PC,PAXOS; 'all' = every "
                           "registered protocol)")
    repl.add_argument("--factors", type=_parse_factors, default=(1, 2, 3),
                      help="comma-separated replication factors "
                           "(default 1,2,3)")
    repl.add_argument("--mttfs", default="0,60000",
                      help="comma-separated site MTTFs in ms layered on "
                           "top of the DC outage (0 = outage only; "
                           "default 0,60000)")
    repl.add_argument("--mttr-ms", type=float, default=2000.0,
                      help="mean site repair time in ms (default 2000)")
    repl.add_argument("--topology", type=_parse_topology,
                      default=None, metavar="SPEC",
                      help="multi-DC topology the outage hits "
                           "(default dcs:2x2:rtt_ms=5); num_sites is "
                           "derived from it")
    repl.add_argument("--at-ms", type=float, default=1000.0,
                      help="outage onset time in ms (default 1000)")
    repl.add_argument("--outage-ms", type=float, default=1500.0,
                      help="DC outage duration in ms (default 1500)")
    repl.add_argument("--mpl", type=int, default=2)
    repl.add_argument("--transactions", type=int, default=40,
                      help="measured transactions per point")
    repl.add_argument("--seed", type=int, default=7)
    repl.add_argument("--quiet", action="store_true",
                      help="suppress per-point progress output")
    return parser


def _add_fault_args(sim: argparse.ArgumentParser) -> None:
    """Fault-injection flags for ``simulate`` (see repro.faults)."""
    sim.add_argument("--faults", action="store_true",
                     help="arm the fault injector (site crashes, message "
                          "loss, protocol timeouts)")
    sim.add_argument("--mttf-ms", type=float, default=200_000.0,
                     help="mean time to site failure in ms "
                          "(with --faults; 0 disables crashes)")
    sim.add_argument("--mttr-ms", type=float, default=5_000.0,
                     help="mean site repair time in ms (with --faults)")
    sim.add_argument("--msg-loss", type=float, default=0.0,
                     help="per-message loss probability (with --faults)")
    sim.add_argument("--msg-delay-ms", type=float, default=0.0,
                     help="mean extra wire delay per remote message in ms "
                          "(with --faults; 0 = the paper's zero-latency "
                          "switch)")
    sim.add_argument("--fault-plan", type=_parse_fault_plan, default=None,
                     metavar="SPEC",
                     help="correlated-failure plan, comma-separated "
                          "directives: 'dc_crash:<dc>:at=<ms>:for=<ms>', "
                          "'partition:<dcA>|<dcB>:at=<ms>:for=<ms>', or "
                          "stochastic variants with mttf=<ms>:mttr=<ms>; "
                          "needs a multi-DC --topology; arms the "
                          "injector on its own (no --faults needed)")


def cmd_list(out: typing.TextIO) -> int:
    out.write("Runnable experiments (repro-commit run <id>):\n")
    for experiment_id, definition in EXPERIMENTS.items():
        out.write(f"  {experiment_id:<12} {definition.title}\n")
    out.write("  T3/T4        "
              "Overhead tables (repro-commit tables)\n")
    return 0


def cmd_run(args: argparse.Namespace, out: typing.TextIO) -> int:
    definition = get_experiment(args.experiment)
    if args.events_out is not None and resolve_jobs(args.jobs) != 1:
        out.write("error: --events-out requires --jobs 1\n")
        return 2
    if args.events_out is not None and args.target_ci is not None:
        out.write("error: --events-out requires fixed replications "
                  "(drop --target-ci)\n")
        return 2
    try:
        overrides = _open_overrides(args)
    except ValueError as error:
        out.write(f"error: {error}\n")
        return 2
    if overrides:
        base_factory = definition.params_factory
        definition = dataclasses.replace(
            definition,
            params_factory=lambda mpl, _base=base_factory:
                _base(mpl).replace(**overrides))
    progress = None if args.quiet else (
        lambda text: out.write(f"  ... {text}\n"))
    started = time.time()
    results = definition.run(measured_transactions=args.transactions,
                             mpls=args.mpls,
                             replications=args.replications,
                             progress=progress,
                             jobs=resolve_jobs(args.jobs),
                             events_out=args.events_out,
                             target_ci=args.target_ci)
    out.write(results.summary() + "\n")
    if args.target_ci is not None:
        out.write(f"adaptive replication: "
                  f"{results.total_measured_transactions} measured "
                  f"transactions total; loosest 90% CI half-width "
                  f"{results.max_rel_half_width():.3f} "
                  f"(target {args.target_ci})\n")
    for metric in definition.metrics[1:]:
        out.write(results.table(metric) + "\n")
    out.write(render_comparison(results) + "\n")
    if args.export:
        from repro.analysis.export import export_experiment
        paths = export_experiment(results, definition.metrics, args.export)
        for path in paths:
            out.write(f"wrote {path}\n")
    if args.events_out:
        out.write(f"wrote {args.events_out}\n")
    out.write(f"(completed in {time.time() - started:.1f}s wall time)\n")
    return 0


def cmd_tables(args: argparse.Namespace, out: typing.TextIO) -> int:
    jobs = resolve_jobs(args.jobs)
    out.write(render_table(3, 6, transactions=args.transactions,
                           jobs=jobs, target_ci=args.target_ci) + "\n\n")
    out.write(render_table(6, 3, transactions=args.transactions,
                           jobs=jobs, target_ci=args.target_ci) + "\n")
    return 0


def cmd_simulate(args: argparse.Namespace, out: typing.TextIO) -> int:
    exporter = None
    phases = None
    observers = []
    if args.events_out is not None:
        from repro.obs import JsonlExporter
        exporter = JsonlExporter.open(args.events_out)
        exporter.meta(protocol=args.protocol, mpl=args.mpl, seed=args.seed)
        observers.append(exporter.attach)
    if args.phases:
        from repro.obs import PhaseLatencyObserver
        phases = PhaseLatencyObserver()
        observers.append(phases.attach)

    faults = None
    captured = []
    if args.faults or args.fault_plan is not None:
        from repro.faults import FaultConfig
        # A bare --fault-plan arms only the region directives: the
        # stochastic per-site knobs stay zeroed unless --faults asks
        # for them too.
        faults = FaultConfig(
            mttf_ms=args.mttf_ms if args.faults else 0.0,
            mttr_ms=args.mttr_ms,
            msg_loss_prob=args.msg_loss if args.faults else 0.0,
            msg_delay_ms=args.msg_delay_ms if args.faults else 0.0,
            region=args.fault_plan)

    def on_system(system):
        captured.append(system)
        for attach in observers:
            attach(system.bus)

    wants_system = (bool(observers) or faults is not None
                    or args.topology is not None)
    try:
        result = repro.simulate(
            args.protocol,
            measured_transactions=args.transactions,
            seed=args.seed,
            on_system=on_system if wants_system else None,
            faults=faults,
            mpl=args.mpl,
            dist_degree=args.dist_degree,
            cohort_size=args.cohort_size,
            update_prob=args.update_prob,
            msg_cpu_ms=args.msg_cpu_ms,
            infinite_resources=args.pure_dc,
            surprise_abort_prob=args.surprise_abort_prob,
            **_open_overrides(args))
    except ValueError as error:
        # Bad protocol name or inconsistent parameters: a CLI error,
        # not a traceback.
        out.write(f"error: {error}\n")
        return 2
    finally:
        if exporter is not None:
            exporter.close()
    out.write(result.summary() + "\n")
    if isinstance(result, repro.OpenSimulationResult):
        out.write(f"open system: offered={result.offered} "
                  f"({result.offered_per_second:.2f}/s) "
                  f"shed={result.shed} ({result.shed_ratio:.1%}) "
                  f"mean queue={result.mean_queue_length:.2f} "
                  f"qwait={result.queue_wait_mean_ms:.1f}ms\n")
    out.write(f"overheads per committing txn: "
              f"exec_msgs={result.overheads.execution_messages:.2f} "
              f"forced={result.overheads.forced_writes:.2f} "
              f"commit_msgs={result.overheads.commit_messages:.2f}\n")
    if result.aborts_by_reason:
        out.write(f"aborts by reason: {result.aborts_by_reason}\n")
    if args.topology is not None and captured:
        system = captured[0]
        network = system.network
        out.write(
            f"topology: {args.topology.describe()}; "
            f"cross-DC msgs={network.cross_dc_messages} "
            f"intra-DC msgs={network.intra_dc_messages} "
            f"cross-DC round trips/commit="
            f"{system.metrics.cross_dc_round_trips_per_commit():.2f}\n")
    if faults is not None and captured and captured[0].faults is not None:
        injector = captured[0].faults
        out.write(f"faults: {injector.crashes} crashes, "
                  f"{injector.recoveries} recoveries, "
                  f"{injector.messages_dropped} messages dropped, "
                  f"{injector.in_doubt_resolved} in-doubt resolved\n")
        if args.fault_plan is not None:
            split = captured[0].network.drops_by_reason
            rendered = ", ".join(
                f"{reason}={count}"
                for reason, count in sorted(split.items())) or "none"
            out.write(f"region faults: {injector.dc_crashes} DC crashes, "
                      f"{injector.link_partitions} link partitions, "
                      f"{injector.blocked_lock_ms:.0f}ms blocked lock "
                      f"time; drops by reason: {rendered}\n")
    if phases is not None:
        out.write("per-phase commit latency (ms, committed txns):\n")
        out.write(phases.report() + "\n")
    if exporter is not None:
        out.write(f"wrote {args.events_out} "
                  f"({exporter.events_written} events)\n")
    return 0


def cmd_soak(args: argparse.Namespace, out: typing.TextIO) -> int:
    from repro.experiments.soak import SoakConfig, SoakRunner
    try:
        params = repro.open_system(
            arrival_rate_tps=args.arrival_rate, skew=args.skew,
            admission_queue_limit=args.queue_limit,
            rate_curve=args.rate_curve, mpl=args.mpl,
            **_topology_overrides(args))
        config = SoakConfig(
            protocol=args.protocol, params=params,
            transactions=args.transactions, seed=args.seed,
            window_ms=args.window_s * 1000.0,
            checkpoint_every=args.checkpoint_every,
            sample_cap=args.sample_cap)
        checkpoint = (args.checkpoint if args.checkpoint is not None
                      else args.out + ".ckpt")
        progress = None if args.quiet else (
            lambda text: out.write(f"  ... {text}\n"))
        started = time.time()
        runner = SoakRunner(config, args.out, checkpoint,
                            progress=progress)
        summary = runner.run(resume=args.resume)
    except (ValueError, FileNotFoundError) as error:
        out.write(f"error: {error}\n")
        return 2
    out.write(f"{summary['protocol']}: {summary['committed']} committed "
              f"in {summary['segments']} segments, "
              f"{summary['windows']} windows over "
              f"{summary['clock_ms'] / 1000.0:.0f} simulated seconds\n")
    out.write(f"wrote {summary['out']} (checkpoint "
              f"{summary['checkpoint']})\n")
    try:
        import resource
        peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        out.write(f"peak RSS {peak_kb / 1024.0:.0f} MiB\n")
    except ImportError:  # pragma: no cover - non-POSIX
        pass
    out.write(f"(completed in {time.time() - started:.1f}s wall time)\n")
    return 0


def cmd_availability(args: argparse.Namespace, out: typing.TextIO) -> int:
    from repro.experiments.availability import AvailabilitySweep
    if args.protocols.strip().lower() == "all":
        protocols: typing.Sequence[str] = repro.PROTOCOL_NAMES
    else:
        protocols = tuple(p.strip() for p in args.protocols.split(","))
    try:
        mttfs = tuple(float(part) for part in args.mttfs.split(","))
    except ValueError:
        out.write(f"error: --mttfs wants comma-separated numbers, "
                  f"got {args.mttfs!r}\n")
        return 2
    progress = None if args.quiet else (
        lambda text: out.write(f"  ... {text}\n"))
    started = time.time()
    try:
        overrides = _topology_overrides(args)
        params = repro.ModelParams(**overrides) if overrides else None
        sweep = AvailabilitySweep(protocols, mttfs=mttfs,
                                  mttr_ms=args.mttr_ms,
                                  msg_loss_prob=args.msg_loss, mpl=args.mpl,
                                  params=params,
                                  measured_transactions=args.transactions,
                                  seed=args.seed)
        results = sweep.run(progress=progress, jobs=resolve_jobs(args.jobs))
    except ValueError as error:
        out.write(f"error: {error}\n")
        return 2
    out.write(results.summary() + "\n")
    out.write(f"(completed in {time.time() - started:.1f}s wall time)\n")
    return 0


def cmd_region_outage(args: argparse.Namespace, out: typing.TextIO) -> int:
    from repro.experiments.region_outage import RegionOutageSweep
    if args.protocols.strip().lower() == "all":
        protocols: typing.Sequence[str] = repro.PROTOCOL_NAMES
    else:
        protocols = tuple(p.strip() for p in args.protocols.split(","))
    outages = tuple(o.strip() for o in args.outages.split(","))
    try:
        durations = tuple(float(part)
                          for part in args.durations.split(","))
    except ValueError:
        out.write(f"error: --durations wants comma-separated numbers, "
                  f"got {args.durations!r}\n")
        return 2
    progress = None if args.quiet else (
        lambda text: out.write(f"  ... {text}\n"))
    started = time.time()
    try:
        topology = (args.topology if args.topology is not None
                    else "dcs:2x2:rtt_ms=5")
        sweep = RegionOutageSweep(protocols, outages=outages,
                                  durations_ms=durations,
                                  topology=topology, mpl=args.mpl,
                                  at_ms=args.at_ms,
                                  measured_transactions=args.transactions,
                                  seed=args.seed)
        results = sweep.run(progress=progress)
    except ValueError as error:
        out.write(f"error: {error}\n")
        return 2
    out.write(results.summary() + "\n")
    out.write(f"(completed in {time.time() - started:.1f}s wall time)\n")
    return 0


def cmd_replication(args: argparse.Namespace, out: typing.TextIO) -> int:
    from repro.experiments.replication import ReplicationSweep
    if args.protocols.strip().lower() == "all":
        protocols: typing.Sequence[str] = repro.PROTOCOL_NAMES
    else:
        protocols = tuple(p.strip() for p in args.protocols.split(","))
    try:
        mttfs = tuple(float(part) for part in args.mttfs.split(","))
    except ValueError:
        out.write(f"error: --mttfs wants comma-separated numbers, "
                  f"got {args.mttfs!r}\n")
        return 2
    progress = None if args.quiet else (
        lambda text: out.write(f"  ... {text}\n"))
    started = time.time()
    try:
        topology = (args.topology if args.topology is not None
                    else "dcs:2x2:rtt_ms=5")
        sweep = ReplicationSweep(protocols, factors=args.factors,
                                 mttfs=mttfs, topology=topology,
                                 mpl=args.mpl, at_ms=args.at_ms,
                                 outage_ms=args.outage_ms,
                                 mttr_ms=args.mttr_ms,
                                 measured_transactions=args.transactions,
                                 seed=args.seed)
        results = sweep.run(progress=progress)
    except ValueError as error:
        out.write(f"error: {error}\n")
        return 2
    out.write(results.summary() + "\n")
    out.write(f"(completed in {time.time() - started:.1f}s wall time)\n")
    return 0


def cmd_saturation(args: argparse.Namespace, out: typing.TextIO) -> int:
    from repro.experiments.saturation import DEFAULT_RATES, SaturationSweep
    if args.protocols.strip().lower() == "all":
        protocols: typing.Sequence[str] = repro.PROTOCOL_NAMES
    else:
        protocols = tuple(p.strip() for p in args.protocols.split(","))
    progress = None if args.quiet else (
        lambda text: out.write(f"  ... {text}\n"))
    started = time.time()
    try:
        overrides = _topology_overrides(args)
        params = repro.ModelParams(**overrides) if overrides else None
        sweep = SaturationSweep(
            protocols,
            rates=args.rates if args.rates is not None else DEFAULT_RATES,
            mpl=args.mpl, skew=args.skew, queue_limit=args.queue_limit,
            params=params,
            measured_transactions=args.transactions, seed=args.seed)
        results = sweep.run(progress=progress)
    except ValueError as error:
        out.write(f"error: {error}\n")
        return 2
    out.write(results.summary() + "\n")
    out.write(f"(completed in {time.time() - started:.1f}s wall time)\n")
    return 0


def cmd_wan(args: argparse.Namespace, out: typing.TextIO) -> int:
    from repro.experiments.wan import WanSweep
    if args.protocols.strip().lower() == "all":
        protocols: typing.Sequence[str] = repro.PROTOCOL_NAMES
    else:
        protocols = tuple(p.strip() for p in args.protocols.split(","))
    try:
        rtts = tuple(float(part) for part in args.rtts.split(","))
    except ValueError:
        out.write(f"error: --rtts wants comma-separated numbers, "
                  f"got {args.rtts!r}\n")
        return 2
    placements = tuple(p.strip() for p in args.placements.split(","))
    progress = None if args.quiet else (
        lambda text: out.write(f"  ... {text}\n"))
    started = time.time()
    try:
        sweep = WanSweep(protocols, rtts_ms=rtts, placements=placements,
                         num_dcs=args.dcs, mpl=args.mpl,
                         measured_transactions=args.transactions,
                         seed=args.seed)
        results = sweep.run(progress=progress)
    except ValueError as error:
        out.write(f"error: {error}\n")
        return 2
    out.write(results.summary() + "\n")
    out.write(f"(completed in {time.time() - started:.1f}s wall time)\n")
    return 0


def main(argv: typing.Sequence[str] | None = None,
         out: typing.TextIO = sys.stdout) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list(out)
    if args.command == "run":
        return cmd_run(args, out)
    if args.command == "tables":
        return cmd_tables(args, out)
    if args.command == "simulate":
        return cmd_simulate(args, out)
    if args.command == "availability":
        return cmd_availability(args, out)
    if args.command == "region-outage":
        return cmd_region_outage(args, out)
    if args.command == "replication":
        return cmd_replication(args, out)
    if args.command == "saturation":
        return cmd_saturation(args, out)
    if args.command == "wan":
        return cmd_wan(args, out)
    if args.command == "soak":
        return cmd_soak(args, out)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
