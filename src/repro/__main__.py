"""``python -m repro`` runs the command-line interface."""

import sys

from repro.cli import main

if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Output was piped to a consumer that stopped reading (head,
        # less, ...): exit quietly like a well-behaved Unix tool.
        sys.stderr.close()
        sys.exit(0)
