"""Failure injection: what "blocking" actually costs.

The paper compares commit protocols under failure-free operation and
argues (Section 2.4) that blocking protocols can bring transaction
processing to a halt when a master fails at the wrong moment, while 3PC
survives.  This module makes that argument measurable -- an extension
beyond the paper's experiments (DESIGN.md section 6):

- one designated transaction's master **crashes** immediately after its
  cohorts enter their decision-wait (for 2PC/PA/PC: after all YES votes;
  for 3PC: after all PRECOMMIT-ACKs);
- under a **blocking** protocol, the prepared cohorts simply hold their
  update locks until the master recovers (``crash_duration_ms`` later)
  and completes the protocol;
- under **3PC** the cohorts time out (``decision_timeout_ms``), run the
  termination protocol among themselves -- paying an election round of
  messages -- and commit from the precommitted state without the master;
- everything else keeps running, piling up behind the crashed
  transaction's locks.

The report gives the cohorts' *unblock latency* (crash to last lock
release) and the system throughput during the outage window.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.config import ModelParams
from repro.core.presumed_abort import PresumedAbort
from repro.core.presumed_commit import PresumedCommit
from repro.core.three_phase import ThreePhaseCommit
from repro.core.two_phase import TwoPhaseCommit
from repro.db.messages import MessageKind
from repro.db.system import DistributedSystem
from repro.db.transaction import CohortState, TransactionOutcome
from repro.db.wal import LogRecordKind
from repro.obs.events import EventKind, LockRelease, SiteCrash, SiteRecover

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.recorder import EventLog

BLOCKING_BASES = {
    "2PC": TwoPhaseCommit,
    "PA": PresumedAbort,
    "PC": PresumedCommit,
}


@dataclasses.dataclass
class BlockingReport:
    """Outcome of one master-crash scenario."""

    protocol: str
    crash_time_ms: float
    #: when each crashed-transaction cohort released its locks.
    release_times_ms: list[float]
    #: committed transactions during the outage window.
    committed_during_outage: int
    outage_window_ms: float

    @property
    def unblock_latency_ms(self) -> float:
        """Crash to last lock release."""
        if not self.release_times_ms:
            return 0.0
        return max(self.release_times_ms) - self.crash_time_ms

    @property
    def outage_throughput(self) -> float:
        """Committed transactions per second during the outage."""
        if self.outage_window_ms <= 0:
            return 0.0
        return self.committed_during_outage / (self.outage_window_ms / 1000)

    def summary(self) -> str:
        return (f"{self.protocol:>4}: cohorts blocked for "
                f"{self.unblock_latency_ms:8.1f} ms after the crash; "
                f"throughput during outage "
                f"{self.outage_throughput:6.2f} txn/s")


class _CrashingBlockingProtocol:
    """Mixin: the target master crashes after collecting YES votes and
    recovers ``crash_duration_ms`` later; cohorts stay blocked."""

    def __init__(self, target_txn_id: int, crash_duration_ms: float):
        super().__init__()
        self.target_txn_id = target_txn_id
        self.crash_duration_ms = crash_duration_ms
        self.crash_time: float | None = None

    def master_commit(self, master):
        if master.txn.txn_id != self.target_txn_id:
            return (yield from super().master_commit(master))
        if isinstance(self, PresumedCommit):
            yield from master.force_log(LogRecordKind.COLLECTING)
        all_yes = yield from self.collect_votes(master)
        assert all_yes, "crash scenario assumes a YES-voting transaction"
        # CRASH: the master goes silent with every cohort prepared.
        self.crash_time = master.env.now
        bus = self.system.bus
        if bus.has_subscribers(EventKind.SITE_CRASH):
            bus.publish(SiteCrash(master.env.now, master.site.site_id,
                                  master.txn.txn_id))
        yield master.env.timeout(self.crash_duration_ms)
        if bus.has_subscribers(EventKind.SITE_RECOVER):
            bus.publish(SiteRecover(master.env.now, master.site.site_id,
                                    master.txn.txn_id))
        # RECOVERY: complete the protocol normally.
        yield from self.master_commit_phase(master)
        return TransactionOutcome.COMMITTED


class Crashing2PC(_CrashingBlockingProtocol, TwoPhaseCommit):
    pass


class CrashingPA(_CrashingBlockingProtocol, PresumedAbort):
    pass


class CrashingPC(_CrashingBlockingProtocol, PresumedCommit):
    pass


#: Scenario classes for the blocking protocols, keyed by protocol name.
_CRASHING = {
    "2PC": Crashing2PC,
    "PA": CrashingPA,
    "PC": CrashingPC,
}


class Crashing3PC(ThreePhaseCommit):
    """3PC with a master crash after the precommit round, and the
    cohort-side termination protocol that makes 3PC non-blocking."""

    def __init__(self, target_txn_id: int, crash_duration_ms: float,
                 decision_timeout_ms: float):
        super().__init__()
        self.target_txn_id = target_txn_id
        self.crash_duration_ms = crash_duration_ms
        self.decision_timeout_ms = decision_timeout_ms
        self.crash_time: float | None = None
        self.terminations = 0

    # ------------------------------------------------------------------
    def master_commit(self, master):
        if master.txn.txn_id != self.target_txn_id:
            return (yield from super().master_commit(master))
        all_yes = yield from self.collect_votes(master)
        assert all_yes
        yield from master.force_log(LogRecordKind.PRECOMMIT)
        for cohort in master.prepared_cohorts:
            yield from master.send(MessageKind.PRECOMMIT, cohort)
        for _ in master.prepared_cohorts:
            message = yield master.recv()
            assert message.kind is MessageKind.PRECOMMIT_ACK
        # CRASH: every cohort is precommitted; master goes silent.  The
        # cohorts will decide among themselves; the recovered master
        # simply forgets (its cohorts have already terminated).
        self.crash_time = master.env.now
        bus = self.system.bus
        if bus.has_subscribers(EventKind.SITE_CRASH):
            bus.publish(SiteCrash(master.env.now, master.site.site_id,
                                  master.txn.txn_id))
        yield master.env.timeout(self.crash_duration_ms)
        if bus.has_subscribers(EventKind.SITE_RECOVER):
            bus.publish(SiteRecover(master.env.now, master.site.site_id,
                                    master.txn.txn_id))
        master.log(LogRecordKind.END)
        return TransactionOutcome.COMMITTED

    def cohort_commit(self, cohort):
        if cohort.txn.txn_id != self.target_txn_id:
            return (yield from super().cohort_commit(cohort))
        vote = yield from self.cohort_vote(cohort, no_vote_forced=True)
        if vote != "yes":
            return
        message = yield cohort.recv()
        assert message.kind is MessageKind.PRECOMMIT
        yield from cohort.force_log(LogRecordKind.PRECOMMIT)
        cohort.state = CohortState.PRECOMMITTED
        assert cohort.master is not None
        yield from cohort.send(MessageKind.PRECOMMIT_ACK, cohort.master)
        # Await the decision -- with a timeout, because masters fail.
        message = yield from cohort.recv_wait(self.decision_timeout_ms,
                                              wait="decision")
        if message is None:
            # Termination protocol: a status-inquiry round trip with
            # each peer cohort, routed through the network so the
            # messages are counted, costed and published like any other
            # traffic (not free same-site CPU spins).  Every reachable
            # peer is precommitted, so commit without the master.
            self.terminations += 1
            yield from self.termination_round(cohort)
        yield from cohort.force_log(LogRecordKind.COMMIT)
        cohort.implement_commit()


def run_crash_scenario(protocol: str,
                       crash_duration_ms: float = 20_000.0,
                       decision_timeout_ms: float = 500.0,
                       target_txn_id: int = 40,
                       params: ModelParams | None = None,
                       measured_transactions: int = 600,
                       seed: int | None = None,
                       event_log: "EventLog | None" = None) -> BlockingReport:
    """Crash the designated transaction's master; report the damage.

    ``protocol`` is one of ``2PC``, ``PA``, ``PC`` (blocking) or ``3PC``
    (non-blocking).  Pass an :class:`~repro.obs.recorder.EventLog` as
    ``event_log`` to capture the run's full event stream (e.g. to show
    it is identical to a healthy run's right up to the crash).
    """
    if params is None:
        params = ModelParams(mpl=4)
    name = protocol.upper()
    if name == "3PC":
        instance: typing.Any = Crashing3PC(target_txn_id, crash_duration_ms,
                                           decision_timeout_ms)
    else:
        try:
            scenario = _CRASHING[name]
        except KeyError:
            raise KeyError(
                f"no crash scenario for {protocol!r}; "
                f"choose from {(*BLOCKING_BASES, '3PC')}") from None
        instance = scenario(target_txn_id, crash_duration_ms)
    system = DistributedSystem(params, instance, seed=seed)
    if event_log is not None:
        event_log.attach(system.bus)

    # Record when the target transaction's cohorts release their locks:
    # a committed-path LOCK_RELEASE of the target transaction, at any
    # site (one per cohort).
    release_times: list[float] = []

    def record_release(event: LockRelease) -> None:
        if event.committed and event.cohort.txn.txn_id == target_txn_id:
            release_times.append(event.time)

    system.bus.subscribe(EventKind.LOCK_RELEASE, record_release)
    system.run(measured_transactions=measured_transactions,
               warmup_transactions=0)

    crash_time = instance.crash_time
    if crash_time is None:
        raise RuntimeError(
            "the target transaction never reached its commit phase; "
            "increase measured_transactions or lower target_txn_id")
    outage_end = crash_time + crash_duration_ms
    committed_in_window = _commits_between(system, crash_time, outage_end)
    return BlockingReport(
        protocol=name,
        crash_time_ms=crash_time,
        release_times_ms=[t for t in release_times if t >= crash_time],
        committed_during_outage=committed_in_window,
        outage_window_ms=crash_duration_ms)


def _commits_between(system: DistributedSystem, start: float,
                     end: float) -> int:
    """Commits that completed inside [start, end] (from the WAL)."""
    count = 0
    seen: set[int] = set()
    for site in system.sites:
        for record in site.log_manager.records:
            if record.kind is LogRecordKind.COMMIT and record.forced \
                    and start <= record.time <= end \
                    and record.txn_id not in seen:
                seen.add(record.txn_id)
                count += 1
    return count


def compare_blocking(crash_duration_ms: float = 20_000.0,
                     measured_transactions: int = 600,
                     params: ModelParams | None = None,
                     protocols: typing.Sequence[str] = ("2PC", "3PC"),
                     seed: int | None = None,
                     ) -> dict[str, BlockingReport]:
    """Run the crash scenario under each protocol; return the reports.

    Defaults to the headline 2PC-vs-3PC comparison; pass
    ``protocols=("2PC", "PA", "PC", "3PC")`` for every registered
    blocking protocol plus the non-blocking termination path.  A shared
    ``seed`` gives every protocol the identical workload, so differences
    in the reports are the protocols' alone.
    """
    return {name: run_crash_scenario(
        name, crash_duration_ms=crash_duration_ms,
        measured_transactions=measured_transactions, params=params,
        seed=seed)
        for name in protocols}
