"""Performance metrics.

Implements the paper's reported metrics:

- **transaction throughput**: committed transactions per second (the
  primary metric);
- **block ratio** (Figs 1b, 2b): time-averaged fraction of transactions
  in the blocked (lock-waiting) state;
- **borrow ratio** (Figs 1c, 2c): average number of pages borrowed per
  completed transaction (OPT only);
- **protocol overheads** (Tables 3, 4): execution messages, commit
  messages, and forced log writes per committing transaction;
- response times, abort/restart counts, and the running mean response
  time used as the restart delay ("the same heuristic as that used in
  most transaction management studies");
- **open-system results** (extension): offered vs. carried load, shed
  ratio, admission-queue waits, and p50/p95/p99 response percentiles --
  the quantities the saturation experiment plots, which the paper's
  closed model (means only) cannot express.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.db.wal import LogRecordKind
from repro.obs.events import EventKind
from repro.sim.events import Event
from repro.sim.stats import (
    AdaptivePercentileSample,
    BatchMeans,
    PercentileSample,
    TimeWeightedAverage,
    WelfordAccumulator,
)

#: batch size for the single-run batch-means confidence interval on
#: response times (the paper's 90%-CI methodology).
RESPONSE_BATCH_SIZE = 32

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.transaction import AbortReason, CohortAgent, Transaction
    from repro.obs.bus import EventBus, Subscription
    from repro.sim.engine import Environment


class MetricsCollector:
    """Gathers statistics over one simulation run.

    Warmup handling: :meth:`reset` discards everything collected so far;
    results are computed from the post-reset ("measured") period only.
    The running mean response time (restart delay heuristic) is *not*
    reset -- it is part of the model, not of the measurement.
    """

    def __init__(self, env: "Environment", total_slots: int,
                 initial_response_estimate: float,
                 open_system: bool = False,
                 percentile_sample_cap: int | None = None) -> None:
        self.env = env
        self.total_slots = total_slots
        self._initial_response_estimate = initial_response_estimate
        self._measure_start = env.now
        #: collect open-system accumulators (percentiles, queue waits)?
        #: Off in closed mode so the hot commit path stays untouched.
        self.open_system = open_system
        #: above this many retained observations, percentile samples
        #: degrade to streaming P-squared estimators (None = exact
        #: retention forever, the short-run default).
        self.percentile_sample_cap = percentile_sample_cap

        # Measured-period accumulators.
        self.committed = 0
        self.aborted = 0
        self.aborts_by_reason: dict["AbortReason", int] = {}
        self.response_times = WelfordAccumulator()
        self.response_batches = BatchMeans(RESPONSE_BATCH_SIZE)
        self.exec_messages = WelfordAccumulator()
        self.commit_messages = WelfordAccumulator()
        self.forced_writes = WelfordAccumulator()
        #: messages that crossed datacenters, per committed transaction
        #: (all zero unless a multi-DC network topology is active).
        self.cross_dc_messages = WelfordAccumulator()
        self.borrowed_pages_total = 0
        self.shelf_entries = 0
        self.forced_by_kind: dict[LogRecordKind, int] = {}
        self.blocked_txns = TimeWeightedAverage(initial_time=env.now)
        # Open-system accumulators (only fed under WorkloadMode.OPEN).
        self.offered = 0
        self.shed = 0
        self.queue_waits = WelfordAccumulator()
        self.queue_wait_sample = self._make_percentile_sample()
        self.response_sample = self._make_percentile_sample()
        #: warmup straddlers excluded from the percentile samples: the
        #: observation started (arrived / entered the queue) before the
        #: measurement reset, so its latency spans the boundary.
        self.straddlers_dropped = 0

        # Model state (never reset): restart delay heuristic.
        self._lifetime_response = WelfordAccumulator()

        # Completion watchers: (commit-count threshold, event).
        self._watchers: list[tuple[int, Event]] = []
        self._committed_lifetime = 0
        self._subscription: "Subscription | None" = None

    def _make_percentile_sample(
            self) -> "PercentileSample | AdaptivePercentileSample":
        if self.percentile_sample_cap is None:
            return PercentileSample()
        return AdaptivePercentileSample(self.percentile_sample_cap)

    # ------------------------------------------------------------------
    # Event-bus subscription (the live system's feed)
    # ------------------------------------------------------------------
    def subscribe(self, bus: "EventBus") -> "Subscription":
        """Attach the collector to the system's instrumentation bus."""
        self._subscription = bus.subscribe_map({
            EventKind.TXN_COMMIT:
                lambda e: self.transaction_committed(e.txn),
            EventKind.TXN_ABORT:
                lambda e: self.transaction_aborted(e.txn, e.reason),
            EventKind.TXN_BLOCK:
                lambda e: self.blocked_txns.increment(e.time),
            EventKind.TXN_UNBLOCK:
                lambda e: self.blocked_txns.decrement(e.time),
            EventKind.BORROW: lambda e: self.borrow(e.cohort, e.page),
            EventKind.SHELF_ENTER: lambda e: self.shelf_entered(),
            EventKind.LOG_FORCE: lambda e: self.forced_write(e.record_kind),
            EventKind.TXN_ARRIVE: lambda e: self.transaction_arrived(),
            EventKind.TXN_SHED: lambda e: self.transaction_shed(),
            EventKind.TXN_DEQUEUE: lambda e: self.queue_wait(e.wait_ms),
        })
        return self._subscription

    # ------------------------------------------------------------------
    # Recording (invoked by the bus handlers above; unit tests may
    # drive these directly)
    # ------------------------------------------------------------------
    def transaction_committed(self, txn: "Transaction") -> None:
        response = self.env.now - txn.first_submit_time
        self._lifetime_response.add(response)
        self._committed_lifetime += 1
        self.committed += 1
        self.response_times.add(response)
        self.response_batches.add(response)
        if self.open_system:
            # Warmup-boundary convention: a transaction that *arrived*
            # before the measurement reset carries latency accrued in the
            # discarded warmup period, so it is dropped from the
            # percentile sample (means keep every post-reset completion).
            if txn.first_submit_time >= self._measure_start:
                self.response_sample.add(response)
            else:
                self.straddlers_dropped += 1
        self.exec_messages.add(txn.messages_execution)
        self.commit_messages.add(txn.messages_commit)
        self.cross_dc_messages.add(txn.messages_cross_dc)
        self.forced_writes.add(txn.forced_writes)
        self._fire_watchers()

    def transaction_aborted(self, txn: "Transaction",
                            reason: "AbortReason") -> None:
        self.aborted += 1
        self.aborts_by_reason[reason] = self.aborts_by_reason.get(reason, 0) + 1

    def borrow(self, cohort: "CohortAgent", page: int) -> None:
        self.borrowed_pages_total += 1

    def shelf_entered(self) -> None:
        self.shelf_entries += 1

    def forced_write(self, kind: LogRecordKind) -> None:
        self.forced_by_kind[kind] = self.forced_by_kind.get(kind, 0) + 1

    # ------------------------------------------------------------------
    # Open-system recording (TXN_ARRIVE / TXN_SHED / TXN_DEQUEUE)
    # ------------------------------------------------------------------
    def transaction_arrived(self) -> None:
        self.offered += 1

    def transaction_shed(self) -> None:
        self.shed += 1

    def queue_wait(self, wait_ms: float) -> None:
        self.queue_waits.add(wait_ms)
        # Same straddler convention as response percentiles: a dequeue
        # whose arrival (now - wait) predates the measurement reset spans
        # the warmup boundary and is excluded from the sample.
        if self.env.now - wait_ms >= self._measure_start:
            self.queue_wait_sample.add(wait_ms)
        else:
            self.straddlers_dropped += 1

    def wait_change(self, cohort: "CohortAgent", waiting: bool) -> None:
        """Direct-drive lock-wait transition (unit tests).

        The live system publishes ``TXN_BLOCK``/``TXN_UNBLOCK`` from the
        lock managers, which maintain ``txn.blocked_cohorts`` themselves;
        this method performs both steps for callers without a bus.
        """
        txn = cohort.txn
        if waiting:
            txn.blocked_cohorts += 1
            if txn.blocked_cohorts == 1:
                self.blocked_txns.increment(self.env.now)
        else:
            txn.blocked_cohorts -= 1
            if txn.blocked_cohorts == 0:
                self.blocked_txns.decrement(self.env.now)

    # ------------------------------------------------------------------
    # Restart delay heuristic (paper Section 4)
    # ------------------------------------------------------------------
    def restart_delay(self) -> float:
        """Average response time so far, or a service-demand prior."""
        if self._lifetime_response.count:
            return self._lifetime_response.mean
        return self._initial_response_estimate

    # ------------------------------------------------------------------
    # Warmup / completion control
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """End of warmup: discard all measured-period statistics."""
        self.committed = 0
        self.aborted = 0
        self.aborts_by_reason = {}
        self.response_times = WelfordAccumulator()
        self.response_batches = BatchMeans(RESPONSE_BATCH_SIZE)
        self.exec_messages = WelfordAccumulator()
        self.commit_messages = WelfordAccumulator()
        self.forced_writes = WelfordAccumulator()
        self.cross_dc_messages = WelfordAccumulator()
        self.borrowed_pages_total = 0
        self.shelf_entries = 0
        self.forced_by_kind = {}
        self.blocked_txns.reset(self.env.now)
        self.offered = 0
        self.shed = 0
        self.queue_waits = WelfordAccumulator()
        self.queue_wait_sample = self._make_percentile_sample()
        self.response_sample = self._make_percentile_sample()
        self.straddlers_dropped = 0
        self._measure_start = self.env.now

    #: attributes snapshotted by capture_state/restore_state.  All are
    #: plain-data accumulators (picklable); env, watchers, and the bus
    #: subscription are deliberately excluded — the soak runner rebuilds
    #: those per segment.
    _CHECKPOINT_ATTRS = (
        "committed", "aborted", "aborts_by_reason",
        "response_times", "response_batches",
        "exec_messages", "commit_messages", "forced_writes",
        "cross_dc_messages",
        "borrowed_pages_total", "shelf_entries", "forced_by_kind",
        "blocked_txns", "offered", "shed",
        "queue_waits", "queue_wait_sample", "response_sample",
        "straddlers_dropped",
        "_lifetime_response", "_committed_lifetime", "_measure_start",
    )

    def capture_state(self) -> dict:
        """Picklable snapshot of every accumulator (soak checkpointing).

        The returned objects are handed over, not copied: capture happens
        at a quiescent segment barrier after which this collector (and
        its system) are discarded.
        """
        return {name: getattr(self, name)
                for name in self._CHECKPOINT_ATTRS}

    def restore_state(self, state: dict) -> None:
        """Adopt a :meth:`capture_state` snapshot (soak resume)."""
        for name in self._CHECKPOINT_ATTRS:
            setattr(self, name, state[name])

    def when_committed(self, count: int) -> Event:
        """Event that triggers once ``count`` *further* commits happen."""
        event = Event(self.env)
        self._watchers.append((self._committed_lifetime + count, event))
        return event

    def _fire_watchers(self) -> None:
        ready = [w for w in self._watchers
                 if self._committed_lifetime >= w[0]]
        if not ready:
            return
        self._watchers = [w for w in self._watchers
                          if self._committed_lifetime < w[0]]
        for _, event in ready:
            event.succeed()

    # ------------------------------------------------------------------
    # Derived results
    # ------------------------------------------------------------------
    @property
    def elapsed_ms(self) -> float:
        return self.env.now - self._measure_start

    def throughput_per_second(self) -> float:
        if self.elapsed_ms <= 0:
            return 0.0
        return self.committed / (self.elapsed_ms / 1000.0)

    def block_ratio(self) -> float:
        """Average fraction of transactions in the blocked state."""
        if self.total_slots == 0:
            return 0.0
        return self.blocked_txns.average(self.env.now) / self.total_slots

    def borrow_ratio(self) -> float:
        """Average pages borrowed per completed transaction."""
        if self.committed == 0:
            return 0.0
        return self.borrowed_pages_total / self.committed

    def abort_ratio(self) -> float:
        """Aborts per (commit + abort) event in the measured period."""
        total = self.committed + self.aborted
        if total == 0:
            return 0.0
        return self.aborted / total

    def shed_ratio(self) -> float:
        """Fraction of offered arrivals dropped on a full queue (OPEN)."""
        if self.offered == 0:
            return 0.0
        return self.shed / self.offered

    def offered_per_second(self) -> float:
        """Measured offered load in transactions/second (OPEN)."""
        if self.elapsed_ms <= 0:
            return 0.0
        return self.offered / (self.elapsed_ms / 1000.0)

    def cross_dc_round_trips_per_commit(self) -> float:
        """Mean cross-datacenter round trips per committed transaction.

        Each round trip is two cross-DC messages (request out, reply
        back); under a WAN topology this is the quantity that multiplies
        the cross-DC RTT into commit latency.  0 without a multi-DC
        topology.
        """
        return self.cross_dc_messages.mean / 2.0


@dataclasses.dataclass
class ProtocolOverheads:
    """Per-committing-transaction overheads (paper Tables 3 and 4)."""

    execution_messages: float
    forced_writes: float
    commit_messages: float

    def rounded(self) -> tuple[float, float, float]:
        return (round(self.execution_messages, 2),
                round(self.forced_writes, 2),
                round(self.commit_messages, 2))
